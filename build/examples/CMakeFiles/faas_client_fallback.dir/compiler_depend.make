# Empty compiler generated dependencies file for faas_client_fallback.
# This may be replaced when dependencies are built.
