file(REMOVE_RECURSE
  "CMakeFiles/faas_client_fallback.dir/faas_client_fallback.cpp.o"
  "CMakeFiles/faas_client_fallback.dir/faas_client_fallback.cpp.o.d"
  "faas_client_fallback"
  "faas_client_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_client_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
