# Empty dependencies file for production_day.
# This may be replaced when dependencies are built.
