# Empty dependencies file for joblength_tuning.
# This may be replaced when dependencies are built.
