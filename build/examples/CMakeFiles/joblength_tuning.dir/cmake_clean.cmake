file(REMOVE_RECURSE
  "CMakeFiles/joblength_tuning.dir/joblength_tuning.cpp.o"
  "CMakeFiles/joblength_tuning.dir/joblength_tuning.cpp.o.d"
  "joblength_tuning"
  "joblength_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joblength_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
