# Empty compiler generated dependencies file for warmup_model.
# This may be replaced when dependencies are built.
