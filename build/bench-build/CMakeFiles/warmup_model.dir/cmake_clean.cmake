file(REMOVE_RECURSE
  "../bench/warmup_model"
  "../bench/warmup_model.pdb"
  "CMakeFiles/warmup_model.dir/warmup_model.cpp.o"
  "CMakeFiles/warmup_model.dir/warmup_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warmup_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
