file(REMOVE_RECURSE
  "CMakeFiles/hw_bench_common.dir/common/experiment.cpp.o"
  "CMakeFiles/hw_bench_common.dir/common/experiment.cpp.o.d"
  "CMakeFiles/hw_bench_common.dir/common/responsiveness.cpp.o"
  "CMakeFiles/hw_bench_common.dir/common/responsiveness.cpp.o.d"
  "libhw_bench_common.a"
  "libhw_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
