# Empty dependencies file for hw_bench_common.
# This may be replaced when dependencies are built.
