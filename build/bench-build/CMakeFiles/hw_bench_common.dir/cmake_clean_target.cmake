file(REMOVE_RECURSE
  "libhw_bench_common.a"
)
