# Empty dependencies file for fig2_jobs.
# This may be replaced when dependencies are built.
