file(REMOVE_RECURSE
  "../bench/fig2_jobs"
  "../bench/fig2_jobs.pdb"
  "CMakeFiles/fig2_jobs.dir/fig2_jobs.cpp.o"
  "CMakeFiles/fig2_jobs.dir/fig2_jobs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
