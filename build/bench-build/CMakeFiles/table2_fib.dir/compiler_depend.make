# Empty compiler generated dependencies file for table2_fib.
# This may be replaced when dependencies are built.
