file(REMOVE_RECURSE
  "../bench/table2_fib"
  "../bench/table2_fib.pdb"
  "CMakeFiles/table2_fib.dir/table2_fib.cpp.o"
  "CMakeFiles/table2_fib.dir/table2_fib.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
