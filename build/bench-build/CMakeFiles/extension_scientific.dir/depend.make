# Empty dependencies file for extension_scientific.
# This may be replaced when dependencies are built.
