file(REMOVE_RECURSE
  "../bench/extension_scientific"
  "../bench/extension_scientific.pdb"
  "CMakeFiles/extension_scientific.dir/extension_scientific.cpp.o"
  "CMakeFiles/extension_scientific.dir/extension_scientific.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_scientific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
