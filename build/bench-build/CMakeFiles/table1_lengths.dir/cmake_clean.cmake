file(REMOVE_RECURSE
  "../bench/table1_lengths"
  "../bench/table1_lengths.pdb"
  "CMakeFiles/table1_lengths.dir/table1_lengths.cpp.o"
  "CMakeFiles/table1_lengths.dir/table1_lengths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
