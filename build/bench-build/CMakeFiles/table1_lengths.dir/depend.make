# Empty dependencies file for table1_lengths.
# This may be replaced when dependencies are built.
