file(REMOVE_RECURSE
  "../bench/ablation_grace"
  "../bench/ablation_grace.pdb"
  "CMakeFiles/ablation_grace.dir/ablation_grace.cpp.o"
  "CMakeFiles/ablation_grace.dir/ablation_grace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
