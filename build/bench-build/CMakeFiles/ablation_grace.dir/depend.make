# Empty dependencies file for ablation_grace.
# This may be replaced when dependencies are built.
