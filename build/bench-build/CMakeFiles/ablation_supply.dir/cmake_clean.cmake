file(REMOVE_RECURSE
  "../bench/ablation_supply"
  "../bench/ablation_supply.pdb"
  "CMakeFiles/ablation_supply.dir/ablation_supply.cpp.o"
  "CMakeFiles/ablation_supply.dir/ablation_supply.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_supply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
