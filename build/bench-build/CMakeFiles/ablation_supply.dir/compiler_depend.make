# Empty compiler generated dependencies file for ablation_supply.
# This may be replaced when dependencies are built.
