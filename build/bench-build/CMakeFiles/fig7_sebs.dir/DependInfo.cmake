
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_sebs.cpp" "bench-build/CMakeFiles/fig7_sebs.dir/fig7_sebs.cpp.o" "gcc" "bench-build/CMakeFiles/fig7_sebs.dir/fig7_sebs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sebs/CMakeFiles/hw_sebs.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hw_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/mq/CMakeFiles/hw_mq.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hw_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/whisk/CMakeFiles/hw_whisk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
