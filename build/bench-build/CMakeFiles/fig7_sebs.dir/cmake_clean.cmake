file(REMOVE_RECURSE
  "../bench/fig7_sebs"
  "../bench/fig7_sebs.pdb"
  "CMakeFiles/fig7_sebs.dir/fig7_sebs.cpp.o"
  "CMakeFiles/fig7_sebs.dir/fig7_sebs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
