# Empty compiler generated dependencies file for fig7_sebs.
# This may be replaced when dependencies are built.
