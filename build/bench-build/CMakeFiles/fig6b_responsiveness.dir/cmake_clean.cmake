file(REMOVE_RECURSE
  "../bench/fig6b_responsiveness"
  "../bench/fig6b_responsiveness.pdb"
  "CMakeFiles/fig6b_responsiveness.dir/fig6b_responsiveness.cpp.o"
  "CMakeFiles/fig6b_responsiveness.dir/fig6b_responsiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
