# Empty compiler generated dependencies file for fig6b_responsiveness.
# This may be replaced when dependencies are built.
