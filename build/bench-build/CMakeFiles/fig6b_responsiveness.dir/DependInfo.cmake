
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6b_responsiveness.cpp" "bench-build/CMakeFiles/fig6b_responsiveness.dir/fig6b_responsiveness.cpp.o" "gcc" "bench-build/CMakeFiles/fig6b_responsiveness.dir/fig6b_responsiveness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/hw_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hw_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/whisk/CMakeFiles/hw_whisk.dir/DependInfo.cmake"
  "/root/repo/build/src/mq/CMakeFiles/hw_mq.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hw_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/slurm/CMakeFiles/hw_slurm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
