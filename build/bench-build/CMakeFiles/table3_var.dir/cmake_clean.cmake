file(REMOVE_RECURSE
  "../bench/table3_var"
  "../bench/table3_var.pdb"
  "CMakeFiles/table3_var.dir/table3_var.cpp.o"
  "CMakeFiles/table3_var.dir/table3_var.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
