# Empty compiler generated dependencies file for table3_var.
# This may be replaced when dependencies are built.
