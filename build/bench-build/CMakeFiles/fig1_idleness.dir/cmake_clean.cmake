file(REMOVE_RECURSE
  "../bench/fig1_idleness"
  "../bench/fig1_idleness.pdb"
  "CMakeFiles/fig1_idleness.dir/fig1_idleness.cpp.o"
  "CMakeFiles/fig1_idleness.dir/fig1_idleness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_idleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
