# Empty compiler generated dependencies file for fig1_idleness.
# This may be replaced when dependencies are built.
