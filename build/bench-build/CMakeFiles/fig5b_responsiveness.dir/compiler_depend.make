# Empty compiler generated dependencies file for fig5b_responsiveness.
# This may be replaced when dependencies are built.
