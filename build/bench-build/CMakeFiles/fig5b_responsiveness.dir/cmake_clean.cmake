file(REMOVE_RECURSE
  "../bench/fig5b_responsiveness"
  "../bench/fig5b_responsiveness.pdb"
  "CMakeFiles/fig5b_responsiveness.dir/fig5b_responsiveness.cpp.o"
  "CMakeFiles/fig5b_responsiveness.dir/fig5b_responsiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
