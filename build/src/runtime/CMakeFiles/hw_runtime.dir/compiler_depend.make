# Empty compiler generated dependencies file for hw_runtime.
# This may be replaced when dependencies are built.
