file(REMOVE_RECURSE
  "libhw_runtime.a"
)
