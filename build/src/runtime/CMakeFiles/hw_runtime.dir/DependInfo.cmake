
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/src/container_pool.cpp" "src/runtime/CMakeFiles/hw_runtime.dir/src/container_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/hw_runtime.dir/src/container_pool.cpp.o.d"
  "/root/repo/src/runtime/src/runtime_profile.cpp" "src/runtime/CMakeFiles/hw_runtime.dir/src/runtime_profile.cpp.o" "gcc" "src/runtime/CMakeFiles/hw_runtime.dir/src/runtime_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
