file(REMOVE_RECURSE
  "CMakeFiles/hw_runtime.dir/src/container_pool.cpp.o"
  "CMakeFiles/hw_runtime.dir/src/container_pool.cpp.o.d"
  "CMakeFiles/hw_runtime.dir/src/runtime_profile.cpp.o"
  "CMakeFiles/hw_runtime.dir/src/runtime_profile.cpp.o.d"
  "libhw_runtime.a"
  "libhw_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
