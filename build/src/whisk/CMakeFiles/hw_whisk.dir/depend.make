# Empty dependencies file for hw_whisk.
# This may be replaced when dependencies are built.
