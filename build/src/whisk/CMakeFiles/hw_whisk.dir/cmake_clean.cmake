file(REMOVE_RECURSE
  "CMakeFiles/hw_whisk.dir/src/controller.cpp.o"
  "CMakeFiles/hw_whisk.dir/src/controller.cpp.o.d"
  "CMakeFiles/hw_whisk.dir/src/function.cpp.o"
  "CMakeFiles/hw_whisk.dir/src/function.cpp.o.d"
  "CMakeFiles/hw_whisk.dir/src/invoker.cpp.o"
  "CMakeFiles/hw_whisk.dir/src/invoker.cpp.o.d"
  "libhw_whisk.a"
  "libhw_whisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_whisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
