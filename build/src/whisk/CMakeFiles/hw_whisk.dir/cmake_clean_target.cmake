file(REMOVE_RECURSE
  "libhw_whisk.a"
)
