# Empty compiler generated dependencies file for hw_trace.
# This may be replaced when dependencies are built.
