file(REMOVE_RECURSE
  "CMakeFiles/hw_trace.dir/src/faas_workload.cpp.o"
  "CMakeFiles/hw_trace.dir/src/faas_workload.cpp.o.d"
  "CMakeFiles/hw_trace.dir/src/hpc_workload.cpp.o"
  "CMakeFiles/hw_trace.dir/src/hpc_workload.cpp.o.d"
  "libhw_trace.a"
  "libhw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
