file(REMOVE_RECURSE
  "libhw_trace.a"
)
