# Empty dependencies file for hw_sim.
# This may be replaced when dependencies are built.
