file(REMOVE_RECURSE
  "libhw_sim.a"
)
