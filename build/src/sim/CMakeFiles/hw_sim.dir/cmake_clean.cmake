file(REMOVE_RECURSE
  "CMakeFiles/hw_sim.dir/src/distributions.cpp.o"
  "CMakeFiles/hw_sim.dir/src/distributions.cpp.o.d"
  "CMakeFiles/hw_sim.dir/src/event_queue.cpp.o"
  "CMakeFiles/hw_sim.dir/src/event_queue.cpp.o.d"
  "CMakeFiles/hw_sim.dir/src/rng.cpp.o"
  "CMakeFiles/hw_sim.dir/src/rng.cpp.o.d"
  "CMakeFiles/hw_sim.dir/src/simulation.cpp.o"
  "CMakeFiles/hw_sim.dir/src/simulation.cpp.o.d"
  "libhw_sim.a"
  "libhw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
