file(REMOVE_RECURSE
  "CMakeFiles/hw_core.dir/src/client_wrapper.cpp.o"
  "CMakeFiles/hw_core.dir/src/client_wrapper.cpp.o.d"
  "CMakeFiles/hw_core.dir/src/job_manager.cpp.o"
  "CMakeFiles/hw_core.dir/src/job_manager.cpp.o.d"
  "CMakeFiles/hw_core.dir/src/pilot.cpp.o"
  "CMakeFiles/hw_core.dir/src/pilot.cpp.o.d"
  "CMakeFiles/hw_core.dir/src/system.cpp.o"
  "CMakeFiles/hw_core.dir/src/system.cpp.o.d"
  "libhw_core.a"
  "libhw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
