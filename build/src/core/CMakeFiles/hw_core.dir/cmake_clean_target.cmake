file(REMOVE_RECURSE
  "libhw_core.a"
)
