# Empty compiler generated dependencies file for hw_core.
# This may be replaced when dependencies are built.
