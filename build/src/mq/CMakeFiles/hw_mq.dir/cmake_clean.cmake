file(REMOVE_RECURSE
  "CMakeFiles/hw_mq.dir/src/broker.cpp.o"
  "CMakeFiles/hw_mq.dir/src/broker.cpp.o.d"
  "CMakeFiles/hw_mq.dir/src/log.cpp.o"
  "CMakeFiles/hw_mq.dir/src/log.cpp.o.d"
  "CMakeFiles/hw_mq.dir/src/topic.cpp.o"
  "CMakeFiles/hw_mq.dir/src/topic.cpp.o.d"
  "libhw_mq.a"
  "libhw_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
