# Empty compiler generated dependencies file for hw_mq.
# This may be replaced when dependencies are built.
