file(REMOVE_RECURSE
  "libhw_mq.a"
)
