
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mq/src/broker.cpp" "src/mq/CMakeFiles/hw_mq.dir/src/broker.cpp.o" "gcc" "src/mq/CMakeFiles/hw_mq.dir/src/broker.cpp.o.d"
  "/root/repo/src/mq/src/log.cpp" "src/mq/CMakeFiles/hw_mq.dir/src/log.cpp.o" "gcc" "src/mq/CMakeFiles/hw_mq.dir/src/log.cpp.o.d"
  "/root/repo/src/mq/src/topic.cpp" "src/mq/CMakeFiles/hw_mq.dir/src/topic.cpp.o" "gcc" "src/mq/CMakeFiles/hw_mq.dir/src/topic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
