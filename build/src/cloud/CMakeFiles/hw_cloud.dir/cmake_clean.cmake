file(REMOVE_RECURSE
  "CMakeFiles/hw_cloud.dir/src/lambda_service.cpp.o"
  "CMakeFiles/hw_cloud.dir/src/lambda_service.cpp.o.d"
  "libhw_cloud.a"
  "libhw_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
