# Empty compiler generated dependencies file for hw_cloud.
# This may be replaced when dependencies are built.
