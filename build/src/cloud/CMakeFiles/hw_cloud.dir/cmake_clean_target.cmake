file(REMOVE_RECURSE
  "libhw_cloud.a"
)
