file(REMOVE_RECURSE
  "CMakeFiles/hw_sebs.dir/src/graph.cpp.o"
  "CMakeFiles/hw_sebs.dir/src/graph.cpp.o.d"
  "CMakeFiles/hw_sebs.dir/src/kernels.cpp.o"
  "CMakeFiles/hw_sebs.dir/src/kernels.cpp.o.d"
  "libhw_sebs.a"
  "libhw_sebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_sebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
