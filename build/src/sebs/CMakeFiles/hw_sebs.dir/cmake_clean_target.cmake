file(REMOVE_RECURSE
  "libhw_sebs.a"
)
