# Empty compiler generated dependencies file for hw_sebs.
# This may be replaced when dependencies are built.
