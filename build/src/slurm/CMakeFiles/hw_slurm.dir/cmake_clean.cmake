file(REMOVE_RECURSE
  "CMakeFiles/hw_slurm.dir/src/slurmctld.cpp.o"
  "CMakeFiles/hw_slurm.dir/src/slurmctld.cpp.o.d"
  "CMakeFiles/hw_slurm.dir/src/status.cpp.o"
  "CMakeFiles/hw_slurm.dir/src/status.cpp.o.d"
  "libhw_slurm.a"
  "libhw_slurm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
