
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slurm/src/slurmctld.cpp" "src/slurm/CMakeFiles/hw_slurm.dir/src/slurmctld.cpp.o" "gcc" "src/slurm/CMakeFiles/hw_slurm.dir/src/slurmctld.cpp.o.d"
  "/root/repo/src/slurm/src/status.cpp" "src/slurm/CMakeFiles/hw_slurm.dir/src/status.cpp.o" "gcc" "src/slurm/CMakeFiles/hw_slurm.dir/src/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
