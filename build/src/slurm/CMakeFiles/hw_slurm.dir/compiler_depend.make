# Empty compiler generated dependencies file for hw_slurm.
# This may be replaced when dependencies are built.
