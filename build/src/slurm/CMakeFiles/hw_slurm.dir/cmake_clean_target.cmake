file(REMOVE_RECURSE
  "libhw_slurm.a"
)
