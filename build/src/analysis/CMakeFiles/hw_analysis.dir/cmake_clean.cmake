file(REMOVE_RECURSE
  "CMakeFiles/hw_analysis.dir/src/clairvoyant.cpp.o"
  "CMakeFiles/hw_analysis.dir/src/clairvoyant.cpp.o.d"
  "CMakeFiles/hw_analysis.dir/src/node_state_log.cpp.o"
  "CMakeFiles/hw_analysis.dir/src/node_state_log.cpp.o.d"
  "CMakeFiles/hw_analysis.dir/src/report.cpp.o"
  "CMakeFiles/hw_analysis.dir/src/report.cpp.o.d"
  "CMakeFiles/hw_analysis.dir/src/stats.cpp.o"
  "CMakeFiles/hw_analysis.dir/src/stats.cpp.o.d"
  "libhw_analysis.a"
  "libhw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
