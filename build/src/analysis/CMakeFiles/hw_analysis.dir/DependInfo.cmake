
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/src/clairvoyant.cpp" "src/analysis/CMakeFiles/hw_analysis.dir/src/clairvoyant.cpp.o" "gcc" "src/analysis/CMakeFiles/hw_analysis.dir/src/clairvoyant.cpp.o.d"
  "/root/repo/src/analysis/src/node_state_log.cpp" "src/analysis/CMakeFiles/hw_analysis.dir/src/node_state_log.cpp.o" "gcc" "src/analysis/CMakeFiles/hw_analysis.dir/src/node_state_log.cpp.o.d"
  "/root/repo/src/analysis/src/report.cpp" "src/analysis/CMakeFiles/hw_analysis.dir/src/report.cpp.o" "gcc" "src/analysis/CMakeFiles/hw_analysis.dir/src/report.cpp.o.d"
  "/root/repo/src/analysis/src/stats.cpp" "src/analysis/CMakeFiles/hw_analysis.dir/src/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/hw_analysis.dir/src/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/slurm/CMakeFiles/hw_slurm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
