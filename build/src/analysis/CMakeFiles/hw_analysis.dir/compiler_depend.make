# Empty compiler generated dependencies file for hw_analysis.
# This may be replaced when dependencies are built.
