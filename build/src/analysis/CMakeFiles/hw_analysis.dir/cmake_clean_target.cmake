file(REMOVE_RECURSE
  "libhw_analysis.a"
)
