# Empty dependencies file for test_sebs.
# This may be replaced when dependencies are built.
