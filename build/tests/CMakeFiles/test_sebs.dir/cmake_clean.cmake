file(REMOVE_RECURSE
  "CMakeFiles/test_sebs.dir/sebs/kernels_test.cpp.o"
  "CMakeFiles/test_sebs.dir/sebs/kernels_test.cpp.o.d"
  "test_sebs"
  "test_sebs.pdb"
  "test_sebs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
