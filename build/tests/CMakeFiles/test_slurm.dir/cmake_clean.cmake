file(REMOVE_RECURSE
  "CMakeFiles/test_slurm.dir/slurm/backfill_test.cpp.o"
  "CMakeFiles/test_slurm.dir/slurm/backfill_test.cpp.o.d"
  "CMakeFiles/test_slurm.dir/slurm/drain_test.cpp.o"
  "CMakeFiles/test_slurm.dir/slurm/drain_test.cpp.o.d"
  "CMakeFiles/test_slurm.dir/slurm/preemption_test.cpp.o"
  "CMakeFiles/test_slurm.dir/slurm/preemption_test.cpp.o.d"
  "CMakeFiles/test_slurm.dir/slurm/slurmctld_test.cpp.o"
  "CMakeFiles/test_slurm.dir/slurm/slurmctld_test.cpp.o.d"
  "CMakeFiles/test_slurm.dir/slurm/status_test.cpp.o"
  "CMakeFiles/test_slurm.dir/slurm/status_test.cpp.o.d"
  "test_slurm"
  "test_slurm.pdb"
  "test_slurm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
