
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/slurm/backfill_test.cpp" "tests/CMakeFiles/test_slurm.dir/slurm/backfill_test.cpp.o" "gcc" "tests/CMakeFiles/test_slurm.dir/slurm/backfill_test.cpp.o.d"
  "/root/repo/tests/slurm/drain_test.cpp" "tests/CMakeFiles/test_slurm.dir/slurm/drain_test.cpp.o" "gcc" "tests/CMakeFiles/test_slurm.dir/slurm/drain_test.cpp.o.d"
  "/root/repo/tests/slurm/preemption_test.cpp" "tests/CMakeFiles/test_slurm.dir/slurm/preemption_test.cpp.o" "gcc" "tests/CMakeFiles/test_slurm.dir/slurm/preemption_test.cpp.o.d"
  "/root/repo/tests/slurm/slurmctld_test.cpp" "tests/CMakeFiles/test_slurm.dir/slurm/slurmctld_test.cpp.o" "gcc" "tests/CMakeFiles/test_slurm.dir/slurm/slurmctld_test.cpp.o.d"
  "/root/repo/tests/slurm/status_test.cpp" "tests/CMakeFiles/test_slurm.dir/slurm/status_test.cpp.o" "gcc" "tests/CMakeFiles/test_slurm.dir/slurm/status_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slurm/CMakeFiles/hw_slurm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
