file(REMOVE_RECURSE
  "CMakeFiles/test_whisk.dir/whisk/controller_test.cpp.o"
  "CMakeFiles/test_whisk.dir/whisk/controller_test.cpp.o.d"
  "CMakeFiles/test_whisk.dir/whisk/function_test.cpp.o"
  "CMakeFiles/test_whisk.dir/whisk/function_test.cpp.o.d"
  "CMakeFiles/test_whisk.dir/whisk/invoker_dilation_test.cpp.o"
  "CMakeFiles/test_whisk.dir/whisk/invoker_dilation_test.cpp.o.d"
  "CMakeFiles/test_whisk.dir/whisk/invoker_test.cpp.o"
  "CMakeFiles/test_whisk.dir/whisk/invoker_test.cpp.o.d"
  "CMakeFiles/test_whisk.dir/whisk/routing_test.cpp.o"
  "CMakeFiles/test_whisk.dir/whisk/routing_test.cpp.o.d"
  "CMakeFiles/test_whisk.dir/whisk/sequence_test.cpp.o"
  "CMakeFiles/test_whisk.dir/whisk/sequence_test.cpp.o.d"
  "test_whisk"
  "test_whisk.pdb"
  "test_whisk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
