# Empty dependencies file for test_whisk.
# This may be replaced when dependencies are built.
