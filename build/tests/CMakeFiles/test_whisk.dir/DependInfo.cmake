
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/whisk/controller_test.cpp" "tests/CMakeFiles/test_whisk.dir/whisk/controller_test.cpp.o" "gcc" "tests/CMakeFiles/test_whisk.dir/whisk/controller_test.cpp.o.d"
  "/root/repo/tests/whisk/function_test.cpp" "tests/CMakeFiles/test_whisk.dir/whisk/function_test.cpp.o" "gcc" "tests/CMakeFiles/test_whisk.dir/whisk/function_test.cpp.o.d"
  "/root/repo/tests/whisk/invoker_dilation_test.cpp" "tests/CMakeFiles/test_whisk.dir/whisk/invoker_dilation_test.cpp.o" "gcc" "tests/CMakeFiles/test_whisk.dir/whisk/invoker_dilation_test.cpp.o.d"
  "/root/repo/tests/whisk/invoker_test.cpp" "tests/CMakeFiles/test_whisk.dir/whisk/invoker_test.cpp.o" "gcc" "tests/CMakeFiles/test_whisk.dir/whisk/invoker_test.cpp.o.d"
  "/root/repo/tests/whisk/routing_test.cpp" "tests/CMakeFiles/test_whisk.dir/whisk/routing_test.cpp.o" "gcc" "tests/CMakeFiles/test_whisk.dir/whisk/routing_test.cpp.o.d"
  "/root/repo/tests/whisk/sequence_test.cpp" "tests/CMakeFiles/test_whisk.dir/whisk/sequence_test.cpp.o" "gcc" "tests/CMakeFiles/test_whisk.dir/whisk/sequence_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/whisk/CMakeFiles/hw_whisk.dir/DependInfo.cmake"
  "/root/repo/build/src/mq/CMakeFiles/hw_mq.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hw_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
