file(REMOVE_RECURSE
  "CMakeFiles/test_mq.dir/mq/broker_test.cpp.o"
  "CMakeFiles/test_mq.dir/mq/broker_test.cpp.o.d"
  "CMakeFiles/test_mq.dir/mq/log_test.cpp.o"
  "CMakeFiles/test_mq.dir/mq/log_test.cpp.o.d"
  "CMakeFiles/test_mq.dir/mq/topic_test.cpp.o"
  "CMakeFiles/test_mq.dir/mq/topic_test.cpp.o.d"
  "test_mq"
  "test_mq.pdb"
  "test_mq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
