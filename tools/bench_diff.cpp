// bench_diff: the CI regression gate over BENCH_*.json reports.
//
//   bench_diff [--out verdict.json] BASELINE.json CANDIDATE.json
//   bench_diff --self-test
//
// Compares a candidate report (a fresh bench run) against a committed
// baseline under the built-in per-metric direction/threshold rules
// (tools/bench_diff_core.hpp), prints a human summary, optionally writes
// the machine-readable verdict JSON, and exits:
//   0  pass — no gated metric regressed
//   1  fail — at least one regression (each listed on stderr)
//   2  refused — schema_version/bench mismatch, unreadable or malformed
//      input (a cross-schema diff is meaningless, not a pass)
//
// --self-test exercises the gate against in-memory reports with an
// injected regression and must exit nonzero-free: CI runs it before
// trusting any verdict.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_diff_core.hpp"

using namespace hpcwhisk::benchdiff;

namespace {

bool parse_file(const std::string& path, JsonValue& out, std::string& err) {
  std::ifstream is{path};
  if (!is) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  JsonParser parser{text};
  if (!parser.parse(out)) {
    err = path + ": " + parser.error();
    return false;
  }
  return true;
}

int self_test() {
  int failures = 0;
  const auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::cerr << "self-test FAILED: " << what << "\n";
    }
  };

  // Parser round-trip over every construct the reports use.
  {
    JsonValue doc;
    JsonParser p{R"({"a": -1.5e3, "b": [true, null, "x\"y"], "c": {"d": 0}})"};
    expect(p.parse(doc), "parse mixed document");
    std::map<std::string, JsonValue> flat;
    flatten(doc, "", flat);
    expect(flat.at("a").number == -1500.0, "number with exponent");
    expect(flat.at("b[0]").boolean, "bool in array");
    expect(flat.at("b[1]").kind == JsonValue::Kind::kNull, "null in array");
    expect(flat.at("b[2]").string == "x\"y", "escaped quote");
    expect(flat.at("c.d").number == 0, "nested object path");
  }
  {
    JsonValue doc;
    JsonParser bad{R"({"a": 1,})"};
    expect(!bad.parse(doc), "reject trailing comma garbage");
    JsonParser trail{R"({"a": 1} x)"};
    expect(!trail.parse(doc), "reject trailing characters");
  }

  // Glob semantics used by the rule table.
  expect(glob_match("modes.*.p95_ms", "modes.hash-probing.p95_ms"),
         "glob mid-segment");
  expect(glob_match("experiments[*].events", "experiments[12].events"),
         "glob array index");
  expect(!glob_match("modes.*.p95_ms", "modes.hash-probing.p50_ms"),
         "glob non-match");

  const char* base_text = R"({
    "schema_version": 2, "bench": "obs_report", "quick": true, "seed": 1,
    "hw_threads": 1, "traced_overhead": 0.02, "trace_dropped": 0,
    "untraced_events_per_sec": 6.0e6, "decision_log_hash": "feed",
    "decision_log_bytes": 100, "decision_logs_identical": true,
    "reroute_across_invokers": true, "perfetto_valid": true,
    "harvest": {"efficiency": 0.95}})";
  JsonValue base;
  {
    JsonParser p{base_text};
    expect(p.parse(base), "parse baseline fixture");
  }

  // Identical candidate passes.
  {
    JsonValue cand;
    JsonParser p{base_text};
    p.parse(cand);
    const DiffResult r = diff(base, cand);
    expect(r.verdict == Verdict::kPass && r.exit_code() == 0,
           "identical reports pass");
    expect(!r.checks.empty(), "rules matched the fixture");
  }

  // Injected regressions fail with exit 1.
  {
    JsonValue cand;
    JsonParser p{R"({
      "schema_version": 2, "bench": "obs_report", "quick": true, "seed": 1,
      "hw_threads": 1, "traced_overhead": 0.40, "trace_dropped": 7,
      "untraced_events_per_sec": 1.0e6, "decision_log_hash": "beef",
      "decision_log_bytes": 100, "decision_logs_identical": false,
      "reroute_across_invokers": true, "perfetto_valid": true,
      "harvest": {"efficiency": 0.50}})"};
    expect(p.parse(cand), "parse regressed fixture");
    const DiffResult r = diff(base, cand);
    expect(r.verdict == Verdict::kFail && r.exit_code() == 1,
           "injected regression fails");
    expect(r.regressions >= 5, "overhead+dropped+eps+hash+flag all caught");
  }

  // Tolerances absorb noise in the right direction only.
  {
    JsonValue cand;
    JsonParser p{R"({
      "schema_version": 2, "bench": "obs_report", "quick": true, "seed": 1,
      "hw_threads": 1, "traced_overhead": 0.09, "trace_dropped": 0,
      "untraced_events_per_sec": 3.5e6, "decision_log_hash": "feed",
      "decision_log_bytes": 100, "decision_logs_identical": true,
      "reroute_across_invokers": true, "perfetto_valid": true,
      "harvest": {"efficiency": 0.91}})"};
    p.parse(cand);
    const DiffResult r = diff(base, cand);
    expect(r.verdict == Verdict::kPass, "within-tolerance drift passes");
  }

  // A gated metric vanishing from the candidate is a failure.
  {
    JsonValue cand;
    JsonParser p{R"({
      "schema_version": 2, "bench": "obs_report", "quick": true, "seed": 1,
      "hw_threads": 1, "trace_dropped": 0,
      "untraced_events_per_sec": 6.0e6, "decision_log_hash": "feed",
      "decision_log_bytes": 100, "decision_logs_identical": true,
      "reroute_across_invokers": true, "perfetto_valid": true,
      "harvest": {"efficiency": 0.95}})"};
    p.parse(cand);
    const DiffResult r = diff(base, cand);
    expect(r.verdict == Verdict::kFail, "missing gated metric fails");
  }

  // Cross-schema and cross-bench diffs are refused with exit 2.
  {
    JsonValue cand;
    JsonParser p{R"({"schema_version": 1, "bench": "obs_report"})"};
    p.parse(cand);
    expect(diff(base, cand).exit_code() == 2, "cross-schema refused");
  }
  {
    JsonValue cand;
    JsonParser p{R"({"schema_version": 2, "bench": "perf_report"})"};
    p.parse(cand);
    expect(diff(base, cand).exit_code() == 2, "cross-bench refused");
  }
  {
    JsonValue naked;
    JsonParser p{R"({"events": 3})"};
    p.parse(naked);
    expect(diff(naked, base).exit_code() == 2, "headerless baseline refused");
  }

  // The verdict document itself parses back.
  {
    JsonValue cand;
    JsonParser p{base_text};
    p.parse(cand);
    const DiffResult r = diff(base, cand);
    std::ostringstream os;
    write_verdict(os, r, "a.json", "b.json");
    const std::string verdict_text = os.str();  // JsonParser keeps a view
    JsonValue doc;
    JsonParser back{verdict_text};
    expect(back.parse(doc), "verdict JSON parses");
    const JsonValue* v = doc.find("verdict");
    expect(v != nullptr && v->string == "pass", "verdict field");
  }

  if (failures == 0) std::cout << "bench_diff self-test: OK\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--out") {
      if (i + 1 >= argc) {
        std::cerr << "--out needs a path\n";
        return 2;
      }
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_diff [--out verdict.json] BASELINE.json "
                   "CANDIDATE.json\n       bench_diff --self-test\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::cerr << "usage: bench_diff [--out verdict.json] BASELINE.json "
                 "CANDIDATE.json\n";
    return 2;
  }

  JsonValue baseline, candidate;
  std::string err;
  if (!parse_file(files[0], baseline, err) ||
      !parse_file(files[1], candidate, err)) {
    std::cerr << "bench_diff: " << err << "\n";
    return 2;
  }

  const DiffResult r = diff(baseline, candidate);
  if (!out_path.empty()) {
    std::ofstream os{out_path};
    write_verdict(os, r, files[0], files[1]);
  }

  if (r.verdict == Verdict::kSchemaMismatch) {
    std::cerr << "bench_diff: refused — " << r.mismatch << "\n";
    return r.exit_code();
  }
  std::size_t passed = 0;
  for (const Check& c : r.checks) {
    if (c.status == CheckStatus::kPass) {
      ++passed;
    } else {
      std::cerr << "  " << to_string(c.status) << " " << c.path
                << (c.detail.empty() ? "" : ": " + c.detail) << "\n";
    }
  }
  std::cout << "bench_diff " << r.bench << ": " << to_string(r.verdict) << " ("
            << passed << "/" << r.checks.size() << " checks"
            << (r.regressions > 0
                    ? ", " + std::to_string(r.regressions) + " regressions"
                    : std::string{})
            << ")\n";
  return r.exit_code();
}
