// simcheck: property-based scenario fuzzing for the HPC-Whisk simulator.
//
// Campaign mode samples whole experiments from sequential seeds, fans
// them out over the thread pool, checks the invariant suite on each, and
// — on failure — shrinks the scenario and writes a replayable JSON repro.
// Replay mode re-runs a repro file deterministically and verifies the
// recorded decision-log hash.
//
//   simcheck --seeds 20 --chaos --jobs 4 --out repros/
//   simcheck --replay repros/seed-7.json
//
// Exit codes: 0 = clean, 2 = invariant violations found, 1 = usage or
// I/O error.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "hpcwhisk/check/repro.hpp"
#include "hpcwhisk/check/runner.hpp"
#include "hpcwhisk/check/simcheck.hpp"

namespace {

using namespace hpcwhisk;

void usage() {
  std::cerr
      << "usage: simcheck [--seeds N] [--seed-base B] [--jobs J] [--chaos]\n"
      << "                [--clusters K] [--out DIR] [--no-shrink]\n"
      << "                [--no-replay-check] [--shrink-budget N]\n"
      << "                [--plant none|truncate-grace]\n"
      << "       simcheck --replay FILE.json\n";
}

std::string hash_string(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, hash);
  return buf;
}

int replay(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "simcheck: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const check::Repro repro = check::parse_repro(buffer.str());
  std::cout << "replaying " << path << "\n  spec: " << repro.spec.summary()
            << "\n  expecting [" << repro.invariant << "] hash "
            << hash_string(repro.decision_hash) << "\n";

  const check::InvariantSuite suite = check::InvariantSuite::standard();
  check::CheckOptions opts;
  opts.replay_check = true;  // two runs; both must match the recorded hash
  const check::CheckResult result =
      check::check_scenario(repro.spec, suite, opts);
  std::cout << "  run hash: " << hash_string(result.decision_hash)
            << " (replay " << hash_string(result.replay_hash) << ")\n";
  if (result.decision_hash != repro.decision_hash) {
    std::cout << "  WARNING: decision log differs from the recorded repro "
                 "(code drifted since capture?)\n";
  }
  if (result.ok()) {
    std::cout << "  no violations — the repro no longer fails\n";
    return 0;
  }
  for (const check::Violation& v : result.violations) {
    std::cout << "  [" << v.invariant << "] " << v.message << "\n";
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  check::CampaignOptions options;
  options.seeds = 20;
  std::string out_dir;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      options.seeds = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--seed-base") {
      options.seed_base = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      options.jobs = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--chaos") {
      options.sample.chaos = true;
    } else if (arg == "--plant") {
      options.sample.plant = check::bug_plant_from_string(next());
    } else if (arg == "--clusters") {
      options.sample.max_clusters =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--no-replay-check") {
      options.replay_check = false;
    } else if (arg == "--shrink-budget") {
      options.shrink_budget =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 1;
    }
  }

  try {
    if (!replay_path.empty()) return replay(replay_path);

    const check::InvariantSuite suite = check::InvariantSuite::standard();
    std::cout << "simcheck: " << options.seeds << " seeds from "
              << options.seed_base << (options.sample.chaos ? ", chaos on" : "")
              << (options.sample.max_clusters > 1 ? ", federation on" : "")
              << "\n";
    const check::CampaignResult campaign =
        check::run_campaign(options, suite, std::cout);

    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      for (const check::SeedOutcome& o : campaign.outcomes) {
        if (o.repro_json.empty()) continue;
        const std::string path =
            out_dir + "/seed-" + std::to_string(o.seed) + ".json";
        std::ofstream out{path};
        out << o.repro_json;
        std::cout << "repro written: " << path << "\n";
      }
    }
    std::cout << "simcheck: " << campaign.outcomes.size() << " seeds, "
              << campaign.failures << " failing\n";
    return campaign.ok() ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "simcheck: " << e.what() << "\n";
    return 1;
  }
}
