#pragma once
// Core of the bench regression gate (tools/bench_diff): a minimal JSON
// reader, a flattener from nested documents to dotted metric paths, and
// the per-metric direction/threshold comparison between two BENCH_*.json
// reports. Header-only so the unit tests exercise exactly the code the
// CLI runs.
//
// The gate's contract:
//  * both reports must carry the common metadata header written by
//    bench::write_meta_header — same schema_version AND same bench name,
//    otherwise the diff is refused (kSchemaMismatch, exit 2 in the CLI);
//  * each built-in rule names a bench, a path glob ('*' matches any run
//    of characters, so "modes.*.p95_ms" and "experiments[*].events_per_sec"
//    both work), a direction and a tolerance; a metric regresses when it
//    moves against its direction by more than max(rel_tol * |baseline|,
//    abs_tol), disappears from the candidate, or changes JSON type;
//  * paths present only in the candidate are new metrics, never failures:
//    baselines regenerate on the same cadence as the code they pin.
//
// Everything lives in namespace hpcwhisk::benchdiff and depends only on
// the standard library.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hpcwhisk::benchdiff {

// ---------------------------------------------------------------------------
// Minimal JSON document: parse + flatten. Only what BENCH_*.json needs —
// objects, arrays, strings with escapes, doubles, bools, null.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0};
  std::string string;
  // Insertion order preserved for objects: verdicts list checks in the
  // order the report wrote its metrics.
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> items;                            // kArray

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  /// Keeps a view of `text`: the backing string must outlive the parser
  /// (do not pass a temporary).
  explicit JsonParser(std::string_view text) : text_{text} {}

  /// Parses one document; returns false (with error()) on malformed input
  /// or trailing garbage.
  bool parse(JsonValue& out) {
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = what;
      error_ += " at offset ";
      error_ += std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // BENCH reports are ASCII; keep \uXXXX lossy-but-lossless
            // enough for comparisons by copying the raw sequence.
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            out += "\\u";
            out.append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    out.kind = JsonValue::Kind::kNumber;
    try {
      out.number = std::stod(std::string{text_.substr(start, pos_ - start)});
    } catch (...) {
      return fail("bad number");
    }
    return true;
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      JsonValue v;
      if (!value(v)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::string error_;
};

/// Flattens a document to dotted paths: {"a":{"b":1},"c":[true]} becomes
/// {"a.b": 1, "c[0]": true}. Scalars only; containers themselves do not
/// appear. Ordered map: verdict output is deterministic.
inline void flatten(const JsonValue& v, const std::string& prefix,
                    std::map<std::string, JsonValue>& out) {
  switch (v.kind) {
    case JsonValue::Kind::kObject:
      for (const auto& [k, m] : v.members) {
        flatten(m, prefix.empty() ? k : prefix + "." + k, out);
      }
      break;
    case JsonValue::Kind::kArray:
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        flatten(v.items[i], prefix + "[" + std::to_string(i) + "]", out);
      }
      break;
    default:
      out.emplace(prefix, v);
      break;
  }
}

/// Glob match where '*' matches any run of characters (including none)
/// and every other character is literal. Iterative backtracking — no
/// recursion, no pathological blowup on the short metric paths here.
inline bool glob_match(std::string_view pattern, std::string_view text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

// ---------------------------------------------------------------------------
// Rules and the diff itself.

enum class Direction {
  kLowerBetter,   ///< numeric; candidate may not exceed baseline + tol
  kHigherBetter,  ///< numeric; candidate may not undershoot baseline - tol
  kRequireTrue,   ///< boolean; candidate must be true (baseline ignored)
  kExact,         ///< any scalar; candidate must equal baseline exactly
};

struct Rule {
  std::string_view bench;    ///< bench name this rule applies to
  std::string_view pattern;  ///< path glob over flattened metric paths
  Direction dir{Direction::kExact};
  double rel_tol{0};  ///< allowed regression relative to |baseline|
  double abs_tol{0};  ///< allowed absolute regression
};

/// The built-in gate: one entry per metric CI pins. Tolerances separate
/// wall-clock metrics (noisy on shared hosts — generous rel_tol) from
/// sim-deterministic ones (identical for identical code — tight).
inline const std::vector<Rule>& default_rules() {
  static const std::vector<Rule> rules{
      // obs_report: decision neutrality is exact; overhead is wall-clock
      // but ratio-of-rates, so an absolute ceiling works; throughput is
      // raw wall-clock.
      {"obs_report", "decision_logs_identical", Direction::kRequireTrue},
      {"obs_report", "perfetto_valid", Direction::kRequireTrue},
      {"obs_report", "reroute_across_invokers", Direction::kRequireTrue},
      {"obs_report", "decision_log_hash", Direction::kExact},
      {"obs_report", "decision_log_bytes", Direction::kExact},
      {"obs_report", "traced_overhead", Direction::kLowerBetter, 0, 0.10},
      {"obs_report", "trace_dropped", Direction::kLowerBetter, 0, 0},
      {"obs_report", "untraced_events_per_sec", Direction::kHigherBetter, 0.5,
       0},
      {"obs_report", "harvest.efficiency", Direction::kHigherBetter, 0, 0.05},
      // perf_report: event counts and allocation profile are
      // deterministic; wall-clock throughput is not.
      {"perf_report", "sweep.outputs_identical", Direction::kRequireTrue},
      {"perf_report", "alloc_probe", Direction::kRequireTrue},
      {"perf_report", "experiments[*].events", Direction::kExact},
      {"perf_report", "experiments[*].events_per_sec",
       Direction::kHigherBetter, 0.5, 0},
      {"perf_report", "experiments[*].allocs_per_event",
       Direction::kLowerBetter, 0.10, 0.005},
      // ablation_routing: fully sim-deterministic, but small intended
      // estimator/policy drift shouldn't force a baseline churn loop —
      // the acceptance flag is the hard gate.
      {"ablation_routing", "acceptance.acceptance_ok", Direction::kRequireTrue},
      {"ablation_routing", "modes.*.p95_ms", Direction::kLowerBetter, 0.15, 0},
      {"ablation_routing", "modes.*.warm_start_rate", Direction::kHigherBetter,
       0, 0.05},
      {"ablation_routing", "legs[*].sched.orphan_charges",
       Direction::kLowerBetter, 0, 0},
      // federation: headline acceptance plus the power-of-two leg.
      {"federation", "p2c_beats_rr", Direction::kRequireTrue},
      {"federation", "p2c_beats_single_cluster", Direction::kRequireTrue},
      {"federation", "federated_power_of_two.cloud_offload_fraction",
       Direction::kLowerBetter, 0, 0.10},
      {"federation", "federated_power_of_two.p95_ms", Direction::kLowerBetter,
       0.15, 0},
      // obs_timeseries: the tier's own contract flags plus the harvest
      // account.
      {"obs_timeseries", "series_ok", Direction::kRequireTrue},
      {"obs_timeseries", "decisions_ok", Direction::kRequireTrue},
      {"obs_timeseries", "harvest_ok", Direction::kRequireTrue},
      {"obs_timeseries", "harvest.efficiency", Direction::kHigherBetter, 0,
       0.05},
      {"obs_timeseries", "decisions_recorded", Direction::kHigherBetter, 0.5,
       0},
      // qps_sweep (BENCH_serving.json): the lease tier must keep beating
      // the controller->topic path at the top QPS step — lower p95 and
      // cold-start rate, a majority lease hit rate — with slack for
      // intended keep-alive / estimator drift.
      {"qps_sweep", "acceptance.acceptance_ok", Direction::kRequireTrue},
      {"qps_sweep", "acceptance.hit_rate_ok", Direction::kRequireTrue},
      {"qps_sweep", "top.lease.p95_ms", Direction::kLowerBetter, 0.15, 0},
      {"qps_sweep", "top.lease.cold_start_rate", Direction::kLowerBetter, 0,
       0.05},
      {"qps_sweep", "top.lease.hit_rate", Direction::kHigherBetter, 0, 0.05},
      {"qps_sweep", "top.lease.revocation_rate", Direction::kLowerBetter, 0,
       0.10},
      // ablation_fidelity (BENCH_fidelity.json): the four acceptance
      // flags are the hard gate (regimes diverge, golden pin intact,
      // SimCheck clean); the per-regime aggregates get slack for
      // intended scheduler drift, and the TRES harvest advantage over
      // legacy must not silently erode.
      {"ablation_fidelity", "acceptance.acceptance_ok",
       Direction::kRequireTrue},
      {"ablation_fidelity", "acceptance.golden_hash_ok",
       Direction::kRequireTrue},
      {"ablation_fidelity", "acceptance.simcheck_clean",
       Direction::kRequireTrue},
      {"ablation_fidelity", "golden.hash", Direction::kExact},
      {"ablation_fidelity", "simcheck.failures", Direction::kLowerBetter, 0,
       0},
      {"ablation_fidelity", "regimes.*.harvested_node_s",
       Direction::kHigherBetter, 0.15, 0},
      {"ablation_fidelity", "regimes.*.p95_ms", Direction::kLowerBetter, 0.15,
       0},
      {"ablation_fidelity", "regimes.*.harvest_efficiency",
       Direction::kHigherBetter, 0, 0.05},
  };
  return rules;
}

enum class CheckStatus { kPass, kRegression, kMissing, kTypeChanged };

struct Check {
  std::string path;
  Direction dir{Direction::kExact};
  CheckStatus status{CheckStatus::kPass};
  double baseline{0};
  double candidate{0};
  std::string detail;  ///< non-numeric values / failure explanation
};

enum class Verdict { kPass, kFail, kSchemaMismatch };

struct DiffResult {
  Verdict verdict{Verdict::kPass};
  std::string bench;          ///< from the baseline header
  int schema_version{0};      ///< from the baseline header
  std::string mismatch;       ///< set when verdict == kSchemaMismatch
  std::vector<Check> checks;  ///< one per (rule, matched baseline path)
  std::size_t regressions{0};

  [[nodiscard]] int exit_code() const {
    switch (verdict) {
      case Verdict::kPass: return 0;
      case Verdict::kFail: return 1;
      case Verdict::kSchemaMismatch: return 2;
    }
    return 2;
  }
};

inline const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kFail: return "fail";
    case Verdict::kSchemaMismatch: return "schema-mismatch";
  }
  return "?";
}

inline const char* to_string(CheckStatus s) {
  switch (s) {
    case CheckStatus::kPass: return "pass";
    case CheckStatus::kRegression: return "regression";
    case CheckStatus::kMissing: return "missing";
    case CheckStatus::kTypeChanged: return "type-changed";
  }
  return "?";
}

inline const char* to_string(Direction d) {
  switch (d) {
    case Direction::kLowerBetter: return "lower-better";
    case Direction::kHigherBetter: return "higher-better";
    case Direction::kRequireTrue: return "require-true";
    case Direction::kExact: return "exact";
  }
  return "?";
}

namespace detail {

inline std::string scalar_repr(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kString: return v.string;
    case JsonValue::Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.9g", v.number);
      return buf;
    }
    case JsonValue::Kind::kNull: return "null";
    default: return "<container>";
  }
}

inline bool scalar_equal(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case JsonValue::Kind::kBool: return a.boolean == b.boolean;
    case JsonValue::Kind::kString: return a.string == b.string;
    case JsonValue::Kind::kNumber: return a.number == b.number;
    case JsonValue::Kind::kNull: return true;
    default: return false;
  }
}

inline Check compare_one(const std::string& path, const Rule& rule,
                         const JsonValue& base, const JsonValue* cand) {
  Check c;
  c.path = path;
  c.dir = rule.dir;
  if (cand == nullptr) {
    c.status = CheckStatus::kMissing;
    c.detail = "metric absent from candidate";
    return c;
  }
  switch (rule.dir) {
    case Direction::kRequireTrue:
      if (cand->kind != JsonValue::Kind::kBool) {
        c.status = CheckStatus::kTypeChanged;
        c.detail = "expected bool, got " + scalar_repr(*cand);
      } else if (!cand->boolean) {
        c.status = CheckStatus::kRegression;
        c.detail = "expected true";
      }
      return c;
    case Direction::kExact:
      if (!scalar_equal(base, *cand)) {
        c.status = base.kind == cand->kind ? CheckStatus::kRegression
                                           : CheckStatus::kTypeChanged;
        c.detail = scalar_repr(base) + " -> " + scalar_repr(*cand);
      }
      return c;
    case Direction::kLowerBetter:
    case Direction::kHigherBetter: {
      if (base.kind != JsonValue::Kind::kNumber ||
          cand->kind != JsonValue::Kind::kNumber) {
        c.status = CheckStatus::kTypeChanged;
        c.detail = scalar_repr(base) + " -> " + scalar_repr(*cand);
        return c;
      }
      c.baseline = base.number;
      c.candidate = cand->number;
      const double tol =
          std::max(rule.rel_tol * std::fabs(base.number), rule.abs_tol);
      const bool regressed = rule.dir == Direction::kLowerBetter
                                 ? cand->number > base.number + tol
                                 : cand->number < base.number - tol;
      if (regressed) {
        c.status = CheckStatus::kRegression;
        char buf[128];
        std::snprintf(buf, sizeof buf, "%.6g -> %.6g (tolerance %.6g, %s)",
                      base.number, cand->number, tol, to_string(rule.dir));
        c.detail = buf;
      }
      return c;
    }
  }
  return c;
}

}  // namespace detail

/// Diffs two parsed reports under `rules`. Never throws; refusals are
/// reported through verdict == kSchemaMismatch.
inline DiffResult diff(const JsonValue& baseline, const JsonValue& candidate,
                       const std::vector<Rule>& rules = default_rules()) {
  DiffResult r;
  const JsonValue* b_schema = baseline.find("schema_version");
  const JsonValue* c_schema = candidate.find("schema_version");
  const JsonValue* b_bench = baseline.find("bench");
  const JsonValue* c_bench = candidate.find("bench");
  if (b_schema == nullptr || b_bench == nullptr ||
      b_schema->kind != JsonValue::Kind::kNumber ||
      b_bench->kind != JsonValue::Kind::kString) {
    r.verdict = Verdict::kSchemaMismatch;
    r.mismatch = "baseline lacks the schema_version/bench metadata header";
    return r;
  }
  if (c_schema == nullptr || c_bench == nullptr ||
      c_schema->kind != JsonValue::Kind::kNumber ||
      c_bench->kind != JsonValue::Kind::kString) {
    r.verdict = Verdict::kSchemaMismatch;
    r.mismatch = "candidate lacks the schema_version/bench metadata header";
    return r;
  }
  r.bench = b_bench->string;
  r.schema_version = static_cast<int>(b_schema->number);
  if (b_schema->number != c_schema->number) {
    r.verdict = Verdict::kSchemaMismatch;
    r.mismatch = "schema_version " + detail::scalar_repr(*b_schema) + " vs " +
                 detail::scalar_repr(*c_schema);
    return r;
  }
  if (b_bench->string != c_bench->string) {
    r.verdict = Verdict::kSchemaMismatch;
    r.mismatch = "bench \"" + b_bench->string + "\" vs \"" + c_bench->string +
                 "\" — refusing a cross-bench diff";
    return r;
  }

  std::map<std::string, JsonValue> base_flat, cand_flat;
  flatten(baseline, "", base_flat);
  flatten(candidate, "", cand_flat);

  for (const Rule& rule : rules) {
    if (rule.bench != r.bench) continue;
    for (const auto& [path, value] : base_flat) {
      if (!glob_match(rule.pattern, path)) continue;
      const auto it = cand_flat.find(path);
      Check c = detail::compare_one(
          path, rule, value, it == cand_flat.end() ? nullptr : &it->second);
      if (c.status != CheckStatus::kPass) ++r.regressions;
      r.checks.push_back(std::move(c));
    }
  }
  if (r.regressions > 0) r.verdict = Verdict::kFail;
  return r;
}

/// Machine-readable verdict document.
inline void write_verdict(std::ostream& os, const DiffResult& r,
                          std::string_view baseline_path,
                          std::string_view candidate_path) {
  os << "{\n"
     << "  \"verdict\": \"" << to_string(r.verdict) << "\",\n"
     << "  \"bench\": \"" << r.bench << "\",\n"
     << "  \"schema_version\": " << r.schema_version << ",\n"
     << "  \"baseline\": \"" << baseline_path << "\",\n"
     << "  \"candidate\": \"" << candidate_path << "\",\n"
     << "  \"regressions\": " << r.regressions << ",\n";
  if (!r.mismatch.empty()) {
    std::string escaped;
    for (const char c : r.mismatch) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    os << "  \"mismatch\": \"" << escaped << "\",\n";
  }
  os << "  \"checks\": [\n";
  for (std::size_t i = 0; i < r.checks.size(); ++i) {
    const Check& c = r.checks[i];
    os << "    {\"path\": \"" << c.path << "\", \"direction\": \""
       << to_string(c.dir) << "\", \"status\": \"" << to_string(c.status)
       << "\"";
    if (c.dir == Direction::kLowerBetter || c.dir == Direction::kHigherBetter) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    ", \"baseline\": %.9g, \"candidate\": %.9g", c.baseline,
                    c.candidate);
      os << buf;
    }
    if (!c.detail.empty()) {
      std::string escaped;
      for (const char ch : c.detail) {
        if (ch == '"' || ch == '\\') escaped += '\\';
        escaped += ch;
      }
      os << ", \"detail\": \"" << escaped << "\"";
    }
    os << "}" << (i + 1 < r.checks.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace hpcwhisk::benchdiff
