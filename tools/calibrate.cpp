// Calibration harness: runs the synthetic Prometheus workload (without
// pilots unless --pilots) and prints the idleness statistics the trace
// generator must match (Fig. 1 targets: mean 9.23 idle nodes, median 5,
// P25 2, ~10% zero-idle time; idle periods median 2 min, P75 4 min,
// mean ~5 min, 5% > 23 min).

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <iostream>

#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/analysis/report.hpp"
#include "hpcwhisk/analysis/stats.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"

using namespace hpcwhisk;

int main(int argc, char** argv) {
  bool pilots = false;
  double hours = 24.0;
  std::uint32_t nodes = 2239;
  std::size_t backlog = 0;
  std::size_t resdepth = 16;
  double bigw = 1.0;   // weight multiplier for >32-node buckets
  const char* model = "fib";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--pilots")) pilots = true;
    else if (!std::strcmp(argv[i], "--hours")) hours = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--nodes")) nodes = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--backlog")) backlog = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--model")) model = argv[++i];
    else if (!std::strcmp(argv[i], "--resdepth")) resdepth = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--bigw")) bigw = std::atof(argv[++i]);
  }

  sim::Simulation simulation;
  core::HpcWhiskSystem::Config cfg;
  cfg.slurm.node_count = nodes;
  cfg.slurm.backfill_depth = backlog > 0 ? backlog : 300;
  cfg.slurm.reservation_depth = resdepth;
  if (const char* v = std::getenv("CAL_GAP"))
    cfg.slurm.min_pass_gap = sim::SimTime::seconds(std::atof(v));
  if (const char* v = std::getenv("CAL_GUARD"))
    cfg.slurm.pilot_min_idle = sim::SimTime::seconds(std::atof(v));
  if (const char* v = std::getenv("CAL_VARPASS"))
    cfg.slurm.var_pass_period = sim::SimTime::seconds(std::atof(v));
  cfg.manager.model = std::strcmp(model, "var") == 0 ? core::SupplyModel::kVar
                                                     : core::SupplyModel::kFib;
  core::HpcWhiskSystem system{simulation, cfg};

  trace::HpcWorkloadGenerator::Config wl;
  if (backlog > 0) wl.backlog_target = backlog;
  if (std::getenv("CAL_SAT") != nullptr)
    wl.mode = trace::HpcWorkloadGenerator::Mode::kSaturated;
  if (const char* v = std::getenv("CAL_MSPT")) wl.max_submits_per_tick = std::atoi(v);
  if (const char* v = std::getenv("CAL_LULLP")) wl.lull_probability_per_tick = std::atof(v);
  if (const char* v = std::getenv("CAL_LULLM")) wl.lull_mean = sim::SimTime::minutes(std::atof(v));
  if (const char* v = std::getenv("CAL_LSCALE")) wl.limit_scale = std::atof(v);
  if (const char* v = std::getenv("CAL_TICK")) wl.check_interval = sim::SimTime::seconds(std::atof(v));
  (void)bigw;
  trace::HpcWorkloadGenerator gen{simulation, system.slurm(), wl, sim::Rng{7}};

  analysis::NodeStateLog log{nodes, sim::SimTime::zero()};
  system.slurm().set_node_observer(
      [&log](const slurm::NodeTransition& t) { log.record(t); });

  gen.start();
  if (pilots) system.start();

  const auto t0 = sim::SimTime::zero();
  const auto horizon = sim::SimTime::hours(hours);
  const auto warm_until = sim::SimTime::hours(4);  // discard fill-up
  simulation.run_until(horizon);
  log.finalize(horizon);

  // --- aggregate stats over the post-warm-up window ----------------------
  const auto samples_all = log.sample_counts(sim::SimTime::seconds(10));
  std::vector<analysis::StateCounts> samples;
  for (const auto& s : samples_all)
    if (s.at >= warm_until) samples.push_back(s);

  std::vector<double> avail;
  std::size_t zero = 0;
  for (const auto& s : samples) {
    avail.push_back(s.available());
    if (s.available() == 0) ++zero;
  }
  const auto summary = analysis::summarize(avail);
  std::printf("window: %.1fh..%.1fh, %zu samples\n", warm_until.to_hours(),
              horizon.to_hours(), samples.size());
  std::printf("available nodes: p25=%.0f p50=%.0f p75=%.0f avg=%.2f max=%.0f\n",
              summary.p25, summary.p50, summary.p75, summary.avg, summary.max);
  std::printf("zero-available share: %.2f%%\n",
              100.0 * zero / std::max<std::size_t>(1, samples.size()));

  // idle periods (idle+pilot merged = "originally idle"), observed the
  // way the paper observes them: via the 10-second sampler.
  std::vector<double> period_minutes;
  for (const auto len : log.sampled_periods(
           sim::SimTime::seconds(10),
           {slurm::ObservedNodeState::kIdle, slurm::ObservedNodeState::kPilot})) {
    period_minutes.push_back(len.to_minutes());
  }
  const auto ps = analysis::summarize(period_minutes);
  std::printf("idle periods: n=%zu p25=%.2f p50=%.2f p75=%.2f avg=%.2f "
              ">23min=%.1f%%\n",
              period_minutes.size(), ps.p25, ps.p50, ps.p75, ps.avg,
              100.0 * (1.0 - analysis::fraction_at_most(period_minutes, 23.0)));

  if (std::getenv("CAL_SERIES")) {
    std::vector<double> av;
    for (const auto& sc : samples) av.push_back(sc.available());
    analysis::print_series(std::cout, "available nodes", av, 10.0, 96);
  }

  std::printf("lulls entered: %zu\n", gen.lulls_entered());
  const auto& c = system.slurm().counters();
  std::printf("jobs: submitted=%llu started=%llu completed=%llu preempted=%llu "
              "timedout=%llu passes=%llu\n",
              (unsigned long long)c.submitted, (unsigned long long)c.started,
              (unsigned long long)c.completed, (unsigned long long)c.preempted,
              (unsigned long long)c.timed_out, (unsigned long long)c.sched_passes);

  if (pilots) {
    const auto report = analysis::slurm_level_report(samples);
    std::printf("pilot coverage of available time: %.1f%% (unused %.1f%%)\n",
                100 * report.coverage, 100 * report.unused);
    std::printf("pilot workers: p25=%.0f p50=%.0f p75=%.0f avg=%.2f\n",
                report.pilot_workers.p25, report.pilot_workers.p50,
                report.pilot_workers.p75, report.pilot_workers.avg);
    const auto& mc = system.manager().counters();
    std::printf("pilots: submitted=%llu started=%llu preempted=%llu "
                "timedout=%llu\n",
                (unsigned long long)mc.submitted, (unsigned long long)mc.started,
                (unsigned long long)mc.preempted,
                (unsigned long long)mc.timed_out);
  }
  (void)t0;
  return 0;
}
