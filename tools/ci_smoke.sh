#!/usr/bin/env bash
# CI smoke: configure, build, run the test suite, then a quick bench pass —
# serial and again under HW_BENCH_JOBS=4 (the parallel trial runner, which
# must produce byte-identical output) — and emit the BENCH_perf.json perf
# baseline. With SANITIZE=1 the same parallel bench passes run under
# ASan+UBSan, which is the thread-safety smoke for src/exec.
#
#   SANITIZE=1    build with -DHPCWHISK_SANITIZE=ON (ASan+UBSan) in build-asan/
#   BUILD_DIR=d   override the build directory
#   FULL_BENCH=1  smoke every bench binary instead of just chaos_recovery
#   COVERAGE=1    add an instrumented build (build-cov/) and print a gcov
#                 line-coverage summary for src/
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${SANITIZE:-0}" == "1" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-asan}
  SAN_FLAG=ON
else
  BUILD_DIR=${BUILD_DIR:-build}
  SAN_FLAG=OFF
fi

cmake -B "$BUILD_DIR" -S . -DHPCWHISK_SANITIZE=$SAN_FLAG
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# The bench regression gate must prove it still catches an injected
# regression before any of its verdicts below are trusted.
"$BUILD_DIR"/tools/bench_diff --self-test

# Compares a fresh quick bench report against the committed baseline
# under tools/bench_diff's per-metric direction/threshold rules, and
# archives the machine-readable verdict next to the report. Runs before
# the baseline-refresh cp steps below, so a regressing PR fails here
# instead of silently rewriting its own baseline. Skipped under
# SANITIZE=1 (wall-clock metrics there measure the sanitizer).
bench_gate() {
  local name=$1 baseline=$2 candidate=$3
  if [[ "${SANITIZE:-0}" == "1" ]]; then return 0; fi
  echo "== bench gate: $name =="
  "$BUILD_DIR"/tools/bench_diff --out "$BUILD_DIR/verdict_$name.json" \
    "$baseline" "$candidate"
}

export HW_BENCH_QUICK=1
if [[ "${FULL_BENCH:-0}" == "1" ]]; then
  for b in "$BUILD_DIR"/bench/*; do
    [[ -x "$b" ]] || continue
    echo "== smoke: $b =="
    "$b"
  done
else
  "$BUILD_DIR"/bench/chaos_recovery
fi

# Parallel trial runner: quick benches again under HW_BENCH_JOBS=4; output
# must be byte-identical to the serial run above.
echo "== parallel smoke (HW_BENCH_JOBS=4) =="
"$BUILD_DIR"/bench/chaos_recovery > "$BUILD_DIR/chaos_serial.txt"
HW_BENCH_JOBS=4 "$BUILD_DIR"/bench/chaos_recovery > "$BUILD_DIR/chaos_par.txt"
cmp "$BUILD_DIR/chaos_serial.txt" "$BUILD_DIR/chaos_par.txt"
HW_BENCH_JOBS=4 HW_BENCH_TRIALS=2 "$BUILD_DIR"/bench/table2_fib > /dev/null

# Observability leg: a traced quick scenario must leave scheduling
# decisions untouched (obs_report hashes the traced and untraced decision
# logs with the same FNV-1a the sched golden test pins), produce a
# structurally valid Perfetto trace, and archive BENCH_obs.json.
echo "== observability smoke =="
HW_OBS_OUT="$BUILD_DIR/BENCH_obs.json" \
  HW_OBS_TRACE_OUT="$BUILD_DIR/obs_trace.json" \
  HW_OBS_METRICS_OUT="$BUILD_DIR/obs_metrics.jsonl" \
  "$BUILD_DIR"/bench/obs_report
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/obs_trace.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert doc["otherData"]["dropped_events"] == 0, "trace dropped events"
assert events, "empty traceEvents"
assert {e["ph"] for e in events} <= {"B", "E", "b", "e", "i", "M"}
assert any(e["name"] == "fast_lane_reroute" for e in events)
print(f"perfetto schema OK ({len(events)} events)")
PYEOF
fi
grep -q '"decision_logs_identical": true' "$BUILD_DIR/BENCH_obs.json"
grep -q '"perfetto_valid": true' "$BUILD_DIR/BENCH_obs.json"
bench_gate obs BENCH_obs.json "$BUILD_DIR/BENCH_obs.json"
if [[ "${SANITIZE:-0}" != "1" ]]; then
  cp "$BUILD_DIR/BENCH_obs.json" BENCH_obs.json
fi

# Time-series / harvest-efficiency leg: the sampled sim-time series must
# stay within their bounded capacity, every routing decision must carry a
# self-consistent "why" record (the bench's exit code enforces both), and
# the harvest account must not regress against the committed baseline.
echo "== obs timeseries smoke =="
HW_OBS_TS_OUT="$BUILD_DIR/BENCH_obs_timeseries.json" \
  HW_OBS_TS_SERIES_OUT="$BUILD_DIR/obs_timeseries.jsonl" \
  HW_OBS_TS_DECISIONS_OUT="$BUILD_DIR/obs_decisions.jsonl" \
  "$BUILD_DIR"/bench/obs_timeseries
bench_gate obs_timeseries BENCH_obs_timeseries.json \
  "$BUILD_DIR/BENCH_obs_timeseries.json"
if [[ "${SANITIZE:-0}" != "1" ]]; then
  cp "$BUILD_DIR/BENCH_obs_timeseries.json" BENCH_obs_timeseries.json
fi

# Federation leg: a two-cluster federated sweep across all three routing
# policies must emit a structurally valid BENCH_federation.json and
# conserve calls — every invocation is either placed on a cluster or
# offloaded to the cloud model. (The committed repo-root artifact is the
# full {1,2,4}-cluster sweep: HW_BENCH_QUICK=1 HW_BENCH_TRIALS=3.)
echo "== federation smoke =="
HW_FED_CLUSTERS=2 HW_FED_OUT="$BUILD_DIR/BENCH_federation.json" \
  "$BUILD_DIR"/bench/federation > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/BENCH_federation.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
legs = doc["legs"]
assert legs, "no federation legs"
for leg in legs:
    assert leg["invocations"] > 0, leg
    assert leg["cluster_calls"] + leg["cloud_calls"] == leg["invocations"], leg
    assert 0.0 <= leg["cloud_offload_fraction"] <= 1.0, leg
    assert leg["cluster_calls"] == 0 or abs(sum(leg["load_share"]) - 1.0) < 1e-6, leg
print(f"federation schema OK ({len(legs)} legs)")
PYEOF
fi

# Routing leg: the six-mode ablation under the short/long mix must emit
# a structurally valid BENCH_routing.json, show zero orphaned backlog
# charges on the data-driven legs (no charge survives its call's
# terminal state), and satisfy the headline acceptance — the best
# data-driven mode beats hash-probing's p95 at an equal-or-better
# warm-start rate (the bench's exit code enforces it).
echo "== routing smoke =="
HW_ROUTING_OUT="$BUILD_DIR/BENCH_routing.json" \
  "$BUILD_DIR"/bench/ablation_routing > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/BENCH_routing.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
legs = doc["legs"]
assert len(legs) >= 6, "expected one leg per route mode"
sched_legs = 0
for leg in legs:
    assert leg["issued"] > 0 and leg["completed"] > 0, leg
    assert 0.0 <= leg["warm_start_rate"] <= 1.0, leg
    assert leg["p50_ms"] <= leg["p95_ms"] <= leg["p99_ms"], leg
    if "sched" in leg:
        sched_legs += 1
        s = leg["sched"]
        assert s["decisions"] > 0 and s["error_observations"] > 0, leg
        assert s["orphan_charges"] == 0, f"backlog leak: {leg}"
        assert s["end_charges"] <= s["nonterminal"], f"backlog leak: {leg}"
assert sched_legs >= 2, "expected least-expected-work and sjf-affinity legs"
acc = doc["acceptance"]
assert acc["acceptance_ok"], f"routing acceptance failed: {acc}"
print(f"routing schema OK ({len(legs)} legs, {sched_legs} data-driven)")
PYEOF
fi
bench_gate routing BENCH_routing.json "$BUILD_DIR/BENCH_routing.json"
if [[ "${SANITIZE:-0}" != "1" ]]; then
  cp "$BUILD_DIR/BENCH_routing.json" BENCH_routing.json
fi

# Serving leg: the open-loop QPS sweep over the hot-function mix must
# emit a structurally valid BENCH_serving.json and satisfy the headline
# acceptance — at the top QPS step the lease tier beats the
# controller->topic path on p95 AND cold-start rate while serving a
# majority of calls through the direct seam (the bench's exit code
# enforces it).
echo "== serving smoke =="
HW_SERVING_OUT="$BUILD_DIR/BENCH_serving.json" \
  "$BUILD_DIR"/bench/qps_sweep > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/BENCH_serving.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
legs = doc["legs"]
assert len(legs) >= 6, "expected baseline+lease legs per QPS step"
lease_legs = 0
for leg in legs:
    assert leg["issued"] > 0 and leg["completed"] > 0, leg
    assert 0.0 <= leg["cold_start_rate"] <= 1.0, leg
    assert leg["p50_ms"] <= leg["p95_ms"] <= leg["p99_ms"], leg
    if leg["mode"] == "lease":
        lease_legs += 1
        ls = leg["lease"]
        assert ls["hits"] == 0 or ls["granted"] > 0, leg
        assert 0.0 <= ls["hit_rate"] <= 1.0, leg
assert lease_legs * 2 == len(legs), "unpaired lease/baseline legs"
acc = doc["acceptance"]
assert acc["acceptance_ok"], f"serving acceptance failed: {acc}"
print(f"serving schema OK ({len(legs)} legs, {lease_legs} leased)")
PYEOF
fi
bench_gate serving BENCH_serving.json "$BUILD_DIR/BENCH_serving.json"
if [[ "${SANITIZE:-0}" != "1" ]]; then
  cp "$BUILD_DIR/BENCH_serving.json" BENCH_serving.json
fi

# Fidelity leg: the four-regime Slurm-fidelity ablation must emit a
# structurally valid BENCH_fidelity.json and satisfy its acceptance
# contract — the regimes diverge on harvested node-seconds and p95, the
# legacy golden decision-log hash is intact (fidelity knobs are opt-in),
# and a SimCheck mini-campaign over the new regimes is invariant-clean
# (the bench's exit code enforces all three).
echo "== fidelity smoke =="
HW_FIDELITY_OUT="$BUILD_DIR/BENCH_fidelity.json" \
  "$BUILD_DIR"/bench/ablation_fidelity > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/BENCH_fidelity.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
legs = doc["legs"]
assert len(legs) >= 4, "expected one leg per fidelity regime"
regimes = {leg["regime"] for leg in legs}
assert regimes == {"legacy", "tres", "tres+resv", "tres+resv+qos"}, regimes
for leg in legs:
    assert leg["jobs_started"] > 0 and leg["completed"] > 0, leg
    assert leg["harvested_node_s"] > 0, leg
    assert 0.0 <= leg["harvest_efficiency"] <= 1.0, leg
    assert 0.0 <= leg["cold_start_rate"] <= 1.0, leg
    assert leg["p50_ms"] <= leg["p95_ms"], leg
agg = doc["regimes"]
assert agg["tres"]["harvested_node_s"] > agg["legacy"]["harvested_node_s"], \
    "fractional-node harvesting must beat whole-node harvesting"
assert doc["golden"]["hash"] == doc["golden"]["expected"], doc["golden"]
assert doc["simcheck"]["failures"] == 0, doc["simcheck"]
acc = doc["acceptance"]
assert acc["acceptance_ok"], f"fidelity acceptance failed: {acc}"
print(f"fidelity schema OK ({len(legs)} legs, {len(regimes)} regimes)")
PYEOF
fi
bench_gate fidelity BENCH_fidelity.json "$BUILD_DIR/BENCH_fidelity.json"
if [[ "${SANITIZE:-0}" != "1" ]]; then
  cp "$BUILD_DIR/BENCH_fidelity.json" BENCH_fidelity.json
fi

# SimCheck leg: fuzz ~20 random chaos + federation seeds against the
# invariant suite. A clean tree must sweep clean; any failure leaves a
# shrunk, replayable repro JSON under $BUILD_DIR/simcheck-repros/ (the
# CI failure artifact — replay locally with `simcheck --replay FILE`).
echo "== simcheck sweep =="
if ! "$BUILD_DIR"/tools/simcheck --seeds 20 --chaos --clusters 3 \
    --out "$BUILD_DIR/simcheck-repros"; then
  echo "simcheck: FAILED — repros archived in $BUILD_DIR/simcheck-repros/" >&2
  exit 1
fi

# Coverage leg (COVERAGE=1): separate instrumented build, tier-1 suite +
# a simcheck sweep to exercise src/check, then a gcov line-coverage
# summary for src/. Uses plain gcov (ships with GCC) so no extra tools
# are needed.
if [[ "${COVERAGE:-0}" == "1" ]]; then
  echo "== coverage (tier1 + simcheck over instrumented build) =="
  COV_DIR=${COV_DIR:-build-cov}
  cmake -B "$COV_DIR" -S . -DHPCWHISK_COVERAGE=ON -DHPCWHISK_BUILD_BENCH=OFF \
    -DHPCWHISK_BUILD_EXAMPLES=OFF
  cmake --build "$COV_DIR" -j"$(nproc)"
  ctest --test-dir "$COV_DIR" -L tier1 --output-on-failure
  "$COV_DIR"/tools/simcheck --seeds 5 --chaos --clusters 2 > /dev/null
  python3 - "$COV_DIR" <<'PYEOF'
import os, subprocess, sys
cov_dir = sys.argv[1]
gcda = [os.path.abspath(os.path.join(r, f)) for r, _, fs in os.walk(cov_dir)
        for f in fs if f.endswith(".gcda")]
per_file = {}  # source path -> (covered, total)
for chunk in (gcda[i:i + 64] for i in range(0, len(gcda), 64)):
    out = subprocess.run(["gcov", "-n"] + chunk,
                         capture_output=True, text=True).stdout
    src = None
    for line in out.splitlines():
        if line.startswith("File "):
            src = line.split("'")[1]
        elif line.startswith("No executable lines"):
            src = None  # keeps the trailing summary line unattributed
        elif line.startswith("Lines executed:") and src:
            pct, total = line.split(":")[1].split(" of ")
            total = int(total)
            covered = round(float(pct.rstrip("% ")) / 100 * total)
            # Object files share headers; the same source shows up once
            # per including TU, so keep the best-covered sighting.
            if "/src/" in src:
                old = per_file.get(src, (0, 0))
                per_file[src] = (max(old[0], covered), max(old[1], total))
            src = None
covered = sum(c for c, _ in per_file.values())
total = sum(t for _, t in per_file.values())
assert total > 0, "no coverage data for src/ — did the tests run?"
print(f"line coverage (src/): {100.0 * covered / total:.1f}% "
      f"({covered}/{total} lines over {len(per_file)} files)")
PYEOF
fi

# Machine-readable perf baseline, archived in the build dir (and at the
# repo root for the non-sanitizer run, where timings are meaningful).
echo "== perf baseline =="
HW_PERF_OUT="$BUILD_DIR/BENCH_perf.json" "$BUILD_DIR"/bench/perf_report

# Schema + floor validation: the JSON must carry the alloc-probe fields,
# steady-state allocations must stay below 0.1/event, and a quick-mode
# run on an unloaded host must clear 3M events/s (the post-overhaul hot
# path does >9M; 3M is the regression tripwire, with headroom for noisy
# shared CI hosts). Sanitizer builds check schema only — their timings
# and allocation profiles measure the sanitizer, not the simulator.
python3 - "$BUILD_DIR/BENCH_perf.json" "${SANITIZE:-0}" <<'PYEOF'
import json, sys
report = json.load(open(sys.argv[1]))
sanitize = sys.argv[2] == "1"
for key in ("bench", "quick", "alloc_probe", "hw_threads", "experiments",
            "sweep"):
    assert key in report, f"BENCH_perf.json missing key {key!r}"
assert report["experiments"], "BENCH_perf.json has no experiments"
for exp in report["experiments"]:
    for key in ("name", "wall_s", "events", "events_per_sec",
                "events_in_window", "allocs_in_window", "allocs_per_event"):
        assert key in exp, f"experiment {exp.get('name')} missing {key!r}"
sweep = report["sweep"]
assert sweep["outputs_identical"] is True, "sweep outputs diverged"
if sweep.get("speedup_skipped"):
    assert sweep.get("speedup_skipped_reason"), "skipped speedup needs a reason"
else:
    assert isinstance(sweep.get("speedup"), (int, float)), "speedup missing"
if not sanitize:
    assert report["alloc_probe"] is True, "perf_report lost the alloc probe"
    for exp in report["experiments"]:
        ape = exp["allocs_per_event"]
        assert ape < 0.1, f"{exp['name']}: {ape:.3f} allocs/event (floor 0.1)"
    if report["quick"]:
        best = max(e["events_per_sec"] for e in report["experiments"])
        assert best >= 3e6, f"best experiment {best:.3g} events/s < 3M floor"
        print(f"perf floors OK (best {best / 1e6:.1f}M events/s)")
print("BENCH_perf.json schema OK")
PYEOF

bench_gate perf BENCH_perf.json "$BUILD_DIR/BENCH_perf.json"
if [[ "${SANITIZE:-0}" != "1" ]]; then
  cp "$BUILD_DIR/BENCH_perf.json" BENCH_perf.json
fi

# (The committed BENCH_federation.json is the full {1,2,4}-cluster sweep
# at HW_BENCH_TRIALS=3; the smoke above runs a single 2-cluster leg, so
# there is no matching committed baseline to gate against here.)

echo "ci_smoke: OK"
