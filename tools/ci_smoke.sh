#!/usr/bin/env bash
# CI smoke: configure, build, run the test suite, then a quick bench pass.
#
#   SANITIZE=1    build with -DHPCWHISK_SANITIZE=ON (ASan+UBSan) in build-asan/
#   BUILD_DIR=d   override the build directory
#   FULL_BENCH=1  smoke every bench binary instead of just chaos_recovery
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${SANITIZE:-0}" == "1" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-asan}
  SAN_FLAG=ON
else
  BUILD_DIR=${BUILD_DIR:-build}
  SAN_FLAG=OFF
fi

cmake -B "$BUILD_DIR" -S . -DHPCWHISK_SANITIZE=$SAN_FLAG
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

export HW_BENCH_QUICK=1
if [[ "${FULL_BENCH:-0}" == "1" ]]; then
  for b in "$BUILD_DIR"/bench/*; do
    [[ -x "$b" ]] || continue
    echo "== smoke: $b =="
    "$b"
  done
else
  "$BUILD_DIR"/bench/chaos_recovery
fi

echo "ci_smoke: OK"
