// Fig. 7 reproduction: the three compute-intensive SeBS functions (bfs,
// mst, pagerank) executed as real single-threaded C++ kernels, compared
// between a "Prometheus node" (this machine, full speed) and "AWS Lambda
// at 2048 MB" (same kernel, with the calibrated platform model applied:
// CPU share 2048/1792 capped at 1, times the published ~15% hardware
// slowdown of Lambda relative to the HPC node).
//
// The paper reports *internal execution time* over 200 warm invocations;
// we do the same via google-benchmark's manual timing. Absolute numbers
// reflect this host; the Prometheus-vs-Lambda *ratio* is the result.

#include <benchmark/benchmark.h>

#include <chrono>

#include "hpcwhisk/cloud/lambda_service.hpp"
#include "hpcwhisk/sebs/graph.hpp"
#include "hpcwhisk/sebs/kernels.hpp"

namespace {

using namespace hpcwhisk;

// One shared input per kernel (SeBS measures warm invocations on a fixed
// input).
const sebs::Graph& bfs_graph() {
  static const sebs::Graph graph = sebs::make_uniform_graph(100'000, 8.0, 42);
  return graph;
}
const sebs::Graph& pr_graph() {
  static const sebs::Graph graph =
      sebs::make_preferential_graph(50'000, 6, 43);
  return graph;
}
const std::vector<sebs::WeightedEdge>& mst_edges() {
  static const std::vector<sebs::WeightedEdge> edges =
      sebs::make_weighted_edges(50'000, 6.0, 1'000'000, 44);
  return edges;
}

/// Lambda-at-2048MB dilation relative to the HPC node: the published
/// ~15% node advantage plus the (capped) CPU share.
double lambda_dilation() {
  cloud::LambdaService::Config cfg;
  const double share =
      std::min(1.0, 2048.0 / static_cast<double>(cfg.full_vcpu_memory_mb));
  return cfg.compute_slowdown / share;
}

template <typename Kernel>
void run_platform(benchmark::State& state, Kernel&& kernel, double dilation) {
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    kernel();
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - begin).count() * dilation;
    state.SetIterationTime(seconds);
  }
  state.counters["dilation"] = dilation;
}

void BM_bfs_prometheus(benchmark::State& state) {
  run_platform(state, [] {
    benchmark::DoNotOptimize(sebs::bfs(bfs_graph(), 0));
  }, 1.0);
}
void BM_bfs_lambda2048(benchmark::State& state) {
  run_platform(state, [] {
    benchmark::DoNotOptimize(sebs::bfs(bfs_graph(), 0));
  }, lambda_dilation());
}
void BM_mst_prometheus(benchmark::State& state) {
  run_platform(state, [] {
    benchmark::DoNotOptimize(sebs::mst(50'000, mst_edges()));
  }, 1.0);
}
void BM_mst_lambda2048(benchmark::State& state) {
  run_platform(state, [] {
    benchmark::DoNotOptimize(sebs::mst(50'000, mst_edges()));
  }, lambda_dilation());
}
void BM_pagerank_prometheus(benchmark::State& state) {
  run_platform(state, [] {
    benchmark::DoNotOptimize(sebs::pagerank(pr_graph(), 0.85, 20));
  }, 1.0);
}
void BM_pagerank_lambda2048(benchmark::State& state) {
  run_platform(state, [] {
    benchmark::DoNotOptimize(sebs::pagerank(pr_graph(), 0.85, 20));
  }, lambda_dilation());
}

// 200 invocations each, matching the paper's warm-performance protocol.
BENCHMARK(BM_bfs_prometheus)->UseManualTime()->Iterations(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_bfs_lambda2048)->UseManualTime()->Iterations(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_mst_prometheus)->UseManualTime()->Iterations(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_mst_lambda2048)->UseManualTime()->Iterations(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_pagerank_prometheus)->UseManualTime()->Iterations(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_pagerank_lambda2048)->UseManualTime()->Iterations(200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
