// Ablation: pilot placement policy. The faithful preempt-aware policy
// (Slurm with PreemptMode=CANCEL starts a pilot on any idle node and
// lets preemption resolve conflicts) versus a conservative hole-fitting
// policy that only places pilots whose declared length fits before the
// node's reservation. DESIGN.md calls this choice out: preempt-aware
// should win on coverage, at the cost of many more preemptions.

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

int main() {
  const std::vector<slurm::PilotPlacement> sweep{
      slurm::PilotPlacement::kPreemptAware,
      slurm::PilotPlacement::kHoleFitting};
  // Independent runs: fan out, gather rows in sweep order.
  const auto rows = exec::parallel_trials(
      sweep, [](const slurm::PilotPlacement placement, std::ostream&) {
        bench::ExperimentConfig cfg;
        cfg.pilots = core::SupplyModel::kFib;
        cfg.placement = placement;
        cfg.window = sim::SimTime::hours(12);
        cfg = bench::apply_env(cfg);
        const auto result = bench::run_experiment(cfg);
        const auto report = analysis::slurm_level_report(result.samples);
        const auto& mc = result.system->manager().counters();
        return std::vector<std::string>{
            placement == slurm::PilotPlacement::kPreemptAware
                ? "preempt-aware"
                : "hole-fitting",
            analysis::fmt_pct(report.coverage),
            analysis::fmt(report.pilot_workers.avg, 2),
            std::to_string(mc.started),
            std::to_string(mc.preempted),
            std::to_string(mc.timed_out),
        };
      });
  analysis::print_table(
      std::cout, "ablation: pilot placement policy (fib, 12 h)",
      {"policy", "coverage", "avg workers", "started", "preempted",
       "ran to limit"},
      rows);
  std::cout << "expected: preempt-aware covers more surface but almost all "
               "its pilots\nend by preemption; hole-fitting wastes holes it "
               "cannot predict.\n";
  return 0;
}
