// Ablation: the preemption grace period. The paper claims a 3-minute
// grace delays HPC jobs insignificantly because drained pilots exit in
// seconds (Sec. III-D a: "this could be further reduced in the Slurm
// configuration"). We sweep the grace and measure both the FaaS side
// (coverage, hand-off completeness) and the HPC side (how long evicting
// preemptions actually take).

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

int main() {
  const std::vector<double> sweep{1.0, 3.0, 5.0};
  // Independent runs: fan out, gather rows in sweep order.
  const auto rows = exec::parallel_trials(
      sweep, [](const double grace_min, std::ostream&) {
        bench::ExperimentConfig cfg;
        cfg.pilots = core::SupplyModel::kFib;
        cfg.grace = sim::SimTime::minutes(grace_min);
        cfg.window = sim::SimTime::hours(12);
        cfg.faas_qps = 10.0;
        cfg = bench::apply_env(cfg);
        const auto result = bench::run_experiment(cfg);
        const auto report = analysis::slurm_level_report(result.samples);

        // How long preempted pilots actually held their node after SIGTERM:
        // end_time - (grace start). We approximate with the manager's drain
        // behaviour: pilots exit via job_exited, so preempted pilot jobs'
        // records show the real release delay; gather from Slurm counters.
        const auto& mc = result.system->manager().counters();
        const auto& cc = result.system->controller().counters();
        const std::uint64_t accepted = cc.accepted;
        const double success =
            accepted == 0 ? 0.0
                          : static_cast<double>(cc.completed) /
                                static_cast<double>(accepted);
        return std::vector<std::string>{
            analysis::fmt(grace_min, 0) + " min",
            analysis::fmt_pct(report.coverage),
            std::to_string(mc.preempted),
            std::to_string(cc.interrupted),
            analysis::fmt_pct(success),
            std::to_string(cc.timed_out),
        };
      });
  analysis::print_table(
      std::cout, "ablation: preemption grace period (fib + 10 QPS, 12 h)",
      {"grace", "coverage", "pilots preempted", "execs interrupted",
       "success rate", "timeouts"},
      rows);
  std::cout << "expected: coverage and success are insensitive to the grace "
               "—\npilots drain in seconds regardless; the grace only bounds "
               "the worst case.\n";
  return 0;
}
