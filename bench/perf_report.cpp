// Machine-readable perf baseline: runs the canonical experiments under a
// wall clock and emits BENCH_perf.json with the simulator's fundamental
// throughput numbers (events/sec, sched passes/sec), steady-state
// allocations per event (this binary links the counting operator new of
// bench/common/alloc_probe.cpp), per-experiment wall-clock, and the
// parallel-trial speedup of an 8-trial seed sweep versus jobs=1 —
// including a byte-identity check of the two outputs.
//
// Timing runs repeat HW_PERF_REPS times (default 3 quick, 1 full) and
// report the fastest: the experiment is deterministic, so the minimum
// wall time is the measurement least polluted by neighbors on a shared
// host. The parallel sweep leg runs on as many workers as the host has
// hardware threads (capped at the trial count); with a single hardware
// thread the speedup is skipped with a reason instead of reported as a
// meaningless ~1x.
//
//   HW_BENCH_QUICK=1  quarter-scale canonical runs (CI smoke)
//   HW_SEED=<n>       base RNG seed (default 1)
//   HW_BENCH_JOBS=<n> worker threads for the parallel leg of the sweep
//   HW_PERF_REPS=<n>  timing repetitions per experiment
//   HW_PERF_OUT=<p>   output path (default BENCH_perf.json)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_probe.hpp"
#include "common/bench_json.hpp"
#include "common/experiment.hpp"

using namespace hpcwhisk;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::size_t rep_count(bool quick) {
  if (const char* env = std::getenv("HW_PERF_REPS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return quick ? 3 : 1;
}

struct ExperimentPerf {
  std::string name;
  double wall_s{0};
  std::uint64_t events{0};
  std::uint64_t sched_passes{0};
  std::uint64_t events_in_window{0};
  std::uint64_t allocs_in_window{0};
  double allocs_per_event{0};
};

ExperimentPerf measure(const std::string& name,
                       const bench::ExperimentConfig& cfg, std::size_t reps) {
  ExperimentPerf perf;
  perf.name = name;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    const auto result = bench::run_experiment(cfg);
    const double wall = seconds_since(start);
    if (rep == 0 || wall < perf.wall_s) perf.wall_s = wall;
    // Event counts and the alloc profile are deterministic — identical
    // across reps — so taking them from the last rep loses nothing.
    perf.events = result.simulation->executed_events();
    perf.sched_passes = result.system->slurm().counters().sched_passes;
    perf.events_in_window = result.events_in_window;
    perf.allocs_in_window = result.allocs_in_window;
  }
  perf.allocs_per_event =
      perf.events_in_window > 0
          ? static_cast<double>(perf.allocs_in_window) /
                static_cast<double>(perf.events_in_window)
          : 0.0;
  return perf;
}

struct SweepPerf {
  std::size_t trials{0};
  std::size_t jobs_parallel{0};
  double wall_serial_s{0};
  double wall_parallel_s{0};
  bool outputs_identical{false};
  /// On a single-hardware-thread host a "parallel" leg is timeslicing,
  /// not parallelism: the sweep still runs (the byte-identity check is
  /// scheduling-order-sensitive and stays meaningful) but the speedup is
  /// reported as skipped so nobody trends a meaningless 0.9x.
  bool speedup_meaningful{true};
};

/// Times the same 8-trial seed sweep serial (jobs=1) and parallel
/// (hardware threads, capped at the trial count; HW_BENCH_JOBS
/// overrides), asserting byte-identical serialized output.
SweepPerf measure_sweep(const bench::ExperimentConfig& base) {
  SweepPerf sweep;
  sweep.trials = 8;
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  // Real cores only: the parallel leg uses every hardware thread the
  // host offers, up to one worker per trial. On a 1-thread host the leg
  // still runs (byte-identity check) with the historical 8 workers.
  sweep.jobs_parallel = std::getenv("HW_BENCH_JOBS") != nullptr
                            ? exec::job_count()
                            : (hw > 1 ? std::min(hw, sweep.trials)
                                      : std::size_t{8});
  const auto configs = bench::seed_sweep(base, sweep.trials);
  const auto trial = [](const bench::ExperimentConfig& cfg,
                        std::ostream& os) {
    const auto result = bench::run_experiment(cfg);
    const auto report = analysis::slurm_level_report(result.samples);
    os << "seed " << cfg.seed << " coverage "
       << analysis::fmt_pct(report.coverage) << " events "
       << result.simulation->executed_events() << "\n";
  };

  std::ostringstream serial_out;
  auto start = Clock::now();
  exec::parallel_trials(configs, trial, 1, serial_out);
  sweep.wall_serial_s = seconds_since(start);

  std::ostringstream parallel_out;
  start = Clock::now();
  exec::parallel_trials(configs, trial, sweep.jobs_parallel, parallel_out);
  sweep.wall_parallel_s = seconds_since(start);

  sweep.outputs_identical = serial_out.str() == parallel_out.str();
  sweep.speedup_meaningful = std::thread::hardware_concurrency() > 1;
  return sweep;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

int main() {
  const bool quick = std::getenv("HW_BENCH_QUICK") != nullptr;
  const char* out_env = std::getenv("HW_PERF_OUT");
  const std::string out_path = out_env != nullptr ? out_env : "BENCH_perf.json";
  const std::size_t reps = rep_count(quick);

  // Canonical experiments: the fib production day (table2) and the var
  // production day (table3) — the two headline runs of the paper.
  std::vector<ExperimentPerf> experiments;
  {
    bench::ExperimentConfig cfg;
    cfg.pilots = core::SupplyModel::kFib;
    cfg = bench::apply_env(cfg);
    experiments.push_back(measure("table2_fib", cfg, reps));
  }
  {
    bench::ExperimentConfig cfg;
    cfg.pilots = core::SupplyModel::kVar;
    cfg = bench::apply_env(cfg);
    experiments.push_back(measure("table3_var", cfg, reps));
  }

  // The sweep always runs at quarter scale so the serial leg stays
  // tractable (8 full production days would dominate the report).
  bench::ExperimentConfig sweep_base;
  sweep_base.pilots = core::SupplyModel::kFib;
  sweep_base.nodes = std::max<std::uint32_t>(64, sweep_base.nodes / 4);
  sweep_base.window = sim::SimTime::hours(6);
  sweep_base.burn_in = sim::SimTime::hours(2);
  if (const char* seed = std::getenv("HW_SEED"))
    sweep_base.seed = std::strtoull(seed, nullptr, 10);
  const SweepPerf sweep = measure_sweep(sweep_base);
  const double speedup = sweep.wall_parallel_s > 0
                             ? sweep.wall_serial_s / sweep.wall_parallel_s
                             : 0.0;

  std::ofstream json{out_path};
  bench::write_meta_header(json, "perf_report", quick, sweep_base.seed);
  json << "  \"reps\": " << reps << ",\n"
       << "  \"alloc_probe\": "
       << (bench::alloc_probe_enabled() ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"jobs\": " << exec::job_count() << ",\n"
       << "  \"experiments\": [\n";
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    const auto& e = experiments[i];
    json << "    {\"name\": \"" << e.name << "\", \"wall_s\": "
         << fmt_num(e.wall_s) << ", \"events\": " << e.events
         << ", \"events_per_sec\": "
         << fmt_num(e.wall_s > 0 ? static_cast<double>(e.events) / e.wall_s
                                 : 0.0)
         << ", \"sched_passes\": " << e.sched_passes
         << ", \"sched_passes_per_sec\": "
         << fmt_num(e.wall_s > 0
                        ? static_cast<double>(e.sched_passes) / e.wall_s
                        : 0.0)
         << ", \"events_in_window\": " << e.events_in_window
         << ", \"allocs_in_window\": " << e.allocs_in_window
         << ", \"allocs_per_event\": " << fmt_num(e.allocs_per_event)
         << "}" << (i + 1 < experiments.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"sweep\": {\"trials\": " << sweep.trials
       << ", \"jobs_serial\": 1, \"jobs_parallel\": " << sweep.jobs_parallel
       << ", \"wall_serial_s\": " << fmt_num(sweep.wall_serial_s)
       << ", \"wall_parallel_s\": " << fmt_num(sweep.wall_parallel_s);
  if (sweep.speedup_meaningful) {
    json << ", \"speedup\": " << fmt_num(speedup)
         << ", \"speedup_skipped\": false";
  } else {
    json << ", \"speedup\": null, \"speedup_skipped\": true"
         << ", \"speedup_skipped_reason\": \"single hardware thread\"";
  }
  json << ", \"outputs_identical\": "
       << (sweep.outputs_identical ? "true" : "false") << "}\n"
       << "}\n";
  json.close();

  std::vector<std::vector<std::string>> rows;
  for (const auto& e : experiments) {
    rows.push_back({e.name, analysis::fmt(e.wall_s, 2),
                    std::to_string(e.events),
                    fmt_num(e.wall_s > 0
                                ? static_cast<double>(e.events) / e.wall_s
                                : 0.0),
                    fmt_num(e.allocs_per_event),
                    std::to_string(e.sched_passes)});
  }
  analysis::print_table(std::cout, "perf baseline (see BENCH_perf.json)",
                        {"experiment", "wall s", "events", "events/s",
                         "allocs/event", "sched passes"},
                        rows);
  std::cout << "sweep: " << sweep.trials << " trials, serial "
            << analysis::fmt(sweep.wall_serial_s, 2) << " s, parallel (x"
            << sweep.jobs_parallel << ") "
            << analysis::fmt(sweep.wall_parallel_s, 2) << " s, speedup ";
  if (sweep.speedup_meaningful) {
    std::cout << analysis::fmt(speedup, 2);
  } else {
    std::cout << "skipped (1 hw thread)";
  }
  std::cout << ", outputs "
            << (sweep.outputs_identical ? "byte-identical" : "DIVERGED")
            << "\nwrote " << out_path << "\n";
  return sweep.outputs_identical ? 0 : 1;
}
