// Table II + Figs. 5a/5c reproduction: a 24-hour production-day run with
// the fib job manager (set A1 lengths), compared across the paper's
// three perspectives:
//   Simulation  — a-posteriori clairvoyant bound on the day's own
//                 availability log (paper: ~92% of the idle surface);
//   Slurm-level — 10-second node-list sampling (paper: 90% coverage,
//                 avg 10.66 workers);
//   OW-level    — controller's view (paper: avg 10.39 healthy invokers,
//                 0.40 warming, 0.06 irresponsive).
//
// HW_BENCH_TRIALS=<n> sweeps seeds base..base+n-1; trials run in
// parallel under HW_BENCH_JOBS and print in seed order.

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

namespace {

void run_one(const bench::ExperimentConfig& cfg, std::ostream& os) {
  os << "bench: table2_fib (seed " << cfg.seed << ", " << cfg.nodes
     << " nodes, " << cfg.window.to_string() << " window)\n\n";

  const auto result = bench::run_experiment(cfg);
  const auto summary = bench::summarize_coverage(
      result, core::job_length_set("A1"), sim::SimTime::minutes(120));

  bench::print_coverage_table(os, "Table II: fib job manager", summary);

  analysis::print_table(
      os, "Table II headline comparison",
      {"metric", "paper", "measured"},
      {
          {"Slurm-level coverage", "90%",
           analysis::fmt_pct(summary.slurm_level.coverage)},
          {"surface lost vs clairvoyant bound",
           "~5% (fib) / ~16% (var)",
           analysis::fmt_pct(1.0 - summary.slurm_level.coverage -
                             (1.0 - summary.simulation.ready_share -
                              summary.simulation.warmup_share))},
          {"clairvoyant warm-up share", "2.61% (fib) / 3.18% (var)",
           analysis::fmt_pct(summary.simulation.warmup_share)},
          {"avg available nodes", "11.85",
           analysis::fmt(summary.slurm_level.available_nodes.avg, 2)},
          {"avg healthy invokers (OW)", "10.39",
           analysis::fmt(summary.ow_healthy.avg, 2)},
          {"avg warming invokers (OW)", "0.40",
           analysis::fmt(summary.ow_warming.avg, 2)},
          {"avg irresponsive (OW)", "0.06",
           analysis::fmt(summary.ow_unresponsive.avg, 2)},
          {"time with no healthy invoker", "24 min of 24 h (1.7%)",
           analysis::fmt_pct(summary.ow_zero_healthy_share)},
          {"longest no-invoker period", "7 min",
           summary.ow_longest_zero_healthy.to_string()},
      });

  // Pilot lifetime statistics (paper: invoker ready for avg > 23 min,
  // median ~11 min, P75 ~31 min on the fib day).
  std::vector<double> serving_min;
  for (const auto d : result.system->manager().serving_durations())
    serving_min.push_back(d.to_minutes());
  const auto serving = analysis::summarize(serving_min);
  analysis::print_table(
      os, "fib invoker serving durations [min]",
      {"metric", "paper", "measured"},
      {
          {"median", "~11", analysis::fmt(serving.p50, 1)},
          {"P75", "~31", analysis::fmt(serving.p75, 1)},
          {"mean", "> 23", analysis::fmt(serving.avg, 1)},
      });

  // ---- Fig. 5a: three-perspective worker time series --------------------
  std::vector<double> sim_series;
  for (const auto v : summary.simulation.ready_series)
    sim_series.push_back(v);
  analysis::print_series(os, "Fig 5a (Simulation): ready workers",
                         sim_series, 10.0, 96);
  std::vector<double> slurm_series, idle_series;
  for (const auto& s : result.samples) {
    slurm_series.push_back(s.pilot);
    idle_series.push_back(s.idle);
  }
  analysis::print_series(os, "Fig 5a (Slurm-level): worker jobs",
                         slurm_series, 10.0, 96);
  std::vector<double> ow_series;
  for (const auto& s : result.ow_samples) ow_series.push_back(s.healthy);
  analysis::print_series(os, "Fig 5a (OW-level): healthy invokers",
                         ow_series, 10.0, 96);
  analysis::print_series(os, "Fig 5a: remaining idle nodes",
                         idle_series, 10.0, 96);

  // ---- Fig. 5c: CDFs of node counts -------------------------------------
  std::vector<double> avail_series;
  for (const auto& s : result.samples) avail_series.push_back(s.available());
  analysis::print_cdf(os, "Fig 5c: idle nodes (green)",
                      analysis::cdf_points(idle_series, 30));
  analysis::print_cdf(os, "Fig 5c: OpenWhisk nodes (orange)",
                      analysis::cdf_points(slurm_series, 30));
  analysis::print_cdf(os, "Fig 5c: originally-idle nodes (black)",
                      analysis::cdf_points(avail_series, 30));
}

}  // namespace

int main() {
  bench::ExperimentConfig base;
  base.pilots = core::SupplyModel::kFib;
  base = bench::apply_env(base);

  const auto configs = bench::seed_sweep(base, bench::trial_count());
  exec::parallel_trials(configs,
                        [](const bench::ExperimentConfig& cfg,
                           std::ostream& os) { run_one(cfg, os); });
  return 0;
}
