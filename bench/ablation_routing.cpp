// Ablation: controller load-balancing policy. OpenWhisk routes a
// function to a hash-selected "home" invoker to maximize warm-container
// reuse (Sec. II); with probing it overflows only when the home is
// saturated. We compare the policies under the responsiveness workload:
// affinity buys warm starts (lower median), spreading buys balance.

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

int main() {
  const std::vector<whisk::RouteMode> sweep{
      whisk::RouteMode::kHashProbing, whisk::RouteMode::kHashOnly,
      whisk::RouteMode::kRoundRobin, whisk::RouteMode::kLeastLoaded};
  // Independent runs: fan out, gather rows in sweep order.
  const auto rows = exec::parallel_trials(
      sweep, [](const whisk::RouteMode mode, std::ostream&) {
        bench::ExperimentConfig cfg;
        cfg.pilots = core::SupplyModel::kFib;
        cfg.window = sim::SimTime::hours(8);
        cfg.faas_qps = 10.0;
        cfg = bench::apply_env(cfg);

        // run_experiment wires the controller internally; route mode rides
        // in through the system config, so build the run manually here.
        sim::Simulation simulation;
        core::HpcWhiskSystem::Config sys_cfg;
        sys_cfg.seed = cfg.seed;
        sys_cfg.slurm.node_count = cfg.nodes;
        sys_cfg.controller.route_mode = mode;
        core::HpcWhiskSystem system{simulation, sys_cfg};
        trace::HpcWorkloadGenerator workload{
            simulation, system.slurm(), {},
            sim::Rng{cfg.seed ^ 0x9E3779B9ULL}};
        const auto functions =
            trace::register_sleep_functions(system.functions(), 100);
        trace::FaasLoadGenerator faas{
            simulation,
            {.rate_qps = cfg.faas_qps, .functions = functions},
            [&system](const std::string& fn) {
              (void)system.controller().submit(fn);
            },
            sim::Rng{cfg.seed ^ 0xC0FFEEULL}};
        workload.start();
        system.start();
        const auto end = cfg.burn_in + cfg.window;
        simulation.at(cfg.burn_in, [&faas, end] { faas.start(end); });
        simulation.run_until(end + sim::SimTime::minutes(10));

        std::vector<double> response_ms;
        std::uint64_t cold = 0, total = 0;
        for (const auto& rec : system.controller().activations()) {
          if (rec.state != whisk::ActivationState::kCompleted) continue;
          ++total;
          if (rec.cold_start) ++cold;
          response_ms.push_back(rec.response_time().to_seconds() * 1e3);
        }
        const auto rt = analysis::summarize(response_ms);
        return std::vector<std::string>{
            to_string(mode),
            std::to_string(total),
            analysis::fmt_pct(total ? static_cast<double>(cold) / total : 0),
            analysis::fmt(rt.p50, 0),
            analysis::fmt(analysis::percentile(response_ms, 0.99), 0),
        };
      });
  analysis::print_table(
      std::cout, "ablation: controller routing (fib + 10 QPS, 8 h)",
      {"policy", "completed", "cold-start rate", "p50 resp [ms]",
       "p99 resp [ms]"},
      rows);
  std::cout << "expected: hash affinity minimizes cold starts; round-robin "
               "maximizes\nthem (every invoker must warm every function); "
               "probing ~= hash under\nlight load.\n";
  return 0;
}
