// Ablation: controller load-balancing policy, including the data-driven
// sched modes. OpenWhisk routes a function to a hash-selected "home"
// invoker to maximize warm-container reuse (Sec. II); with probing it
// overflows only when the home is saturated — but it counts *calls*,
// not work. Under a heterogeneous short/long mix a short call hashed
// behind a pile of 30 s executions waits, and that wait is the tail.
// The data-driven modes (least-expected-work, sjf-affinity) route on
// predicted remaining *work* from the online duration estimators, which
// is exactly what the call-scheduling papers (Żuk & Rzadca) show cuts
// FaaS response time.
//
// Every leg runs the same pilot supply and the same open-loop mix of
// short (10 ms sleep) and long (faas_long_share at faas_long_duration)
// functions through bench::run_experiment; only the route mode differs.
// The emitted BENCH_routing.json carries per-leg latency quantiles,
// warm-start rate and estimator quality, plus the acceptance flags: the
// best data-driven mode must beat kHashProbing on p95 at an
// equal-or-better warm-start rate.
//
//   HW_BENCH_QUICK=1     smaller cluster, shorter window
//   HW_SEED=<n>          base RNG seed (default 1)
//   HW_BENCH_TRIALS=<n>  seeds per mode (default 1)
//   HW_BENCH_JOBS=<n>    legs run in parallel (default hw threads)
//   HW_ROUTING_OUT=<p>   report path (default BENCH_routing.json)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "common/experiment.hpp"

using namespace hpcwhisk;

namespace {

// The heterogeneous mix shared by every leg (echoed in the JSON header).
constexpr double kLongShare = 0.025;  // 1 of 40 functions
constexpr int kLongDurationS = 30;

struct Leg {
  whisk::RouteMode mode{whisk::RouteMode::kHashProbing};
  std::uint64_t seed{1};
};

struct LegResult {
  std::uint64_t issued{0};
  std::uint64_t completed{0};
  std::uint64_t timed_out{0};
  std::uint64_t rejected_503{0};
  std::uint64_t requeues{0};
  double warm_start_rate{0.0};
  double p50_ms{0.0};
  double p95_ms{0.0};
  double p99_ms{0.0};
  double mean_ms{0.0};
  // Data-driven legs only (has_sched).
  bool has_sched{false};
  std::uint64_t sched_decisions{0};
  std::uint64_t sched_cold_routed{0};
  std::uint64_t sched_short_class{0};
  std::uint64_t sched_affinity_escaped{0};
  std::uint64_t prior_hits{0};
  std::uint64_t error_observations{0};
  double mean_abs_error_ms{0.0};
  std::int64_t end_backlog_ticks{0};
  std::size_t end_charges{0};
  std::uint64_t nonterminal{0};
  /// Charges still attached to *terminal* activations — a real ledger
  /// leak (end_charges alone is not: the run ends with work in flight).
  std::uint64_t orphan_charges{0};
};

LegResult run_leg(const Leg& leg, bool quick, std::ostream&) {
  bench::ExperimentConfig cfg;
  cfg.pilots = core::SupplyModel::kFib;
  cfg.nodes = quick ? 48 : 96;
  cfg.burn_in = sim::SimTime::minutes(quick ? 15 : 30);
  cfg.window = quick ? sim::SimTime::minutes(45) : sim::SimTime::hours(2);
  cfg.faas_qps = quick ? 6.0 : 12.0;
  cfg.faas_functions = 40;
  // The heterogeneous mix: 2.5 % of the traffic is 30 s interruptible
  // actions, the rest 10 ms sleeps — below the p95 quantile, so the
  // overall p95 measures *shorts queueing behind longs*, not the long
  // executions themselves.
  cfg.faas_long_share = kLongShare;
  cfg.faas_long_duration = sim::SimTime::seconds(kLongDurationS);
  // Deadline classes are part of the data-driven subsystem under test:
  // predicted-short calls may jump queue position at publish time.
  cfg.sched.deadline_classes = true;
  // A 4-wide dispatch gate makes queueing real (one long execution is a
  // quarter of an invoker); probing gets the matching slot count so the
  // baseline saturates exactly when the invoker does.
  cfg.invoker_concurrency = 4;
  cfg.invoker_slots = 4;
  cfg.seed = leg.seed;
  cfg.route_mode = leg.mode;

  const bench::ExperimentResult result = bench::run_experiment(cfg);
  const whisk::Controller& ctrl = result.system->controller();

  LegResult out;
  out.issued = result.faas_issued;
  const auto& c = ctrl.counters();
  out.timed_out = c.timed_out;
  out.rejected_503 = c.rejected_503;
  out.requeues = c.requeued;

  std::vector<double> response_ms;
  std::uint64_t cold = 0;
  for (const auto& rec : ctrl.activations()) {
    if (rec.state != whisk::ActivationState::kCompleted) continue;
    ++out.completed;
    if (rec.cold_start) ++cold;
    response_ms.push_back(rec.response_time().to_seconds() * 1e3);
  }
  out.warm_start_rate =
      out.completed == 0
          ? 0.0
          : 1.0 - static_cast<double>(cold) / static_cast<double>(out.completed);
  if (!response_ms.empty()) {
    const auto rt = analysis::summarize(response_ms);
    out.p50_ms = rt.p50;
    out.mean_ms = rt.avg;
    out.p95_ms = analysis::percentile(response_ms, 0.95);
    out.p99_ms = analysis::percentile(response_ms, 0.99);
  }

  if (const sched::CallScheduler* sched = ctrl.scheduler()) {
    out.has_sched = true;
    const auto& s = sched->stats();
    out.sched_decisions = s.decisions;
    out.sched_cold_routed = s.cold_routed;
    out.sched_short_class = s.short_class;
    out.sched_affinity_escaped = s.affinity_escaped;
    out.prior_hits = sched->estimator().stats().prior_hits;
    out.error_observations = s.error_observations;
    out.mean_abs_error_ms =
        s.error_observations == 0
            ? 0.0
            : static_cast<double>(s.sum_abs_error_ticks) /
                  static_cast<double>(s.error_observations) / 1e3;
    // Backlog conservation at end of run: work still in flight at the
    // horizon is legitimately charged, so "charges == 0" is the wrong
    // invariant. The leak test is: no charge may survive its call's
    // terminal state, and charges cannot outnumber non-terminal calls.
    out.end_backlog_ticks = sched->ledger().total();
    out.end_charges = sched->ledger().charge_count();
    for (const auto& rec : ctrl.activations()) {
      if (!whisk::is_terminal(rec.state)) {
        ++out.nonterminal;
      } else if (sched->ledger().find(rec.id) != nullptr) {
        ++out.orphan_charges;
      }
    }
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

struct Aggregate {
  double p95_ms{0.0};
  double warm{0.0};
  std::size_t n{0};
};

}  // namespace

int main() {
  const bool quick = std::getenv("HW_BENCH_QUICK") != nullptr;
  const std::string out_path = env_or("HW_ROUTING_OUT", "BENCH_routing.json");
  const bench::ExperimentConfig env_cfg = bench::apply_env({});
  const std::uint64_t base_seed = env_cfg.seed;
  const std::size_t trials = bench::trial_count();

  const std::vector<whisk::RouteMode> sweep{
      whisk::RouteMode::kHashProbing,      whisk::RouteMode::kHashOnly,
      whisk::RouteMode::kRoundRobin,       whisk::RouteMode::kLeastLoaded,
      whisk::RouteMode::kLeastExpectedWork, whisk::RouteMode::kSjfAffinity};
  std::vector<Leg> legs;
  for (const whisk::RouteMode mode : sweep) {
    for (std::size_t t = 0; t < trials; ++t) {
      legs.push_back({mode, base_seed + t});
    }
  }

  const std::vector<LegResult> results = exec::parallel_trials(
      legs, [quick](const Leg& leg, std::ostream& os) {
        return run_leg(leg, quick, os);
      });

  // Seed-averaged per-mode aggregates for the acceptance inequalities.
  std::map<int, Aggregate> agg;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    Aggregate& a = agg[static_cast<int>(legs[i].mode)];
    a.p95_ms += results[i].p95_ms;
    a.warm += results[i].warm_start_rate;
    ++a.n;
  }
  for (auto& [mode, a] : agg) {
    a.p95_ms /= static_cast<double>(a.n);
    a.warm /= static_cast<double>(a.n);
  }

  // Acceptance: the better data-driven mode (by p95) must beat
  // kHashProbing on p95 at an equal-or-better warm-start rate.
  const Aggregate& hash = agg[static_cast<int>(whisk::RouteMode::kHashProbing)];
  const Aggregate& lew =
      agg[static_cast<int>(whisk::RouteMode::kLeastExpectedWork)];
  const Aggregate& sjf = agg[static_cast<int>(whisk::RouteMode::kSjfAffinity)];
  const bool lew_qualifies = lew.warm >= hash.warm;
  const bool sjf_qualifies = sjf.warm >= hash.warm;
  const whisk::RouteMode candidate =
      (lew_qualifies && (!sjf_qualifies || lew.p95_ms <= sjf.p95_ms))
          ? whisk::RouteMode::kLeastExpectedWork
          : whisk::RouteMode::kSjfAffinity;
  const Aggregate& cand =
      agg[static_cast<int>(candidate)];
  const bool p95_beats = cand.p95_ms < hash.p95_ms;
  const bool warm_not_worse = cand.warm >= hash.warm;
  const bool acceptance_ok = p95_beats && warm_not_worse;

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = results[i];
    rows.push_back({
        to_string(legs[i].mode),
        std::to_string(legs[i].seed),
        std::to_string(r.completed),
        analysis::fmt_pct(r.warm_start_rate),
        analysis::fmt(r.p50_ms, 1),
        analysis::fmt(r.p95_ms, 1),
        analysis::fmt(r.p99_ms, 1),
        std::to_string(r.timed_out),
        r.has_sched ? analysis::fmt(r.mean_abs_error_ms, 1) : "-",
    });
  }
  analysis::print_table(
      std::cout,
      quick ? "ablation: routing under short/long mix (quick: 48 nodes)"
            : "ablation: routing under short/long mix (96 nodes, 2 h)",
      {"policy", "seed", "completed", "warm-start", "p50 ms", "p95 ms",
       "p99 ms", "timeouts", "pred err ms"},
      rows);

  std::ofstream json{out_path};
  bench::write_meta_header(json, "ablation_routing", quick, base_seed);
  json << "  \"trials\": " << trials << ",\n"
       << "  \"long_share\": " << fmt_num(kLongShare) << ",\n"
       << "  \"long_duration_s\": " << kLongDurationS << ",\n"
       << "  \"legs\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = results[i];
    json << "    {\"mode\": \"" << to_string(legs[i].mode) << "\", \"seed\": "
         << legs[i].seed << ", \"issued\": " << r.issued
         << ", \"completed\": " << r.completed
         << ", \"timed_out\": " << r.timed_out
         << ", \"rejected_503\": " << r.rejected_503
         << ", \"requeues\": " << r.requeues
         << ", \"warm_start_rate\": " << fmt_num(r.warm_start_rate)
         << ", \"p50_ms\": " << fmt_num(r.p50_ms)
         << ", \"p95_ms\": " << fmt_num(r.p95_ms)
         << ", \"p99_ms\": " << fmt_num(r.p99_ms)
         << ", \"mean_ms\": " << fmt_num(r.mean_ms);
    if (r.has_sched) {
      json << ", \"sched\": {\"decisions\": " << r.sched_decisions
           << ", \"cold_routed\": " << r.sched_cold_routed
           << ", \"short_class\": " << r.sched_short_class
           << ", \"affinity_escaped\": " << r.sched_affinity_escaped
           << ", \"prior_hits\": " << r.prior_hits
           << ", \"error_observations\": " << r.error_observations
           << ", \"mean_abs_error_ms\": " << fmt_num(r.mean_abs_error_ms)
           << ", \"end_charges\": " << r.end_charges
           << ", \"end_backlog_ticks\": " << r.end_backlog_ticks
           << ", \"nonterminal\": " << r.nonterminal
           << ", \"orphan_charges\": " << r.orphan_charges << "}";
    }
    json << "}" << (i + 1 < legs.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"modes\": {\n";
  std::size_t k = 0;
  for (const whisk::RouteMode mode : sweep) {
    const Aggregate& a = agg[static_cast<int>(mode)];
    json << "    \"" << to_string(mode) << "\": {\"p95_ms\": "
         << fmt_num(a.p95_ms) << ", \"warm_start_rate\": " << fmt_num(a.warm)
         << "}" << (++k < sweep.size() ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"acceptance\": {\"candidate\": \"" << to_string(candidate)
       << "\", \"p95_beats_hash_probing\": " << (p95_beats ? "true" : "false")
       << ", \"warm_rate_not_worse\": " << (warm_not_worse ? "true" : "false")
       << ", \"acceptance_ok\": " << (acceptance_ok ? "true" : "false")
       << "}\n}\n";
  json.close();

  std::cout << "acceptance: " << to_string(candidate) << " p95 "
            << fmt_num(cand.p95_ms) << " ms vs hash-probing "
            << fmt_num(hash.p95_ms) << " ms, warm "
            << analysis::fmt_pct(cand.warm) << " vs "
            << analysis::fmt_pct(hash.warm) << " -> "
            << (acceptance_ok ? "OK" : "VIOLATED") << " (" << out_path << ")\n";
  return acceptance_ok ? 0 : 1;
}
