// Sec. IV-B calibration check: the pilot warm-up model (job start to
// healthy registration) must match the published measurement — median
// 12.48 s, 95th percentile 26.50 s — and the container runtimes must
// keep cold starts "usually under 500 ms" (Sec. II).

#include <iostream>

#include "hpcwhisk/analysis/report.hpp"
#include "hpcwhisk/analysis/stats.hpp"
#include "hpcwhisk/runtime/runtime_profile.hpp"
#include "hpcwhisk/sim/distributions.hpp"

using namespace hpcwhisk;

int main() {
  sim::Rng rng{1};

  // Warm-up model (what JobManager samples for every pilot).
  const sim::LognormalFromQuantiles warmup{12.48, 26.5, 0.95};
  std::vector<double> samples;
  samples.reserve(200'000);
  for (int i = 0; i < 200'000; ++i) samples.push_back(warmup.sample(rng));
  const auto s = analysis::summarize(samples);
  std::vector<double> sorted = samples;
  const double p95 = analysis::percentile(sorted, 0.95);

  analysis::print_table(
      std::cout, "pilot warm-up model (Sec. IV-B)",
      {"metric", "paper", "measured"},
      {
          {"median [s]", "12.48", analysis::fmt(s.p50, 2)},
          {"P95 [s]", "26.50", analysis::fmt(p95, 2)},
          {"mean [s]", "-", analysis::fmt(s.avg, 2)},
          {"share under 20 s (Table I assumption)", "-",
           analysis::fmt_pct(analysis::fraction_at_most(samples, 20.0))},
      });

  // Container cold starts for both runtimes.
  for (const auto kind :
       {runtime::RuntimeKind::kSingularity, runtime::RuntimeKind::kDocker}) {
    const auto profile = kind == runtime::RuntimeKind::kDocker
                             ? runtime::RuntimeProfile::docker()
                             : runtime::RuntimeProfile::singularity();
    std::vector<double> cold_ms;
    for (int i = 0; i < 100'000; ++i)
      cold_ms.push_back(profile.sample_cold_start(rng).to_seconds() * 1e3);
    const auto cs = analysis::summarize(cold_ms);
    analysis::print_table(
        std::cout,
        std::string("container cold start: ") + runtime::to_string(kind),
        {"metric", "paper", "measured"},
        {
            {"median [ms]", "'usually < 500'", analysis::fmt(cs.p50, 0)},
            {"share < 500 ms", "most",
             analysis::fmt_pct(analysis::fraction_at_most(cold_ms, 500.0))},
            {"needs root daemon", kind == runtime::RuntimeKind::kDocker
                                      ? "yes (why HPC-Whisk avoids it)"
                                      : "no (why HPC-Whisk uses it)",
             profile.requires_root_daemon() ? "yes" : "no"},
        });
  }
  return 0;
}
