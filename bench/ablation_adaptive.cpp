// Extension experiment (the paper's future work, Sec. VII): an adaptive
// job manager that periodically re-derives its fib length set from the
// quantiles of observed pilot serving durations, versus the static
// simulation-tuned set A1. Evaluated under the conservative hole-fitting
// placement, where length choice actually binds (with preempt-aware
// placement any length works — that robustness is itself a finding of
// the placement ablation).

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

namespace {

struct Variant {
  const char* name;
  bool adaptive;
  bool hole_observation;
};

}  // namespace

int main() {
  const std::vector<Variant> sweep{
      Variant{"static A1", false, false},
      Variant{"adaptive (serving durations)", true, false},
      Variant{"adaptive (hole observation)", true, true}};
  // Independent runs: fan out, gather rows in sweep order.
  const auto rows = exec::parallel_trials(
      sweep, [](const Variant& variant, std::ostream&) {
        bench::ExperimentConfig cfg;
        cfg.window = sim::SimTime::hours(16);
        cfg = bench::apply_env(cfg);

        sim::Simulation simulation;
        core::HpcWhiskSystem::Config sys_cfg;
        sys_cfg.seed = cfg.seed;
        sys_cfg.slurm.node_count = cfg.nodes;
        sys_cfg.slurm.pilot_placement = slurm::PilotPlacement::kHoleFitting;
        sys_cfg.manager.model = core::SupplyModel::kFib;
        sys_cfg.manager.adaptive = variant.adaptive;
        sys_cfg.manager.adapt_interval = sim::SimTime::minutes(60);
        analysis::NodeStateLog log{cfg.nodes, sim::SimTime::zero()};
        if (variant.hole_observation) {
          // Online Table-I: the manager re-derives its lengths from the
          // availability periods observed by the Slurm-level sampler over
          // the run so far.
          sys_cfg.manager.hole_sampler = [&log] {
            std::vector<double> minutes;
            for (const auto len : log.sampled_periods(
                     sim::SimTime::seconds(10),
                     {slurm::ObservedNodeState::kIdle,
                      slurm::ObservedNodeState::kPilot})) {
              minutes.push_back(len.to_minutes());
            }
            return minutes;
          };
        }
        core::HpcWhiskSystem system{simulation, sys_cfg};
        trace::HpcWorkloadGenerator workload{
            simulation, system.slurm(), {},
            sim::Rng{cfg.seed ^ 0x9E3779B9ULL}};
        system.slurm().set_node_observer(
            [&log](const slurm::NodeTransition& t) { log.record(t); });
        workload.start();
        system.start();
        const auto end = cfg.burn_in + cfg.window;
        simulation.run_until(end);
        log.finalize(end);

        std::vector<analysis::StateCounts> samples;
        for (const auto& s : log.sample_counts(sim::SimTime::seconds(10)))
          if (s.at >= cfg.burn_in) samples.push_back(s);
        const auto report = analysis::slurm_level_report(samples);

        std::string lengths;
        for (const auto len : system.manager().fib_lengths()) {
          if (!lengths.empty()) lengths += ",";
          lengths += analysis::fmt(len.to_minutes(), 0);
        }
        return std::vector<std::string>{
            variant.name,
            analysis::fmt_pct(report.coverage),
            analysis::fmt(report.pilot_workers.avg, 2),
            std::to_string(system.manager().counters().started),
            std::to_string(system.manager().adaptations()),
            lengths,
        };
      });
  analysis::print_table(
      std::cout,
      "extension: adaptive fib lengths vs static A1 (hole-fitting, 16 h)",
      {"manager", "coverage", "avg workers", "pilots started", "adaptations",
       "final lengths [min]"},
      rows);
  std::cout << "the adaptive manager learns the cluster's hole structure "
               "instead of\nrequiring the offline Table-I tuning pass.\n";
  return 0;
}
