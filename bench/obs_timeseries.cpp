// Harvest-efficiency and time-series report: one traced fib production
// day with the short/long FaaS mix under a data-driven routing policy,
// reported through the second observability tier.
//
// What it emits:
//  * a harvest-efficiency account (Sec. I's value proposition, made
//    measurable): how the node-time pilots occupied splits into serving
//    FaaS vs warm-up, drain and preempt-wasted overheads, plus the
//    node-seconds the commercial cloud absorbed;
//  * the sampled sim-time series (node timeline, container-pool
//    occupancy, invoker in-flight/queue depth) as a JSONL artifact and a
//    per-series summary in BENCH_obs_timeseries.json;
//  * the structured per-routing-decision "why" records as JSONL.
//
// The exit code enforces the tier's contracts: every series stays within
// its bounded capacity, sampling actually swept, the decision log holds
// self-consistent records (chosen is a real invoker, the runner-up —
// when present — differs and never beat the chosen cost), and the
// harvest ledger accrued serving time.
//
//   HW_BENCH_QUICK=1            quarter-scale run (CI smoke)
//   HW_SEED=<n>                 base RNG seed (default 1)
//   HW_OBS_TS_OUT=<p>           report path (default BENCH_obs_timeseries.json)
//   HW_OBS_TS_SERIES_OUT=<p>    series JSONL path (default obs_timeseries.jsonl)
//   HW_OBS_TS_DECISIONS_OUT=<p> decisions JSONL (default obs_decisions.jsonl)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/bench_json.hpp"
#include "common/experiment.hpp"
#include "hpcwhisk/obs/export.hpp"

using namespace hpcwhisk;

namespace {

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

}  // namespace

int main() {
  const bool quick = std::getenv("HW_BENCH_QUICK") != nullptr;
  const std::string out_path =
      env_or("HW_OBS_TS_OUT", "BENCH_obs_timeseries.json");
  const std::string series_path =
      env_or("HW_OBS_TS_SERIES_OUT", "obs_timeseries.jsonl");
  const std::string decisions_path =
      env_or("HW_OBS_TS_DECISIONS_OUT", "obs_decisions.jsonl");

  // The canonical fib day with the heterogeneous FaaS mix, routed by the
  // data-driven policy so every decision carries a full "why" record.
  bench::ExperimentConfig cfg;
  cfg.pilots = core::SupplyModel::kFib;
  cfg.faas_qps = 10.0;
  cfg.faas_functions = 100;
  cfg.faas_long_share = 0.3;
  cfg.faas_long_duration = sim::SimTime::seconds(45);
  cfg.route_mode = whisk::RouteMode::kLeastExpectedWork;
  cfg.observe = true;
  cfg = bench::apply_env(cfg);

  const bench::ExperimentResult result = bench::run_experiment(cfg);
  const obs::Observability& obs = *result.obs;
  const core::JobManager::HarvestStats& hv = result.system->manager().harvest();
  sim::SimTime cloud_offload;
  for (const cloud::LambdaService::InvocationRecord& inv :
       result.system->commercial().invocations()) {
    cloud_offload += inv.internal_duration;
  }

  obs::ExportInfo info;
  info.run = "obs_timeseries";
  info.seed = cfg.seed;
  {
    std::ofstream os{series_path};
    obs::write_timeseries_jsonl(os, obs.series, info);
  }
  {
    std::ofstream os{decisions_path};
    obs::write_decisions_jsonl(os, obs.decisions, info);
  }

  // ---- contracts -------------------------------------------------------
  bool series_ok = !obs.series.series().empty() && obs.series.sweeps() > 0;
  for (const obs::Series& s : obs.series.series()) {
    if (s.samples().size() > obs::TimeSeriesRecorder::kDefaultCapacity ||
        s.appended() == 0) {
      series_ok = false;
      std::cerr << "series contract violated: " << s.name() << " ("
                << s.samples().size() << " stored, " << s.appended()
                << " appended)\n";
    }
  }

  bool decisions_ok = obs.decisions.recorded() > 0;
  for (const obs::RouteDecision& d : obs.decisions.decisions()) {
    const bool has_runner = d.runner_up != obs::RouteDecision::kNone;
    if (d.chosen == obs::RouteDecision::kNone ||
        (has_runner && d.runner_up == d.chosen) ||
        (has_runner && d.runner_up_cost_ticks < d.chosen_cost_ticks)) {
      decisions_ok = false;
      std::cerr << "decision contract violated: call " << d.call
                << " chosen " << d.chosen << " runner_up " << d.runner_up
                << " costs " << d.chosen_cost_ticks << "/"
                << d.runner_up_cost_ticks << "\n";
      break;
    }
  }

  const double total_node_s =
      (hv.harvested + hv.warmup_overhead + hv.drain_overhead +
       hv.preempt_wasted)
          .to_seconds();
  const bool harvest_ok = hv.harvested.to_seconds() > 0 &&
                          hv.pilots_served > 0 && hv.efficiency() > 0.0 &&
                          hv.efficiency() <= 1.0;

  // ---- report ----------------------------------------------------------
  std::cout << "harvest efficiency (" << (quick ? "quick" : "full")
            << " fib day, least-expected-work)\n"
            << "  harvested (serving FaaS)  " << fmt_num(hv.harvested.to_seconds())
            << " node-s\n"
            << "  warm-up overhead          "
            << fmt_num(hv.warmup_overhead.to_seconds()) << " node-s\n"
            << "  drain overhead            "
            << fmt_num(hv.drain_overhead.to_seconds()) << " node-s\n"
            << "  preempt-wasted            "
            << fmt_num(hv.preempt_wasted.to_seconds()) << " node-s\n"
            << "  efficiency                " << fmt_num(hv.efficiency() * 100)
            << "% of " << fmt_num(total_node_s) << " occupied node-s ("
            << hv.pilots_served << " pilots served, " << hv.pilots_never_served
            << " wasted)\n"
            << "  cloud offload             " << fmt_num(cloud_offload.to_seconds())
            << " node-s\n"
            << "series (" << obs.series.sweeps() << " sweeps):\n";
  for (const obs::Series& s : obs.series.series()) {
    std::cout << "  " << s.name() << ": " << s.samples().size()
              << " stored / " << s.appended() << " raw (stride " << s.stride()
              << "), last " << fmt_num(s.last()) << "\n";
  }
  std::cout << "decisions: " << obs.decisions.recorded() << " recorded ("
            << obs.decisions.dropped() << " dropped)\n";

  std::ofstream json{out_path};
  bench::write_meta_header(json, "obs_timeseries", quick, cfg.seed);
  json << "  \"route_mode\": \"" << whisk::to_string(cfg.route_mode)
       << "\",\n"
       << "  \"events\": " << result.simulation->executed_events() << ",\n"
       << "  \"harvest\": {"
       << "\"harvested_node_s\": " << fmt_num(hv.harvested.to_seconds())
       << ", \"warmup_overhead_s\": " << fmt_num(hv.warmup_overhead.to_seconds())
       << ", \"drain_overhead_s\": " << fmt_num(hv.drain_overhead.to_seconds())
       << ", \"preempt_wasted_s\": " << fmt_num(hv.preempt_wasted.to_seconds())
       << ", \"efficiency\": " << fmt_num(hv.efficiency())
       << ", \"pilots_served\": " << hv.pilots_served
       << ", \"pilots_never_served\": " << hv.pilots_never_served
       << ", \"cloud_offload_s\": " << fmt_num(cloud_offload.to_seconds())
       << "},\n"
       << "  \"sweeps\": " << obs.series.sweeps() << ",\n"
       << "  \"decisions_recorded\": " << obs.decisions.recorded() << ",\n"
       << "  \"decisions_dropped\": " << obs.decisions.dropped() << ",\n"
       << "  \"series\": [\n";
  const auto& all = obs.series.series();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const obs::Series& s = all[i];
    json << "    {\"name\": \"" << s.name() << "\", \"points\": "
         << s.samples().size() << ", \"appended\": " << s.appended()
         << ", \"stride\": " << s.stride() << ", \"last\": "
         << fmt_num(s.last()) << "}" << (i + 1 < all.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n"
       << "  \"series_ok\": " << (series_ok ? "true" : "false") << ",\n"
       << "  \"decisions_ok\": " << (decisions_ok ? "true" : "false") << ",\n"
       << "  \"harvest_ok\": " << (harvest_ok ? "true" : "false") << "\n}\n";
  json.close();

  std::cout << "wrote " << out_path << ", " << series_path << ", "
            << decisions_path << "\n";
  const bool ok = series_ok && decisions_ok && harvest_ok;
  if (!ok) std::cerr << "obs_timeseries: contract check FAILED\n";
  return ok ? 0 : 1;
}
