#pragma once
// Shared experiment driver for the reproduction benches: wires the full
// HPC-Whisk system (Fig. 4) to the calibrated Prometheus-like workload,
// runs a burn-in plus a measured window, and returns every log the
// paper's three perspectives need.
//
// Environment knobs (all optional):
//   HW_BENCH_QUICK=1    quarter-scale cluster and window (smoke runs)
//   HW_SEED=<n>         base RNG seed (default 1)
//   HW_BENCH_TRIALS=<n> seed-sweep width for the table benches (default 1)
//   HW_BENCH_JOBS=<n>   worker threads for independent trials (default
//                       hardware concurrency; 1 = serial)
//   HW_ROUTE_MODE=<m>   controller routing policy by to_string name
//                       (hash-probing, hash-only, round-robin,
//                       least-loaded, least-expected-work, sjf-affinity)
//   HW_LEASE=1          enable the lease-based serving tier
//   HW_KEEPALIVE=<p>    container keep-alive policy by to_string name
//                       (fixed, adaptive, hybrid)
//   HW_TRES=1           per-TRES packing (fractional-node harvesting)
//   HW_RESV=1           rolling maintenance reservations (implies TRES)
//   HW_QOS=1            two-tier QOS pilot preemption (implies TRES)

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hpcwhisk/exec/parallel_trials.hpp"

#include "hpcwhisk/analysis/clairvoyant.hpp"
#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/analysis/report.hpp"
#include "hpcwhisk/analysis/stats.hpp"
#include "hpcwhisk/core/job_manager.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/lease/lease_manager.hpp"
#include "hpcwhisk/runtime/container_pool.hpp"
#include "hpcwhisk/obs/observability.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"

namespace hpcwhisk::bench {

struct ExperimentConfig {
  /// Cluster size (Prometheus main partition).
  std::uint32_t nodes{2239};
  /// Burn-in discarded before measurement (cluster fill-up).
  sim::SimTime burn_in{sim::SimTime::hours(4)};
  /// Measured window (the paper's experiments run 24 h).
  sim::SimTime window{sim::SimTime::hours(24)};
  /// Pilot supply model; nullopt = no pilots (baseline idleness runs).
  std::optional<core::SupplyModel> pilots;
  /// FaaS load (the responsiveness experiment): QPS over `faas_functions`
  /// distinct 10 ms sleep functions; 0 = no FaaS load.
  double faas_qps{0.0};
  std::size_t faas_functions{100};
  std::uint64_t seed{1};
  /// Extra tuning hooks.
  slurm::PilotPlacement placement{slurm::PilotPlacement::kPreemptAware};
  sim::SimTime grace{sim::SimTime::minutes(3)};
  std::size_t fib_per_length{10};
  std::vector<sim::SimTime> fib_lengths;  // empty => set A1
  sim::SimTime replenish_interval{sim::SimTime::seconds(15)};

  /// Observability: when true the run carries a per-trial
  /// obs::Observability sink (span trace + metrics) wired into every
  /// component; the result owns it. Per-trial sinks — never a shared
  /// one — keep exec::parallel_trials byte-identical with serial runs.
  bool observe{false};
  std::size_t trace_capacity{obs::TraceCollector::kDefaultCapacity};

  /// Federation width for the federation bench: number of HPC-Whisk
  /// clusters behind one fed::FederatedGateway (HW_FED_CLUSTERS
  /// overrides). 0 means the bench's own default sweep.
  std::size_t fed_clusters{0};

  /// Controller routing policy (the routing-ablation axis). The
  /// data-driven modes also honor `sched`. HW_ROUTE_MODE overrides.
  whisk::RouteMode route_mode{whisk::RouteMode::kHashProbing};
  /// Estimator / policy knobs for the data-driven route modes.
  sched::SchedConfig sched{};
  /// Invoker dispatch gate (whisk::Invoker::Config::max_concurrent);
  /// 0 keeps the component default. The routing ablation shrinks it so
  /// queueing — the thing the policies differ on — actually occurs.
  std::size_t invoker_concurrency{0};
  /// kHashProbing saturation threshold (Controller::Config::
  /// invoker_slots); 0 keeps the component default.
  std::uint32_t invoker_slots{0};

  /// Share of the FaaS functions re-registered as long-running
  /// (interruptible) actions of `faas_long_duration`: long executions
  /// are what drains actually interrupt, so this exercises the
  /// fast-lane reroute path that 10 ms sleeps almost never hit.
  double faas_long_share{0.0};
  sim::SimTime faas_long_duration{sim::SimTime::seconds(30)};

  /// Lease-based serving tier (Controller::Config::lease); disabled by
  /// default. HW_LEASE=1 flips `lease.enabled`.
  lease::LeaseConfig lease{};
  /// Container keep-alive policy for every invoker pool
  /// (ContainerPool::Config::keep_alive). HW_KEEPALIVE overrides the
  /// policy by name.
  runtime::KeepAliveConfig keep_alive{};
  /// Skewed FaaS popularity: share of arrivals drawn from the first
  /// `faas_hot_functions` names (0 keeps the uniform round-robin and an
  /// unchanged arrival sequence). The hot-function mix the lease tier
  /// is designed for.
  double faas_hot_share{0.0};
  std::size_t faas_hot_functions{8};

  /// Slurm-fidelity layer (ROADMAP item 4). Everything defaults OFF:
  /// with `tres` false none of the other members are read and legacy
  /// configs stay byte-identical (the golden decision-log pin enforces
  /// this). The geometry mirrors the SimCheck sampler's center draw.
  struct FidelityKnobs {
    /// Per-TRES packing: nodes carry a capacity vector, HPC jobs draw a
    /// whole/half/quarter-node mix, and pilots become fractional slices
    /// that co-reside with prime work (fractional-node harvesting).
    bool tres{false};
    slurm::TresVector node_capacity{8, 32000, 0};
    slurm::TresVector pilot_tres{2, 8000, 0};
    /// Rolling maintenance windows: every `reservation_period`, the
    /// first `reservation_nodes` nodes leave both supplies for
    /// `reservation_length`. Requires `tres`.
    bool reservations{false};
    sim::SimTime reservation_period{sim::SimTime::hours(2)};
    sim::SimTime reservation_length{sim::SimTime::minutes(15)};
    std::uint32_t reservation_nodes{0};  ///< 0 = nodes/16
    /// Two-tier QOS for pilots: short fib lengths ride "pilot-low",
    /// the longest rides "pilot-high" (never evicted by a lower tier).
    /// Requires `tres`.
    bool qos_preempt{false};
  };
  FidelityKnobs fidelity{};
};

/// Applies HW_BENCH_QUICK / HW_SEED to a config.
ExperimentConfig apply_env(ExperimentConfig cfg);

/// Seed-sweep width for the table benches: HW_BENCH_TRIALS, default 1.
std::size_t trial_count();

/// `n` copies of `base` with seeds base.seed, base.seed+1, ... — the unit
/// of work for exec::parallel_trials.
std::vector<ExperimentConfig> seed_sweep(ExperimentConfig base, std::size_t n);

struct ExperimentResult {
  /// Trace + metrics sink for this trial (null unless cfg.observe).
  /// Declared first: components record into it from their destructors
  /// (drain hand-offs in pilot teardown), so it must be destroyed last.
  std::unique_ptr<obs::Observability> obs;

  sim::SimTime measure_start;
  sim::SimTime measure_end;
  /// Ground-truth node-state log over the whole run (burn-in included;
  /// filter samples by measure_start).
  std::unique_ptr<analysis::NodeStateLog> log;
  /// Slurm-level samples (10 s), measurement window only.
  std::vector<analysis::StateCounts> samples;
  /// The live system (activation records, counters, manager stats).
  std::unique_ptr<sim::Simulation> simulation;
  std::unique_ptr<core::HpcWhiskSystem> system;
  std::unique_ptr<trace::HpcWorkloadGenerator> workload;
  std::uint64_t faas_issued{0};

  /// Steady-state telemetry over the measured window only (burn-in and
  /// wiring excluded): events executed, and heap allocations as seen by
  /// the alloc probe. allocs_in_window stays 0 (and alloc_probe_active
  /// false) unless the binary links bench/common/alloc_probe.cpp — the
  /// perf binaries do, the test suite does not.
  std::uint64_t events_in_window{0};
  std::uint64_t allocs_in_window{0};
  bool alloc_probe_active{false};

  /// OW-level perspective sampled every 10 s during the window:
  /// healthy / warming / unresponsive invoker counts.
  struct OwSample {
    sim::SimTime at;
    std::uint32_t warming{0};
    std::uint32_t healthy{0};
    std::uint32_t unresponsive{0};
  };
  std::vector<OwSample> ow_samples;
};

/// Runs the experiment to completion and collects all perspectives.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// The paper's three-perspective coverage summary (Tables II/III).
struct CoverageSummary {
  analysis::ClairvoyantSimulator::Result simulation;  ///< a-posteriori bound
  analysis::SlurmLevelReport slurm_level;
  analysis::Summary ow_healthy;
  analysis::Summary ow_warming;
  analysis::Summary ow_unresponsive;
  double ow_zero_healthy_share{0};
  sim::SimTime ow_longest_zero_healthy;
};

CoverageSummary summarize_coverage(const ExperimentResult& result,
                                   const std::vector<sim::SimTime>& lengths,
                                   sim::SimTime max_job_length);

/// Prints a Table II / III style comparison.
void print_coverage_table(std::ostream& os, const std::string& title,
                          const CoverageSummary& summary);

}  // namespace hpcwhisk::bench
