#include "common/bench_json.hpp"

#include <thread>

namespace hpcwhisk::bench {

void write_meta_header(std::ostream& os, const char* bench, bool quick,
                       std::uint64_t seed) {
  os << "{\n"
     << "  \"schema_version\": " << kBenchSchemaVersion << ",\n"
     << "  \"bench\": \"" << bench << "\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"seed\": " << seed << ",\n"
     << "  \"hw_threads\": " << std::thread::hardware_concurrency() << ",\n";
}

}  // namespace hpcwhisk::bench
