#include "experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>

#include "common/alloc_probe.hpp"

namespace hpcwhisk::bench {

// Weak fallbacks: binaries that don't link alloc_probe.cpp (everything
// except the perf benches) see a dead probe. The strong definitions in
// alloc_probe.cpp win at link time.
__attribute__((weak)) std::uint64_t alloc_probe_count() { return 0; }
__attribute__((weak)) bool alloc_probe_enabled() { return false; }

ExperimentConfig apply_env(ExperimentConfig cfg) {
  if (std::getenv("HW_BENCH_QUICK") != nullptr) {
    cfg.nodes = std::max<std::uint32_t>(64, cfg.nodes / 4);
    cfg.window = sim::SimTime::seconds(cfg.window.to_seconds() / 4.0);
    cfg.burn_in = sim::SimTime::hours(2);
  }
  if (const char* seed = std::getenv("HW_SEED")) {
    cfg.seed = static_cast<std::uint64_t>(std::strtoull(seed, nullptr, 10));
  }
  if (const char* fed = std::getenv("HW_FED_CLUSTERS")) {
    const unsigned long n = std::strtoul(fed, nullptr, 10);
    if (n > 0) cfg.fed_clusters = static_cast<std::size_t>(n);
  }
  if (const char* mode = std::getenv("HW_ROUTE_MODE")) {
    if (const auto parsed = whisk::route_mode_from_string(mode))
      cfg.route_mode = *parsed;
  }
  if (std::getenv("HW_LEASE") != nullptr) cfg.lease.enabled = true;
  if (const char* ka = std::getenv("HW_KEEPALIVE")) {
    if (const auto parsed = runtime::keep_alive_policy_from_string(ka))
      cfg.keep_alive.policy = *parsed;
  }
  if (std::getenv("HW_TRES") != nullptr) cfg.fidelity.tres = true;
  if (std::getenv("HW_RESV") != nullptr) {
    cfg.fidelity.tres = true;
    cfg.fidelity.reservations = true;
  }
  if (std::getenv("HW_QOS") != nullptr) {
    cfg.fidelity.tres = true;
    cfg.fidelity.qos_preempt = true;
  }
  return cfg;
}

std::size_t trial_count() {
  if (const char* env = std::getenv("HW_BENCH_TRIALS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 1;
}

std::vector<ExperimentConfig> seed_sweep(ExperimentConfig base,
                                         std::size_t n) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    configs.push_back(base);
    configs.back().seed = base.seed + i;
  }
  return configs;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  ExperimentResult result;
  result.simulation = std::make_unique<sim::Simulation>();
  sim::Simulation& simulation = *result.simulation;

  if (cfg.observe) {
    obs::Observability::Config obs_cfg;
    obs_cfg.trace_capacity = cfg.trace_capacity;
    result.obs = std::make_unique<obs::Observability>(obs_cfg);
    result.obs->metrics.add_collector(
        [sim = &simulation](obs::MetricsRegistry& m) {
          m.gauge("sim.executed_events")
              .set(static_cast<double>(sim->executed_events()));
          m.gauge("sim.pending_events")
              .set(static_cast<double>(sim->pending_events()));
        });
  }

  core::HpcWhiskSystem::Config sys_cfg;
  sys_cfg.obs = result.obs.get();
  sys_cfg.seed = cfg.seed;
  sys_cfg.slurm.node_count = cfg.nodes;
  sys_cfg.partitions = core::default_partitions(cfg.grace);
  sys_cfg.slurm.pilot_placement = cfg.placement;
  sys_cfg.controller.route_mode = cfg.route_mode;
  sys_cfg.controller.sched = cfg.sched;
  sys_cfg.controller.lease = cfg.lease;
  sys_cfg.manager.invoker.pool.keep_alive = cfg.keep_alive;
  if (cfg.invoker_concurrency > 0)
    sys_cfg.manager.invoker.max_concurrent = cfg.invoker_concurrency;
  if (cfg.invoker_slots > 0)
    sys_cfg.controller.invoker_slots = cfg.invoker_slots;
  sys_cfg.manager.model = cfg.pilots.value_or(core::SupplyModel::kFib);
  sys_cfg.manager.fib_per_length = cfg.fib_per_length;
  sys_cfg.manager.replenish_interval = cfg.replenish_interval;
  if (!cfg.fib_lengths.empty()) sys_cfg.manager.fib_lengths = cfg.fib_lengths;

  // Slurm-fidelity layer: nothing below runs unless fidelity.tres is on,
  // so legacy configs keep their exact construction (golden-pinned).
  if (cfg.fidelity.tres) {
    sys_cfg.slurm.fidelity.tres_mode = true;
    sys_cfg.slurm.fidelity.node_capacity = cfg.fidelity.node_capacity;
    sys_cfg.manager.pilot_tres = cfg.fidelity.pilot_tres;
    if (cfg.fidelity.qos_preempt) {
      // pilot-low is sacrificial (dies before plain tier-0 pilots);
      // pilot-high matches the HPC partition tier, so the longest-fib
      // pilots are protected from HPC preemption (DESIGN.md §17).
      sys_cfg.slurm.fidelity.qos.push_back({"pilot-low", -1, 0, 1.0});
      sys_cfg.slurm.fidelity.qos.push_back({"pilot-high", 1, 0, 1.0});
      sys_cfg.manager.pilot_qos = "pilot-low";
      sys_cfg.manager.pilot_qos_long = "pilot-high";
    }
    if (cfg.fidelity.reservations) {
      const std::uint32_t width =
          cfg.fidelity.reservation_nodes > 0
              ? cfg.fidelity.reservation_nodes
              : std::max<std::uint32_t>(1, cfg.nodes / 16);
      const sim::SimTime end_of_run = cfg.burn_in + cfg.window;
      for (sim::SimTime at = cfg.fidelity.reservation_period; at < end_of_run;
           at += cfg.fidelity.reservation_period) {
        slurm::Reservation r;
        r.name = "maint-" + std::to_string(at.ticks());
        r.start = at;
        r.end = at + cfg.fidelity.reservation_length;
        r.nodes.resize(std::min(width, cfg.nodes));
        for (std::uint32_t n = 0; n < r.nodes.size(); ++n) r.nodes[n] = n;
        sys_cfg.slurm.fidelity.reservations.push_back(std::move(r));
      }
    }
  }
  result.system = std::make_unique<core::HpcWhiskSystem>(simulation, sys_cfg);
  core::HpcWhiskSystem& system = *result.system;

  trace::HpcWorkloadGenerator::Config wl_cfg;
  if (cfg.fidelity.tres) {
    // Whole/half/quarter-node HPC mix: the partial nodes whose leftover
    // TRES the fractional pilots harvest.
    const slurm::TresVector full = cfg.fidelity.node_capacity;
    const slurm::TresVector half{std::max(1u, full.cpus / 2),
                                 std::max(1u, full.mem_mb / 2), full.gres / 2};
    const slurm::TresVector quarter{std::max(1u, full.cpus / 4),
                                    std::max(1u, full.mem_mb / 4),
                                    full.gres / 4};
    wl_cfg.tres_buckets = {{full, 0.5}, {half, 0.3}, {quarter, 0.2}};
  }
  result.workload = std::make_unique<trace::HpcWorkloadGenerator>(
      simulation, system.slurm(), wl_cfg, sim::Rng{cfg.seed ^ 0x9E3779B9ULL});

  result.log =
      std::make_unique<analysis::NodeStateLog>(cfg.nodes, sim::SimTime::zero());
  system.slurm().set_node_observer(
      [log = result.log.get()](const slurm::NodeTransition& t) {
        log->record(t);
      });

  result.measure_start = cfg.burn_in;
  result.measure_end = cfg.burn_in + cfg.window;

  result.workload->start();
  if (cfg.pilots.has_value()) system.start();

  // Time-series tier: sampled signals registered against the recorder,
  // polled by the existing 10 s OW sampler below. Sampling must never
  // schedule its own events — the executed-event count is part of the
  // decision log, so an obs-only event would break traced/untraced
  // identity.
  if (result.obs != nullptr) {
    obs::TimeSeriesRecorder& ts = result.obs->series;
    slurm::Slurmctld* ctld = &system.slurm();
    core::JobManager* mgr = &system.manager();
    whisk::Controller* ctrl = &system.controller();
    // Node timeline: the idle-capacity signal a predictive pilot supply
    // would forecast from (ROADMAP item 5).
    ts.add_sampled("slurm.nodes_idle", [ctld] {
      return static_cast<double>(ctld->state_totals().idle);
    });
    ts.add_sampled("slurm.nodes_hpc", [ctld] {
      return static_cast<double>(ctld->state_totals().hpc);
    });
    ts.add_sampled("slurm.nodes_pilot", [ctld] {
      return static_cast<double>(ctld->state_totals().pilot);
    });
    ts.add_sampled("slurm.nodes_available", [ctld] {
      return static_cast<double>(ctld->state_totals().available());
    });
    // Pilot phases and harvest accumulation.
    ts.add_sampled("pilot.warming", [mgr] {
      return static_cast<double>(mgr->phase_counts().warming_up);
    });
    ts.add_sampled("pilot.serving", [mgr] {
      return static_cast<double>(mgr->phase_counts().serving);
    });
    ts.add_sampled("pilot.draining", [mgr] {
      return static_cast<double>(mgr->phase_counts().draining);
    });
    ts.add_sampled("harvest.harvested_node_s", [mgr] {
      return mgr->harvest().harvested.to_seconds();
    });
    ts.add_sampled("harvest.preempt_wasted_s", [mgr] {
      return mgr->harvest().preempt_wasted.to_seconds();
    });
    // Container-pool occupancy across serving invokers.
    ts.add_sampled("pool.containers_total", [mgr] {
      double n = 0;
      for (const whisk::Invoker* inv : mgr->serving_invokers())
        n += static_cast<double>(inv->pool().total_containers());
      return n;
    });
    ts.add_sampled("pool.containers_busy", [mgr] {
      double n = 0;
      for (const whisk::Invoker* inv : mgr->serving_invokers())
        n += static_cast<double>(inv->pool().busy_containers());
      return n;
    });
    ts.add_sampled("pool.prewarmed", [mgr] {
      double n = 0;
      for (const whisk::Invoker* inv : mgr->serving_invokers())
        n += static_cast<double>(inv->pool().prewarmed_containers());
      return n;
    });
    // Invoker load as the controller sees it.
    ts.add_sampled("whisk.inflight", [ctrl] {
      return static_cast<double>(ctrl->total_in_flight());
    });
    ts.add_sampled("whisk.queue_depth", [ctrl] {
      return static_cast<double>(ctrl->queued_messages());
    });
    ts.add_sampled("whisk.healthy_invokers", [ctrl] {
      return static_cast<double>(ctrl->healthy_count());
    });
    // Cumulative cold/warm counts: registry counters are shared by name
    // across invokers, so they survive pilot churn (lease-tier signal,
    // ROADMAP item 3).
    obs::Counter* cold = &result.obs->metrics.counter("whisk.invoker.cold_starts");
    obs::Counter* warm = &result.obs->metrics.counter("whisk.invoker.warm_hits");
    ts.add_sampled("whisk.cold_starts_total", [cold] {
      return static_cast<double>(cold->value());
    });
    ts.add_sampled("whisk.warm_hits_total", [warm] {
      return static_cast<double>(warm->value());
    });
  }

  // Steady-state window baseline: captured when the clock crosses into
  // the measured window, so burn-in (slab growth, topic creation, scratch
  // sizing) doesn't count against allocs-per-event.
  auto window_base =
      std::make_shared<std::pair<std::uint64_t, std::uint64_t>>(0, 0);
  simulation.at(result.measure_start, [&simulation, window_base] {
    window_base->first = alloc_probe_count();
    window_base->second = simulation.executed_events();
  });

  // OW-level sampler (10 s) during the measurement window. All lambda
  // state is shared_ptr-owned: the result object is returned by value and
  // must not be captured by reference in pending events.
  auto ow_samples = std::make_shared<std::vector<ExperimentResult::OwSample>>();
  const sim::SimTime measure_end = result.measure_end;
  if (cfg.pilots.has_value()) {
    obs::Observability* obs = result.obs.get();
    simulation.at(result.measure_start, [&simulation, &system, ow_samples,
                                         measure_end, obs] {
      auto sampler = std::make_shared<sim::PeriodicHandle>();
      *sampler = simulation.every(
          sim::SimTime::seconds(10),
          [&simulation, &system, ow_samples, measure_end, sampler, obs] {
            if (simulation.now() > measure_end) {
              sampler->stop();
              return;
            }
            // Piggyback the time-series sweep on this pre-existing tick:
            // it runs identically with obs off, so event counts match.
            if (obs != nullptr) obs->series.sample_all(simulation.now());
            ExperimentResult::OwSample s;
            s.at = simulation.now();
            const auto phases = system.manager().phase_counts();
            s.warming = static_cast<std::uint32_t>(phases.warming_up);
            s.healthy =
                static_cast<std::uint32_t>(system.controller().healthy_count());
            s.unresponsive =
                static_cast<std::uint32_t>(system.controller().count_with_health(
                    whisk::InvokerHealth::kUnresponsive));
            ow_samples->push_back(s);
          });
    });
  }

  // FaaS load during the measurement window.
  std::shared_ptr<trace::FaasLoadGenerator> faas;
  if (cfg.faas_qps > 0) {
    const auto names = trace::register_sleep_functions(system.functions(),
                                                       cfg.faas_functions);
    // Re-register a share of the fleet as long-running interruptible
    // actions: long executions are the ones live drains interrupt and
    // reroute, which 10 ms sleeps essentially never exercise.
    if (cfg.faas_long_share > 0) {
      const std::size_t n_long = std::min(
          names.size(), static_cast<std::size_t>(
                            cfg.faas_long_share *
                            static_cast<double>(names.size())));
      for (std::size_t i = 0; i < n_long; ++i) {
        system.functions().put(
            whisk::fixed_duration_function(names[i], cfg.faas_long_duration));
      }
    }
    trace::FaasLoadGenerator::Config faas_cfg;
    faas_cfg.rate_qps = cfg.faas_qps;
    faas_cfg.functions = names;
    faas_cfg.hot_share = cfg.faas_hot_share;
    faas_cfg.hot_count = cfg.faas_hot_functions;
    faas = std::make_shared<trace::FaasLoadGenerator>(
        simulation, faas_cfg,
        [&system](const std::string& fn) { (void)system.controller().submit(fn); },
        sim::Rng{cfg.seed ^ 0xC0FFEEULL});
    simulation.at(result.measure_start,
                  [faas, measure_end] { faas->start(measure_end); });
  }

  simulation.run_until(result.measure_end);
  result.alloc_probe_active = alloc_probe_enabled();
  result.allocs_in_window = alloc_probe_count() - window_base->first;
  result.events_in_window =
      simulation.executed_events() - window_base->second;
  result.log->finalize(result.measure_end);
  result.ow_samples = std::move(*ow_samples);
  if (faas) result.faas_issued = faas->issued();

  const auto all = result.log->sample_counts(sim::SimTime::seconds(10));
  result.samples.reserve(all.size());
  for (const auto& s : all) {
    if (s.at >= result.measure_start) result.samples.push_back(s);
  }
  return result;
}

CoverageSummary summarize_coverage(const ExperimentResult& result,
                                   const std::vector<sim::SimTime>& lengths,
                                   sim::SimTime max_job_length) {
  CoverageSummary out;
  // A-posteriori clairvoyant bound over the run's own availability log,
  // restricted to the measurement window (paper Sec. IV-A "Simulation").
  analysis::ClairvoyantSimulator::Config sim_cfg;
  sim_cfg.job_lengths = lengths;
  sim_cfg.max_job_length = max_job_length;
  sim_cfg.allow_preemption_cut = true;  // pilots are preemptible
  analysis::ClairvoyantSimulator clairvoyant{sim_cfg};
  // Like the paper, the a-posteriori simulation works from the sampled
  // Slurm-level logs, not second-accurate ground truth.
  const auto periods = result.log->sampled_period_intervals(
      sim::SimTime::seconds(10),
      {slurm::ObservedNodeState::kIdle, slurm::ObservedNodeState::kPilot});
  out.simulation =
      clairvoyant.run(periods, result.measure_start, result.measure_end);

  out.slurm_level = analysis::slurm_level_report(result.samples);

  std::vector<double> healthy, warming, unresp;
  std::size_t zero = 0, zero_run = 0, longest = 0;
  for (const auto& s : result.ow_samples) {
    healthy.push_back(s.healthy);
    warming.push_back(s.warming);
    unresp.push_back(s.unresponsive);
    if (s.healthy == 0) {
      ++zero;
      longest = std::max(longest, ++zero_run);
    } else {
      zero_run = 0;
    }
  }
  out.ow_healthy = analysis::summarize(healthy);
  out.ow_warming = analysis::summarize(warming);
  out.ow_unresponsive = analysis::summarize(unresp);
  out.ow_zero_healthy_share =
      result.ow_samples.empty()
          ? 0.0
          : static_cast<double>(zero) /
                static_cast<double>(result.ow_samples.size());
  out.ow_longest_zero_healthy =
      sim::SimTime::seconds(10.0 * static_cast<double>(longest));
  return out;
}

void print_coverage_table(std::ostream& os, const std::string& title,
                          const CoverageSummary& s) {
  using analysis::fmt;
  using analysis::fmt_pct;
  analysis::print_table(
      os, title,
      {"perspective", "state", "25%", "50%", "75%", "avg", "share of idle",
       "not used"},
      {
          {"Simulation", "warm up", fmt(s.simulation.warming_workers.p25, 0),
           fmt(s.simulation.warming_workers.p50, 0),
           fmt(s.simulation.warming_workers.p75, 0),
           fmt(s.simulation.warming_workers.avg, 2),
           fmt_pct(s.simulation.warmup_share), ""},
          {"Simulation", "ready", fmt(s.simulation.ready_workers.p25, 0),
           fmt(s.simulation.ready_workers.p50, 0),
           fmt(s.simulation.ready_workers.p75, 0),
           fmt(s.simulation.ready_workers.avg, 2),
           fmt_pct(s.simulation.ready_share),
           fmt_pct(s.simulation.unused_share)},
          {"Slurm-level", "all states", fmt(s.slurm_level.pilot_workers.p25, 0),
           fmt(s.slurm_level.pilot_workers.p50, 0),
           fmt(s.slurm_level.pilot_workers.p75, 0),
           fmt(s.slurm_level.pilot_workers.avg, 2),
           fmt_pct(s.slurm_level.coverage), fmt_pct(s.slurm_level.unused)},
          {"OW-level", "warm up", fmt(s.ow_warming.p25, 0),
           fmt(s.ow_warming.p50, 0), fmt(s.ow_warming.p75, 0),
           fmt(s.ow_warming.avg, 2), "", ""},
          {"OW-level", "healthy", fmt(s.ow_healthy.p25, 0),
           fmt(s.ow_healthy.p50, 0), fmt(s.ow_healthy.p75, 0),
           fmt(s.ow_healthy.avg, 2), "", ""},
          {"OW-level", "irresp.", fmt(s.ow_unresponsive.p25, 0),
           fmt(s.ow_unresponsive.p50, 0), fmt(s.ow_unresponsive.p75, 0),
           fmt(s.ow_unresponsive.avg, 2), "", ""},
      });
}

}  // namespace hpcwhisk::bench
