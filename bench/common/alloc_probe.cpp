// Counting global operator new/delete, linked ONLY into the perf
// binaries (see bench/CMakeLists.txt): test and example builds keep the
// stock allocator. The counter is a single relaxed atomic — the probe
// measures allocation *frequency*, and perturbing the timing it reports
// on would defeat it. All deallocation goes through std::free, which on
// glibc pairs correctly with both malloc and aligned_alloc.

#include "common/alloc_probe.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = align;
  n = (n + align - 1) / align * align;  // aligned_alloc size precondition
  void* p = std::aligned_alloc(align, n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

}  // namespace

namespace hpcwhisk::bench {

std::uint64_t alloc_probe_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

bool alloc_probe_enabled() { return true; }

}  // namespace hpcwhisk::bench

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
