#pragma once
// Shared implementation of the responsiveness experiment (Sec. V-C,
// Figs. 5b/6b): a steady open-loop 10 QPS of 10-ms sleep functions over
// 100 distinct names, issued against the controller for a full
// production day; per-minute success/failed/lost counts plus the
// acceptance (non-503) rate.

#include <iosfwd>

#include "experiment.hpp"

namespace hpcwhisk::bench {

/// Runs the experiment and prints the Fig. 5b/6b series and summary.
/// `paper_invoked` / `paper_success`: the paper's percentages for the
/// side-by-side table (95.29/95.19 for fib, 78.28/96.99 for var).
int run_responsiveness(std::ostream& os, core::SupplyModel model,
                       double paper_invoked_pct, double paper_success_pct);

}  // namespace hpcwhisk::bench
