#pragma once
// Common metadata header for every BENCH_*.json artifact. tools/bench_diff
// keys on these fields: it refuses to diff reports whose schema_version or
// bench name differ, and uses quick/seed/hw_threads to annotate verdicts.
//
// Bump kBenchSchemaVersion whenever the meaning of an existing metric
// changes (adding new keys is backwards-compatible and needs no bump).

#include <cstdint>
#include <ostream>

namespace hpcwhisk::bench {

inline constexpr int kBenchSchemaVersion = 2;

/// Writes the opening brace plus the common metadata keys, leaving the
/// stream ready for the bench-specific body:
///
///   {
///     "schema_version": 2,
///     "bench": "<name>",
///     "quick": <bool>,
///     "seed": <n>,
///     "hw_threads": <hardware_concurrency>,
///
/// Callers append their own keys and the closing brace.
void write_meta_header(std::ostream& os, const char* bench, bool quick,
                       std::uint64_t seed);

}  // namespace hpcwhisk::bench
