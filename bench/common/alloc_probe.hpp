#pragma once
// Allocation probe interface. The perf binaries link
// bench/common/alloc_probe.cpp, whose global operator new/delete count
// every heap allocation in the process; everything else falls back to
// the weak no-op definitions in experiment.cpp. Steady-state
// allocations-per-event is the regression tripwire for the hot path:
// schedule/publish/poll are designed to allocate nothing once slabs and
// scratch buffers have grown to size.

#include <cstdint>

namespace hpcwhisk::bench {

/// Heap allocations observed so far; always 0 without the probe linked.
[[nodiscard]] std::uint64_t alloc_probe_count();

/// Whether this binary carries the counting operator new.
[[nodiscard]] bool alloc_probe_enabled();

}  // namespace hpcwhisk::bench
