#include "responsiveness.hpp"

#include <ostream>

namespace hpcwhisk::bench {

int run_responsiveness(std::ostream& os, core::SupplyModel model,
                       double paper_invoked_pct, double paper_success_pct) {
  ExperimentConfig cfg;
  cfg.pilots = model;
  cfg.faas_qps = 10.0;
  cfg.faas_functions = 100;
  cfg = apply_env(cfg);

  os << "bench: responsiveness (" << core::to_string(model) << ", seed "
     << cfg.seed << ", " << cfg.nodes << " nodes, 10 QPS x "
     << cfg.window.to_string() << ")\n\n";

  const auto result = run_experiment(cfg);
  const auto& activations = result.system->controller().activations();

  // Per-minute aggregation over the measurement window.
  const std::size_t minutes = static_cast<std::size_t>(
      (result.measure_end - result.measure_start) / sim::SimTime::minutes(1));
  std::vector<double> ok(minutes, 0), failed(minutes, 0), lost(minutes, 0),
      rejected(minutes, 0);
  std::uint64_t total = 0, n_ok = 0, n_failed = 0, n_lost = 0, n_rejected = 0;
  std::vector<double> response_ms;
  std::vector<double> requeues;

  for (const auto& rec : activations) {
    if (rec.submit_time < result.measure_start) continue;
    const std::size_t minute = std::min(
        minutes - 1,
        static_cast<std::size_t>((rec.submit_time - result.measure_start) /
                                 sim::SimTime::minutes(1)));
    ++total;
    requeues.push_back(rec.requeues);
    switch (rec.state) {
      case whisk::ActivationState::kCompleted:
        ++n_ok;
        ok[minute] += 1;
        response_ms.push_back(rec.response_time().to_seconds() * 1e3);
        break;
      case whisk::ActivationState::kFailed:
        ++n_failed;
        failed[minute] += 1;
        break;
      case whisk::ActivationState::kRejected503:
        ++n_rejected;
        rejected[minute] += 1;
        break;
      case whisk::ActivationState::kTimedOut:
        ++n_lost;
        lost[minute] += 1;
        break;
      case whisk::ActivationState::kQueued:
      case whisk::ActivationState::kRunning:
        ++n_lost;  // still in flight at the end of the run: count lost
        lost[minute] += 1;
        break;
    }
  }

  const double invoked = total == 0 ? 0.0
                                    : 1.0 - static_cast<double>(n_rejected) /
                                                static_cast<double>(total);
  const std::uint64_t accepted = total - n_rejected;
  const double success = accepted == 0 ? 0.0
                                       : static_cast<double>(n_ok) /
                                             static_cast<double>(accepted);
  const double timeouts = accepted == 0 ? 0.0
                                        : static_cast<double>(n_lost) /
                                              static_cast<double>(accepted);
  const double exec_failed = accepted == 0
                                 ? 0.0
                                 : static_cast<double>(n_failed) /
                                       static_cast<double>(accepted);
  const auto rt = analysis::summarize(response_ms);
  const auto rq = analysis::summarize(requeues);

  analysis::print_table(
      os, "responsiveness summary",
      {"metric", "paper", "measured"},
      {
          {"requests issued", "864000 over 24h", std::to_string(total)},
          {"invoked (not 503)", analysis::fmt(paper_invoked_pct, 2) + "%",
           analysis::fmt_pct(invoked)},
          {"success of invoked", analysis::fmt(paper_success_pct, 2) + "%",
           analysis::fmt_pct(success)},
          {"timeout of invoked", "~2-3%", analysis::fmt_pct(timeouts)},
          {"failed of invoked", "~1-1.7%", analysis::fmt_pct(exec_failed)},
          {"median response [ms]", "865 (fib) / 1227 (var)",
           analysis::fmt(rt.p50, 0)},
          {"mean requeues per request", "-", analysis::fmt(rq.avg, 4)},
      });

  analysis::print_series(os, "Fig 5b/6b: successful per minute", ok, 60.0, 96);
  analysis::print_series(os, "Fig 5b/6b: failed per minute", failed, 60.0, 96);
  analysis::print_series(os, "Fig 5b/6b: lost (timeout) per minute", lost,
                         60.0, 96);
  analysis::print_series(os, "Fig 5b/6b: rejected (503) per minute", rejected,
                         60.0, 96);
  return 0;
}

}  // namespace hpcwhisk::bench
