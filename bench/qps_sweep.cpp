// Serving-tier bench: open-loop QPS sweep, lease tier vs the classic
// controller -> topic -> pull path.
//
// The workload is the skewed mix the lease tier is designed for: 80 % of
// the open-loop traffic concentrates on 8 hot functions (production FaaS
// traces are this shaped), the rest round-robins over the remaining
// names. Each QPS step runs twice per seed — a baseline leg (hash
// probing, fixed keep-alive, no reaping: the historical configuration)
// and a lease leg (warm-executor leases + direct invoke, hybrid
// keep-alive with periodic reaping). Full scale is the paper's 2,239
// Prometheus nodes swept to 10k QPS; quick scale shrinks the cluster
// and the steps for CI.
//
// Acceptance (top QPS step, seed-averaged): the lease leg must beat the
// baseline on p95 AND on cold-start rate, and serve at least half of
// all accepted calls through the direct seam (lease hit rate >= 0.5).
//
//   HW_BENCH_QUICK=1     64 nodes, steps {50, 150, 300} QPS
//   HW_SEED=<n>          base RNG seed (default 1)
//   HW_BENCH_TRIALS=<n>  seeds per leg (default 1)
//   HW_BENCH_JOBS=<n>    legs run in parallel (default hw threads)
//   HW_SERVING_OUT=<p>   report path (default BENCH_serving.json)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "common/experiment.hpp"

using namespace hpcwhisk;

namespace {

// The skewed mix shared by every leg (echoed in the JSON header).
constexpr double kHotShare = 0.8;
constexpr std::size_t kHotFunctions = 8;
constexpr std::size_t kFunctions = 40;

struct Leg {
  double qps{0.0};
  bool lease{false};
  std::uint64_t seed{1};
};

struct LegResult {
  std::uint64_t issued{0};
  std::uint64_t accepted{0};
  std::uint64_t completed{0};
  std::uint64_t timed_out{0};
  std::uint64_t rejected_503{0};
  std::uint64_t failed{0};
  std::uint64_t requeued{0};
  std::uint64_t interrupted{0};
  std::uint64_t cold{0};
  double cold_start_rate{0.0};
  double p50_ms{0.0};
  double p95_ms{0.0};
  double p99_ms{0.0};
  double mean_ms{0.0};
  // Lease legs only.
  std::uint64_t lease_hits{0};
  std::uint64_t lease_granted{0};
  std::uint64_t lease_renewed{0};
  std::uint64_t lease_expired{0};
  std::uint64_t lease_revoked{0};
  std::uint64_t lease_fallbacks{0};
  std::uint64_t direct_invocations{0};
  double hit_rate{0.0};
  double revocation_rate{0.0};
};

LegResult run_leg(const Leg& leg, bool quick, std::ostream&) {
  bench::ExperimentConfig cfg;
  cfg.pilots = core::SupplyModel::kFib;
  cfg.nodes = quick ? 64 : 2239;
  cfg.burn_in = quick ? sim::SimTime::minutes(15) : sim::SimTime::hours(2);
  cfg.window = sim::SimTime::minutes(30);
  cfg.faas_qps = leg.qps;
  cfg.faas_functions = kFunctions;
  cfg.faas_hot_share = kHotShare;
  cfg.faas_hot_functions = kHotFunctions;
  cfg.seed = leg.seed;
  if (leg.lease) {
    cfg.lease.enabled = true;
    // The keep-alive engine rides the lease leg: hybrid policy (adaptive
    // per-function timeouts, pressure-scaled) with the periodic reaper
    // on. The floor stays comfortably above the hot functions' bursts.
    cfg.keep_alive.policy = runtime::KeepAlivePolicy::kHybrid;
    cfg.keep_alive.floor = sim::SimTime::seconds(60);
    cfg.keep_alive.reap_interval = sim::SimTime::seconds(30);
  }

  const bench::ExperimentResult result = bench::run_experiment(cfg);
  const whisk::Controller& ctrl = result.system->controller();

  LegResult out;
  out.issued = result.faas_issued;
  const auto& c = ctrl.counters();
  out.accepted = c.accepted;
  out.timed_out = c.timed_out;
  out.rejected_503 = c.rejected_503;
  out.failed = c.failed;
  out.requeued = c.requeued;
  out.interrupted = c.interrupted;

  std::vector<double> response_ms;
  for (const auto& rec : ctrl.activations()) {
    if (rec.state != whisk::ActivationState::kCompleted) continue;
    ++out.completed;
    if (rec.cold_start) ++out.cold;
    response_ms.push_back(rec.response_time().to_seconds() * 1e3);
  }
  out.cold_start_rate =
      out.completed == 0
          ? 0.0
          : static_cast<double>(out.cold) / static_cast<double>(out.completed);
  if (!response_ms.empty()) {
    const auto rt = analysis::summarize(response_ms);
    out.p50_ms = rt.p50;
    out.mean_ms = rt.avg;
    out.p95_ms = analysis::percentile(response_ms, 0.95);
    out.p99_ms = analysis::percentile(response_ms, 0.99);
  }

  if (const lease::LeaseManager* lm = ctrl.lease_manager()) {
    const auto& ls = lm->stats();
    out.lease_hits = c.lease_hits;
    out.lease_granted = ls.granted;
    out.lease_renewed = ls.renewed;
    out.lease_expired = ls.expired;
    out.lease_revoked = ls.revoked;
    out.lease_fallbacks = c.lease_fallback;
    out.hit_rate = out.accepted == 0
                       ? 0.0
                       : static_cast<double>(out.lease_hits) /
                             static_cast<double>(out.accepted);
    out.revocation_rate = ls.granted == 0
                              ? 0.0
                              : static_cast<double>(ls.revoked) /
                                    static_cast<double>(ls.granted);
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

struct Aggregate {
  double p50_ms{0.0};
  double p95_ms{0.0};
  double p99_ms{0.0};
  double cold_rate{0.0};
  double hit_rate{0.0};
  double revocation_rate{0.0};
  std::size_t n{0};

  void fold(const LegResult& r) {
    p50_ms += r.p50_ms;
    p95_ms += r.p95_ms;
    p99_ms += r.p99_ms;
    cold_rate += r.cold_start_rate;
    hit_rate += r.hit_rate;
    revocation_rate += r.revocation_rate;
    ++n;
  }
  void finish() {
    if (n == 0) return;
    const auto d = static_cast<double>(n);
    p50_ms /= d;
    p95_ms /= d;
    p99_ms /= d;
    cold_rate /= d;
    hit_rate /= d;
    revocation_rate /= d;
  }
};

}  // namespace

int main() {
  const bool quick = std::getenv("HW_BENCH_QUICK") != nullptr;
  const std::string out_path = env_or("HW_SERVING_OUT", "BENCH_serving.json");
  const bench::ExperimentConfig env_cfg = bench::apply_env({});
  const std::uint64_t base_seed = env_cfg.seed;
  const std::size_t trials = bench::trial_count();

  const std::vector<double> steps = quick
                                        ? std::vector<double>{50, 150, 300}
                                        : std::vector<double>{2500, 5000, 10000};
  std::vector<Leg> legs;
  for (const double qps : steps) {
    for (const bool lease : {false, true}) {
      for (std::size_t t = 0; t < trials; ++t) {
        legs.push_back({qps, lease, base_seed + t});
      }
    }
  }

  const std::vector<LegResult> results = exec::parallel_trials(
      legs, [quick](const Leg& leg, std::ostream& os) {
        return run_leg(leg, quick, os);
      });

  // Seed-averaged aggregates per (step, mode).
  std::map<std::pair<double, bool>, Aggregate> agg;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    agg[{legs[i].qps, legs[i].lease}].fold(results[i]);
  }
  for (auto& [key, a] : agg) a.finish();

  // Acceptance at the top QPS step.
  const double top_qps = steps.back();
  const Aggregate& top_base = agg[{top_qps, false}];
  const Aggregate& top_lease = agg[{top_qps, true}];
  const bool p95_beats = top_lease.p95_ms < top_base.p95_ms;
  const bool cold_beats = top_lease.cold_rate < top_base.cold_rate;
  const bool hit_ok = top_lease.hit_rate >= 0.5;
  const bool acceptance_ok = p95_beats && cold_beats && hit_ok;

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = results[i];
    rows.push_back({
        fmt_num(legs[i].qps),
        legs[i].lease ? "lease" : "baseline",
        std::to_string(legs[i].seed),
        std::to_string(r.completed),
        analysis::fmt_pct(r.cold_start_rate),
        legs[i].lease ? analysis::fmt_pct(r.hit_rate) : "-",
        analysis::fmt(r.p50_ms, 1),
        analysis::fmt(r.p95_ms, 1),
        analysis::fmt(r.p99_ms, 1),
        std::to_string(r.timed_out),
    });
  }
  analysis::print_table(
      std::cout,
      quick ? "serving: open-loop QPS sweep (quick: 64 nodes)"
            : "serving: open-loop QPS sweep (2239 nodes)",
      {"qps", "mode", "seed", "completed", "cold-start", "lease-hit", "p50 ms",
       "p95 ms", "p99 ms", "timeouts"},
      rows);

  std::ofstream json{out_path};
  bench::write_meta_header(json, "qps_sweep", quick, base_seed);
  json << "  \"trials\": " << trials << ",\n"
       << "  \"hot_share\": " << fmt_num(kHotShare) << ",\n"
       << "  \"hot_functions\": " << kHotFunctions << ",\n"
       << "  \"functions\": " << kFunctions << ",\n"
       << "  \"qps_steps\": [";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    json << fmt_num(steps[i]) << (i + 1 < steps.size() ? ", " : "");
  }
  json << "],\n  \"legs\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = results[i];
    json << "    {\"qps\": " << fmt_num(legs[i].qps) << ", \"mode\": \""
         << (legs[i].lease ? "lease" : "baseline")
         << "\", \"seed\": " << legs[i].seed << ", \"issued\": " << r.issued
         << ", \"accepted\": " << r.accepted
         << ", \"completed\": " << r.completed
         << ", \"timed_out\": " << r.timed_out
         << ", \"rejected_503\": " << r.rejected_503
         << ", \"failed\": " << r.failed
         << ", \"requeued\": " << r.requeued
         << ", \"interrupted\": " << r.interrupted
         << ", \"cold_starts\": " << r.cold
         << ", \"cold_start_rate\": " << fmt_num(r.cold_start_rate)
         << ", \"p50_ms\": " << fmt_num(r.p50_ms)
         << ", \"p95_ms\": " << fmt_num(r.p95_ms)
         << ", \"p99_ms\": " << fmt_num(r.p99_ms)
         << ", \"mean_ms\": " << fmt_num(r.mean_ms);
    if (legs[i].lease) {
      json << ", \"lease\": {\"hits\": " << r.lease_hits
           << ", \"granted\": " << r.lease_granted
           << ", \"renewed\": " << r.lease_renewed
           << ", \"expired\": " << r.lease_expired
           << ", \"revoked\": " << r.lease_revoked
           << ", \"fallbacks\": " << r.lease_fallbacks
           << ", \"hit_rate\": " << fmt_num(r.hit_rate)
           << ", \"revocation_rate\": " << fmt_num(r.revocation_rate) << "}";
    }
    json << "}" << (i + 1 < legs.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"steps\": {\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Aggregate& b = agg[{steps[i], false}];
    const Aggregate& l = agg[{steps[i], true}];
    json << "    \"" << fmt_num(steps[i])
         << "\": {\"baseline\": {\"p50_ms\": " << fmt_num(b.p50_ms)
         << ", \"p95_ms\": " << fmt_num(b.p95_ms)
         << ", \"p99_ms\": " << fmt_num(b.p99_ms)
         << ", \"cold_start_rate\": " << fmt_num(b.cold_rate)
         << "}, \"lease\": {\"p50_ms\": " << fmt_num(l.p50_ms)
         << ", \"p95_ms\": " << fmt_num(l.p95_ms)
         << ", \"p99_ms\": " << fmt_num(l.p99_ms)
         << ", \"cold_start_rate\": " << fmt_num(l.cold_rate)
         << ", \"hit_rate\": " << fmt_num(l.hit_rate)
         << ", \"revocation_rate\": " << fmt_num(l.revocation_rate) << "}}"
         << (i + 1 < steps.size() ? "," : "") << "\n";
  }
  json << "  },\n  \"top\": {\"qps\": " << fmt_num(top_qps)
       << ", \"baseline\": {\"p95_ms\": " << fmt_num(top_base.p95_ms)
       << ", \"cold_start_rate\": " << fmt_num(top_base.cold_rate)
       << "}, \"lease\": {\"p95_ms\": " << fmt_num(top_lease.p95_ms)
       << ", \"cold_start_rate\": " << fmt_num(top_lease.cold_rate)
       << ", \"hit_rate\": " << fmt_num(top_lease.hit_rate)
       << ", \"revocation_rate\": " << fmt_num(top_lease.revocation_rate)
       << "}},\n"
       << "  \"acceptance\": {\"p95_beats_baseline\": "
       << (p95_beats ? "true" : "false")
       << ", \"cold_rate_beats_baseline\": " << (cold_beats ? "true" : "false")
       << ", \"hit_rate_ok\": " << (hit_ok ? "true" : "false")
       << ", \"acceptance_ok\": " << (acceptance_ok ? "true" : "false")
       << "}\n}\n";
  json.close();

  std::cout << "acceptance @ " << fmt_num(top_qps) << " QPS: lease p95 "
            << fmt_num(top_lease.p95_ms) << " ms vs baseline "
            << fmt_num(top_base.p95_ms) << " ms, cold "
            << analysis::fmt_pct(top_lease.cold_rate) << " vs "
            << analysis::fmt_pct(top_base.cold_rate) << ", hit rate "
            << analysis::fmt_pct(top_lease.hit_rate) << " -> "
            << (acceptance_ok ? "OK" : "VIOLATED") << " (" << out_path
            << ")\n";
  return acceptance_ok ? 0 : 1;
}
