// Fig. 6b reproduction: responsiveness of the var-model infrastructure
// (paper: only 78.28% invoked because the thinner invoker pool 503s more
// often — including an ~85-minute outage; 96.99% of invoked succeed).

#include <iostream>

#include "common/responsiveness.hpp"

int main() {
  return hpcwhisk::bench::run_responsiveness(
      std::cout, hpcwhisk::core::SupplyModel::kVar, 78.28, 96.99);
}
