// Table I reproduction: clairvoyant (a-posteriori) coverage of one week
// of idleness periods by six candidate job-length sets (A1-A3, B, C1,
// C2), charging the first 20 seconds of every job as warm-up, with jobs
// capped at the 120-minute backfill window.
//
// Paper's result: the choice of set barely matters (ready share
// 80.0-81.2%); A1 is slightly best among the fixed sets, C2 (the var
// model's effective set) best overall — which is why fib uses A1.
//
// HW_BENCH_TRIALS=<n> sweeps seeds base..base+n-1; trials run in
// parallel under HW_BENCH_JOBS and print in seed order.

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

namespace {

void run_one(const bench::ExperimentConfig& cfg, std::ostream& os) {
  os << "bench: table1_lengths (seed " << cfg.seed << ", " << cfg.nodes
     << " nodes, " << cfg.window.to_string() << " window)\n\n";

  const auto result = bench::run_experiment(cfg);
  // The paper computes Table I from the 10-second sampled node lists —
  // sub-sample idle slivers are invisible to it, so we feed the
  // clairvoyant simulator the same sampled view.
  const auto periods = result.log->sampled_period_intervals(
      sim::SimTime::seconds(10), {slurm::ObservedNodeState::kIdle});

  const std::vector<std::string> set_names{"A1", "A2", "A3", "B", "C1", "C2"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& name : set_names) {
    analysis::ClairvoyantSimulator::Config sim_cfg;
    sim_cfg.job_lengths = core::job_length_set(name);
    sim_cfg.warmup = sim::SimTime::seconds(20);
    sim_cfg.max_job_length = sim::SimTime::minutes(120);
    const analysis::ClairvoyantSimulator clairvoyant{sim_cfg};
    const auto r =
        clairvoyant.run(periods, result.measure_start, result.measure_end);
    rows.push_back({
        name,
        std::to_string(r.jobs),
        analysis::fmt_pct(r.warmup_share),
        analysis::fmt_pct(r.ready_share),
        analysis::fmt_pct(r.unused_share),
        analysis::fmt(r.ready_workers.p25, 0),
        analysis::fmt(r.ready_workers.p50, 0),
        analysis::fmt(r.ready_workers.p75, 0),
        analysis::fmt(r.ready_workers.avg, 2),
        analysis::fmt_pct(r.non_availability),
    });
  }
  analysis::print_table(
      os,
      "Table I: clairvoyant coverage of idleness periods by job-length set",
      {"set", "# jobs", "warm up", "ready", "not used", "25%", "50%", "75%",
       "avg", "non-avail"},
      rows);

  os << "paper shape check: all sets within ~1.2 points of ready share;\n"
        "A1 best of the fixed sets, C2 best overall (fewest, longest "
        "jobs);\nB (powers of two) worst: most jobs, most warm-ups.\n";
}

}  // namespace

int main() {
  bench::ExperimentConfig base;
  base.window = sim::SimTime::days(7);
  base.pilots.reset();  // Table I is computed over the raw idle log
  base = bench::apply_env(base);

  const auto configs = bench::seed_sweep(base, bench::trial_count());
  exec::parallel_trials(configs,
                        [](const bench::ExperimentConfig& cfg,
                           std::ostream& os) { run_one(cfg, os); });
  return 0;
}
