// Table III + Figs. 6a/6c reproduction: the 24-hour production-day run
// with the var job manager (flexible 2-120 min jobs sized by Slurm).
//
// Paper's headline: var covers only 68% of the available surface against
// its own 84% clairvoyant bound — the scheduler's variable-length sizing
// path is too slow for the environment's churn (Sec. V-B2). Our model
// reproduces that as a slower var placement cadence plus stale sizing.
//
// HW_BENCH_TRIALS=<n> sweeps seeds base..base+n-1; trials run in
// parallel under HW_BENCH_JOBS and print in seed order.

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

namespace {

void run_one(const bench::ExperimentConfig& cfg, std::ostream& os) {
  os << "bench: table3_var (seed " << cfg.seed << ", " << cfg.nodes
     << " nodes, " << cfg.window.to_string() << " window)\n\n";

  const auto result = bench::run_experiment(cfg);
  const auto summary = bench::summarize_coverage(
      result, core::job_length_set("C2"), sim::SimTime::minutes(120));

  bench::print_coverage_table(os, "Table III: var job manager", summary);

  analysis::print_table(
      os, "Table III headline comparison",
      {"metric", "paper", "measured"},
      {
          {"Slurm-level coverage", "68%",
           analysis::fmt_pct(summary.slurm_level.coverage)},
          {"surface lost vs clairvoyant bound",
           "~5% (fib) / ~16% (var)",
           analysis::fmt_pct(1.0 - summary.slurm_level.coverage -
                             (1.0 - summary.simulation.ready_share -
                              summary.simulation.warmup_share))},
          {"clairvoyant warm-up share", "2.61% (fib) / 3.18% (var)",
           analysis::fmt_pct(summary.simulation.warmup_share)},
          {"avg available nodes", "7.38",
           analysis::fmt(summary.slurm_level.available_nodes.avg, 2)},
          {"avg healthy invokers (OW)", "4.96",
           analysis::fmt(summary.ow_healthy.avg, 2)},
          {"time with no healthy invoker", "218 min of 24 h (15.1%)",
           analysis::fmt_pct(summary.ow_zero_healthy_share)},
          {"longest no-invoker period", "85 min",
           summary.ow_longest_zero_healthy.to_string()},
      });

  std::vector<double> serving_min;
  for (const auto d : result.system->manager().serving_durations())
    serving_min.push_back(d.to_minutes());
  const auto serving = analysis::summarize(serving_min);
  analysis::print_table(
      os, "var invoker serving durations [min]",
      {"metric", "paper", "measured"},
      {
          {"median", "~7", analysis::fmt(serving.p50, 1)},
          {"P75", "14.5", analysis::fmt(serving.p75, 1)},
          {"mean", "> 14", analysis::fmt(serving.avg, 1)},
      });

  // ---- Fig. 6a: three-perspective worker time series --------------------
  std::vector<double> sim_series;
  for (const auto v : summary.simulation.ready_series)
    sim_series.push_back(v);
  analysis::print_series(os, "Fig 6a (Simulation): ready workers",
                         sim_series, 10.0, 96);
  std::vector<double> slurm_series, idle_series;
  for (const auto& s : result.samples) {
    slurm_series.push_back(s.pilot);
    idle_series.push_back(s.idle);
  }
  analysis::print_series(os, "Fig 6a (Slurm-level): worker jobs",
                         slurm_series, 10.0, 96);
  std::vector<double> ow_series;
  for (const auto& s : result.ow_samples) ow_series.push_back(s.healthy);
  analysis::print_series(os, "Fig 6a (OW-level): healthy invokers",
                         ow_series, 10.0, 96);

  // ---- Fig. 6c: CDFs of node counts -------------------------------------
  std::vector<double> avail_series;
  for (const auto& s : result.samples) avail_series.push_back(s.available());
  analysis::print_cdf(os, "Fig 6c: idle nodes (green)",
                      analysis::cdf_points(idle_series, 30));
  analysis::print_cdf(os, "Fig 6c: OpenWhisk nodes (orange)",
                      analysis::cdf_points(slurm_series, 30));
  analysis::print_cdf(os, "Fig 6c: originally-idle nodes (black)",
                      analysis::cdf_points(avail_series, 30));

  os << "shape check: var coverage must sit well below fib's "
        "(bench table2_fib)\nand well below its own Simulation "
        "bound — the paper's central var-vs-fib finding.\n";
}

}  // namespace

int main() {
  bench::ExperimentConfig base;
  base.pilots = core::SupplyModel::kVar;
  base = bench::apply_env(base);

  const auto configs = bench::seed_sweep(base, bench::trial_count());
  exec::parallel_trials(configs,
                        [](const bench::ExperimentConfig& cfg,
                           std::ostream& os) { run_one(cfg, os); });
  return 0;
}
