// Micro-benchmarks of the substrates: message-broker throughput, the
// container pool's fast paths, the event queue, and SeBS kernel scaling.
// These are performance benches for the library itself, not paper
// reproductions.

#include <benchmark/benchmark.h>

#include <memory>

#include "hpcwhisk/mq/broker.hpp"
#include "hpcwhisk/runtime/container_pool.hpp"
#include "hpcwhisk/sebs/graph.hpp"
#include "hpcwhisk/sebs/kernels.hpp"
#include "hpcwhisk/sim/event_queue.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"

namespace {

using namespace hpcwhisk;

void BM_topic_publish_poll(benchmark::State& state) {
  mq::Broker broker;
  mq::Topic& topic = broker.topic("bench");
  std::uint64_t id = 0;
  for (auto _ : state) {
    mq::Message m;
    m.id = id++;
    topic.publish(std::move(m), sim::SimTime::zero());
    benchmark::DoNotOptimize(topic.poll_one());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_topic_publish_poll);

void BM_topic_batch_poll(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  mq::Broker broker;
  mq::Topic& topic = broker.topic("bench");
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      mq::Message m;
      m.id = i;
      topic.publish(std::move(m), sim::SimTime::zero());
    }
    benchmark::DoNotOptimize(topic.poll(batch));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_topic_batch_poll)->Arg(8)->Arg(64)->Arg(512);

/// The steady-state message hot path at production scale: one topic per
/// invoker on a 2,239-node cluster, handles resolved once at wiring time
/// (mq::TopicRef), publishes and poll_into through the cached pointer —
/// zero string hashing, zero broker locking, zero allocation per event
/// once the scratch vector has grown.
void BM_mq_publish_consume(benchmark::State& state) {
  constexpr std::size_t kTopics = 2239;
  mq::Broker broker;
  std::vector<mq::TopicRef> refs;
  refs.reserve(kTopics);
  for (std::size_t i = 0; i < kTopics; ++i)
    refs.push_back(broker.resolve("invoker-" + std::to_string(i)));
  std::vector<mq::Message> scratch;
  std::uint64_t id = 0;
  std::size_t cursor = 0;
  for (auto _ : state) {
    mq::Topic& topic = *refs[cursor];
    cursor = (cursor + 1) % kTopics;
    mq::Message m;
    m.id = id++;
    topic.publish(std::move(m), sim::SimTime::zero());
    scratch.clear();
    benchmark::DoNotOptimize(topic.poll_into(4, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_mq_publish_consume);

/// Schedule + cancel against a heap already holding 2,239 live events —
/// the queue depth a full-cluster production day sustains. Exercises
/// sift-up on insert and the tombstone/compaction machinery on cancel.
void BM_event_queue_schedule(benchmark::State& state) {
  constexpr std::int64_t kLive = 2239;
  sim::EventQueue queue;
  for (std::int64_t i = 0; i < kLive; ++i)
    queue.schedule(sim::SimTime::micros(1'000'000 + i), [] {});
  std::int64_t t = 0;
  for (auto _ : state) {
    const auto id = queue.schedule(sim::SimTime::micros(t++ % 1'000'000), [] {});
    queue.cancel(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_event_queue_schedule);

/// Batched drain of same-deadline runs with 2,239 events in flight —
/// the shape Simulation::run() sees when many invokers share a poll
/// deadline. Items processed counts drained events, not iterations.
void BM_event_queue_pop_batch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  constexpr std::int64_t kLive = 2239;
  // Background population parked far in the future: every pop_batch below
  // must drain exactly the same-deadline run this iteration scheduled.
  constexpr std::int64_t kFarFuture = std::int64_t{1} << 40;
  sim::EventQueue queue;
  for (std::int64_t i = 0; i < kLive; ++i)
    queue.schedule(sim::SimTime::micros(kFarFuture + i), [] {});
  std::vector<sim::EventQueue::Popped> out;
  std::int64_t t = 0;
  for (auto _ : state) {
    ++t;
    for (std::size_t i = 0; i < batch; ++i)
      queue.schedule(sim::SimTime::micros(t), [] {});
    std::size_t drained = 0;
    while (drained < batch) {
      out.clear();
      drained += queue.pop_batch(batch - drained, out);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_event_queue_pop_batch)->Arg(8)->Arg(64)->Arg(512);

void BM_event_queue_schedule_pop(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    queue.schedule(sim::SimTime::micros(t++), [] {});
    benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_event_queue_schedule_pop);

/// Prometheus-scale scheduler fixture: 2,239 nodes mostly occupied by
/// long-limit HPC jobs, a deep pending backlog (beyond backfill_depth)
/// and a tier-0 pilot queue, so every pass exercises the full scan,
/// reservation and pilot-placement machinery in steady state.
struct SchedFixture {
  sim::Simulation simulation;
  std::unique_ptr<slurm::Slurmctld> ctld;

  SchedFixture() {
    slurm::Slurmctld::Config cfg;
    cfg.node_count = 2239;
    std::vector<slurm::Partition> partitions{
        {.name = "main", .priority_tier = 1},
        {.name = "pilot",
         .priority_tier = 0,
         .preempt_mode = slurm::PreemptMode::kCancel}};
    ctld = std::make_unique<slurm::Slurmctld>(simulation, cfg,
                                              std::move(partitions));
    sim::Rng rng{42};
    // Fill the cluster: jobs that never exit on their own, declared
    // limits 2-12 h. ~2100 nodes end up busy; the rest stay idle.
    for (int i = 0; i < 700; ++i) {
      slurm::JobSpec spec;
      spec.partition = "main";
      spec.num_nodes = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
      spec.time_limit = sim::SimTime::hours(rng.uniform_int(2, 12));
      ctld->submit(std::move(spec));
    }
    simulation.run_until(sim::SimTime::minutes(10));
    // Pending backlog deeper than backfill_depth, too wide to start.
    for (int i = 0; i < 300; ++i) {
      slurm::JobSpec spec;
      spec.partition = "main";
      spec.num_nodes = static_cast<std::uint32_t>(rng.uniform_int(8, 16));
      spec.time_limit = sim::SimTime::hours(rng.uniform_int(1, 6));
      ctld->submit(std::move(spec));
    }
    // A tier-0 pilot queue competing for the remaining idle nodes.
    for (int i = 0; i < 50; ++i) {
      slurm::JobSpec spec;
      spec.partition = "pilot";
      spec.num_nodes = 1;
      spec.time_limit = sim::SimTime::minutes(13);
      ctld->submit(std::move(spec));
    }
    simulation.run_until(sim::SimTime::minutes(12));
  }
};

void BM_slurm_build_availability(benchmark::State& state) {
  SchedFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.ctld->availability_snapshot(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fx.ctld->node_count());
}
BENCHMARK(BM_slurm_build_availability);

void BM_slurm_sched_pass(benchmark::State& state) {
  SchedFixture fx;
  for (auto _ : state) {
    fx.ctld->schedule_now();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_slurm_sched_pass);

void BM_container_pool_warm_path(benchmark::State& state) {
  runtime::ContainerPool::Config cfg;
  runtime::ContainerPool pool{cfg, runtime::RuntimeProfile::singularity(),
                              sim::Rng{1}};
  // Prime a warm container.
  const auto first = pool.acquire("fn", 256, sim::SimTime::zero());
  pool.mark_running(first.container, sim::SimTime::zero());
  pool.release(first.container, sim::SimTime::zero());
  sim::SimTime now = sim::SimTime::zero();
  for (auto _ : state) {
    now += sim::SimTime::millis(1);
    const auto r = pool.acquire("fn", 256, now);
    pool.mark_running(r.container, now);
    pool.release(r.container, now);
    benchmark::DoNotOptimize(r.container);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_container_pool_warm_path);

void BM_bfs_scaling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const sebs::Graph graph = sebs::make_uniform_graph(n, 8.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sebs::bfs(graph, 0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_bfs_scaling)->Range(1 << 12, 1 << 17)->Complexity(benchmark::oN);

void BM_pagerank_scaling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const sebs::Graph graph = sebs::make_preferential_graph(n, 6, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sebs::pagerank(graph, 0.85, 10));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_pagerank_scaling)->Range(1 << 12, 1 << 16)->Complexity(benchmark::oN);

void BM_mst_scaling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto edges = sebs::make_weighted_edges(n, 6.0, 1'000'000, 9);
  for (auto _ : state) {
    auto copy = edges;  // Kruskal sorts in place
    benchmark::DoNotOptimize(sebs::mst(n, std::move(copy)));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_mst_scaling)->Range(1 << 12, 1 << 16)->Complexity(benchmark::oNLogN);

}  // namespace

BENCHMARK_MAIN();
