// Micro-benchmarks of the substrates: message-broker throughput, the
// container pool's fast paths, the event queue, and SeBS kernel scaling.
// These are performance benches for the library itself, not paper
// reproductions.

#include <benchmark/benchmark.h>

#include "hpcwhisk/mq/broker.hpp"
#include "hpcwhisk/runtime/container_pool.hpp"
#include "hpcwhisk/sebs/graph.hpp"
#include "hpcwhisk/sebs/kernels.hpp"
#include "hpcwhisk/sim/event_queue.hpp"
#include "hpcwhisk/sim/rng.hpp"

namespace {

using namespace hpcwhisk;

void BM_topic_publish_poll(benchmark::State& state) {
  mq::Broker broker;
  mq::Topic& topic = broker.topic("bench");
  std::uint64_t id = 0;
  for (auto _ : state) {
    mq::Message m;
    m.id = id++;
    topic.publish(std::move(m), sim::SimTime::zero());
    benchmark::DoNotOptimize(topic.poll_one());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_topic_publish_poll);

void BM_topic_batch_poll(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  mq::Broker broker;
  mq::Topic& topic = broker.topic("bench");
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      mq::Message m;
      m.id = i;
      topic.publish(std::move(m), sim::SimTime::zero());
    }
    benchmark::DoNotOptimize(topic.poll(batch));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_topic_batch_poll)->Arg(8)->Arg(64)->Arg(512);

void BM_event_queue_schedule_pop(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    queue.schedule(sim::SimTime::micros(t++), [] {});
    benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_event_queue_schedule_pop);

void BM_container_pool_warm_path(benchmark::State& state) {
  runtime::ContainerPool::Config cfg;
  runtime::ContainerPool pool{cfg, runtime::RuntimeProfile::singularity(),
                              sim::Rng{1}};
  // Prime a warm container.
  const auto first = pool.acquire("fn", 256, sim::SimTime::zero());
  pool.mark_running(first.container, sim::SimTime::zero());
  pool.release(first.container, sim::SimTime::zero());
  sim::SimTime now = sim::SimTime::zero();
  for (auto _ : state) {
    now += sim::SimTime::millis(1);
    const auto r = pool.acquire("fn", 256, now);
    pool.mark_running(r.container, now);
    pool.release(r.container, now);
    benchmark::DoNotOptimize(r.container);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_container_pool_warm_path);

void BM_bfs_scaling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const sebs::Graph graph = sebs::make_uniform_graph(n, 8.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sebs::bfs(graph, 0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_bfs_scaling)->Range(1 << 12, 1 << 17)->Complexity(benchmark::oN);

void BM_pagerank_scaling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const sebs::Graph graph = sebs::make_preferential_graph(n, 6, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sebs::pagerank(graph, 0.85, 10));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_pagerank_scaling)->Range(1 << 12, 1 << 16)->Complexity(benchmark::oN);

void BM_mst_scaling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto edges = sebs::make_weighted_edges(n, 6.0, 1'000'000, 9);
  for (auto _ : state) {
    auto copy = edges;  // Kruskal sorts in place
    benchmark::DoNotOptimize(sebs::mst(n, std::move(copy)));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_mst_scaling)->Range(1 << 12, 1 << 16)->Complexity(benchmark::oNLogN);

}  // namespace

BENCHMARK_MAIN();
