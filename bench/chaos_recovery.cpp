// Chaos recovery bench: how completion rate, latency tail and recovery
// time degrade as fault intensity grows. Sweeps a multiplier over a
// mixed fault profile (node crashes, invoker stalls/crashes, mq windows)
// with the workload held fixed; every run is checked against the
// activation-conservation audit, so the numbers below are guaranteed to
// account for every accepted activation.
//
//   HW_BENCH_QUICK=1  quarter-scale cluster and window
//   HW_SEED=<n>       base RNG seed (default 1)
//   HW_BENCH_JOBS=<n> intensities run in parallel (default hw threads)

#include <cstdlib>
#include <iostream>

#include "common/experiment.hpp"
#include "hpcwhisk/analysis/conservation.hpp"
#include "hpcwhisk/fault/chaos_engine.hpp"

using namespace hpcwhisk;

namespace {

struct RunResult {
  std::uint64_t accepted{0};
  std::uint64_t completed{0};
  std::uint64_t timed_out{0};
  std::uint64_t requeued{0};
  std::uint64_t faults{0};
  double completion_rate{0.0};
  double p95_ms{0.0};
  double mean_recovery_s{0.0};
  std::uint64_t unrecovered{0};
  bool audit_ok{false};
};

RunResult run(double intensity, bool quick, std::uint64_t seed,
              std::ostream& os) {
  sim::Simulation simulation;
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = seed;
  cfg.slurm.node_count = quick ? 8 : 16;
  cfg.slurm.min_pass_gap = sim::SimTime::zero();
  cfg.manager.fib_lengths = core::job_length_set("C1");
  cfg.manager.fib_per_length = quick ? 3 : 4;

  const sim::SimTime load_end =
      quick ? sim::SimTime::minutes(15) : sim::SimTime::hours(1);
  if (intensity > 0.0) {
    fault::FaultProfile profile;
    profile.start = sim::SimTime::minutes(4);
    profile.horizon = load_end - profile.start;
    profile.node_crash_rate_per_hour = 4.0 * intensity;
    profile.invoker_stall_rate_per_hour = 6.0 * intensity;
    profile.invoker_crash_rate_per_hour = 4.0 * intensity;
    profile.mq_fault_rate_per_hour = 6.0 * intensity;
    profile.mean_outage = sim::SimTime::minutes(2);
    profile.mean_stall = sim::SimTime::seconds(30);
    cfg.faults = fault::FaultPlan::sample(profile, seed * 7919 + 17);
  }

  core::HpcWhiskSystem system{simulation, cfg};
  analysis::ConservationAudit audit{system.controller()};
  const auto functions = trace::register_sleep_functions(
      system.functions(), 20, sim::SimTime::seconds(2));
  system.start();
  simulation.run_until(sim::SimTime::minutes(2));
  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = quick ? 4.0 : 8.0, .functions = functions},
      [&system](const std::string& fn) {
        (void)system.controller().submit(fn);
      },
      sim::Rng{seed + 101}};
  faas.start(load_end);
  // Drain past the last client timeout (default 5 min) before auditing.
  simulation.run_until(load_end + sim::SimTime::minutes(7));

  RunResult out;
  const auto& c = system.controller().counters();
  out.accepted = c.accepted;
  out.completed = c.completed;
  out.timed_out = c.timed_out;
  out.requeued = c.requeued;
  out.completion_rate =
      c.accepted == 0 ? 0.0
                      : static_cast<double>(c.completed) /
                            static_cast<double>(c.accepted);
  std::vector<double> latencies_ms;
  for (const auto& rec : system.controller().activations())
    if (rec.state == whisk::ActivationState::kCompleted)
      latencies_ms.push_back(rec.response_time().to_seconds() * 1000.0);
  out.p95_ms =
      latencies_ms.empty() ? 0.0 : analysis::percentile(latencies_ms, 0.95);

  if (system.chaos() != nullptr) {
    out.faults = system.chaos()->counters().applied;
    double recovered_s = 0.0;
    std::uint64_t recovered = 0;
    for (const auto& f : system.chaos()->applied()) {
      if (f.recovery == sim::SimTime::max()) {
        ++out.unrecovered;
      } else {
        recovered_s += f.recovery.to_seconds();
        ++recovered;
      }
    }
    out.mean_recovery_s = recovered == 0 ? 0.0 : recovered_s / recovered;
  }

  const auto result = audit.finalize();
  out.audit_ok = result.ok();
  // Into the trial's own stream so parallel runs report failures in
  // intensity order, never interleaved.
  if (!result.ok()) os << result.report();
  return out;
}

}  // namespace

int main() {
  const bool quick = std::getenv("HW_BENCH_QUICK") != nullptr;
  const char* seed_env = std::getenv("HW_SEED");
  const std::uint64_t seed =
      seed_env == nullptr ? 1 : std::strtoull(seed_env, nullptr, 10);

  const std::vector<std::pair<const char*, double>> sweep = {
      {"none", 0.0}, {"low", 0.5}, {"medium", 1.0},
      {"high", 2.0}, {"extreme", 4.0},
  };

  // The five intensities are independent simulations: fan them out and
  // gather the results by index so the table rows keep sweep order.
  const std::vector<RunResult> results = exec::parallel_trials(
      sweep, [quick, seed](const std::pair<const char*, double>& point,
                           std::ostream& os) {
        return run(point.second, quick, seed, os);
      });

  bool all_ok = true;
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = results[i];
    all_ok = all_ok && r.audit_ok;
    rows.push_back({
        sweep[i].first,
        std::to_string(r.faults),
        std::to_string(r.accepted),
        analysis::fmt_pct(r.completion_rate),
        std::to_string(r.timed_out),
        std::to_string(r.requeued),
        analysis::fmt(r.p95_ms, 1),
        analysis::fmt(r.mean_recovery_s, 1),
        std::to_string(r.unrecovered),
    });
  }
  analysis::print_table(
      std::cout,
      quick ? "chaos recovery vs fault intensity (quick: 8 nodes, 15 min)"
            : "chaos recovery vs fault intensity (16 nodes, 1 h)",
      {"intensity", "faults", "accepted", "completed", "timeouts", "requeued",
       "p95 ms", "mean recovery s", "unrecovered"},
      rows);
  std::cout << "expected: completion stays high and p95 grows gracefully "
               "with intensity —\nfaults cost retries and timeouts, never "
               "lost activations (audit "
            << (all_ok ? "OK" : "VIOLATED") << ").\n";
  return all_ok ? 0 : 1;
}
