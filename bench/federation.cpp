// Federation bench: routing an open-loop FaaS workload across {1,2,4}
// independent HPC-Whisk clusters behind one fed::FederatedGateway, under
// all three routing policies. Total node supply and total QPS are held
// fixed across cluster counts, so the sweep isolates what federation
// itself buys: per-cluster idleness dips decorrelate, and a sibling can
// absorb what a single deployment would have shed to the commercial
// cloud (the generalized Alg. 1).
//
// Every cluster runs its own calibrated HPC background workload (scaled
// to its node count, per-cluster seed) plus a mild sampled fault plan,
// so supply dips are real and skewed. Legs fan out through
// exec::parallel_trials; the emitted BENCH_federation.json carries
// cloud-offload fraction, p50/p95 end-to-end latency, per-cluster load
// share and health coverage per leg, plus the acceptance flags:
// power-of-two at >= 2 clusters must beat round-robin and the
// single-cluster baseline on both offload fraction and p95.
//
//   HW_BENCH_QUICK=1     quarter-scale window and supply
//   HW_SEED=<n>          base RNG seed (default 1)
//   HW_BENCH_TRIALS=<n>  seeds per (clusters, policy) leg (default 1)
//   HW_BENCH_JOBS=<n>    legs run in parallel (default hw threads)
//   HW_FED_CLUSTERS=<n>  restrict the sweep to one cluster count
//   HW_FED_OUT=<p>       report path (default BENCH_federation.json)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "common/experiment.hpp"
#include "hpcwhisk/fed/federated_gateway.hpp"

using namespace hpcwhisk;

namespace {

struct Leg {
  std::size_t clusters{1};
  fed::FedPolicy policy{fed::FedPolicy::kPowerOfTwo};
  std::uint64_t seed{1};
};

struct LegResult {
  std::uint64_t invocations{0};
  std::uint64_t cluster_calls{0};
  std::uint64_t cloud_calls{0};
  std::uint64_t rejections{0};
  std::uint64_t spillovers{0};
  std::uint64_t cooldown_skips{0};
  double cloud_fraction{0.0};
  double p50_ms{0.0};
  double p95_ms{0.0};
  /// Health-sampler coverage: share of samples with >= 1 healthy
  /// invoker somewhere in the federation.
  double coverage{0.0};
  std::vector<double> share;  ///< per-cluster load share
};

LegResult run_leg(const Leg& leg, bool quick, std::ostream&) {
  const std::uint32_t total_nodes = quick ? 24 : 48;
  const std::uint32_t per_nodes =
      total_nodes / static_cast<std::uint32_t>(leg.clusters);
  const sim::SimTime faas_start = sim::SimTime::minutes(2);
  const sim::SimTime faas_end =
      faas_start + (quick ? sim::SimTime::minutes(20) : sim::SimTime::minutes(45));
  const double qps = quick ? 8.0 : 16.0;

  sim::Simulation simulation;
  fed::FederatedGateway::Config cfg;
  cfg.policy = leg.policy;
  cfg.seed = leg.seed;
  for (std::size_t i = 0; i < leg.clusters; ++i) {
    fed::FederatedGateway::ClusterSpec spec;
    spec.system.seed = leg.seed * 1000 + i;
    spec.system.slurm.node_count = per_nodes;
    spec.system.slurm.min_pass_gap = sim::SimTime::zero();
    spec.system.manager.fib_lengths = core::job_length_set("C1");
    spec.system.manager.fib_per_length =
        std::max<std::size_t>(2, per_nodes / 4);

    // A uniformly scaled replica of one HPC demand stream per cluster:
    // job sizes and backlog proportional to the node count, one
    // submission slot per tick with the tick inversely proportional.
    // Relative demand is identical across cluster sizes, so the sweep
    // isolates pooling effects, not load differences.
    spec.hpc_load.backlog_target = std::max<std::size_t>(2, per_nodes / 4);
    spec.hpc_load.max_submits_per_tick = 1;
    spec.hpc_load.check_interval = sim::SimTime::seconds(360.0 / per_nodes);
    spec.hpc_load.size_buckets = {
        {1, std::max<std::uint32_t>(2, per_nodes / 3), 1.0}};
    spec.hpc_load.limit_scale = 0.005;

    // Mild decorrelated background chaos, rate proportional to cluster
    // size: the sampled fault mass is constant across widths.
    fault::FaultProfile profile;
    profile.start = sim::SimTime::minutes(4);
    profile.horizon = faas_end - profile.start;
    profile.node_crash_rate_per_hour =
        8.0 * per_nodes / static_cast<double>(total_nodes);
    profile.invoker_crash_rate_per_hour =
        12.0 * per_nodes / static_cast<double>(total_nodes);
    profile.mean_outage = sim::SimTime::seconds(90);
    spec.system.faults =
        fault::FaultPlan::sample(profile, leg.seed * 7919 + i);

    // Site outages: every site, regardless of size, takes one short
    // full-site hit (a node-crash burst) per wave — each site is its
    // own failure domain, and that domain does not shrink when the
    // same nodes are split across more sites. The dip (~10 s outage
    // plus pilot rewarm, well under the 60 s cool-down) is exactly the
    // shape Alg. 1's Last_503 over-penalizes: a probing policy extends
    // every dip into a full cool-down window, while a snapshot policy
    // re-admits the site the moment its pilots rewarm. Sites go down
    // staggered within a wave (rolling maintenance), so true joint
    // outages are rare, but a supply-blind policy meets its one
    // probed-and-cooling site just as the sibling dips.
    const sim::SimTime wave_period = sim::SimTime::seconds(240);
    for (std::uint32_t w = 0;; ++w) {
      const sim::SimTime wave_at =
          faas_start + sim::SimTime::seconds(90) + wave_period * w;
      if (wave_at >= faas_end - sim::SimTime::seconds(90)) break;
      const double jitter = static_cast<double>(
          (leg.seed * 2654435761ULL + w * 977ULL + i * 131ULL) % 11ULL);
      const sim::SimTime site_at =
          wave_at +
          sim::SimTime::seconds(40.0 * static_cast<double>(i) + jitter);
      for (std::uint32_t k = 0; k < per_nodes; ++k) {
        fault::FaultEvent ev;
        ev.kind = fault::FaultKind::kNodeCrash;
        ev.at = site_at;
        ev.grace = sim::SimTime::seconds(2);
        ev.outage = sim::SimTime::seconds(10);
        spec.system.faults.add(ev);
      }
    }

    cfg.clusters.push_back(std::move(spec));
  }
  fed::FederatedGateway gateway{simulation, cfg};

  std::vector<std::string> functions;
  for (int k = 0; k < 20; ++k) {
    auto spec = whisk::fixed_duration_function("sleep-" + std::to_string(k),
                                               sim::SimTime::seconds(2));
    functions.push_back(spec.name);
    gateway.register_function(spec);
  }
  gateway.start();
  simulation.run_until(faas_start);
  trace::FaasLoadGenerator faas{
      simulation,
      {.rate_qps = qps, .poisson = true, .functions = functions},
      [&gateway](const std::string& fn) { (void)gateway.invoke(fn); },
      sim::Rng{leg.seed + 101}};
  faas.start(faas_end);
  simulation.run_until(faas_end + sim::SimTime::minutes(6));

  LegResult out;
  const auto& c = gateway.counters();
  out.invocations = c.invocations;
  out.cluster_calls = c.cluster_calls;
  out.cloud_calls = c.cloud_calls;
  out.rejections = c.rejections_seen;
  out.spillovers = c.spillovers;
  out.cooldown_skips = c.cooldown_skips;
  out.cloud_fraction =
      c.invocations == 0 ? 0.0
                         : static_cast<double>(c.cloud_calls) /
                               static_cast<double>(c.invocations);

  std::vector<double> latencies_ms;
  for (std::size_t i = 0; i < gateway.cluster_count(); ++i) {
    for (const auto& rec : gateway.cluster(i).controller().activations()) {
      if (rec.state == whisk::ActivationState::kCompleted) {
        latencies_ms.push_back(rec.response_time().to_seconds() * 1000.0);
      }
    }
  }
  for (const auto& rec : gateway.cloud_service().invocations()) {
    if (rec.end_time > rec.submit_time) {
      latencies_ms.push_back(
          (rec.end_time - rec.submit_time).to_seconds() * 1000.0);
    }
  }
  out.p50_ms = latencies_ms.empty() ? 0.0
                                    : analysis::percentile(latencies_ms, 0.50);
  out.p95_ms = latencies_ms.empty() ? 0.0
                                    : analysis::percentile(latencies_ms, 0.95);

  out.coverage = gateway.health_samples() == 0
                     ? 0.0
                     : static_cast<double>(gateway.health_samples_any_healthy()) /
                           static_cast<double>(gateway.health_samples());
  const std::uint64_t placed = std::max<std::uint64_t>(1, c.cluster_calls);
  for (const std::uint64_t calls : gateway.per_cluster_calls()) {
    out.share.push_back(static_cast<double>(calls) /
                        static_cast<double>(placed));
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

struct Aggregate {
  double cloud_fraction{0.0};
  double p95_ms{0.0};
  std::size_t n{0};
};

}  // namespace

int main() {
  const bool quick = std::getenv("HW_BENCH_QUICK") != nullptr;
  const std::string out_path = env_or("HW_FED_OUT", "BENCH_federation.json");
  bench::ExperimentConfig env_cfg = bench::apply_env({});
  const std::uint64_t base_seed = env_cfg.seed;
  const std::size_t trials = bench::trial_count();

  std::vector<std::size_t> cluster_counts = {1, 2, 4};
  if (env_cfg.fed_clusters > 0) cluster_counts = {env_cfg.fed_clusters};
  const fed::FedPolicy policies[] = {fed::FedPolicy::kRoundRobin,
                                     fed::FedPolicy::kLeastOutstanding,
                                     fed::FedPolicy::kPowerOfTwo};

  std::vector<Leg> legs;
  for (const std::size_t n : cluster_counts) {
    for (const fed::FedPolicy policy : policies) {
      for (std::size_t t = 0; t < trials; ++t) {
        legs.push_back({n, policy, base_seed + t});
      }
    }
  }

  const std::vector<LegResult> results = exec::parallel_trials(
      legs, [quick](const Leg& leg, std::ostream& os) {
        return run_leg(leg, quick, os);
      });

  // Seed-averaged (clusters, policy) aggregates for the acceptance
  // inequalities.
  std::map<std::pair<std::size_t, int>, Aggregate> agg;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    Aggregate& a =
        agg[{legs[i].clusters, static_cast<int>(legs[i].policy)}];
    a.cloud_fraction += results[i].cloud_fraction;
    a.p95_ms += results[i].p95_ms;
    ++a.n;
  }
  for (auto& [key, a] : agg) {
    a.cloud_fraction /= static_cast<double>(a.n);
    a.p95_ms /= static_cast<double>(a.n);
  }

  const auto get = [&agg](std::size_t n, fed::FedPolicy p) -> const Aggregate* {
    const auto it = agg.find({n, static_cast<int>(p)});
    return it == agg.end() ? nullptr : &it->second;
  };

  // Acceptance inequalities: p2c pooled over the federated widths
  // (>= 2 clusters, seed-averaged) must strictly beat round-robin
  // pooled the same way, and the single-cluster Alg. 1 baseline, on
  // both cloud-offload fraction and p95 latency. Pooling across widths
  // keeps the comparison meaningful at widths whose offload saturates
  // at zero for every policy — a wide federation virtually never has
  // all sites unavailable at once, so each policy sheds nothing there.
  const auto pooled = [&](fed::FedPolicy p) -> Aggregate {
    Aggregate out;
    for (const std::size_t n : cluster_counts) {
      if (n < 2) continue;
      if (const Aggregate* a = get(n, p)) {
        out.cloud_fraction += a->cloud_fraction;
        out.p95_ms += a->p95_ms;
        ++out.n;
      }
    }
    if (out.n > 0) {
      out.cloud_fraction /= static_cast<double>(out.n);
      out.p95_ms /= static_cast<double>(out.n);
    }
    return out;
  };
  const Aggregate* single = get(1, fed::FedPolicy::kPowerOfTwo);
  const Aggregate fed_p2c = pooled(fed::FedPolicy::kPowerOfTwo);
  const Aggregate fed_rr = pooled(fed::FedPolicy::kRoundRobin);
  const bool compared = fed_p2c.n > 0 && fed_rr.n > 0;
  const bool p2c_beats_rr = compared &&
                            fed_p2c.cloud_fraction < fed_rr.cloud_fraction &&
                            fed_p2c.p95_ms < fed_rr.p95_ms;
  const bool p2c_beats_single =
      compared && single != nullptr &&
      fed_p2c.cloud_fraction < single->cloud_fraction &&
      fed_p2c.p95_ms < single->p95_ms;
  const bool acceptance_applicable = compared && single != nullptr;
  const bool acceptance_ok =
      !acceptance_applicable || (p2c_beats_rr && p2c_beats_single);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = results[i];
    rows.push_back({
        std::to_string(legs[i].clusters),
        fed::to_string(legs[i].policy),
        std::to_string(legs[i].seed),
        std::to_string(r.invocations),
        analysis::fmt_pct(r.cloud_fraction),
        analysis::fmt(r.p50_ms, 1),
        analysis::fmt(r.p95_ms, 1),
        std::to_string(r.rejections),
        std::to_string(r.spillovers),
        analysis::fmt_pct(r.coverage),
    });
  }
  analysis::print_table(
      std::cout,
      quick ? "federated routing (quick: 24 nodes total, 20 min)"
            : "federated routing (48 nodes total, 45 min)",
      {"clusters", "policy", "seed", "calls", "cloud", "p50 ms", "p95 ms",
       "503s", "spills", "coverage"},
      rows);

  std::ofstream json{out_path};
  bench::write_meta_header(json, "federation", quick, base_seed);
  json << "  \"trials\": " << trials << ",\n"
       << "  \"total_nodes\": " << (quick ? 24 : 48) << ",\n"
       << "  \"legs\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = results[i];
    json << "    {\"clusters\": " << legs[i].clusters << ", \"policy\": \""
         << fed::to_string(legs[i].policy) << "\", \"seed\": " << legs[i].seed
         << ", \"invocations\": " << r.invocations
         << ", \"cluster_calls\": " << r.cluster_calls
         << ", \"cloud_calls\": " << r.cloud_calls
         << ", \"cloud_offload_fraction\": " << fmt_num(r.cloud_fraction)
         << ", \"p50_ms\": " << fmt_num(r.p50_ms)
         << ", \"p95_ms\": " << fmt_num(r.p95_ms)
         << ", \"rejections\": " << r.rejections
         << ", \"spillovers\": " << r.spillovers
         << ", \"cooldown_skips\": " << r.cooldown_skips
         << ", \"coverage\": " << fmt_num(r.coverage)
         << ", \"load_share\": [";
    for (std::size_t k = 0; k < r.share.size(); ++k) {
      if (k > 0) json << ", ";
      json << fmt_num(r.share[k]);
    }
    json << "]}" << (i + 1 < legs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"single_cluster\": {\"cloud_offload_fraction\": "
       << fmt_num(single != nullptr ? single->cloud_fraction : 0.0)
       << ", \"p95_ms\": " << fmt_num(single != nullptr ? single->p95_ms : 0.0)
       << "},\n"
       << "  \"federated_round_robin\": {\"cloud_offload_fraction\": "
       << fmt_num(fed_rr.cloud_fraction) << ", \"p95_ms\": "
       << fmt_num(fed_rr.p95_ms) << "},\n"
       << "  \"federated_power_of_two\": {\"cloud_offload_fraction\": "
       << fmt_num(fed_p2c.cloud_fraction) << ", \"p95_ms\": "
       << fmt_num(fed_p2c.p95_ms) << "},\n"
       << "  \"p2c_beats_rr\": " << (p2c_beats_rr ? "true" : "false") << ",\n"
       << "  \"p2c_beats_single_cluster\": "
       << (p2c_beats_single ? "true" : "false") << ",\n"
       << "  \"acceptance_applicable\": "
       << (acceptance_applicable ? "true" : "false") << ",\n"
       << "  \"acceptance_ok\": " << (acceptance_ok ? "true" : "false")
       << "\n}\n";
  json.close();

  std::cout << "acceptance: p2c beats rr "
            << (p2c_beats_rr ? "OK" : "VIOLATED") << ", beats single-cluster "
            << (p2c_beats_single ? "OK" : "VIOLATED") << " -> " << out_path
            << "\n";
  return acceptance_ok ? 0 : 1;
}
