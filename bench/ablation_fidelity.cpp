// Slurm-fidelity ablation: what does richer scheduler fidelity do to the
// harvesting story? Four cumulative regimes over the same workload:
//
//   legacy          whole-node jobs, static priority (the pre-fidelity
//                   simulator; golden-pinned)
//   tres            per-TRES packing — HPC jobs draw a whole/half/quarter
//                   node mix and pilots become fractional slices that
//                   co-reside with prime work
//   tres+resv       + rolling maintenance reservations carving nodes out
//                   of both supplies
//   tres+resv+qos   + two-tier QOS pilot preemption (long-fib pilots
//                   ride the protected tier)
//
// Per leg: harvested node-seconds (invoker serving time scaled by the
// pilot's node fraction), harvest efficiency, FaaS cold-start rate and
// p50/p95 response. Acceptance (the bench's exit code):
//   1. the four regimes DIVERGE on harvested node-seconds and on p95 —
//      each knob visibly moves the system;
//   2. the legacy golden decision-log hash still matches (the fidelity
//      layer is opt-in: with the knobs off, byte-identical decisions);
//   3. a SimCheck mini-campaign over the new regimes is invariant-clean.
//
//   HW_BENCH_QUICK=1     64 nodes, short window (CI smoke)
//   HW_SEED=<n>          base RNG seed (default 1)
//   HW_BENCH_TRIALS=<n>  seeds per regime (default 1)
//   HW_BENCH_JOBS=<n>    legs run in parallel (default hw threads)
//   HW_FIDELITY_OUT=<p>  report path (default BENCH_fidelity.json)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "common/experiment.hpp"
#include "hpcwhisk/check/simcheck.hpp"
#include "hpcwhisk/slurm/testing/golden_trace.hpp"

using namespace hpcwhisk;

namespace {

enum class Regime { kLegacy, kTres, kTresResv, kTresResvQos };
constexpr Regime kRegimes[] = {Regime::kLegacy, Regime::kTres,
                               Regime::kTresResv, Regime::kTresResvQos};

const char* to_string(Regime r) {
  switch (r) {
    case Regime::kLegacy: return "legacy";
    case Regime::kTres: return "tres";
    case Regime::kTresResv: return "tres+resv";
    case Regime::kTresResvQos: return "tres+resv+qos";
  }
  return "?";
}

struct Leg {
  Regime regime{Regime::kLegacy};
  std::uint64_t seed{1};
};

struct LegResult {
  // Slurm perspective.
  std::uint64_t jobs_started{0};
  std::uint64_t preempted{0};
  // Harvest ledger (manager perspective).
  double harvested_node_s{0.0};
  double harvest_efficiency{0.0};
  std::uint64_t pilots_served{0};
  std::uint64_t pilots_never_served{0};
  // FaaS perspective.
  std::uint64_t issued{0};
  std::uint64_t completed{0};
  double cold_start_rate{0.0};
  double p50_ms{0.0};
  double p95_ms{0.0};
};

LegResult run_leg(const Leg& leg, bool quick, std::ostream&) {
  bench::ExperimentConfig cfg;
  cfg.pilots = core::SupplyModel::kFib;
  cfg.nodes = quick ? 64 : 512;
  cfg.burn_in = quick ? sim::SimTime::minutes(15) : sim::SimTime::hours(1);
  cfg.window = quick ? sim::SimTime::minutes(30) : sim::SimTime::hours(2);
  cfg.faas_qps = quick ? 30.0 : 120.0;
  cfg.faas_functions = 40;
  cfg.seed = leg.seed;

  cfg.fidelity.tres = leg.regime != Regime::kLegacy;
  cfg.fidelity.reservations = leg.regime == Regime::kTresResv ||
                              leg.regime == Regime::kTresResvQos;
  cfg.fidelity.qos_preempt = leg.regime == Regime::kTresResvQos;
  // Rolling maintenance windows sized to the run: several windows must
  // fall inside the measured window for the knob to matter.
  cfg.fidelity.reservation_period =
      quick ? sim::SimTime::minutes(12) : sim::SimTime::minutes(40);
  cfg.fidelity.reservation_length =
      quick ? sim::SimTime::minutes(6) : sim::SimTime::minutes(15);

  const bench::ExperimentResult result = bench::run_experiment(cfg);

  LegResult out;
  const auto& sc = result.system->slurm().counters();
  out.jobs_started = sc.started;
  out.preempted = sc.preempted;

  // A legacy pilot owns its whole node; a TRES pilot owns a fraction.
  const double node_fraction =
      cfg.fidelity.tres
          ? static_cast<double>(cfg.fidelity.pilot_tres.cpus) /
                static_cast<double>(cfg.fidelity.node_capacity.cpus)
          : 1.0;
  const auto& harvest = result.system->manager().harvest();
  out.harvested_node_s = harvest.harvested.to_seconds() * node_fraction;
  out.harvest_efficiency = harvest.efficiency();
  out.pilots_served = harvest.pilots_served;
  out.pilots_never_served = harvest.pilots_never_served;

  out.issued = result.faas_issued;
  std::uint64_t cold = 0;
  std::vector<double> response_ms;
  for (const auto& rec : result.system->controller().activations()) {
    if (rec.state != whisk::ActivationState::kCompleted) continue;
    ++out.completed;
    if (rec.cold_start) ++cold;
    response_ms.push_back(rec.response_time().to_seconds() * 1e3);
  }
  out.cold_start_rate =
      out.completed == 0
          ? 0.0
          : static_cast<double>(cold) / static_cast<double>(out.completed);
  if (!response_ms.empty()) {
    out.p50_ms = analysis::percentile(response_ms, 0.50);
    out.p95_ms = analysis::percentile(response_ms, 0.95);
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

struct Aggregate {
  double harvested_node_s{0.0};
  double efficiency{0.0};
  double cold_rate{0.0};
  double p50_ms{0.0};
  double p95_ms{0.0};
  double preempted{0.0};
  std::size_t n{0};

  void fold(const LegResult& r) {
    harvested_node_s += r.harvested_node_s;
    efficiency += r.harvest_efficiency;
    cold_rate += r.cold_start_rate;
    p50_ms += r.p50_ms;
    p95_ms += r.p95_ms;
    preempted += static_cast<double>(r.preempted);
    ++n;
  }
  void finish() {
    if (n == 0) return;
    const auto d = static_cast<double>(n);
    harvested_node_s /= d;
    efficiency /= d;
    cold_rate /= d;
    p50_ms /= d;
    p95_ms /= d;
    preempted /= d;
  }
};

/// All four values pairwise distinct (relative gap > 0.01 %)?
bool diverges(const std::vector<double>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      const double scale = std::max(std::abs(v[i]), std::abs(v[j]));
      if (scale == 0.0 || std::abs(v[i] - v[j]) / scale <= 1e-4) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const bool quick = std::getenv("HW_BENCH_QUICK") != nullptr;
  const std::string out_path =
      env_or("HW_FIDELITY_OUT", "BENCH_fidelity.json");
  const bench::ExperimentConfig env_cfg = bench::apply_env({});
  const std::uint64_t base_seed = env_cfg.seed;
  const std::size_t trials = bench::trial_count();

  std::vector<Leg> legs;
  for (const Regime regime : kRegimes) {
    for (std::size_t t = 0; t < trials; ++t) {
      legs.push_back({regime, base_seed + t});
    }
  }
  const std::vector<LegResult> results = exec::parallel_trials(
      legs,
      [quick](const Leg& leg, std::ostream& os) {
        return run_leg(leg, quick, os);
      });

  std::map<Regime, Aggregate> agg;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    agg[legs[i].regime].fold(results[i]);
  }
  for (auto& [regime, a] : agg) a.finish();

  // Acceptance 1: every knob moves the system — harvested node-seconds
  // and p95 are pairwise distinct across the four regimes.
  std::vector<double> harvests, p95s;
  for (const Regime regime : kRegimes) {
    harvests.push_back(agg[regime].harvested_node_s);
    p95s.push_back(agg[regime].p95_ms);
  }
  const bool harvest_diverges = diverges(harvests);
  const bool p95_diverges = diverges(p95s);

  // Acceptance 2: fidelity stays opt-in — the legacy golden decision-log
  // hash is untouched with every knob at its off value.
  const auto golden = slurm::testing::run_golden_trace(
      42, [](slurm::Slurmctld::Config& c) {
        c.fidelity.tres_mode = false;
        c.fidelity.node_capacity = slurm::TresVector{};
        c.fidelity.fair_share.enabled = false;
        c.fidelity.qos.clear();
        c.fidelity.reservations.clear();
      });
  const bool golden_ok = golden.hash == slurm::testing::kGoldenHash;

  // Acceptance 3: a SimCheck mini-campaign over the sampled regimes
  // (seeds 1..12 draw TRES/QOS/reservation mixes) is invariant-clean.
  check::CampaignOptions campaign_opts;
  campaign_opts.seed_base = base_seed;
  campaign_opts.seeds = 12;
  campaign_opts.shrink = false;
  campaign_opts.replay_check = false;
  std::ostringstream campaign_log;
  const auto campaign = check::run_campaign(
      campaign_opts, check::InvariantSuite::standard(), campaign_log);
  const bool simcheck_clean = campaign.ok();

  const bool acceptance_ok =
      harvest_diverges && p95_diverges && golden_ok && simcheck_clean;

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = results[i];
    rows.push_back({
        to_string(legs[i].regime),
        std::to_string(legs[i].seed),
        std::to_string(r.jobs_started),
        std::to_string(r.preempted),
        analysis::fmt(r.harvested_node_s, 0),
        analysis::fmt_pct(r.harvest_efficiency),
        analysis::fmt_pct(r.cold_start_rate),
        analysis::fmt(r.p50_ms, 1),
        analysis::fmt(r.p95_ms, 1),
    });
  }
  analysis::print_table(
      std::cout,
      quick ? "fidelity ablation (quick: 64 nodes)"
            : "fidelity ablation (512 nodes)",
      {"regime", "seed", "started", "preempted", "harvest node-s",
       "efficiency", "cold-start", "p50 ms", "p95 ms"},
      rows);

  std::ofstream json{out_path};
  bench::write_meta_header(json, "ablation_fidelity", quick, base_seed);
  json << "  \"trials\": " << trials << ",\n  \"legs\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = results[i];
    json << "    {\"regime\": \"" << to_string(legs[i].regime)
         << "\", \"seed\": " << legs[i].seed
         << ", \"jobs_started\": " << r.jobs_started
         << ", \"preempted\": " << r.preempted
         << ", \"harvested_node_s\": " << fmt_num(r.harvested_node_s)
         << ", \"harvest_efficiency\": " << fmt_num(r.harvest_efficiency)
         << ", \"pilots_served\": " << r.pilots_served
         << ", \"pilots_never_served\": " << r.pilots_never_served
         << ", \"issued\": " << r.issued << ", \"completed\": " << r.completed
         << ", \"cold_start_rate\": " << fmt_num(r.cold_start_rate)
         << ", \"p50_ms\": " << fmt_num(r.p50_ms)
         << ", \"p95_ms\": " << fmt_num(r.p95_ms) << "}"
         << (i + 1 < legs.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"regimes\": {\n";
  for (std::size_t i = 0; i < 4; ++i) {
    const Aggregate& a = agg[kRegimes[i]];
    json << "    \"" << to_string(kRegimes[i])
         << "\": {\"harvested_node_s\": " << fmt_num(a.harvested_node_s)
         << ", \"harvest_efficiency\": " << fmt_num(a.efficiency)
         << ", \"cold_start_rate\": " << fmt_num(a.cold_rate)
         << ", \"p50_ms\": " << fmt_num(a.p50_ms)
         << ", \"p95_ms\": " << fmt_num(a.p95_ms)
         << ", \"preempted\": " << fmt_num(a.preempted) << "}"
         << (i + 1 < 4 ? "," : "") << "\n";
  }
  json << "  },\n  \"golden\": {\"hash\": \"0x" << std::hex << golden.hash
       << std::dec << "\", \"expected\": \"0x" << std::hex
       << slurm::testing::kGoldenHash << std::dec
       << "\", \"log_bytes\": " << golden.log_bytes << "},\n"
       << "  \"simcheck\": {\"seeds\": " << campaign_opts.seeds
       << ", \"failures\": " << campaign.failures << "},\n"
       << "  \"acceptance\": {\"harvest_diverges\": "
       << (harvest_diverges ? "true" : "false")
       << ", \"p95_diverges\": " << (p95_diverges ? "true" : "false")
       << ", \"golden_hash_ok\": " << (golden_ok ? "true" : "false")
       << ", \"simcheck_clean\": " << (simcheck_clean ? "true" : "false")
       << ", \"acceptance_ok\": " << (acceptance_ok ? "true" : "false")
       << "}\n}\n";
  json.close();

  std::cout << "acceptance: harvest "
            << (harvest_diverges ? "diverges" : "DEGENERATE") << ", p95 "
            << (p95_diverges ? "diverges" : "DEGENERATE") << ", golden "
            << (golden_ok ? "intact" : "BROKEN") << ", simcheck "
            << (simcheck_clean ? "clean" : "VIOLATED") << " -> "
            << (acceptance_ok ? "OK" : "VIOLATED") << " (" << out_path
            << ")\n";
  return acceptance_ok ? 0 : 1;
}
