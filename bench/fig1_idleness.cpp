// Fig. 1 reproduction: one week of the calibrated Prometheus-like
// workload WITHOUT pilots, analyzed exactly like the paper's initial
// study (Slurm-level 10-second sampling of node states).
//
//  (a) CDF of the number of idle nodes   — paper: P25 2, median 5,
//      80% of time <= 13, mean 9.23, ~10.11% of time zero idle nodes;
//  (b) CDF of idle-period lengths        — paper: median 2 min, P75
//      ~4 min, mean ~5 min, 5% longer than 23 min;
//  (c) idle-node time series             — paper: rapid changes, short
//      bursts up to ~150 idle nodes.

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

int main() {
  bench::ExperimentConfig cfg;
  cfg.window = sim::SimTime::days(7);
  cfg.pilots.reset();  // baseline idleness: no HPC-Whisk
  cfg = bench::apply_env(cfg);

  std::cout << "bench: fig1_idleness (seed " << cfg.seed << ", "
            << cfg.nodes << " nodes, window " << cfg.window.to_string()
            << " after " << cfg.burn_in.to_string() << " burn-in)\n\n";

  const auto result = bench::run_experiment(cfg);

  // ---- Fig. 1a: CDF of idle node count ---------------------------------
  std::vector<double> idle_counts;
  std::size_t zero = 0;
  for (const auto& s : result.samples) {
    idle_counts.push_back(s.idle);
    if (s.idle == 0) ++zero;
  }
  const auto idle_summary = analysis::summarize(idle_counts);
  analysis::print_cdf(std::cout, "Fig 1a: number of idle nodes",
                      analysis::cdf_points(idle_counts, 40));
  analysis::print_table(
      std::cout, "Fig 1a summary (paper: P25 2 / P50 5 / ~P80 13, mean 9.23)",
      {"metric", "paper", "measured"},
      {
          {"idle nodes P25", "2", analysis::fmt(idle_summary.p25, 0)},
          {"idle nodes P50", "5", analysis::fmt(idle_summary.p50, 0)},
          {"idle nodes P75", "~13 (P80)", analysis::fmt(idle_summary.p75, 0)},
          {"idle nodes mean", "9.23", analysis::fmt(idle_summary.avg, 2)},
          {"zero-idle time", "10.11%",
           analysis::fmt_pct(static_cast<double>(zero) /
                             static_cast<double>(result.samples.size()))},
      });

  // ---- Fig. 1b: CDF of idle period lengths ------------------------------
  std::vector<double> periods_min;
  for (const auto len : result.log->sampled_periods(
           sim::SimTime::seconds(10), {slurm::ObservedNodeState::kIdle})) {
    periods_min.push_back(len.to_minutes());
  }
  const auto period_summary = analysis::summarize(periods_min);
  analysis::print_cdf(std::cout, "Fig 1b: idle period length [min]",
                      analysis::cdf_points(periods_min, 40));
  analysis::print_table(
      std::cout,
      "Fig 1b summary (paper: median 2 min, P75 4 min, mean ~5 min, 5% > 23)",
      {"metric", "paper", "measured"},
      {
          {"period P50 [min]", "2", analysis::fmt(period_summary.p50, 2)},
          {"period P75 [min]", "~4", analysis::fmt(period_summary.p75, 2)},
          {"period mean [min]", "~5", analysis::fmt(period_summary.avg, 2)},
          {"share > 23 min", "5%",
           analysis::fmt_pct(
               1.0 - analysis::fraction_at_most(periods_min, 23.0))},
          {"periods observed", "-",
           std::to_string(periods_min.size())},
      });

  // ---- Fig. 1c: idle-node time series -----------------------------------
  analysis::print_series(std::cout, "Fig 1c: idle nodes over time",
                         idle_counts, 10.0, 96);

  const double max_idle = idle_summary.max;
  std::cout << "Fig 1c burst peak: " << max_idle
            << " idle nodes (paper: short bursts up to ~150)\n";
  return 0;
}
