// Fig. 5b reproduction: responsiveness of the fib-model infrastructure
// under a steady 10 QPS load (paper: 95.29% of requests invoked, 95.19%
// of those succeed; failures spike when invokers hit their container
// limit).

#include <iostream>

#include "common/responsiveness.hpp"

int main() {
  return hpcwhisk::bench::run_responsiveness(
      std::cout, hpcwhisk::core::SupplyModel::kFib, 95.29, 95.19);
}
