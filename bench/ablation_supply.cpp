// Ablation: the job-manager supply parameters (Sec. III-D b). The paper
// keeps 10 jobs of each fib length queued and replenishes every 15 s,
// capping the queue at 100 so Slurm's scheduler stays fast. We sweep the
// per-length depth and the replenish interval to show the design point
// is robust but not arbitrary: starving the queue loses coverage.

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

int main() {
  struct Point {
    std::size_t per_length;
    double replenish_s;
  };
  const std::vector<Point> sweep{Point{1, 15}, Point{3, 15}, Point{10, 15},
                                 Point{10, 60}, Point{10, 240}};
  // Independent runs: fan out, gather rows in sweep order.
  const auto rows =
      exec::parallel_trials(sweep, [](const Point& p, std::ostream&) {
        bench::ExperimentConfig cfg;
        cfg.pilots = core::SupplyModel::kFib;
        cfg.fib_per_length = p.per_length;
        cfg.replenish_interval = sim::SimTime::seconds(p.replenish_s);
        cfg.window = sim::SimTime::hours(12);
        cfg = bench::apply_env(cfg);
        const auto result = bench::run_experiment(cfg);
        const auto report = analysis::slurm_level_report(result.samples);
        const auto& mc = result.system->manager().counters();
        return std::vector<std::string>{
            std::to_string(p.per_length),
            analysis::fmt(p.replenish_s, 0) + " s",
            analysis::fmt_pct(report.coverage),
            analysis::fmt(report.pilot_workers.avg, 2),
            std::to_string(mc.started),
        };
      });
  analysis::print_table(
      std::cout,
      "ablation: pilot supply (fib, 12 h; paper: 10 per length / 15 s)",
      {"jobs per length", "replenish", "coverage", "avg workers", "started"},
      rows);
  std::cout << "expected: coverage degrades when the queue is starved (1 per "
               "length)\nor replenished rarely (4 min) — freed nodes wait "
               "for supply.\n";
  return 0;
}
