// Observability acceptance bench: runs the canonical fib production day
// with FaaS load twice — untraced and traced — and emits BENCH_obs.json
// plus the traced run's artifacts (Perfetto trace JSON, metrics JSONL).
//
// What it proves:
//  * determinism — the traced and untraced runs fold the exact same
//    decision log (every activation's full lifecycle plus the scheduler
//    ledger) through obs::fnv1a; instrumentation that changed a single
//    decision fails the bench;
//  * coverage — the traced run exhibits at least one drain-induced
//    fast-lane reroute that landed on a different invoker, both in the
//    activation store and as a fast_lane_reroute trace event;
//  * artifact sanity — the exported trace self-validates with
//    obs::looks_like_perfetto_json (CI additionally parses it with
//    python3 when available).
//
//   HW_BENCH_QUICK=1        quarter-scale run (CI smoke)
//   HW_OBS_REPS=<n>         timed reps per arm, best-of (default 5)
//   HW_SEED=<n>             base RNG seed (default 1)
//   HW_OBS_OUT=<p>          report path (default BENCH_obs.json)
//   HW_OBS_TRACE_OUT=<p>    Perfetto trace path (default obs_trace.json)
//   HW_OBS_METRICS_OUT=<p>  metrics JSONL path (default obs_metrics.jsonl)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "common/bench_json.hpp"
#include "common/experiment.hpp"
#include "hpcwhisk/obs/export.hpp"

using namespace hpcwhisk;

namespace {

using Clock = std::chrono::steady_clock;

/// Process CPU seconds when the platform has them, wall seconds
/// otherwise. The overhead ratio below divides two of these, so what
/// matters is that both arms use the same clock; CPU time is preferred
/// because it does not charge either arm for time stolen by other
/// tenants of the host — on a busy single-core box wall-clock noise
/// can exceed the instrumentation cost being measured.
double now_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Everything behavioral about a finished run, serialized in a fixed
/// order: all activation lifecycles, the scheduler ledger, and the event
/// count. Tracing must not move a single byte of this.
std::string decision_log(const bench::ExperimentResult& r) {
  std::string log;
  for (const whisk::ActivationRecord& rec :
       r.system->controller().activations()) {
    log += std::to_string(rec.id);
    log += ' ';
    log += rec.function;
    log += ' ';
    log += whisk::to_string(rec.state);
    log += ' ';
    log += std::to_string(rec.submit_time.ticks());
    log += ' ';
    log += std::to_string(rec.first_start_time.ticks());
    log += ' ';
    log += std::to_string(rec.start_time.ticks());
    log += ' ';
    log += std::to_string(rec.end_time.ticks());
    log += ' ';
    log += std::to_string(rec.routed_to);
    log += ' ';
    log += std::to_string(rec.executed_by);
    log += ' ';
    log += std::to_string(rec.requeues);
    log += ' ';
    log += std::to_string(rec.interruptions);
    log += rec.cold_start ? " cold\n" : " warm\n";
  }
  const auto& sc = r.system->slurm().counters();
  log += "slurm ";
  log += std::to_string(sc.started);
  log += ' ';
  log += std::to_string(sc.preempted);
  log += ' ';
  log += std::to_string(sc.sched_passes);
  log += '\n';
  log += "events ";
  log += std::to_string(r.simulation->executed_events());
  log += '\n';
  return log;
}

struct RunOutcome {
  bench::ExperimentResult result;
  double wall_s{0};
  std::uint64_t log_hash{0};
  std::size_t log_bytes{0};
};

/// One timed rep: re-runs the experiment, keeps the fastest wall time
/// seen so far and the latest result (the sim is deterministic, so every
/// rep's result is byte-identical — only the wall time varies with host
/// noise). Best-of-N is the standard single-core noise killer: OS jitter
/// only ever adds time, so the minimum is the closest estimate of the
/// true cost of the run.
void measure_rep(RunOutcome& out, const bench::ExperimentConfig& cfg,
                 int rep) {
  {
    // Free the prior rep untimed. Move it out and let the destructor
    // run: member destruction order (reverse declaration) keeps obs
    // alive until after the system — pilot teardown records into it.
    // A plain `out.result = {}` would member-assign in declaration
    // order and free obs first.
    const bench::ExperimentResult dead = std::move(out.result);
  }
  const double start = now_seconds();
  out.result = bench::run_experiment(cfg);
  const double wall = now_seconds() - start;
  if (rep == 0 || wall < out.wall_s) out.wall_s = wall;
}

void finalize_log(RunOutcome& out) {
  const std::string log = decision_log(out.result);
  out.log_hash = obs::fnv1a(log);
  out.log_bytes = log.size();
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

}  // namespace

int main() {
#if defined(__GLIBC__)
  // Keep the trace buffer's large allocation on the heap between reps.
  // By default glibc mmap()s blocks this size and returns them to the
  // OS on free (and trims the heap top), so every traced rep would
  // re-pay tens of thousands of soft page faults plus ~64 MB of kernel
  // zero-fill inside the timed window — first-touch cost, not
  // instrumentation cost, which is what this bench measures.
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
#endif
  const bool quick = std::getenv("HW_BENCH_QUICK") != nullptr;
  const std::string out_path = env_or("HW_OBS_OUT", "BENCH_obs.json");
  const std::string trace_path = env_or("HW_OBS_TRACE_OUT", "obs_trace.json");
  const std::string metrics_path =
      env_or("HW_OBS_METRICS_OUT", "obs_metrics.jsonl");

  // The canonical fib day plus the responsiveness FaaS load, with a
  // share of long interruptible functions: live drains then interrupt
  // in-flight executions and reroute them through the fast lane, the
  // path the coverage check below demands.
  bench::ExperimentConfig cfg;
  cfg.pilots = core::SupplyModel::kFib;
  cfg.faas_qps = 10.0;
  cfg.faas_functions = 100;
  cfg.faas_long_share = 0.3;
  cfg.faas_long_duration = sim::SimTime::seconds(45);
  cfg = bench::apply_env(cfg);
  cfg.trace_capacity = quick ? (1u << 21) : (1u << 23);
  if (std::getenv("HW_OBS_DIAG_TINY_TRACE") != nullptr) cfg.trace_capacity = 1;

  bench::ExperimentConfig untraced_cfg = cfg;
  untraced_cfg.observe = false;
  bench::ExperimentConfig traced_cfg = cfg;
  traced_cfg.observe = true;

  // Interleave the arms rep by rep so slow host drift (thermal,
  // background load) hits both equally instead of biasing whichever arm
  // runs last; best-of within each arm then strips the additive noise.
  const char* reps_env = std::getenv("HW_OBS_REPS");
  const int reps = reps_env != nullptr ? std::max(1, std::atoi(reps_env)) : 5;
  RunOutcome untraced;
  RunOutcome traced;
  for (int rep = 0; rep < reps; ++rep) {
    std::cout << "rep " << (rep + 1) << "/" << reps << ": untraced...\n";
    measure_rep(untraced, untraced_cfg, rep);
    std::cout << "rep " << (rep + 1) << "/" << reps << ": traced...\n";
    measure_rep(traced, traced_cfg, rep);
  }
  finalize_log(untraced);
  finalize_log(traced);

  const bool logs_identical = untraced.log_hash == traced.log_hash &&
                              untraced.log_bytes == traced.log_bytes;

  // Coverage: a drain interrupted a running execution and the fast lane
  // landed it on a *different* invoker.
  bool rerouted_in_store = false;
  for (const whisk::ActivationRecord& rec :
       traced.result.system->controller().activations()) {
    if (rec.requeues > 0 && rec.executed_by != whisk::kNoInvoker &&
        rec.routed_to != whisk::kNoInvoker &&
        rec.executed_by != rec.routed_to) {
      rerouted_in_store = true;
      break;
    }
  }
  std::uint64_t reroute_events = 0;
  const obs::TraceCollector& trace = traced.result.obs->trace;
  for (const obs::TraceEvent& ev : trace.events()) {
    if (std::string_view{ev.name} == "fast_lane_reroute") ++reroute_events;
  }
  const bool rerouted = rerouted_in_store && reroute_events > 0;

  // Export artifacts while the system (and thus every metrics collector)
  // is still alive.
  obs::ExportInfo info;
  info.run = "obs_report";
  info.seed = cfg.seed;
  traced.result.obs->metrics.collect();
  {
    std::ofstream os{trace_path};
    obs::write_perfetto_json(os, trace, info);
  }
  {
    std::ofstream os{metrics_path};
    obs::write_metrics_jsonl(os, traced.result.obs->metrics, info);
  }

  bool perfetto_valid = false;
  {
    std::ifstream is{trace_path};
    std::ostringstream buf;
    buf << is.rdbuf();
    perfetto_valid = obs::looks_like_perfetto_json(buf.str());
  }

  const std::uint64_t events = untraced.result.simulation->executed_events();
  const double untraced_eps =
      untraced.wall_s > 0 ? static_cast<double>(events) / untraced.wall_s : 0.0;
  const double traced_eps =
      traced.wall_s > 0
          ? static_cast<double>(traced.result.simulation->executed_events()) /
                traced.wall_s
          : 0.0;
  const double traced_overhead =
      untraced_eps > 0 ? 1.0 - traced_eps / untraced_eps : 0.0;

  // Harvest-efficiency ledger of the traced run (identical to the
  // untraced one: the decision-log hash above covers slurm counters).
  const core::JobManager::HarvestStats& hv =
      traced.result.system->manager().harvest();
  sim::SimTime cloud_offload;
  for (const cloud::LambdaService::InvocationRecord& inv :
       traced.result.system->commercial().invocations()) {
    cloud_offload += inv.internal_duration;
  }

  std::ofstream json{out_path};
  bench::write_meta_header(json, "obs_report", quick, cfg.seed);
  json << "  \"events\": " << events << ",\n"
       << "  \"untraced_events_per_sec\": " << fmt_num(untraced_eps) << ",\n"
       << "  \"traced_events_per_sec\": " << fmt_num(traced_eps) << ",\n"
       << "  \"traced_overhead\": " << fmt_num(traced_overhead) << ",\n"
       << "  \"decision_log_bytes\": " << untraced.log_bytes << ",\n"
       << "  \"decision_log_hash\": \"" << std::hex << untraced.log_hash
       << std::dec << "\",\n"
       << "  \"decision_logs_identical\": "
       << (logs_identical ? "true" : "false") << ",\n"
       << "  \"trace_events\": " << trace.size() << ",\n"
       << "  \"trace_dropped\": " << trace.dropped() << ",\n"
       << "  \"fast_lane_reroute_events\": " << reroute_events << ",\n"
       << "  \"reroute_across_invokers\": " << (rerouted ? "true" : "false")
       << ",\n"
       << "  \"metric_instruments\": "
       << traced.result.obs->metrics.instrument_count() << ",\n"
       << "  \"harvest\": {"
       << "\"harvested_node_s\": " << fmt_num(hv.harvested.to_seconds())
       << ", \"warmup_overhead_s\": " << fmt_num(hv.warmup_overhead.to_seconds())
       << ", \"drain_overhead_s\": " << fmt_num(hv.drain_overhead.to_seconds())
       << ", \"preempt_wasted_s\": " << fmt_num(hv.preempt_wasted.to_seconds())
       << ", \"efficiency\": " << fmt_num(hv.efficiency())
       << ", \"pilots_served\": " << hv.pilots_served
       << ", \"pilots_never_served\": " << hv.pilots_never_served
       << ", \"cloud_offload_s\": " << fmt_num(cloud_offload.to_seconds())
       << "},\n"
       << "  \"timeseries\": {"
       << "\"series\": " << traced.result.obs->series.series().size()
       << ", \"sweeps\": " << traced.result.obs->series.sweeps() << "},\n"
       << "  \"perfetto_valid\": " << (perfetto_valid ? "true" : "false")
       << "\n}\n";
  json.close();

  std::cout << "decision logs: "
            << (logs_identical ? "identical" : "DIVERGED (tracing changed "
                                               "behavior!)")
            << " (" << untraced.log_bytes << " bytes, hash 0x" << std::hex
            << untraced.log_hash << std::dec << ")\n"
            << "trace: " << trace.size() << " events (" << trace.dropped()
            << " dropped), " << reroute_events
            << " fast-lane reroutes, cross-invoker reroute "
            << (rerouted ? "present" : "ABSENT") << "\n"
            << "throughput: untraced " << fmt_num(untraced_eps)
            << " ev/s, traced " << fmt_num(traced_eps) << " ev/s (overhead "
            << fmt_num(traced_overhead * 100.0) << "%)\n"
            << "perfetto JSON: " << (perfetto_valid ? "valid" : "INVALID")
            << "\nharvest: " << fmt_num(hv.harvested.to_seconds())
            << " node-s served FaaS at efficiency " << fmt_num(hv.efficiency())
            << " (" << hv.pilots_served << " pilots served, "
            << hv.pilots_never_served << " wasted), cloud offload "
            << fmt_num(cloud_offload.to_seconds()) << " s\n"
            << "timeseries: " << traced.result.obs->series.series().size()
            << " series over " << traced.result.obs->series.sweeps()
            << " sweeps\n"
            << "wrote " << out_path << ", " << trace_path << ", "
            << metrics_path << "\n";

  const bool ok = logs_identical && rerouted && perfetto_valid;
  return ok ? 0 : 1;
}
