// Fig. 2 reproduction: CDFs of user-declared time limits, actual
// runtimes, and slack (limit - runtime) for the synthetic job population
// (paper: 74k non-commercial jobs in the monitored week; median declared
// limit 60 min; 95% of jobs declare at least 15 min).

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

int main() {
  bench::ExperimentConfig env = bench::apply_env({});
  const std::size_t kJobs =
      std::getenv("HW_BENCH_QUICK") != nullptr ? 10'000 : 74'000;

  std::cout << "bench: fig2_jobs (seed " << env.seed << ", " << kJobs
            << " jobs)\n\n";

  // Draw the job population through the same generator the system runs.
  sim::Simulation simulation;
  slurm::Slurmctld ctld{simulation,
                        {.node_count = 2239},
                        core::default_partitions()};
  trace::HpcWorkloadGenerator gen{simulation, ctld, {}, sim::Rng{env.seed}};

  std::vector<double> limits_min, runtimes_min, slack_min;
  limits_min.reserve(kJobs);
  std::size_t hit_limit = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    const trace::TraceJob job = gen.draw_job();
    limits_min.push_back(job.time_limit.to_minutes());
    if (job.runtime == sim::SimTime::max()) {
      // Runs into its limit: runtime == limit, slack == 0.
      runtimes_min.push_back(job.time_limit.to_minutes());
      slack_min.push_back(0.0);
      ++hit_limit;
    } else {
      runtimes_min.push_back(job.runtime.to_minutes());
      slack_min.push_back((job.time_limit - job.runtime).to_minutes());
    }
  }

  analysis::print_cdf(std::cout, "Fig 2: declared time limit [min]",
                      analysis::cdf_points(limits_min, 40));
  analysis::print_cdf(std::cout, "Fig 2: actual runtime [min]",
                      analysis::cdf_points(runtimes_min, 40));
  analysis::print_cdf(std::cout, "Fig 2: slack = limit - runtime [min]",
                      analysis::cdf_points(slack_min, 40));

  const auto limit_summary = analysis::summarize(limits_min);
  const auto runtime_summary = analysis::summarize(runtimes_min);
  const auto slack_summary = analysis::summarize(slack_min);
  analysis::print_table(
      std::cout, "Fig 2 summary",
      {"metric", "paper", "measured"},
      {
          {"limit median [min]", "60", analysis::fmt(limit_summary.p50, 1)},
          {"share declaring >= 15 min", "95%",
           analysis::fmt_pct(
               1.0 - analysis::fraction_at_most(limits_min, 14.999))},
          {"runtime median [min]", "< limit median (blue left of green)",
           analysis::fmt(runtime_summary.p50, 1)},
          {"slack median [min]", "> 0 (orange)",
           analysis::fmt(slack_summary.p50, 1)},
          {"jobs hitting their limit", "(small share)",
           analysis::fmt_pct(static_cast<double>(hit_limit) /
                             static_cast<double>(kJobs))},
      });
  return 0;
}
