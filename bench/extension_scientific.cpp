// Extension experiment (paper future work, Sec. VII: "benchmark our
// system using a representative scientific FaaS workload"). Instead of
// 10-ms sleeps, the load mixes realistic function classes:
//   short  — sub-second event handlers (Azure-like mix),
//   medium — 30 s–3 min data-preparation steps,
//   long   — 5–12 min simulation chunks, half of them non-interruptible
//            (they modify external state; Sec. III-C lets clients opt
//            out of the interrupt-and-requeue hand-off).
// The question: does the transient pilot fleet still deliver, and what
// does worker churn cost each class?

#include <iostream>

#include "common/experiment.hpp"

using namespace hpcwhisk;

int main() {
  bench::ExperimentConfig env;
  env.window = sim::SimTime::hours(12);
  env = bench::apply_env(env);

  sim::Simulation simulation;
  core::HpcWhiskSystem::Config sys_cfg;
  sys_cfg.seed = env.seed;
  sys_cfg.slurm.node_count = env.nodes;
  core::HpcWhiskSystem system{simulation, sys_cfg};
  trace::HpcWorkloadGenerator workload{simulation, system.slurm(), {},
                                       sim::Rng{env.seed ^ 0x9E3779B9ULL}};

  // --- the scientific function mix ---------------------------------------
  sim::Rng mix_rng{env.seed ^ 0x5C1ULL};
  std::vector<std::string> names;
  const auto azure =
      trace::register_azure_mix_functions(system.functions(), 40, mix_rng);
  names.insert(names.end(), azure.begin(), azure.end());
  for (int i = 0; i < 20; ++i) {
    whisk::FunctionSpec spec;
    spec.name = "prep-" + std::to_string(i);
    spec.memory_mb = 512;
    const sim::LognormalFromQuantiles model{60.0, 170.0, 0.95};  // seconds
    spec.duration = [model](sim::Rng& r) {
      return sim::SimTime::seconds(model.sample(r));
    };
    spec.timeout = sim::SimTime::minutes(15);
    system.functions().put(spec);
    names.push_back(spec.name);
  }
  for (int i = 0; i < 10; ++i) {
    whisk::FunctionSpec spec;
    spec.name = "simchunk-" + std::to_string(i);
    spec.memory_mb = 1024;
    const sim::LognormalFromQuantiles model{420.0, 720.0, 0.95};  // seconds
    spec.duration = [model](sim::Rng& r) {
      return sim::SimTime::seconds(model.sample(r));
    };
    spec.timeout = sim::SimTime::minutes(45);
    spec.interruptible = (i % 2 == 0);  // half opt out (external state)
    system.functions().put(spec);
    names.push_back(spec.name);
  }

  trace::FaasLoadGenerator::Config load_cfg;
  load_cfg.rate_qps = 2.0;
  load_cfg.poisson = true;
  load_cfg.functions = names;
  trace::FaasLoadGenerator faas{
      simulation, load_cfg,
      [&system](const std::string& fn) { (void)system.client().invoke(fn); },
      sim::Rng{env.seed ^ 0xFEEDULL}};

  workload.start();
  system.start();
  const auto end = env.burn_in + env.window;
  simulation.at(env.burn_in, [&faas, end] { faas.start(end); });
  simulation.run_until(end + sim::SimTime::hours(1));  // settle

  std::cout << "bench: extension_scientific (seed " << env.seed << ", "
            << env.nodes << " nodes, " << env.window.to_string()
            << ", 2 QPS Poisson scientific mix)\n\n";

  struct ClassStats {
    std::uint64_t total{0}, ok{0}, timed_out{0}, failed{0}, rejected{0};
    std::uint64_t interruptions{0}, requeues{0};
    std::vector<double> response_s;
  };
  std::map<std::string, ClassStats> classes;
  const auto class_of = [](const std::string& fn) -> std::string {
    if (fn.rfind("azure-", 0) == 0) return "short (azure mix)";
    if (fn.rfind("prep-", 0) == 0) return "medium (prep)";
    return "long (sim chunks)";
  };
  for (const auto& rec : system.controller().activations()) {
    if (rec.submit_time < env.burn_in) continue;
    auto& cls = classes[class_of(rec.function)];
    ++cls.total;
    cls.interruptions += rec.interruptions;
    cls.requeues += rec.requeues;
    switch (rec.state) {
      case whisk::ActivationState::kCompleted:
        ++cls.ok;
        cls.response_s.push_back(rec.response_time().to_seconds());
        break;
      case whisk::ActivationState::kTimedOut: ++cls.timed_out; break;
      case whisk::ActivationState::kFailed: ++cls.failed; break;
      case whisk::ActivationState::kRejected503: ++cls.rejected; break;
      default: break;
    }
  }

  std::vector<std::vector<std::string>> rows;
  for (auto& [name, cls] : classes) {
    const auto rt = analysis::summarize(cls.response_s);
    const std::uint64_t accepted = cls.total - cls.rejected;
    rows.push_back({
        name,
        std::to_string(cls.total),
        analysis::fmt_pct(cls.total
                              ? static_cast<double>(cls.rejected) / cls.total
                              : 0),
        analysis::fmt_pct(accepted ? static_cast<double>(cls.ok) / accepted
                                   : 0),
        analysis::fmt_pct(accepted
                              ? static_cast<double>(cls.timed_out) / accepted
                              : 0),
        analysis::fmt_pct(accepted ? static_cast<double>(cls.failed) / accepted
                                   : 0),
        std::to_string(cls.interruptions),
        std::to_string(cls.requeues),
        analysis::fmt(rt.p50, 1),
        analysis::fmt(analysis::percentile(cls.response_s, 0.99), 1),
    });
  }
  analysis::print_table(
      std::cout, "scientific FaaS workload on transient pilots",
      {"class", "calls", "503->cloud", "success*", "timeout*", "capacity-fail*",
       "interrupts", "requeues", "p50 resp [s]", "p99 resp [s]"},
      rows);
  std::cout << "(*of calls accepted on-cluster)\n";

  const auto& wc = system.client().counters();
  std::cout << "offloaded to commercial cloud during outages: "
            << wc.commercial_calls << " of "
            << wc.commercial_calls + wc.hpcwhisk_calls << " calls\n"
            << "finding: short calls ride worker churn via the fast lane; "
               "long-running\nchunks expose the two real limits of a "
               "transient fleet — container capacity\n(Sec. V-C's failure "
               "episode) and the grace-period bound on non-interruptible\n"
               "work (Sec. III-C's >3-minute caveat).\n";
  return 0;
}
