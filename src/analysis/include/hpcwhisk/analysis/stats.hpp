#pragma once
// Small statistics toolkit used by the reports: percentiles, CDF
// extraction for the paper's figures, and time-weighted aggregates.

#include <cstdint>
#include <vector>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::analysis {

/// p in [0,1]; nearest-rank percentile of an unsorted copy.
[[nodiscard]] double percentile(std::vector<double> values, double p);

[[nodiscard]] double mean(const std::vector<double>& values);

/// Summary of a sample: mean plus the quartiles the paper tabulates.
struct Summary {
  double p25{0};
  double p50{0};
  double p75{0};
  double avg{0};
  double min{0};
  double max{0};
};
[[nodiscard]] Summary summarize(const std::vector<double>& values);

/// CDF points (value, cumulative probability) from raw samples, thinned
/// to at most `max_points` for printing figure series.
struct CdfPoint {
  double value;
  double prob;
};
[[nodiscard]] std::vector<CdfPoint> cdf_points(std::vector<double> values,
                                               std::size_t max_points = 50);

/// Fraction of `values` that are <= x.
[[nodiscard]] double fraction_at_most(const std::vector<double>& values,
                                      double x);

/// Longest run (in consecutive samples) satisfying a predicate, returned
/// in sample counts; used for "longest period with zero ready workers".
template <typename T, typename Pred>
[[nodiscard]] std::size_t longest_run(const std::vector<T>& xs, Pred pred) {
  std::size_t best = 0, cur = 0;
  for (const T& x : xs) {
    cur = pred(x) ? cur + 1 : 0;
    if (cur > best) best = cur;
  }
  return best;
}

}  // namespace hpcwhisk::analysis
