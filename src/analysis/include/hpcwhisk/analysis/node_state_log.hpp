#pragma once
// Ground-truth recording of observed node states, plus the sampled
// "Slurm-level" perspective (the paper logs node lists every ~10 s
// because second-accurate idle data is unavailable on the real system;
// we have the exact event stream and can derive both).

#include <cstdint>
#include <vector>

#include "hpcwhisk/sim/time.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::analysis {

/// One contiguous interval during which a node held one observed state.
struct NodeInterval {
  slurm::NodeId node{0};
  slurm::ObservedNodeState state{slurm::ObservedNodeState::kIdle};
  sim::SimTime start;
  sim::SimTime end;
  [[nodiscard]] sim::SimTime length() const { return end - start; }
};

/// Aggregate node counts at an instant.
struct StateCounts {
  sim::SimTime at;
  std::uint32_t idle{0};
  std::uint32_t hpc{0};
  std::uint32_t pilot{0};
  std::uint32_t down{0};
  /// "Available" in the paper's baseline sense: idle OR running a pilot
  /// (pilot nodes would be idle if HPC-Whisk were absent).
  [[nodiscard]] std::uint32_t available() const { return idle + pilot; }
};

/// Collects ObservedNodeState transitions; attach via
/// Slurmctld::set_node_observer. All nodes start idle at `start_time`.
class NodeStateLog {
 public:
  NodeStateLog(std::uint32_t node_count, sim::SimTime start_time);

  void record(const slurm::NodeTransition& transition);

  /// Closes all open intervals at `end_time`; call once, after the run.
  void finalize(sim::SimTime end_time);

  /// All completed intervals (finalize() first for full coverage).
  [[nodiscard]] const std::vector<NodeInterval>& intervals() const {
    return intervals_;
  }

  /// Maximal contiguous per-node intervals in which the node was in any
  /// of the given states (adjacent qualifying intervals merged): pass
  /// {kIdle} for the paper's initial analysis, {kIdle, kPilot} for the
  /// "originally idle" baseline of Sec. V-B.
  [[nodiscard]] std::vector<NodeInterval> merged_periods(
      std::initializer_list<slurm::ObservedNodeState> states) const;

  /// Samples aggregate counts every `interval` (the Slurm-level logger).
  [[nodiscard]] std::vector<StateCounts> sample_counts(
      sim::SimTime interval) const;

  /// Per-node qualifying periods *as a sampling observer sees them*: the
  /// paper logs node lists every ~10 s, so a period is a run of
  /// consecutive samples in which the node qualifies; sub-sample slivers
  /// are invisible and short busy blips merge neighbouring periods.
  /// Returns period lengths (run length x interval).
  [[nodiscard]] std::vector<sim::SimTime> sampled_periods(
      sim::SimTime interval,
      std::initializer_list<slurm::ObservedNodeState> states) const;

  /// As sampled_periods, but returned as per-node intervals with times
  /// quantized to the sampling grid — the input the paper's a-posteriori
  /// simulator actually works from (it only has the sampled logs).
  [[nodiscard]] std::vector<NodeInterval> sampled_period_intervals(
      sim::SimTime interval,
      std::initializer_list<slurm::ObservedNodeState> states) const;

  /// Exact time-weighted mean of a counter over [start, end].
  [[nodiscard]] double time_weighted_mean_available() const;

  [[nodiscard]] sim::SimTime start_time() const { return start_; }
  [[nodiscard]] sim::SimTime end_time() const { return end_; }
  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(open_state_.size());
  }

 private:
  sim::SimTime start_;
  sim::SimTime end_;
  bool finalized_{false};
  std::vector<slurm::ObservedNodeState> open_state_;
  std::vector<sim::SimTime> open_since_;
  std::vector<NodeInterval> intervals_;
};

}  // namespace hpcwhisk::analysis
