#pragma once
// Activation-conservation audit.
//
// The invariant under test: every activation the controller *accepted*
// reaches exactly one terminal state — completed, failed, or timed out —
// no matter what faults the run injected. Nothing is lost (a client
// always gets an answer, if only a timeout) and nothing is double-
// completed (at-least-once delivery plus the deliverable() guard must
// never yield two terminal transitions for one id).
//
// The audit attaches to the controller's terminal-observer hook at
// construction time (one observer per controller — constructing a second
// audit displaces the first) and counts every terminal transition as it
// happens; finalize() then reconciles those counts against the
// activation store and the controller's own counters. Run finalize()
// only after the simulation drained past the last client timeout, i.e.
// once every accepted activation had the chance to terminate.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hpcwhisk/whisk/controller.hpp"

namespace hpcwhisk::obs {
struct Observability;
}  // namespace hpcwhisk::obs

namespace hpcwhisk::analysis {

class ConservationAudit {
 public:
  /// `obs` (optional) receives one kAudit instant event per violation
  /// (corr = offending activation id) plus audit.* counters whenever
  /// finalize() runs; it must outlive the audit.
  explicit ConservationAudit(whisk::Controller& controller,
                             obs::Observability* obs = nullptr);

  ConservationAudit(const ConservationAudit&) = delete;
  ConservationAudit& operator=(const ConservationAudit&) = delete;

  struct Result {
    std::uint64_t submitted{0};
    std::uint64_t accepted{0};
    std::uint64_t rejected_503{0};
    std::uint64_t completed{0};
    std::uint64_t failed{0};
    std::uint64_t timed_out{0};
    std::uint64_t in_flight{0};        ///< accepted, still non-terminal
    std::uint64_t double_terminal{0};  ///< ids with >1 terminal transition
    /// Human-readable invariant breaches, in activation-id order.
    std::vector<std::string> violations;

    [[nodiscard]] bool ok() const { return violations.empty(); }
    /// Deterministic multi-line report: byte-identical for identical
    /// runs (fixed field order, no timestamps, no addresses).
    [[nodiscard]] std::string report() const;
  };

  /// Reconciles observer counts, the activation store, and the
  /// controller counters. Idempotent; call after the run drained.
  [[nodiscard]] Result finalize() const;

 private:
  whisk::Controller& controller_;
  obs::Observability* obs_{nullptr};
  /// Terminal transitions seen per activation (ordered => deterministic
  /// violation output).
  std::map<whisk::ActivationId, std::uint32_t> terminal_seen_;
};

}  // namespace hpcwhisk::analysis
