#pragma once
// Aggregation of the paper's measurement perspectives plus plain-text
// table/series printers used by every bench binary.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/analysis/stats.hpp"

namespace hpcwhisk::analysis {

/// The Slurm-level perspective of Tables II/III: sampled node lists.
struct SlurmLevelReport {
  Summary pilot_workers;      ///< "# of workers, all states"
  Summary available_nodes;    ///< idle + pilot (the harvestable baseline)
  Summary idle_nodes;         ///< nodes left idle
  double coverage{0};         ///< share of available time spent in pilots
  double unused{0};           ///< share of available time left idle
  double zero_available_share{0};
  double zero_pilot_share{0};
  std::size_t samples{0};
};

[[nodiscard]] SlurmLevelReport slurm_level_report(
    const std::vector<StateCounts>& samples);

// --- Plain-text output helpers -------------------------------------------

/// Prints a fixed-width table. Every row must have headers.size() cells.
void print_table(std::ostream& os, const std::string& title,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows);

/// Prints a CDF as "value prob" rows (one series of a figure).
void print_cdf(std::ostream& os, const std::string& name,
               const std::vector<CdfPoint>& points);

/// Prints a time series, downsampled (bucket-averaged) to roughly
/// `max_points` rows of "t_seconds value". When downsampling kicks in,
/// the header carries a "(downsampled from N)" suffix; `max_points == 0`
/// disables downsampling and prints every sample.
void print_series(std::ostream& os, const std::string& name,
                  const std::vector<double>& values, double dt_seconds,
                  std::size_t max_points = 48);

/// Formats a double with fixed precision (helper for table rows).
[[nodiscard]] std::string fmt(double value, int precision = 2);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 2);

}  // namespace hpcwhisk::analysis
