#pragma once
// The paper's a-posteriori, clairvoyant simulator (Sec. IV-A/IV-B): given
// the exact availability periods of every node, greedily fill each period
// with pilot jobs, longest-first, and account every second of the idle
// surface as warm-up / ready / not-used. This produces Table I and the
// "Simulation" rows (upper bounds) of Tables II and III.

#include <cstdint>
#include <string>
#include <vector>

#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/analysis/stats.hpp"
#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::analysis {

class ClairvoyantSimulator {
 public:
  struct Config {
    /// Candidate job lengths (must be sorted ascending; Table I sets).
    std::vector<sim::SimTime> job_lengths;
    /// Warm-up charged to the head of every job (Table I assumes 20 s).
    sim::SimTime warmup{sim::SimTime::seconds(20)};
    /// Jobs never exceed this (backfill window: 120 min).
    sim::SimTime max_job_length{sim::SimTime::minutes(120)};
    /// Sampling interval for the ready-worker time series.
    sim::SimTime sample_interval{sim::SimTime::seconds(10)};
    /// Strict fitting (false, Table I): a job is only placed if its full
    /// length fits the remaining period; leftovers are "not used".
    /// Preemption-cut (true, Tables II/III bounds): the final job of a
    /// period is truncated at the period end — the correct upper bound
    /// for a system whose pilots are preemptible and can therefore
    /// harvest arbitrarily short holes at only the warm-up cost.
    bool allow_preemption_cut{false};
  };

  struct Result {
    std::uint64_t jobs{0};
    /// Shares of the total availability surface, summing to 1.
    double warmup_share{0};
    double ready_share{0};
    double unused_share{0};
    /// Distribution of the number of simultaneously ready workers.
    Summary ready_workers;
    Summary warming_workers;
    /// Fraction of time with zero ready workers.
    double non_availability{0};
    /// Sampled ready-worker counts (the Fig. 5a/6a "Simulation" panel).
    std::vector<std::uint32_t> ready_series;
    sim::SimTime sample_interval;
  };

  ClairvoyantSimulator(Config config);

  /// `periods`: per-node availability periods (from
  /// NodeStateLog::merged_periods({kIdle, kPilot}) or {kIdle}).
  /// `horizon_start/end`: the observation window for time-share stats.
  [[nodiscard]] Result run(const std::vector<NodeInterval>& periods,
                           sim::SimTime horizon_start,
                           sim::SimTime horizon_end) const;

 private:
  Config config_;
};

}  // namespace hpcwhisk::analysis
