#include "hpcwhisk/analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hpcwhisk::analysis {

SlurmLevelReport slurm_level_report(const std::vector<StateCounts>& samples) {
  SlurmLevelReport report;
  report.samples = samples.size();
  if (samples.empty()) return report;

  std::vector<double> pilots, available, idle;
  pilots.reserve(samples.size());
  available.reserve(samples.size());
  idle.reserve(samples.size());
  std::uint64_t pilot_sum = 0, avail_sum = 0;
  std::size_t zero_avail = 0, zero_pilot = 0;
  for (const StateCounts& s : samples) {
    pilots.push_back(s.pilot);
    available.push_back(s.available());
    idle.push_back(s.idle);
    pilot_sum += s.pilot;
    avail_sum += s.available();
    if (s.available() == 0) ++zero_avail;
    if (s.pilot == 0) ++zero_pilot;
  }
  report.pilot_workers = summarize(pilots);
  report.available_nodes = summarize(available);
  report.idle_nodes = summarize(idle);
  report.coverage = avail_sum == 0 ? 0.0
                                   : static_cast<double>(pilot_sum) /
                                         static_cast<double>(avail_sum);
  report.unused = 1.0 - report.coverage;
  report.zero_available_share =
      static_cast<double>(zero_avail) / static_cast<double>(samples.size());
  report.zero_pilot_share =
      static_cast<double>(zero_pilot) / static_cast<double>(samples.size());
  return report;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void print_table(std::ostream& os, const std::string& title,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  os << "== " << title << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(headers);
  std::size_t total = 1;
  for (const std::size_t w : widths) total += w + 3;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows) print_row(row);
  os << '\n';
}

void print_cdf(std::ostream& os, const std::string& name,
               const std::vector<CdfPoint>& points) {
  os << "-- CDF: " << name << " --\n";
  for (const CdfPoint& p : points)
    os << fmt(p.value, 3) << ' ' << fmt(p.prob, 4) << '\n';
  os << '\n';
}

void print_series(std::ostream& os, const std::string& name,
                  const std::vector<double>& values, double dt_seconds,
                  std::size_t max_points) {
  if (values.empty()) {
    os << "-- series: " << name << " (t_seconds value) --\n";
    os << "(empty)\n\n";
    return;
  }
  // max_points == 0 means "no downsampling": every sample is printed.
  const std::size_t step =
      max_points == 0
          ? 1
          : std::max<std::size_t>(1, values.size() / max_points);
  os << "-- series: " << name << " (t_seconds value)";
  if (step > 1) os << " (downsampled from " << values.size() << ")";
  os << " --\n";
  for (std::size_t i = 0; i < values.size(); i += step) {
    // Aggregate the bucket by averaging so bursts are not aliased away.
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t j = i; j < std::min(values.size(), i + step); ++j) {
      sum += values[j];
      ++n;
    }
    os << fmt(static_cast<double>(i) * dt_seconds, 0) << ' '
       << fmt(sum / static_cast<double>(n), 2) << '\n';
  }
  os << '\n';
}

}  // namespace hpcwhisk::analysis
