#include "hpcwhisk/analysis/node_state_log.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace hpcwhisk::analysis {

NodeStateLog::NodeStateLog(std::uint32_t node_count, sim::SimTime start_time)
    : start_{start_time}, end_{start_time} {
  open_state_.assign(node_count, slurm::ObservedNodeState::kIdle);
  open_since_.assign(node_count, start_time);
}

void NodeStateLog::record(const slurm::NodeTransition& t) {
  if (finalized_) throw std::logic_error("NodeStateLog: already finalized");
  const auto node = t.node;
  if (node >= open_state_.size())
    throw std::out_of_range("NodeStateLog: node out of range");
  if (t.state == open_state_[node]) return;  // no observable change
  if (t.when > open_since_[node]) {
    intervals_.push_back(
        NodeInterval{node, open_state_[node], open_since_[node], t.when});
  }
  open_state_[node] = t.state;
  open_since_[node] = t.when;
  end_ = std::max(end_, t.when);
}

void NodeStateLog::finalize(sim::SimTime end_time) {
  if (finalized_) return;
  finalized_ = true;
  end_ = end_time;
  for (std::uint32_t n = 0; n < open_state_.size(); ++n) {
    if (end_time > open_since_[n]) {
      intervals_.push_back(
          NodeInterval{n, open_state_[n], open_since_[n], end_time});
    }
  }
  std::stable_sort(intervals_.begin(), intervals_.end(),
                   [](const NodeInterval& a, const NodeInterval& b) {
                     if (a.node != b.node) return a.node < b.node;
                     return a.start < b.start;
                   });
}

std::vector<NodeInterval> NodeStateLog::merged_periods(
    std::initializer_list<slurm::ObservedNodeState> states) const {
  const auto qualifies = [&states](slurm::ObservedNodeState s) {
    for (const auto q : states)
      if (q == s) return true;
    return false;
  };
  // Before finalize() the interval list is in event order; merging needs
  // node-major time order, so sort a copy (finalize() sorts in place).
  std::vector<NodeInterval> sorted_copy;
  const std::vector<NodeInterval>* source = &intervals_;
  if (!finalized_) {
    sorted_copy = intervals_;
    std::stable_sort(sorted_copy.begin(), sorted_copy.end(),
                     [](const NodeInterval& a, const NodeInterval& b) {
                       if (a.node != b.node) return a.node < b.node;
                       return a.start < b.start;
                     });
    source = &sorted_copy;
  }
  std::vector<NodeInterval> out;
  for (const NodeInterval& iv : *source) {
    if (!qualifies(iv.state)) continue;
    if (!out.empty() && out.back().node == iv.node &&
        out.back().end == iv.start) {
      out.back().end = iv.end;  // merge adjacent qualifying intervals
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

std::vector<StateCounts> NodeStateLog::sample_counts(
    sim::SimTime interval) const {
  if (interval <= sim::SimTime::zero())
    throw std::invalid_argument("sample_counts: non-positive interval");
  // Sweep the (node-major) intervals into a per-sample accumulation.
  const std::size_t samples =
      static_cast<std::size_t>((end_ - start_) / interval) + 1;
  std::vector<StateCounts> out(samples);
  for (std::size_t i = 0; i < samples; ++i)
    out[i].at = start_ + interval * static_cast<std::int64_t>(i);

  for (const NodeInterval& iv : intervals_) {
    // Sample s covers instant start_ + s*interval; interval [a, b) covers
    // samples ceil((a-start)/dt) .. ceil((b-start)/dt)-1 — except we use
    // half-open on the right so a state change exactly at the sample
    // instant is observed as the *new* state.
    const std::int64_t dt = interval.ticks();
    std::int64_t first = ((iv.start - start_).ticks() + dt - 1) / dt;
    std::int64_t last = ((iv.end - start_).ticks() - 1) / dt;
    first = std::max<std::int64_t>(first, 0);
    last = std::min<std::int64_t>(last, static_cast<std::int64_t>(samples) - 1);
    for (std::int64_t s = first; s <= last; ++s) {
      switch (iv.state) {
        case slurm::ObservedNodeState::kIdle: ++out[s].idle; break;
        case slurm::ObservedNodeState::kHpc: ++out[s].hpc; break;
        case slurm::ObservedNodeState::kPilot: ++out[s].pilot; break;
        case slurm::ObservedNodeState::kDown: ++out[s].down; break;
      }
    }
  }
  return out;
}

std::vector<sim::SimTime> NodeStateLog::sampled_periods(
    sim::SimTime interval,
    std::initializer_list<slurm::ObservedNodeState> states) const {
  std::vector<sim::SimTime> out;
  for (const NodeInterval& iv : sampled_period_intervals(interval, states))
    out.push_back(iv.length());
  return out;
}

std::vector<NodeInterval> NodeStateLog::sampled_period_intervals(
    sim::SimTime interval,
    std::initializer_list<slurm::ObservedNodeState> states) const {
  if (interval <= sim::SimTime::zero())
    throw std::invalid_argument("sampled_periods: non-positive interval");
  const std::int64_t dt = interval.ticks();
  const std::int64_t max_sample = (end_ - start_).ticks() / dt;

  std::vector<NodeInterval> periods;
  const auto qualifying = merged_periods(states);
  // merged_periods is node-major and time-sorted; walk runs of covered
  // sample indices per node.
  std::uint32_t cur_node = UINT32_MAX;
  std::int64_t run_start = -1, run_end = -2;  // inclusive sample indices
  const auto flush = [&] {
    if (run_end >= run_start && run_start >= 0) {
      NodeInterval iv;
      iv.node = cur_node;
      iv.state = *states.begin();
      iv.start = start_ + sim::SimTime::micros(run_start * dt);
      iv.end = start_ + sim::SimTime::micros((run_end + 1) * dt);
      periods.push_back(iv);
    }
  };
  for (const NodeInterval& iv : qualifying) {
    std::int64_t first = ((iv.start - start_).ticks() + dt - 1) / dt;
    std::int64_t last = ((iv.end - start_).ticks() - 1) / dt;
    first = std::max<std::int64_t>(first, 0);
    last = std::min(last, max_sample);
    if (last < first) continue;  // sliver between samples: invisible
    if (iv.node != cur_node || first > run_end + 1) {
      flush();
      cur_node = iv.node;
      run_start = first;
      run_end = last;
    } else {
      run_end = std::max(run_end, last);
    }
  }
  flush();
  return periods;
}

double NodeStateLog::time_weighted_mean_available() const {
  const double horizon = (end_ - start_).to_seconds();
  if (horizon <= 0) return 0.0;
  double area = 0.0;
  for (const NodeInterval& iv : intervals_) {
    if (iv.state == slurm::ObservedNodeState::kIdle ||
        iv.state == slurm::ObservedNodeState::kPilot) {
      area += iv.length().to_seconds();
    }
  }
  return area / horizon;
}

}  // namespace hpcwhisk::analysis
