#include "hpcwhisk/analysis/conservation.hpp"

#include <sstream>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::analysis {

namespace {
// Violation kinds, carried in arg0 of the kAudit instant so trace
// consumers can classify without parsing the human-readable string.
constexpr double kRejectedRefinished = 0.0;
constexpr double kNeverTerminated = 1.0;
constexpr double kUnobservedTerminal = 2.0;
constexpr double kDoubleTerminal = 3.0;
}  // namespace

ConservationAudit::ConservationAudit(whisk::Controller& controller,
                                     obs::Observability* obs)
    : controller_{controller}, obs_{obs} {
  controller_.set_terminal_observer(
      [this](const whisk::ActivationRecord& rec) { ++terminal_seen_[rec.id]; });
}

ConservationAudit::Result ConservationAudit::finalize() const {
  Result r;
  const auto& counters = controller_.counters();
  r.submitted = counters.submitted;

  // Latest terminal timestamp seen; anchors ledger-level instants that
  // have no single offending activation.
  sim::SimTime latest = sim::SimTime::zero();
  const auto flag = [&](const whisk::ActivationRecord& rec, double kind,
                        std::string text) {
    HW_OBS_IF(obs_) {
      const sim::SimTime at =
          rec.end_time > sim::SimTime::zero() ? rec.end_time : rec.submit_time;
      obs_->trace.record(obs::Cat::kAudit, obs::Phase::kInstant,
                         "audit_violation", obs::Track::kController, 0, rec.id,
                         at, kind);
    }
    r.violations.push_back(std::move(text));
  };

  for (const whisk::ActivationRecord& rec : controller_.activations()) {
    if (rec.end_time > latest) latest = rec.end_time;
    std::ostringstream v;
    switch (rec.state) {
      case whisk::ActivationState::kRejected503:
        ++r.rejected_503;
        // 503s are terminal at submit() and never pass the observer; an
        // observer event for one means a rejected id was re-finished.
        if (terminal_seen_.count(rec.id) > 0) {
          v << "activation " << rec.id << ": rejected-503 yet saw "
            << terminal_seen_.at(rec.id) << " terminal transition(s)";
          flag(rec, kRejectedRefinished, v.str());
        }
        continue;
      case whisk::ActivationState::kCompleted:
        ++r.completed;
        break;
      case whisk::ActivationState::kFailed:
        ++r.failed;
        break;
      case whisk::ActivationState::kTimedOut:
        ++r.timed_out;
        break;
      case whisk::ActivationState::kQueued:
      case whisk::ActivationState::kRunning:
        ++r.accepted;
        ++r.in_flight;
        v << "activation " << rec.id << ": accepted but never terminated"
          << " (state=" << to_string(rec.state) << ")";
        flag(rec, kNeverTerminated, v.str());
        continue;
    }
    ++r.accepted;

    const auto it = terminal_seen_.find(rec.id);
    const std::uint32_t seen = it == terminal_seen_.end() ? 0 : it->second;
    if (seen == 0) {
      v << "activation " << rec.id << ": terminal ("
        << to_string(rec.state) << ") without an observed transition";
      flag(rec, kUnobservedTerminal, v.str());
    } else if (seen > 1) {
      ++r.double_terminal;
      v << "activation " << rec.id << ": " << seen
        << " terminal transitions (state=" << to_string(rec.state) << ")";
      flag(rec, kDoubleTerminal, v.str());
    }
  }

  // Conservation at the ledger level: the controller's own counters must
  // tell the same story as the per-record walk. These breaches have no
  // single offending activation, so their instants anchor at the latest
  // terminal timestamp with no correlation id.
  const auto flag_ledger = [&](std::string text) {
    HW_OBS_IF(obs_) {
      obs_->trace.record(obs::Cat::kAudit, obs::Phase::kInstant,
                         "audit_ledger_mismatch", obs::Track::kController, 0,
                         obs::kNoCorr, latest);
    }
    r.violations.push_back(std::move(text));
  };
  if (r.submitted != r.accepted + r.rejected_503) {
    std::ostringstream v;
    v << "counter mismatch: submitted=" << r.submitted << " != accepted="
      << r.accepted << " + rejected_503=" << r.rejected_503;
    flag_ledger(v.str());
  }
  if (r.accepted != r.completed + r.failed + r.timed_out + r.in_flight) {
    std::ostringstream v;
    v << "counter mismatch: accepted=" << r.accepted << " != completed="
      << r.completed << " + failed=" << r.failed << " + timed_out="
      << r.timed_out << " + in_flight=" << r.in_flight;
    flag_ledger(v.str());
  }
  if (counters.completed != r.completed || counters.failed != r.failed ||
      counters.timed_out != r.timed_out) {
    std::ostringstream v;
    v << "ledger mismatch: controller counted completed="
      << counters.completed << "/failed=" << counters.failed
      << "/timed_out=" << counters.timed_out << ", records show "
      << r.completed << "/" << r.failed << "/" << r.timed_out;
    flag_ledger(v.str());
  }
  HW_OBS_IF(obs_) {
    obs_->metrics.counter("audit.accepted").set(r.accepted);
    obs_->metrics.counter("audit.in_flight").set(r.in_flight);
    obs_->metrics.counter("audit.double_terminal").set(r.double_terminal);
    obs_->metrics.counter("audit.violations").set(r.violations.size());
  }
  return r;
}

std::string ConservationAudit::Result::report() const {
  std::ostringstream out;
  out << "conservation audit: " << (ok() ? "OK" : "VIOLATED") << "\n"
      << "  submitted=" << submitted << " accepted=" << accepted
      << " rejected_503=" << rejected_503 << "\n"
      << "  completed=" << completed << " failed=" << failed
      << " timed_out=" << timed_out << " in_flight=" << in_flight
      << " double_terminal=" << double_terminal << "\n";
  for (const std::string& v : violations) out << "  ! " << v << "\n";
  return out.str();
}

}  // namespace hpcwhisk::analysis
