#include "hpcwhisk/analysis/conservation.hpp"

#include <sstream>

namespace hpcwhisk::analysis {

ConservationAudit::ConservationAudit(whisk::Controller& controller)
    : controller_{controller} {
  controller_.set_terminal_observer(
      [this](const whisk::ActivationRecord& rec) { ++terminal_seen_[rec.id]; });
}

ConservationAudit::Result ConservationAudit::finalize() const {
  Result r;
  const auto& counters = controller_.counters();
  r.submitted = counters.submitted;

  for (const whisk::ActivationRecord& rec : controller_.activations()) {
    std::ostringstream v;
    switch (rec.state) {
      case whisk::ActivationState::kRejected503:
        ++r.rejected_503;
        // 503s are terminal at submit() and never pass the observer; an
        // observer event for one means a rejected id was re-finished.
        if (terminal_seen_.count(rec.id) > 0) {
          v << "activation " << rec.id << ": rejected-503 yet saw "
            << terminal_seen_.at(rec.id) << " terminal transition(s)";
          r.violations.push_back(v.str());
        }
        continue;
      case whisk::ActivationState::kCompleted:
        ++r.completed;
        break;
      case whisk::ActivationState::kFailed:
        ++r.failed;
        break;
      case whisk::ActivationState::kTimedOut:
        ++r.timed_out;
        break;
      case whisk::ActivationState::kQueued:
      case whisk::ActivationState::kRunning:
        ++r.accepted;
        ++r.in_flight;
        v << "activation " << rec.id << ": accepted but never terminated"
          << " (state=" << to_string(rec.state) << ")";
        r.violations.push_back(v.str());
        continue;
    }
    ++r.accepted;

    const auto it = terminal_seen_.find(rec.id);
    const std::uint32_t seen = it == terminal_seen_.end() ? 0 : it->second;
    if (seen == 0) {
      v << "activation " << rec.id << ": terminal ("
        << to_string(rec.state) << ") without an observed transition";
      r.violations.push_back(v.str());
    } else if (seen > 1) {
      ++r.double_terminal;
      v << "activation " << rec.id << ": " << seen
        << " terminal transitions (state=" << to_string(rec.state) << ")";
      r.violations.push_back(v.str());
    }
  }

  // Conservation at the ledger level: the controller's own counters must
  // tell the same story as the per-record walk.
  if (r.submitted != r.accepted + r.rejected_503) {
    std::ostringstream v;
    v << "counter mismatch: submitted=" << r.submitted << " != accepted="
      << r.accepted << " + rejected_503=" << r.rejected_503;
    r.violations.push_back(v.str());
  }
  if (r.accepted != r.completed + r.failed + r.timed_out + r.in_flight) {
    std::ostringstream v;
    v << "counter mismatch: accepted=" << r.accepted << " != completed="
      << r.completed << " + failed=" << r.failed << " + timed_out="
      << r.timed_out << " + in_flight=" << r.in_flight;
    r.violations.push_back(v.str());
  }
  if (counters.completed != r.completed || counters.failed != r.failed ||
      counters.timed_out != r.timed_out) {
    std::ostringstream v;
    v << "ledger mismatch: controller counted completed="
      << counters.completed << "/failed=" << counters.failed
      << "/timed_out=" << counters.timed_out << ", records show "
      << r.completed << "/" << r.failed << "/" << r.timed_out;
    r.violations.push_back(v.str());
  }
  return r;
}

std::string ConservationAudit::Result::report() const {
  std::ostringstream out;
  out << "conservation audit: " << (ok() ? "OK" : "VIOLATED") << "\n"
      << "  submitted=" << submitted << " accepted=" << accepted
      << " rejected_503=" << rejected_503 << "\n"
      << "  completed=" << completed << " failed=" << failed
      << " timed_out=" << timed_out << " in_flight=" << in_flight
      << " double_terminal=" << double_terminal << "\n";
  for (const std::string& v : violations) out << "  ! " << v << "\n";
  return out.str();
}

}  // namespace hpcwhisk::analysis
