#include "hpcwhisk/analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hpcwhisk::analysis {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const std::size_t k = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(values.size())));
  const std::size_t idx = k == 0 ? 0 : k - 1;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(idx),
                   values.end());
  return values[idx];
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&sorted](double p) {
    const std::size_t k = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    return sorted[k == 0 ? 0 : k - 1];
  };
  s.p25 = at(0.25);
  s.p50 = at(0.50);
  s.p75 = at(0.75);
  s.avg = mean(values);
  s.min = sorted.front();
  s.max = sorted.back();
  return s;
}

std::vector<CdfPoint> cdf_points(std::vector<double> values,
                                 std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = step - 1; i < n; i += step) {
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  if (out.empty() || out.back().prob < 1.0)
    out.push_back({values.back(), 1.0});
  return out;
}

double fraction_at_most(const std::vector<double>& values, double x) {
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (const double v : values)
    if (v <= x) ++count;
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace hpcwhisk::analysis
