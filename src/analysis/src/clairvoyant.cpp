#include "hpcwhisk/analysis/clairvoyant.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcwhisk::analysis {

ClairvoyantSimulator::ClairvoyantSimulator(Config config)
    : config_{std::move(config)} {
  if (config_.job_lengths.empty())
    throw std::invalid_argument("ClairvoyantSimulator: no job lengths");
  if (!std::is_sorted(config_.job_lengths.begin(), config_.job_lengths.end()))
    throw std::invalid_argument("ClairvoyantSimulator: lengths must ascend");
  if (config_.warmup < sim::SimTime::zero())
    throw std::invalid_argument("ClairvoyantSimulator: negative warmup");
}

ClairvoyantSimulator::Result ClairvoyantSimulator::run(
    const std::vector<NodeInterval>& periods, sim::SimTime horizon_start,
    sim::SimTime horizon_end) const {
  if (horizon_end <= horizon_start)
    throw std::invalid_argument("ClairvoyantSimulator: empty horizon");

  Result result;
  result.sample_interval = config_.sample_interval;
  const sim::SimTime shortest = config_.job_lengths.front();

  double warmup_s = 0, ready_s = 0, unused_s = 0;

  // Ready/warming intervals across all nodes, as +1/-1 edge events.
  struct Edge {
    sim::SimTime at;
    std::int32_t ready_delta;
    std::int32_t warming_delta;
  };
  std::vector<Edge> edges;
  edges.reserve(periods.size() * 4);

  for (const NodeInterval& period : periods) {
    sim::SimTime cursor = std::max(period.start, horizon_start);
    const sim::SimTime end = std::min(period.end, horizon_end);
    while (cursor < end) {
      const sim::SimTime remaining = end - cursor;
      if (remaining < shortest && !config_.allow_preemption_cut) {
        unused_s += remaining.to_seconds();
        break;
      }
      // Greedy: longest candidate that fits both the hole and the cap;
      // in preemption-cut mode the job may be truncated at the period end.
      sim::SimTime len;
      if (remaining < shortest) {
        len = remaining;  // truncated final job (preemption-cut mode)
      } else {
        const sim::SimTime fit = std::min(remaining, config_.max_job_length);
        const auto it = std::upper_bound(config_.job_lengths.begin(),
                                         config_.job_lengths.end(), fit);
        len = *(it - 1);
        if (config_.allow_preemption_cut && len < remaining &&
            remaining <= config_.max_job_length) {
          // The next-longer candidate would overshoot: truncate it at the
          // period end instead of leaving a sub-optimal remainder chain.
          const auto next = std::upper_bound(config_.job_lengths.begin(),
                                             config_.job_lengths.end(), len);
          if (next != config_.job_lengths.end()) len = remaining;
        }
      }
      ++result.jobs;
      const sim::SimTime warm = std::min(config_.warmup, len);
      warmup_s += warm.to_seconds();
      ready_s += (len - warm).to_seconds();
      edges.push_back({cursor, 0, +1});
      edges.push_back({cursor + warm, +1, -1});
      edges.push_back({cursor + len, -1, 0});
      cursor += len;
    }
  }

  const double total = warmup_s + ready_s + unused_s;
  if (total > 0) {
    result.warmup_share = warmup_s / total;
    result.ready_share = ready_s / total;
    result.unused_share = unused_s / total;
  }

  // Sample ready/warming counts over the horizon.
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.at < b.at; });
  std::vector<double> ready_counts;
  std::vector<double> warming_counts;
  std::int32_t ready = 0, warming = 0;
  std::size_t e = 0;
  std::size_t zero_samples = 0, samples = 0;
  for (sim::SimTime t = horizon_start; t <= horizon_end;
       t += config_.sample_interval) {
    while (e < edges.size() && edges[e].at <= t) {
      ready += edges[e].ready_delta;
      warming += edges[e].warming_delta;
      ++e;
    }
    ready_counts.push_back(ready);
    warming_counts.push_back(warming);
    result.ready_series.push_back(static_cast<std::uint32_t>(ready));
    ++samples;
    if (ready == 0) ++zero_samples;
  }
  result.ready_workers = summarize(ready_counts);
  result.warming_workers = summarize(warming_counts);
  result.non_availability =
      samples == 0 ? 0.0
                   : static_cast<double>(zero_samples) /
                         static_cast<double>(samples);
  return result;
}

}  // namespace hpcwhisk::analysis
