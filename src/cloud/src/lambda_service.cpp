#include "hpcwhisk/cloud/lambda_service.hpp"

#include <algorithm>
#include <stdexcept>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::cloud {

LambdaService::LambdaService(sim::Simulation& simulation,
                             const whisk::FunctionRegistry& registry,
                             Config config, sim::Rng rng)
    : sim_{simulation},
      registry_{registry},
      config_{config},
      rng_{rng},
      cold_start_{config.cold_start_median_s, config.cold_start_p95_s, 0.95},
      overhead_{config.overhead_median_s, config.overhead_p95_s, 0.95} {
  HW_OBS_IF(config_.obs) {
    config_.obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      m.counter("cloud.invocations").set(records_.size());
      m.counter("cloud.completed").set(completed_);
      std::uint64_t cold = 0;
      for (const InvocationRecord& rec : records_) cold += rec.cold_start;
      m.counter("cloud.cold_starts").set(cold);
    });
  }
}

double LambdaService::cpu_share(std::int64_t memory_mb) const {
  const double share = static_cast<double>(memory_mb) /
                       static_cast<double>(config_.full_vcpu_memory_mb);
  return std::min(1.0, share);
}

std::uint64_t LambdaService::invoke(const std::string& function,
                                    std::int64_t memory_mb) {
  const whisk::FunctionSpec& spec = registry_.at(function);
  const sim::SimTime now = sim_.now();

  InvocationRecord rec;
  rec.id = records_.size();
  rec.function = function;
  rec.submit_time = now;

  const auto warm = warm_until_.find(function);
  rec.cold_start = warm == warm_until_.end() || warm->second < now;

  sim::SimTime latency = sim::SimTime::seconds(overhead_.sample(rng_));
  if (rec.cold_start)
    latency += sim::SimTime::seconds(cold_start_.sample(rng_));

  // Internal execution: the function body, dilated by the CPU share and
  // the platform's compute slowdown relative to an HPC node.
  const double dilation = config_.compute_slowdown / cpu_share(memory_mb);
  rec.internal_duration =
      sim::SimTime::seconds(spec.duration(rng_).to_seconds() * dilation);
  latency += rec.internal_duration;

  const std::uint64_t id = rec.id;
  const bool cold = rec.cold_start;
  records_.push_back(std::move(rec));
  warm_until_[function] = now + latency + config_.keep_warm;

  HW_OBS_IF(config_.obs) {
    // One async span per invocation on the cloud track, chained so the
    // completion links back to the submission (corr = invocation id).
    config_.obs->trace.record_chained(
        obs::Cat::kClient, obs::Phase::kAsyncBegin, "cloud_invoke",
        obs::Track::kCloud, 0, id, now, cold ? 1.0 : 0.0,
        latency.to_seconds());
  }
  sim_.after(latency, [this, id] {
    records_[id].end_time = sim_.now();
    ++completed_;
    HW_OBS_IF(config_.obs) {
      const InvocationRecord& done = records_[id];
      config_.obs->trace.record_chained(
          obs::Cat::kClient, obs::Phase::kAsyncEnd, "cloud_invoke",
          obs::Track::kCloud, 0, id, done.end_time,
          done.cold_start ? 1.0 : 0.0,
          (done.end_time - done.submit_time).to_seconds());
      config_.obs->metrics.histogram("cloud.latency_ms")
          .observe((done.end_time - done.submit_time).to_seconds() * 1000.0);
    }
  });
  return id;
}

const LambdaService::InvocationRecord& LambdaService::invocation(
    std::uint64_t id) const {
  if (id >= records_.size())
    throw std::out_of_range("LambdaService::invocation: unknown id");
  return records_[id];
}

}  // namespace hpcwhisk::cloud
