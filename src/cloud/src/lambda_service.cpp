#include "hpcwhisk/cloud/lambda_service.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcwhisk::cloud {

LambdaService::LambdaService(sim::Simulation& simulation,
                             const whisk::FunctionRegistry& registry,
                             Config config, sim::Rng rng)
    : sim_{simulation},
      registry_{registry},
      config_{config},
      rng_{rng},
      cold_start_{config.cold_start_median_s, config.cold_start_p95_s, 0.95},
      overhead_{config.overhead_median_s, config.overhead_p95_s, 0.95} {}

double LambdaService::cpu_share(std::int64_t memory_mb) const {
  const double share = static_cast<double>(memory_mb) /
                       static_cast<double>(config_.full_vcpu_memory_mb);
  return std::min(1.0, share);
}

std::uint64_t LambdaService::invoke(const std::string& function,
                                    std::int64_t memory_mb) {
  const whisk::FunctionSpec& spec = registry_.at(function);
  const sim::SimTime now = sim_.now();

  InvocationRecord rec;
  rec.id = records_.size();
  rec.function = function;
  rec.submit_time = now;

  const auto warm = warm_until_.find(function);
  rec.cold_start = warm == warm_until_.end() || warm->second < now;

  sim::SimTime latency = sim::SimTime::seconds(overhead_.sample(rng_));
  if (rec.cold_start)
    latency += sim::SimTime::seconds(cold_start_.sample(rng_));

  // Internal execution: the function body, dilated by the CPU share and
  // the platform's compute slowdown relative to an HPC node.
  const double dilation = config_.compute_slowdown / cpu_share(memory_mb);
  rec.internal_duration =
      sim::SimTime::seconds(spec.duration(rng_).to_seconds() * dilation);
  latency += rec.internal_duration;

  const std::uint64_t id = rec.id;
  records_.push_back(std::move(rec));
  warm_until_[function] = now + latency + config_.keep_warm;

  sim_.after(latency, [this, id] {
    records_[id].end_time = sim_.now();
    ++completed_;
  });
  return id;
}

const LambdaService::InvocationRecord& LambdaService::invocation(
    std::uint64_t id) const {
  if (id >= records_.size())
    throw std::out_of_range("LambdaService::invocation: unknown id");
  return records_[id];
}

}  // namespace hpcwhisk::cloud
