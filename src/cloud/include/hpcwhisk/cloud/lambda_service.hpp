#pragma once
// A commercial FaaS backend model (AWS-Lambda-like).
//
// Two roles in the reproduction:
//  * the fallback target of the Alg. 1 client wrapper (Sec. III-E) —
//    always available, never 503s;
//  * the comparison baseline of Fig. 7 — Lambda allocates CPU
//    proportionally to configured memory (1 vCPU at 1792 MB), and the
//    paper measures Prometheus nodes ~15 % faster at 2 GB, which we model
//    as a compute-slowdown factor relative to an HPC node.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/sim/distributions.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/whisk/function.hpp"

namespace hpcwhisk::obs {
struct Observability;
}

namespace hpcwhisk::cloud {

class LambdaService {
 public:
  struct Config {
    /// Memory for which a full vCPU is granted.
    std::int64_t full_vcpu_memory_mb{1792};
    /// Containers stay warm this long after an invocation.
    sim::SimTime keep_warm{sim::SimTime::minutes(10)};
    /// Cold-start (sandbox provisioning) latency.
    double cold_start_median_s{0.25};
    double cold_start_p95_s{0.60};
    /// Per-invocation platform/network overhead.
    double overhead_median_s{0.050};
    double overhead_p95_s{0.150};
    /// Single-thread compute slowdown relative to a Prometheus node
    /// (Fig. 7: HPC node ≈15 % faster => Lambda factor ≈1.15).
    double compute_slowdown{1.15};
    /// Optional trace/metrics sink; null disables all instrumentation.
    obs::Observability* obs{nullptr};
  };

  struct InvocationRecord {
    std::uint64_t id{0};
    std::string function;
    sim::SimTime submit_time;
    sim::SimTime end_time;
    /// Time spent inside the function body (the paper reports internal
    /// execution time for Fig. 7, excluding network).
    sim::SimTime internal_duration;
    bool cold_start{false};
  };

  LambdaService(sim::Simulation& simulation,
                const whisk::FunctionRegistry& registry, Config config,
                sim::Rng rng);

  /// Invokes `function` with the given memory configuration; always
  /// accepted. Returns the invocation id; the record is terminal once the
  /// simulated completion event fired.
  std::uint64_t invoke(const std::string& function, std::int64_t memory_mb);

  [[nodiscard]] const InvocationRecord& invocation(std::uint64_t id) const;
  [[nodiscard]] const std::vector<InvocationRecord>& invocations() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

  /// CPU share granted at `memory_mb` (capped at 1.0 for >= 1792 MB:
  /// we model single-threaded SeBS functions).
  [[nodiscard]] double cpu_share(std::int64_t memory_mb) const;

 private:
  sim::Simulation& sim_;
  const whisk::FunctionRegistry& registry_;
  Config config_;
  sim::Rng rng_;
  sim::LognormalFromQuantiles cold_start_;
  sim::LognormalFromQuantiles overhead_;
  std::vector<InvocationRecord> records_;
  /// function -> warm-until instant (single-container-per-function model;
  /// adequate for the sequential workloads of Alg. 1 and Fig. 7).
  std::unordered_map<std::string, sim::SimTime> warm_until_;
  std::uint64_t completed_{0};
};

}  // namespace hpcwhisk::cloud
