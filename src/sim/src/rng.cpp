#include "hpcwhisk/sim/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hpcwhisk::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork() { return Rng{next_u64()}; }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa: uniform on [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mu + sigma * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("Rng::weighted_index: zero total");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0) return i;
  }
  return weights.size() - 1;  // numeric edge: land on the last bucket
}

}  // namespace hpcwhisk::sim
