#include "hpcwhisk/sim/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcwhisk::sim {

namespace {
// Inverse standard-normal CDF (Acklam's rational approximation; max
// relative error ~1.15e-9 — ample for quantile-matching parameters).
double inv_norm_cdf(double p) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("inv_norm_cdf: p outside (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}
}  // namespace

LognormalFromQuantiles::LognormalFromQuantiles(double median,
                                               double upper_quantile_value,
                                               double p) {
  if (median <= 0 || upper_quantile_value <= median)
    throw std::invalid_argument(
        "LognormalFromQuantiles: need 0 < median < upper quantile");
  if (p <= 0.5 || p >= 1.0)
    throw std::invalid_argument("LognormalFromQuantiles: p must be in (0.5, 1)");
  mu_ = std::log(median);
  sigma_ = (std::log(upper_quantile_value) - mu_) / inv_norm_cdf(p);
}

double LognormalFromQuantiles::sample(Rng& rng) const {
  return rng.lognormal(mu_, sigma_);
}

double LognormalFromQuantiles::median() const { return std::exp(mu_); }

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_{alpha}, lo_{lo}, hi_{hi} {
  if (alpha <= 0 || lo <= 0 || hi <= lo)
    throw std::invalid_argument("BoundedPareto: need alpha>0, 0<lo<hi");
}

double BoundedPareto::sample(Rng& rng) const {
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

EmpiricalCdf::EmpiricalCdf(std::vector<Knot> knots) : knots_{std::move(knots)} {
  if (knots_.size() < 2)
    throw std::invalid_argument("EmpiricalCdf: need at least 2 knots");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].cum_prob <= knots_[i - 1].cum_prob ||
        knots_[i].value < knots_[i - 1].value)
      throw std::invalid_argument("EmpiricalCdf: knots must be increasing");
  }
  if (std::abs(knots_.back().cum_prob - 1.0) > 1e-9)
    throw std::invalid_argument("EmpiricalCdf: last cum_prob must be 1.0");
}

double EmpiricalCdf::sample(Rng& rng) const { return quantile(rng.uniform()); }

double EmpiricalCdf::cdf(double value) const {
  if (value <= knots_.front().value) {
    return value < knots_.front().value ? 0.0 : knots_.front().cum_prob;
  }
  if (value >= knots_.back().value) return 1.0;
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), value,
      [](double v, const Knot& k) { return v < k.value; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double span = hi.value - lo.value;
  if (span <= 0) return hi.cum_prob;
  const double f = (value - lo.value) / span;
  return lo.cum_prob + f * (hi.cum_prob - lo.cum_prob);
}

double EmpiricalCdf::quantile(double p) const {
  if (p <= knots_.front().cum_prob) return knots_.front().value;
  if (p >= 1.0) return knots_.back().value;
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), p,
      [](double prob, const Knot& k) { return prob < k.cum_prob; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double span = hi.cum_prob - lo.cum_prob;
  const double f = (p - lo.cum_prob) / span;
  return lo.value + f * (hi.value - lo.value);
}

EmpiricalCdf fit_empirical_cdf(std::vector<double> samples) {
  if (samples.size() < 2)
    throw std::invalid_argument("fit_empirical_cdf: need at least 2 samples");
  std::sort(samples.begin(), samples.end());
  std::vector<EmpiricalCdf::Knot> knots;
  knots.reserve(samples.size());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double p = static_cast<double>(i + 1) / n;
    // Collapse duplicate values, keeping the highest probability.
    if (!knots.empty() && samples[i] == knots.back().value) {
      knots.back().cum_prob = p;
    } else {
      knots.push_back({samples[i], p});
    }
  }
  if (knots.size() < 2) {
    // All samples identical: widen by an epsilon step.
    knots.insert(knots.begin(), {knots.front().value - 1e-12, 0.5});
  }
  return EmpiricalCdf{std::move(knots)};
}

}  // namespace hpcwhisk::sim
