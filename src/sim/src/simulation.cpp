#include "hpcwhisk/sim/simulation.hpp"

#include <cstdio>
#include <utility>

namespace hpcwhisk::sim {

std::string SimTime::to_string() const {
  const bool neg = us_ < 0;
  std::int64_t us = neg ? -us_ : us_;
  const std::int64_t h = us / 3'600'000'000;
  us %= 3'600'000'000;
  const std::int64_t m = us / 60'000'000;
  us %= 60'000'000;
  const double s = static_cast<double>(us) / 1e6;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof buf, "%s%lldh%02lldm%04.1fs", neg ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m), s);
  } else if (m > 0) {
    std::snprintf(buf, sizeof buf, "%s%lldm%04.1fs", neg ? "-" : "",
                  static_cast<long long>(m), s);
  } else {
    std::snprintf(buf, sizeof buf, "%s%.3fs", neg ? "-" : "", s);
  }
  return buf;
}

void PeriodicHandle::stop() {
  if (!st_ || st_->stopped) return;
  st_->stopped = true;
  if (st_->sim != nullptr) st_->sim->cancel(st_->current);
}

namespace {
void arm(const std::shared_ptr<detail::PeriodicState>& st) {
  st->current = st->sim->after(st->interval, [st] {
    if (st->stopped) return;
    st->cb();
    if (!st->stopped) arm(st);
  });
}
}  // namespace

PeriodicHandle Simulation::every(SimTime interval, Callback cb) {
  if (interval <= SimTime::zero())
    throw std::invalid_argument("Simulation::every: non-positive interval");
  auto st = std::make_shared<detail::PeriodicState>();
  st->sim = this;
  st->interval = interval;
  st->cb = std::move(cb);
  arm(st);
  return PeriodicHandle{std::move(st)};
}

void Simulation::run_until(SimTime until) {
  while (!queue_.empty()) {
    const SimTime t = queue_.next_time();
    if (t > until) break;
    auto [when, cb] = queue_.pop();
    now_ = when;
    cb();
  }
  if (now_ < until) now_ = until;
}

void Simulation::run() {
  while (step()) {
  }
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto [when, cb] = queue_.pop();
  now_ = when;
  cb();
  return true;
}

void Simulation::settle_to(SimTime t) {
  if (t < now_) throw std::invalid_argument("Simulation::settle_to: time in the past");
  if (!queue_.empty() && queue_.next_time() < t)
    throw std::logic_error("Simulation::settle_to: pending earlier events");
  now_ = t;
}

}  // namespace hpcwhisk::sim
