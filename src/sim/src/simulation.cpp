#include "hpcwhisk/sim/simulation.hpp"

#include <cstdio>
#include <utility>

namespace hpcwhisk::sim {

std::string SimTime::to_string() const {
  const bool neg = us_ < 0;
  std::int64_t us = neg ? -us_ : us_;
  const std::int64_t h = us / 3'600'000'000;
  us %= 3'600'000'000;
  const std::int64_t m = us / 60'000'000;
  us %= 60'000'000;
  const double s = static_cast<double>(us) / 1e6;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof buf, "%s%lldh%02lldm%04.1fs", neg ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m), s);
  } else if (m > 0) {
    std::snprintf(buf, sizeof buf, "%s%lldm%04.1fs", neg ? "-" : "",
                  static_cast<long long>(m), s);
  } else {
    std::snprintf(buf, sizeof buf, "%s%.3fs", neg ? "-" : "", s);
  }
  return buf;
}

void PeriodicHandle::stop() {
  if (!st_ || st_->stopped) return;
  // Keep the state alive on the stack: clearing cb below may destroy the
  // last handle referencing it (user callbacks often capture their own
  // handle, forming a cycle state->cb->handle->state).
  const std::shared_ptr<detail::PeriodicState> st = st_;
  st->stopped = true;
  if (st->sim != nullptr) {
    // cancel() fails exactly when the tick already popped, i.e. we are
    // being stopped from inside the callback; fire_periodic() then owns
    // the release (the state must stay alive until cb() returns).
    if (st->sim->cancel(st->current)) {
      st->sim->release_periodic(st.get());
      st->cb = nullptr;
    }
  }
}

void Simulation::arm_periodic(detail::PeriodicState* st) {
  st->current = after(st->interval, [st] { st->sim->fire_periodic(st); });
}

void Simulation::fire_periodic(detail::PeriodicState* st) {
  st->cb();
  // The registry entry is guaranteed alive here: stop() only releases
  // when it managed to cancel the pending tick, which it cannot while
  // that tick is executing.
  if (!st->stopped) {
    arm_periodic(st);
  } else {
    st->cb = nullptr;  // safe: cb() has returned; breaks handle cycles
    release_periodic(st);
  }
}

Simulation::~Simulation() {
  // Series still armed at teardown: their callbacks routinely capture
  // their own handle (state->cb->handle->state); break the cycle so the
  // registry drop actually frees them.
  for (const auto& st : periodics_) st->cb = nullptr;
}

void Simulation::release_periodic(const detail::PeriodicState* st) {
  for (auto& owned : periodics_) {
    if (owned.get() == st) {
      owned = std::move(periodics_.back());
      periodics_.pop_back();
      return;
    }
  }
}

PeriodicHandle Simulation::every(SimTime interval, Callback cb) {
  if (interval <= SimTime::zero())
    throw std::invalid_argument("Simulation::every: non-positive interval");
  auto st = std::make_shared<detail::PeriodicState>();
  st->sim = this;
  st->interval = interval;
  st->cb = std::move(cb);
  periodics_.push_back(st);
  arm_periodic(st.get());
  return PeriodicHandle{std::move(st)};
}

void Simulation::run_until(SimTime until) {
  // Single-pass batched dispatch: pop_due merges the staged same-deadline
  // run with the heap and claims in one call (no separate next_time()
  // peek per event). The explicit reset after the call keeps capture
  // destruction at the same point the old per-iteration Popped gave it.
  EventQueue::Popped p;
  while (queue_.pop_due(until, p)) {
    now_ = p.when;
    ++executed_;
    p.cb();
    p.cb.reset();
  }
  if (now_ < until) now_ = until;
}

void Simulation::run() {
  while (step()) {
  }
}

bool Simulation::step() {
  EventQueue::Popped p;
  if (!queue_.pop_due(SimTime::max(), p)) return false;
  now_ = p.when;
  ++executed_;
  p.cb();
  return true;
}

void Simulation::settle_to(SimTime t) {
  if (t < now_) throw std::invalid_argument("Simulation::settle_to: time in the past");
  if (!queue_.empty() && queue_.next_time() < t)
    throw std::logic_error("Simulation::settle_to: pending earlier events");
  now_ = t;
}

}  // namespace hpcwhisk::sim
