#include "hpcwhisk/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hpcwhisk::sim {

// --- 4-ary heap primitives ---------------------------------------------------

void EventQueue::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::push_entry(const Entry& e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void EventQueue::pop_root() {
  const Entry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Bottom-up deletion: walk the hole from the root to a leaf along the
  // min-child path without comparing `e` at every level — `e` came from
  // the bottom of the heap, so it almost always belongs back near a
  // leaf, and the per-level compare a plain sift-down spends on it is
  // nearly always wasted. Then bubble `e` up from the leaf hole (rarely
  // more than one level).
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::rebuild_heap() {
  if (heap_.size() < 2) return;
  // Floyd build: sift down every internal node, deepest parent first.
  for (std::size_t i = (heap_.size() - 2) >> 2;; --i) {
    sift_down(i);
    if (i == 0) break;
  }
}

// --- Scheduling --------------------------------------------------------------

EventId EventQueue::schedule(SimTime when, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.seq = seq;
  s.next_free = kNoSlot;
  push_entry(Entry{when, seq, slot});
  ++live_;
  return EventId{seq, slot};
}

bool EventQueue::cancel(EventId id) {
  if (id.seq_ == 0 || id.slot_ >= slots_.size()) return false;
  Slot& s = slots_[id.slot_];
  if (s.seq != id.seq_) return false;  // already fired or cancelled
  // Eager reclamation: the callback (and its captures) dies now; only
  // the 24-byte heap (or stage) entry lingers as a tombstone until
  // drained.
  s.cb = nullptr;
  s.seq = 0;
  s.next_free = free_head_;
  free_head_ = id.slot_;
  --live_;
  maybe_compact();
  return true;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;
  s.seq = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

// --- Tombstone handling ------------------------------------------------------

void EventQueue::drain_cancelled() const {
  // Const because callers like next_time() are logically const; dropping
  // tombstones never changes observable state. Cancelled entries' slots
  // were already returned to the free list by cancel(), so a tombstone
  // is any entry whose slot has moved on to a different seq (or none).
  while (!heap_.empty() && !entry_live(heap_.front())) {
    const_cast<EventQueue*>(this)->pop_root();
  }
}

void EventQueue::drain_stage() const {
  while (stage_pos_ < stage_.size() && !entry_live(stage_[stage_pos_]))
    ++stage_pos_;
  if (stage_pos_ == stage_.size() && !stage_.empty()) {
    stage_.clear();
    stage_pos_ = 0;
  }
}

void EventQueue::refill_stage() const {
  drain_cancelled();
  if (heap_.empty()) return;
  const SimTime t = heap_.front().when;
  do {
    stage_.push_back(heap_.front());
    const_cast<EventQueue*>(this)->pop_root();
    drain_cancelled();
  } while (!heap_.empty() && heap_.front().when == t &&
           stage_.size() < kMaxStage);
}

void EventQueue::maybe_compact() {
  // live_ counts staged entries too, so heap_.size() - live_ is a lower
  // bound on the heap's tombstones (never an overcount); the guard also
  // keeps the subtraction from wrapping while the stage holds live work.
  if (heap_.size() <= live_) return;
  const std::size_t dead = heap_.size() - live_;
  if (dead <= kCompactFloor || dead <= live_) return;
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  rebuild_heap();
}

// --- Popping -----------------------------------------------------------------

SimTime EventQueue::next_time() const {
  drain_stage();
  drain_cancelled();
  if (stage_pos_ < stage_.size()) {
    // Steady state: the stage holds the earliest deadline. Only an
    // out-of-band schedule (settle_to + at) can slip under it.
    const Entry& s = stage_[stage_pos_];
    if (heap_.empty() || !entry_before(heap_.front(), s)) return s.when;
    return heap_.front().when;
  }
  if (heap_.empty()) return SimTime::max();
  return heap_.front().when;
}

void EventQueue::claim(const Entry& e, Popped& out) {
  out.when = e.when;
  out.cb = std::move(slots_[e.slot].cb);
  release_slot(e.slot);
  --live_;
}

bool EventQueue::pop_due(SimTime until, Popped& out) {
  drain_stage();
  if (stage_pos_ == stage_.size()) {
    refill_stage();
    if (stage_.empty()) return false;
  }
  const Entry s = stage_[stage_pos_];
  // Merge with the heap: entries scheduled after staging can only sort
  // before the stage when the caller rewound past the staged deadline
  // (settle_to + at); inside the run loop the stage always wins.
  drain_cancelled();
  if (!heap_.empty() && entry_before(heap_.front(), s)) {
    const Entry h = heap_.front();
    if (h.when > until) return false;
    pop_root();
    claim(h, out);
    return true;
  }
  if (s.when > until) return false;
  ++stage_pos_;
  claim(s, out);
  return true;
}

EventQueue::Popped EventQueue::pop() {
  Popped out;
  [[maybe_unused]] const bool popped = pop_due(SimTime::max(), out);
  assert(popped && "pop() on empty EventQueue");
  return out;
}

std::size_t EventQueue::pop_batch(std::size_t max_n, std::vector<Popped>& out) {
  std::size_t claimed = 0;
  SimTime deadline;
  while (claimed < max_n) {
    drain_stage();
    if (stage_pos_ == stage_.size()) refill_stage();
    if (stage_pos_ == stage_.size()) break;
    const Entry s = stage_[stage_pos_];
    if (claimed == 0) {
      deadline = s.when;
    } else if (s.when != deadline) {
      break;  // next run starts a new deadline
    }
    ++stage_pos_;
    out.emplace_back();
    claim(s, out.back());
    ++claimed;
  }
  return claimed;
}

}  // namespace hpcwhisk::sim
