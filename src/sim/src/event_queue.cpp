#include "hpcwhisk/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hpcwhisk::sim {

EventId EventQueue::schedule(SimTime when, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.seq = seq;
  s.next_free = kNoSlot;
  heap_.push_back(Entry{when, seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  ++live_;
  return EventId{seq, slot};
}

bool EventQueue::cancel(EventId id) {
  if (id.seq_ == 0 || id.slot_ >= slots_.size()) return false;
  Slot& s = slots_[id.slot_];
  if (s.seq != id.seq_) return false;  // already fired or cancelled
  // Eager reclamation: the callback (and its captures) dies now; only
  // the 24-byte heap entry lingers as a tombstone until drained.
  s.cb = nullptr;
  s.seq = 0;
  s.next_free = free_head_;
  free_head_ = id.slot_;
  --live_;
  maybe_compact();
  return true;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;
  s.seq = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::drain_cancelled() const {
  // Const because callers like next_time() are logically const; dropping
  // tombstones never changes observable state. Cancelled entries' slots
  // were already returned to the free list by cancel(), so a tombstone
  // is any entry whose slot has moved on to a different seq (or none).
  auto& heap = heap_;
  while (!heap.empty() && !entry_live(heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), EntryAfter{});
    heap.pop_back();
  }
}

void EventQueue::maybe_compact() {
  const std::size_t dead = heap_.size() - live_;
  if (dead <= kCompactFloor || dead <= live_) return;
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
}

SimTime EventQueue::next_time() const {
  drain_cancelled();
  return heap_.empty() ? SimTime::max() : heap_.front().when;
}

EventQueue::Popped EventQueue::pop() {
  drain_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
  heap_.pop_back();
  Popped out{top.when, std::move(slots_[top.slot].cb)};
  release_slot(top.slot);
  --live_;
  return out;
}

}  // namespace hpcwhisk::sim
