#include "hpcwhisk/sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace hpcwhisk::sim {

EventId EventQueue::schedule(SimTime when, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  callbacks_.emplace(seq, std::move(cb));
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id.seq_);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

void EventQueue::drain_cancelled() const {
  // Const because callers like next_time() are logically const; the heap
  // shrink only discards tombstones and never changes observable state.
  auto& heap = heap_;
  auto& self = const_cast<EventQueue&>(*this);
  while (!heap.empty() &&
         self.callbacks_.find(heap.top().seq) == self.callbacks_.end()) {
    self.heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drain_cancelled();
  return heap_.empty() ? SimTime::max() : heap_.top().when;
}

EventQueue::Popped EventQueue::pop() {
  drain_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.seq);
  Popped out{top.when, std::move(it->second)};
  callbacks_.erase(it);
  --live_;
  return out;
}

}  // namespace hpcwhisk::sim
