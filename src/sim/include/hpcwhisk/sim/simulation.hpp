#pragma once
// The simulation driver: a virtual clock plus an event queue.
//
// Components schedule callbacks with at()/after()/every(); run() advances
// the clock event by event. The driver is strictly single-threaded; all
// determinism guarantees follow from EventQueue's FIFO tie-breaking.

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "hpcwhisk/sim/event_queue.hpp"
#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::sim {

class Simulation;

namespace detail {
struct PeriodicState {
  Simulation* sim{nullptr};
  SimTime interval;
  EventQueue::Callback cb;
  EventId current;
  bool stopped{false};
};
}  // namespace detail

/// Handle controlling a periodic series created by Simulation::every().
/// Default-constructed handles are inert. Copyable: all copies control the
/// same series.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  /// Stops the series before its next firing. Idempotent.
  void stop();
  [[nodiscard]] bool active() const { return st_ && !st_->stopped; }

 private:
  friend class Simulation;
  explicit PeriodicHandle(std::shared_ptr<detail::PeriodicState> st)
      : st_{std::move(st)} {}
  std::shared_ptr<detail::PeriodicState> st_;
};

class Simulation {
 public:
  /// Inline-storage callable: scheduling typical closures never touches
  /// the heap (see InplaceCallback).
  using Callback = EventQueue::Callback;

  Simulation() = default;
  /// Breaks callback<->handle reference cycles of still-armed periodic
  /// series so they are freed with the simulation.
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId at(SimTime when, Callback cb) {
    if (when < now_) throw std::invalid_argument("Simulation::at: time in the past");
    return queue_.schedule(when, std::move(cb));
  }

  /// Schedules `cb` to fire `delay` after the current time.
  EventId after(SimTime delay, Callback cb) {
    return at(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` every `interval`, starting one interval from now,
  /// until the returned handle is stopped or the simulation ends.
  PeriodicHandle every(SimTime interval, Callback cb);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty or the clock would pass `until`.
  /// Events scheduled exactly at `until` do fire; afterwards now() == until
  /// (or the last event time if the queue drained early).
  void run_until(SimTime until);

  /// Runs until the event queue is fully drained.
  void run();

  /// Executes exactly one event if any is pending; returns whether it did.
  bool step();

  /// Moves the clock forward to `t` without executing anything (requires
  /// no pending events earlier than `t`).
  void settle_to(SimTime t);

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed so far (perf telemetry: events/sec is the
  /// simulator's fundamental throughput unit).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  friend class PeriodicHandle;

  /// Fires one periodic tick and re-arms. The scheduled closure captures
  /// only the raw state pointer (8 trivially-copyable bytes), so every
  /// rearm fits std::function's small-buffer storage — periodic series
  /// (invoker poll loops, samplers: millions of firings per run) never
  /// touch the heap after creation. Ownership lives in periodics_.
  void fire_periodic(detail::PeriodicState* st);
  void arm_periodic(detail::PeriodicState* st);
  void release_periodic(const detail::PeriodicState* st);

  SimTime now_{SimTime::zero()};
  EventQueue queue_;
  std::uint64_t executed_{0};
  std::vector<std::shared_ptr<detail::PeriodicState>> periodics_;
};

}  // namespace hpcwhisk::sim
