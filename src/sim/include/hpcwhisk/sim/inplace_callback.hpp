#pragma once
// A move-only `void()` callable with inline storage, built for the event
// queue's slab: scheduling an event must not touch the heap.
//
// std::function's small-buffer optimization tops out at 16 bytes on
// libstdc++, and every move goes through an indirect "manager" call. Here
// the common case — a trivially-copyable closure of up to `Capacity`
// bytes (a this-pointer plus a couple of ids) — is stored inline, moved
// with a plain memcpy, and destroyed for free. Larger or non-trivial
// callables still work: non-trivial ones carry relocate/destroy thunks,
// and anything over `Capacity` bytes falls back to a heap box (rare; the
// allocation probe in perf builds would surface a regression).

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hpcwhisk::sim {

template <std::size_t Capacity = 64>
class InplaceCallback {
 public:
  InplaceCallback() = default;
  InplaceCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InplaceCallback(InplaceCallback&& other) noexcept { move_from(other); }

  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;

  ~InplaceCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  /// Destroys the stored callable (and its captures) immediately.
  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(Slot)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](std::byte* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      if constexpr (!std::is_trivially_copyable_v<Fn> ||
                    !std::is_trivially_destructible_v<Fn>) {
        relocate_ = [](std::byte* dst, std::byte* src) {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (static_cast<void*>(dst)) Fn(std::move(*s));
          s->~Fn();
        };
        destroy_ = [](std::byte* p) {
          std::launder(reinterpret_cast<Fn*>(p))->~Fn();
        };
      }
      // Trivially-copyable case: relocate_/destroy_ stay null — moves are
      // a memcpy of the buffer, destruction is free.
    } else {
      // Oversized or over-aligned callable: box it. The inline buffer
      // then holds only the pointer (itself trivially relocatable).
      Fn* boxed = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &boxed, sizeof boxed);
      invoke_ = [](std::byte* p) {
        Fn* b;
        std::memcpy(&b, p, sizeof b);
        (*b)();
      };
      destroy_ = [](std::byte* p) {
        Fn* b;
        std::memcpy(&b, p, sizeof b);
        delete b;
      };
      // relocate_ stays null: moving the box is moving the pointer.
    }
  }

  void move_from(InplaceCallback& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (invoke_ != nullptr) {
      if (relocate_ != nullptr) {
        relocate_(buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, Capacity);
      }
    }
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  struct alignas(std::max_align_t) Slot {
    std::byte bytes[Capacity];
  };

  using Invoke = void (*)(std::byte*);
  using Relocate = void (*)(std::byte* dst, std::byte* src);
  using Destroy = void (*)(std::byte*);

  Invoke invoke_{nullptr};
  /// Null => the payload is trivially relocatable (memcpy moves it).
  Relocate relocate_{nullptr};
  /// Null => trivially destructible.
  Destroy destroy_{nullptr};
  alignas(Slot) std::byte buf_[Capacity];
};

}  // namespace hpcwhisk::sim
