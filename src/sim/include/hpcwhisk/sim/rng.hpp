#pragma once
// Deterministic pseudo-random generator for the simulator.
//
// xoshiro256** seeded via splitmix64: fast, high quality, and — unlike
// std::mt19937 + std::*_distribution — bit-identical across standard
// library implementations, which keeps every bench reproducible.

#include <array>
#include <cstdint>
#include <span>

namespace hpcwhisk::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent child stream (for per-component RNGs).
  [[nodiscard]] Rng fork();

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Lognormal with the given log-space parameters.
  double lognormal(double mu, double sigma);

  /// Index into `weights` drawn proportionally to the weights (all >= 0,
  /// at least one > 0).
  std::size_t weighted_index(std::span<const double> weights);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace hpcwhisk::sim
