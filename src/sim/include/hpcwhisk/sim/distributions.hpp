#pragma once
// Parametric and empirical distributions used to model published latency
// and workload statistics (medians, percentiles, CDF plots).

#include <vector>

#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::sim {

/// Lognormal distribution parameterized the way papers report latencies:
/// by median and a high percentile. Used e.g. for the HPC-Whisk warm-up
/// time (median 12.48 s, P95 26.5 s, Sec. IV-B).
class LognormalFromQuantiles {
 public:
  /// `p` is the upper quantile level in (0.5, 1), e.g. 0.95.
  LognormalFromQuantiles(double median, double upper_quantile_value, double p);

  [[nodiscard]] double sample(Rng& rng) const;
  [[nodiscard]] double median() const;
  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Bounded Pareto: heavy-tailed durations clipped to [lo, hi].
/// Models HPC job runtimes and idle-period tails.
class BoundedPareto {
 public:
  BoundedPareto(double alpha, double lo, double hi);
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double alpha_, lo_, hi_;
};

/// Piecewise-linear empirical CDF defined by (value, probability) knots.
/// Sampling inverts the CDF; this is how we reproduce the published CDF
/// plots (Figs. 1 and 2) without the raw trace.
class EmpiricalCdf {
 public:
  struct Knot {
    double value;
    double cum_prob;  // strictly increasing across knots, last == 1.0
  };

  explicit EmpiricalCdf(std::vector<Knot> knots);

  /// Inverse-CDF sample (piecewise-linear between knots).
  [[nodiscard]] double sample(Rng& rng) const;

  /// CDF evaluated at `value` (linear interpolation; 0 below, 1 above).
  [[nodiscard]] double cdf(double value) const;

  /// Quantile (inverse CDF) at probability `p` in [0, 1].
  [[nodiscard]] double quantile(double p) const;

 private:
  std::vector<Knot> knots_;
};

/// Fits an EmpiricalCdf from raw samples (steps at each sorted sample).
EmpiricalCdf fit_empirical_cdf(std::vector<double> samples);

}  // namespace hpcwhisk::sim
