#pragma once
// Simulation time: a strong type over signed 64-bit microsecond ticks.
//
// All latencies in HPC-Whisk are modelled at microsecond granularity; a
// signed 64-bit tick count covers ~292k years, far beyond any simulated
// horizon, and allows negative durations in intermediate arithmetic.

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace hpcwhisk::sim {

/// A point in simulated time, or a duration, counted in microseconds since
/// the start of the simulation. SimTime is used for both instants and
/// durations (like std::chrono ticks): the context disambiguates.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Prefer these over raw tick counts.
  static constexpr SimTime micros(std::int64_t us) { return SimTime{us}; }
  static constexpr SimTime millis(std::int64_t ms) { return SimTime{ms * 1000}; }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr SimTime minutes(double m) { return seconds(m * 60.0); }
  static constexpr SimTime hours(double h) { return seconds(h * 3600.0); }
  static constexpr SimTime days(double d) { return hours(d * 24.0); }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ticks() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr double to_minutes() const { return to_seconds() / 60.0; }
  [[nodiscard]] constexpr double to_hours() const { return to_seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime d) {
    us_ += d.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    us_ -= d.us_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.us_ + b.us_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.us_ - b.us_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.us_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    return a.us_ / b.us_;
  }
  friend constexpr SimTime operator%(SimTime a, SimTime b) {
    return SimTime{a.us_ % b.us_};
  }

  /// Human-readable rendering, e.g. "1h23m45.6s" — for logs and reports.
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

}  // namespace hpcwhisk::sim
