#pragma once
// A cancellable, deterministic discrete-event queue.
//
// Events scheduled for the same instant fire in schedule order (FIFO),
// which makes every simulation run bit-reproducible for a fixed seed.
//
// Storage is a slab of callback slots indexed by a free list; the heap
// holds (time, seq, slot) triples only. The callbacks themselves are
// InplaceCallback<64>: typical closures (a this-pointer plus a couple of
// ids) live inline in the slab and scheduling never allocates.
//
// The heap is a 4-ary implicit min-heap: half the levels of a binary
// heap, and the four children of a node share at most two cache lines,
// so the sift-down that dominates pop() touches far less memory. Because
// (when, seq) is a total order, any correct priority queue pops the same
// sequence — the arity is invisible to simulation outcomes.
//
// pop() drains same-deadline runs in batches: the first pop of a
// deadline stages the whole run (up to kMaxStage) out of the heap in one
// tight drain, and the following pops serve the stage without touching
// the heap. Cancellation stays exact — staged entries are validated
// against the slab at claim time, so cancelling an event that is already
// staged (e.g. by an earlier event at the same instant) still prevents
// it from firing.
//
// Cancellation is O(1): the slot's callback is destroyed eagerly (so
// captured state is reclaimed at once, not when the tombstone is
// eventually popped) and the heap entry is dropped lazily. When
// tombstones outnumber live entries past a threshold the heap is
// compacted in one O(n) sweep, so cancellation-heavy workloads (periodic
// handles, drain timers, grace windows) never accumulate dead entries.

#include <cstdint>
#include <vector>

#include "hpcwhisk/sim/inplace_callback.hpp"
#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr EventId(std::uint64_t seq, std::uint32_t slot)
      : seq_{seq}, slot_{slot} {}
  std::uint64_t seq_{0};
  std::uint32_t slot_{0};
};

/// 4-ary min-heap of (time, sequence) with slab-allocated callbacks,
/// batched same-deadline draining and lazy tombstone removal.
class EventQueue {
 public:
  using Callback = InplaceCallback<64>;

  /// Schedules `cb` to fire at absolute time `when`. `when` must not be
  /// earlier than the last popped time (enforced by Simulation, not here).
  EventId schedule(SimTime when, Callback cb);

  /// Cancels a previously scheduled event. Returns false if the event
  /// already fired or was already cancelled. The callback (and anything
  /// it captures) is destroyed before this returns.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Entries held by the queue including tombstones: the heap proper plus
  /// the staged same-deadline run. The heap portion is bounded at
  /// max(live + kCompactFloor, 2 * live) + 1 by compaction; the stage
  /// adds at most kMaxStage.
  [[nodiscard]] std::size_t heap_entries() const {
    return heap_.size() + (stage_.size() - stage_pos_);
  }

  /// Time of the earliest live event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time() const;

  struct Popped {
    SimTime when;
    Callback cb;
  };

  /// Pops and returns the earliest live event. Precondition: !empty().
  Popped pop();

  /// Pops the earliest live event into `out` if its time is <= `until`.
  /// Returns false (leaving `out` untouched) when the queue is empty or
  /// the earliest event is later. One call does the work of
  /// next_time() + pop() — the run loop's fast path.
  bool pop_due(SimTime until, Popped& out);

  /// Claims every event sharing the earliest live deadline (up to
  /// `max_n`) in one heap drain, appending to `out` in FIFO order.
  /// Returns the number claimed. Claimed events can no longer be
  /// cancelled — callers that may cancel same-instant events from within
  /// a callback (the simulation driver) must claim one event at a time
  /// via pop()/pop_due(), which stage the run internally but revalidate
  /// cancellation per event.
  std::size_t pop_batch(std::size_t max_n, std::vector<Popped>& out);

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  /// Compaction triggers when tombstones exceed both this floor and the
  /// live count — amortized O(1) per cancellation.
  static constexpr std::size_t kCompactFloor = 64;
  /// Longest same-deadline run staged out of the heap in one drain.
  static constexpr std::size_t kMaxStage = 64;

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Total (when, seq) order: the pop sequence is unique, whatever the
  /// container shape.
  static bool entry_before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  struct Slot {
    Callback cb;
    std::uint64_t seq{0};  ///< 0 while dead/free
    std::uint32_t next_free{kNoSlot};
  };

  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slots_[e.slot].seq == e.seq;
  }
  void release_slot(std::uint32_t slot);
  void claim(const Entry& e, Popped& out);

  // 4-ary heap primitives over heap_.
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void push_entry(const Entry& e);
  void pop_root();
  void rebuild_heap();

  void drain_cancelled() const;
  /// Skips staged entries cancelled after staging.
  void drain_stage() const;
  /// Precondition: stage empty. Moves the earliest same-deadline run
  /// (up to kMaxStage live entries) from the heap into the stage.
  void refill_stage() const;
  void maybe_compact();

  mutable std::vector<Entry> heap_;
  /// Staged same-deadline run, served FIFO from stage_pos_. Entries here
  /// are out of the heap but still cancellable (slab seq validation).
  mutable std::vector<Entry> stage_;
  mutable std::size_t stage_pos_{0};
  mutable std::vector<Slot> slots_;
  mutable std::uint32_t free_head_{kNoSlot};
  std::uint64_t next_seq_{1};
  std::size_t live_{0};
};

}  // namespace hpcwhisk::sim
