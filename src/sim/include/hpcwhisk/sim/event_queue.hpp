#pragma once
// A cancellable, deterministic discrete-event queue.
//
// Events scheduled for the same instant fire in schedule order (FIFO),
// which makes every simulation run bit-reproducible for a fixed seed.
// Cancellation is O(log n) amortized via lazy deletion.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t seq) : seq_{seq} {}
  std::uint64_t seq_{0};
};

/// Min-heap of (time, sequence) with lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `when`. `when` must not be
  /// earlier than the last popped time (enforced by Simulation, not here).
  EventId schedule(SimTime when, Callback cb);

  /// Cancels a previously scheduled event. Returns false if the event
  /// already fired or was already cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Popped {
    SimTime when;
    Callback cb;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drain_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_{1};
  std::size_t live_{0};
};

}  // namespace hpcwhisk::sim
