#pragma once
// A cancellable, deterministic discrete-event queue.
//
// Events scheduled for the same instant fire in schedule order (FIFO),
// which makes every simulation run bit-reproducible for a fixed seed.
//
// Storage is a slab of callback slots indexed by a free list; the heap
// holds (time, seq, slot) triples only. Cancellation is O(1): the slot's
// callback is destroyed eagerly (so captured state is reclaimed at once,
// not when the tombstone is eventually popped) and the heap entry is
// dropped lazily. When tombstones outnumber live entries past a
// threshold the heap is compacted in one O(n) sweep, so cancellation-
// heavy workloads (periodic handles, drain timers, grace windows) never
// accumulate dead entries.

#include <cstdint>
#include <functional>
#include <vector>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr EventId(std::uint64_t seq, std::uint32_t slot)
      : seq_{seq}, slot_{slot} {}
  std::uint64_t seq_{0};
  std::uint32_t slot_{0};
};

/// Min-heap of (time, sequence) with slab-allocated callbacks and lazy
/// tombstone removal.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `when`. `when` must not be
  /// earlier than the last popped time (enforced by Simulation, not here).
  EventId schedule(SimTime when, Callback cb);

  /// Cancels a previously scheduled event. Returns false if the event
  /// already fired or was already cancelled. The callback (and anything
  /// it captures) is destroyed before this returns.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Heap entries including tombstones (telemetry: bounded at
  /// max(live + kCompactFloor, 2 * live) by compaction).
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

  /// Time of the earliest live event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Popped {
    SimTime when;
    Callback cb;
  };
  Popped pop();

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  /// Compaction triggers when tombstones exceed both this floor and the
  /// live count — amortized O(1) per cancellation.
  static constexpr std::size_t kCompactFloor = 64;

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Min-heap order for std::push_heap/pop_heap (which build max-heaps
  /// under operator<): "greater" comparison on (when, seq).
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    Callback cb;
    std::uint64_t seq{0};        ///< 0 while dead/free
    std::uint32_t next_free{kNoSlot};
  };

  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slots_[e.slot].seq == e.seq;
  }
  void release_slot(std::uint32_t slot);
  void drain_cancelled() const;
  void maybe_compact();

  mutable std::vector<Entry> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::uint32_t free_head_{kNoSlot};
  std::uint64_t next_seq_{1};
  std::size_t live_{0};
};

}  // namespace hpcwhisk::sim
