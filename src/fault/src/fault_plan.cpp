#include "hpcwhisk/fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "hpcwhisk/sim/rng.hpp"

namespace hpcwhisk::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kInvokerStall: return "invoker-stall";
    case FaultKind::kInvokerCrash: return "invoker-crash";
    case FaultKind::kMqDrop: return "mq-drop";
    case FaultKind::kMqDelay: return "mq-delay";
    case FaultKind::kMqDuplicate: return "mq-duplicate";
  }
  return "?";
}

FaultKind fault_kind_from_string(std::string_view name) {
  if (name == "node-crash") return FaultKind::kNodeCrash;
  if (name == "invoker-stall") return FaultKind::kInvokerStall;
  if (name == "invoker-crash") return FaultKind::kInvokerCrash;
  if (name == "mq-drop") return FaultKind::kMqDrop;
  if (name == "mq-delay") return FaultKind::kMqDelay;
  if (name == "mq-duplicate") return FaultKind::kMqDuplicate;
  throw std::invalid_argument("unknown fault kind: " + std::string{name});
}

FaultPlan& FaultPlan::add(FaultEvent ev) {
  events_.push_back(ev);
  return *this;
}

namespace {

/// Walks one Poisson process over [start, start+horizon), invoking
/// `emit` at each arrival. rate is per hour.
template <typename Emit>
void poisson_arrivals(sim::Rng& rng, const FaultProfile& p, double rate,
                      Emit emit) {
  if (rate <= 0.0) return;
  const double mean_gap_s = 3600.0 / rate;
  sim::SimTime t = p.start;
  const sim::SimTime end = p.start + p.horizon;
  for (;;) {
    t += sim::SimTime::seconds(rng.exponential(mean_gap_s));
    if (t >= end) return;
    emit(t);
  }
}

}  // namespace

FaultPlan FaultPlan::sample(const FaultProfile& profile, std::uint64_t seed) {
  sim::Rng rng{seed};
  FaultPlan plan;

  // Classes are sampled in a fixed order, each from its own forked
  // stream, so enabling one class never reshuffles another.
  sim::Rng node_rng = rng.fork();
  sim::Rng stall_rng = rng.fork();
  sim::Rng crash_rng = rng.fork();
  sim::Rng mq_rng = rng.fork();

  poisson_arrivals(node_rng, profile, profile.node_crash_rate_per_hour,
                   [&](sim::SimTime at) {
                     FaultEvent ev;
                     ev.at = at;
                     ev.kind = FaultKind::kNodeCrash;
                     ev.grace = sim::SimTime::seconds(node_rng.uniform(
                         0.0, profile.truncated_grace_max.to_seconds()));
                     ev.outage = sim::SimTime::seconds(
                         node_rng.exponential(profile.mean_outage.to_seconds()));
                     plan.add(ev);
                   });
  poisson_arrivals(stall_rng, profile, profile.invoker_stall_rate_per_hour,
                   [&](sim::SimTime at) {
                     FaultEvent ev;
                     ev.at = at;
                     ev.kind = FaultKind::kInvokerStall;
                     ev.stall = sim::SimTime::seconds(
                         stall_rng.exponential(profile.mean_stall.to_seconds()));
                     plan.add(ev);
                   });
  poisson_arrivals(crash_rng, profile, profile.invoker_crash_rate_per_hour,
                   [&](sim::SimTime at) {
                     FaultEvent ev;
                     ev.at = at;
                     ev.kind = FaultKind::kInvokerCrash;
                     plan.add(ev);
                   });
  poisson_arrivals(mq_rng, profile, profile.mq_fault_rate_per_hour,
                   [&](sim::SimTime at) {
                     FaultEvent ev;
                     ev.at = at;
                     switch (mq_rng.uniform_int(0, 2)) {
                       case 0: ev.kind = FaultKind::kMqDrop; break;
                       case 1: ev.kind = FaultKind::kMqDelay; break;
                       default: ev.kind = FaultKind::kMqDuplicate; break;
                     }
                     ev.window = profile.mq_window;
                     ev.probability = profile.mq_probability;
                     ev.delay = profile.mq_delay;
                     plan.add(ev);
                   });

  std::stable_sort(
      plan.events_.begin(), plan.events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

}  // namespace hpcwhisk::fault
