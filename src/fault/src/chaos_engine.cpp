#include "hpcwhisk/fault/chaos_engine.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "hpcwhisk/obs/observability.hpp"
#include "hpcwhisk/slurm/node.hpp"

namespace hpcwhisk::fault {

ChaosEngine::ChaosEngine(sim::Simulation& simulation, slurm::Slurmctld& slurm,
                         whisk::Controller& controller, mq::Broker& broker,
                         Config config, InvokerDirectory directory,
                         sim::Rng rng)
    : sim_{simulation},
      slurm_{slurm},
      controller_{controller},
      broker_{broker},
      config_{std::move(config)},
      directory_{std::move(directory)},
      rng_{rng} {}

void ChaosEngine::arm() {
  if (armed_) throw std::logic_error("ChaosEngine::arm: already armed");
  armed_ = true;
  HW_OBS_IF(config_.obs) {
    config_.obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      m.counter("fault.applied").set(counters_.applied);
      m.counter("fault.skipped").set(counters_.skipped);
    });
  }

  std::vector<FaultEvent> events = config_.plan.events();
  std::stable_sort(
      events.begin(), events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });

  bool has_mq = false;
  for (const FaultEvent& ev : events) {
    has_mq = has_mq || ev.kind == FaultKind::kMqDrop ||
             ev.kind == FaultKind::kMqDelay ||
             ev.kind == FaultKind::kMqDuplicate;
    sim_.at(ev.at, [this, ev] { fire(ev); });
  }
  // The filter is installed only when the plan needs it: a chaos-free
  // run keeps the zero-overhead publish path.
  if (has_mq) {
    broker_.set_topic_hook([this](mq::Topic& topic) {
      topic.set_fault_filter(
          [this](const mq::Message& msg) { return decide(msg); }, &sim_);
    });
  }
}

void ChaosEngine::fire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kNodeCrash:
      fire_node_crash(ev);
      return;
    case FaultKind::kInvokerStall:
    case FaultKind::kInvokerCrash:
      fire_invoker(ev);
      return;
    case FaultKind::kMqDrop:
    case FaultKind::kMqDelay:
    case FaultKind::kMqDuplicate:
      open_mq_window(ev);
      return;
  }
}

void ChaosEngine::fire_node_crash(const FaultEvent& ev) {
  slurm::NodeId node = ev.target;
  if (ev.target == kAutoTarget) {
    // Crash where it hurts: a node currently hosting a pilot. (Crashing
    // HPC-only nodes exercises nothing of the serving path.)
    std::vector<slurm::NodeId> pilots;
    const auto states = slurm_.observed_states();
    for (slurm::NodeId id = 0; id < states.size(); ++id)
      if (states[id] == slurm::ObservedNodeState::kPilot) pilots.push_back(id);
    if (pilots.empty()) {
      ++counters_.skipped;
      HW_OBS_IF(config_.obs) {
        config_.obs->trace.record(obs::Cat::kFault, obs::Phase::kInstant,
                                  "fault_skipped", obs::Track::kChaos, 0,
                                  obs::kNoCorr, sim_.now());
      }
      return;
    }
    node = pilots[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(pilots.size()) - 1))];
  }

  AppliedFault fault;
  fault.at = sim_.now();
  fault.kind = ev.kind;
  fault.target = node;
  fault.healthy_before = controller_.healthy_count();
  applied_.push_back(fault);
  ++counters_.applied;
  HW_OBS_IF(config_.obs) {
    // corr is the applied-fault index so the later "recovered" instant
    // chains back to the injection; arg0 = unavailability window (s),
    // arg1 = target node.
    config_.obs->trace.record_chained(
        obs::Cat::kFault, obs::Phase::kInstant, to_string(ev.kind),
        obs::Track::kChaos, 0, applied_.size() - 1, sim_.now(),
        (ev.grace + ev.outage).to_seconds(), static_cast<double>(node));
  }

  slurm_.fail_node(node, ev.grace);
  sim_.after(ev.grace + ev.outage, [this, node] { slurm_.set_node_up(node); });
  watch_recovery(applied_.size() - 1);
}

whisk::Invoker* ChaosEngine::pick_invoker(std::uint32_t target) {
  std::vector<whisk::Invoker*> eligible;
  for (whisk::Invoker* inv : directory_()) {
    if (inv == nullptr) continue;
    if (!inv->started() || inv->dead() || inv->draining() || inv->stalled())
      continue;
    eligible.push_back(inv);
  }
  if (eligible.empty()) return nullptr;
  std::sort(eligible.begin(), eligible.end(),
            [](const whisk::Invoker* a, const whisk::Invoker* b) {
              return a->id() < b->id();
            });
  if (target != kAutoTarget) {
    for (whisk::Invoker* inv : eligible)
      if (inv->id() == target) return inv;
    return nullptr;
  }
  return eligible[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1))];
}

void ChaosEngine::fire_invoker(const FaultEvent& ev) {
  whisk::Invoker* inv = pick_invoker(ev.target);
  if (inv == nullptr) {
    ++counters_.skipped;
    HW_OBS_IF(config_.obs) {
      config_.obs->trace.record(obs::Cat::kFault, obs::Phase::kInstant,
                                "fault_skipped", obs::Track::kChaos, 0,
                                obs::kNoCorr, sim_.now());
    }
    return;
  }

  AppliedFault fault;
  fault.at = sim_.now();
  fault.kind = ev.kind;
  fault.target = inv->id();
  fault.healthy_before = controller_.healthy_count();
  applied_.push_back(fault);
  ++counters_.applied;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kFault, obs::Phase::kInstant, to_string(ev.kind),
        obs::Track::kChaos, 0, applied_.size() - 1, sim_.now(),
        ev.kind == FaultKind::kInvokerStall ? ev.stall.to_seconds() : 0.0,
        static_cast<double>(inv->id()));
  }

  if (ev.kind == FaultKind::kInvokerStall) {
    inv->stall(ev.stall);
  } else {
    inv->hard_kill();
  }
  watch_recovery(applied_.size() - 1);
}

void ChaosEngine::open_mq_window(const FaultEvent& ev) {
  MqWindow w;
  w.kind = ev.kind;
  w.until = sim_.now() + ev.window;
  w.probability = ev.probability;
  w.delay = ev.delay;
  w.copies = ev.copies;
  windows_.push_back(w);

  AppliedFault fault;
  fault.at = sim_.now();
  fault.kind = ev.kind;
  fault.healthy_before = controller_.healthy_count();
  // An mq window does not remove capacity; its "recovery" is the window
  // closing.
  fault.recovery = ev.window;
  applied_.push_back(fault);
  ++counters_.applied;
  HW_OBS_IF(config_.obs) {
    // Instants cannot span; arg0 carries the window length (s) so
    // consumers reconstruct [at, at + arg0] as the disturbance window.
    config_.obs->trace.record_chained(
        obs::Cat::kFault, obs::Phase::kInstant, to_string(ev.kind),
        obs::Track::kChaos, 0, applied_.size() - 1, sim_.now(),
        ev.window.to_seconds(), ev.probability);
  }
}

mq::Topic::FaultAction ChaosEngine::decide(const mq::Message& msg) {
  (void)msg;
  const sim::SimTime now = sim_.now();
  windows_.erase(std::remove_if(windows_.begin(), windows_.end(),
                                [now](const MqWindow& w) {
                                  return w.until <= now;
                                }),
                 windows_.end());
  mq::Topic::FaultAction action;
  for (const MqWindow& w : windows_) {
    if (!rng_.bernoulli(w.probability)) continue;
    switch (w.kind) {
      case FaultKind::kMqDrop:
        action.drop = true;
        break;
      case FaultKind::kMqDelay:
        action.delay = w.delay;
        break;
      case FaultKind::kMqDuplicate:
        action.extra_copies = w.copies;
        break;
      default:
        break;
    }
    break;  // first matching window wins
  }
  return action;
}

void ChaosEngine::watch_recovery(std::size_t index) {
  sim_.after(config_.recovery_poll, [this, index] {
    AppliedFault& fault = applied_[index];
    if (fault.recovery != sim::SimTime::max()) return;
    if (controller_.healthy_count() >= fault.healthy_before) {
      fault.recovery = sim_.now() - fault.at;
      HW_OBS_IF(config_.obs) {
        config_.obs->trace.record_chained(
            obs::Cat::kFault, obs::Phase::kInstant, "recovered",
            obs::Track::kChaos, 0, index, sim_.now(),
            fault.recovery.to_seconds());
      }
      return;
    }
    if (sim_.now() - fault.at >= config_.recovery_timeout) return;
    watch_recovery(index);
  });
}

std::string ChaosEngine::report() const {
  std::ostringstream out;
  out << "chaos: " << counters_.applied << " applied, " << counters_.skipped
      << " skipped\n";
  for (std::size_t i = 0; i < applied_.size(); ++i) {
    const AppliedFault& f = applied_[i];
    out << "  [" << i << "] t=" << f.at.to_string() << " "
        << to_string(f.kind);
    if (f.target != kAutoTarget) out << " target=" << f.target;
    out << " healthy_before=" << f.healthy_before << " recovery=";
    if (f.recovery == sim::SimTime::max()) {
      out << "unrecovered";
    } else {
      out << f.recovery.to_string();
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hpcwhisk::fault
