#pragma once
// The chaos engine: replays a FaultPlan against a live simulation.
//
// Fault injection goes through three seams, none of which bypasses the
// system's own protocols — the point is to exercise exactly the recovery
// machinery the paper describes (watchdog, fast-lane rescue, Alg. 1):
//  * slurm:  Slurmctld::fail_node() — a pilot's node dies with a
//    truncated grace, then returns to service after an outage;
//  * whisk:  Invoker::stall()/hard_kill() — an invoker goes silent
//    (watchdog marks it unresponsive) or vanishes mid-execution;
//  * mq:     a broker-wide topic fault filter — publishes are dropped,
//    delayed or duplicated inside timed windows, exercising the
//    at-least-once delivery semantics end to end.
//
// Every random draw comes from one forked sim::Rng, so a given
// (plan, workload, seed) triple replays bit-identically; report() is
// correspondingly byte-stable.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hpcwhisk/fault/fault_plan.hpp"
#include "hpcwhisk/mq/broker.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"
#include "hpcwhisk/whisk/controller.hpp"
#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::obs {
struct Observability;
}

namespace hpcwhisk::fault {

/// One fault the engine actually applied, with its observed recovery.
struct AppliedFault {
  sim::SimTime at;
  FaultKind kind{};
  std::uint32_t target{kAutoTarget};  ///< node id or invoker id
  /// Healthy invokers just before the fault: the recovery baseline.
  std::size_t healthy_before{0};
  /// Fault time -> healthy_count() back at healthy_before. mq windows
  /// report their window length. SimTime::max() = never recovered
  /// within the recovery timeout.
  sim::SimTime recovery{sim::SimTime::max()};
};

class ChaosEngine {
 public:
  /// How the engine reaches live invokers without depending on the core
  /// layer: the owner supplies the current serving set on demand.
  using InvokerDirectory = std::function<std::vector<whisk::Invoker*>()>;

  struct Config {
    FaultPlan plan;
    /// Cadence of the capacity-recovered probe after node/invoker faults.
    sim::SimTime recovery_poll{sim::SimTime::seconds(1)};
    /// Give up calling a fault "recovered" after this long.
    sim::SimTime recovery_timeout{sim::SimTime::minutes(30)};
    /// Optional trace/metrics sink; null disables all instrumentation.
    obs::Observability* obs{nullptr};
  };

  ChaosEngine(sim::Simulation& simulation, slurm::Slurmctld& slurm,
              whisk::Controller& controller, mq::Broker& broker,
              Config config, InvokerDirectory directory, sim::Rng rng);

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  /// Schedules every plan event on the virtual clock and, if the plan
  /// contains mq faults, installs the broker-wide fault filter. Call
  /// once, before Simulation::run().
  void arm();

  struct Counters {
    std::uint64_t applied{0};
    std::uint64_t skipped{0};  ///< fired with no eligible target
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const std::vector<AppliedFault>& applied() const {
    return applied_;
  }

  /// Deterministic multi-line report of every applied fault and its
  /// recovery time — byte-identical across same-seed runs.
  [[nodiscard]] std::string report() const;

 private:
  struct MqWindow {
    FaultKind kind{};
    sim::SimTime until;
    double probability{1.0};
    sim::SimTime delay;
    std::uint32_t copies{1};
  };

  void fire(const FaultEvent& ev);
  void fire_node_crash(const FaultEvent& ev);
  void fire_invoker(const FaultEvent& ev);
  void open_mq_window(const FaultEvent& ev);
  [[nodiscard]] mq::Topic::FaultAction decide(const mq::Message& msg);
  /// Starts the recovery probe for applied_[index].
  void watch_recovery(std::size_t index);
  [[nodiscard]] whisk::Invoker* pick_invoker(std::uint32_t target);

  sim::Simulation& sim_;
  slurm::Slurmctld& slurm_;
  whisk::Controller& controller_;
  mq::Broker& broker_;
  Config config_;
  InvokerDirectory directory_;
  sim::Rng rng_;
  std::vector<MqWindow> windows_;
  std::vector<AppliedFault> applied_;
  Counters counters_;
  bool armed_{false};
};

}  // namespace hpcwhisk::fault
