#pragma once
// Deterministic fault plans for the chaos engine.
//
// A FaultPlan is a list of fault events pinned to the virtual clock —
// built by hand for targeted scenarios, or sampled from seeded Poisson
// processes (FaultPlan::sample) for soak testing. Because the plan is
// fixed before the run and every random draw comes from the seeded
// sim::Rng, two runs with the same plan, workload and seed replay the
// exact same failure history.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::fault {

enum class FaultKind : std::uint8_t {
  kNodeCrash,     ///< slurm seam: fail_node() with truncated grace + outage
  kInvokerStall,  ///< whisk seam: invoker freezes (no heartbeats), thaws later
  kInvokerCrash,  ///< whisk seam: hard-kill a serving invoker, no hand-off
  kMqDrop,        ///< mq seam: window during which publishes are dropped
  kMqDelay,       ///< mq seam: window during which publishes are delayed
  kMqDuplicate,   ///< mq seam: window during which publishes are duplicated
};

[[nodiscard]] const char* to_string(FaultKind k);
/// Inverse of to_string; throws std::invalid_argument on unknown names
/// (repro-file deserialization).
[[nodiscard]] FaultKind fault_kind_from_string(std::string_view name);

/// Sentinel target: the engine picks deterministically from the live
/// population (pilot-held nodes / serving invokers) at fire time.
inline constexpr std::uint32_t kAutoTarget = 0xFFFFFFFFu;

struct FaultEvent {
  sim::SimTime at;  ///< virtual time the fault fires
  FaultKind kind{FaultKind::kNodeCrash};

  // kNodeCrash: SIGTERM→SIGKILL warning actually granted, then how long
  // the node stays down before set_node_up().
  sim::SimTime grace{sim::SimTime::seconds(10)};
  sim::SimTime outage{sim::SimTime::minutes(4)};

  // kInvokerStall: freeze duration.
  sim::SimTime stall{sim::SimTime::seconds(45)};

  // kMq*: window length and per-publish fault probability within it.
  sim::SimTime window{sim::SimTime::seconds(30)};
  double probability{1.0};
  sim::SimTime delay{sim::SimTime::seconds(5)};  ///< kMqDelay hold time
  std::uint32_t copies{1};                       ///< kMqDuplicate extras

  /// Node id (kNodeCrash) or serving-invoker index (kInvoker*);
  /// kAutoTarget defers the pick to the engine.
  std::uint32_t target{kAutoTarget};

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Intensity knobs for sampled plans. Rates are per hour of the
/// [start, start + horizon) window; 0 disables the class.
struct FaultProfile {
  sim::SimTime start{sim::SimTime::minutes(5)};
  sim::SimTime horizon{sim::SimTime::hours(1)};
  double node_crash_rate_per_hour{0.0};
  double invoker_stall_rate_per_hour{0.0};
  double invoker_crash_rate_per_hour{0.0};
  double mq_fault_rate_per_hour{0.0};
  sim::SimTime mean_outage{sim::SimTime::minutes(4)};
  sim::SimTime mean_stall{sim::SimTime::seconds(45)};
  /// Node crashes grant a uniform [0, this] truncated grace.
  sim::SimTime truncated_grace_max{sim::SimTime::seconds(30)};
  sim::SimTime mq_window{sim::SimTime::seconds(30)};
  double mq_probability{0.3};
  sim::SimTime mq_delay{sim::SimTime::seconds(5)};
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Appends an event (events need not be added in time order; the
  /// engine sorts on arm()).
  FaultPlan& add(FaultEvent ev);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

  /// Samples a plan from seeded exponential interarrivals, one process
  /// per fault class, then merges by time (stable: class order breaks
  /// ties). Same profile + seed => identical plan, on every platform.
  [[nodiscard]] static FaultPlan sample(const FaultProfile& profile,
                                        std::uint64_t seed);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace hpcwhisk::fault
