#pragma once
// CallScheduler: duration estimators + backlog ledger + routing policies
// — the decision layer between observation (completed activations) and
// dispatch (which invoker topic a call is published to).
//
// Policies (Żuk & Rzadca, PAPERS.md: least-expected-work / SJF-style
// dispatch cut FaaS tail latency under heterogeneous mixes):
//
//  * least-expected-work: route to the worker minimizing predicted
//    completion time  backlog(w) + E[duration | warm/cold at w],
//    where a worker that never ran the function pays the cold-start
//    overhead prior. Ties prefer warm workers, then the lowest id.
//  * sjf-affinity: keep the hash-homed worker (warm-container reuse,
//    OpenWhisk Sec. II) unless its expected completion exceeds the best
//    worker's by more than `sjf_affinity_slack x predicted duration +
//    cold_overhead` — an SJF-flavored escape: the shorter the predicted
//    duration, the smaller the queueing delay the call tolerates before
//    abandoning its warm home, with a cold-start hysteresis so nobody
//    trades a warm container for sub-cold-start noise.
//  * deadline classes (optional, both policies): calls whose predicted
//    duration is under `short_class_bound` are published to the *front*
//    of the chosen worker's queue — they preempt queue position at
//    publish time, never a running execution.
//
// Everything is deterministic: decisions are pure functions of the
// observation history and the candidate list, so seeded runs replay
// byte-identically (SimCheck hashes decision logs over these policies).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/sched/backlog.hpp"
#include "hpcwhisk/sched/estimator.hpp"
#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::sched {

struct SchedConfig {
  EstimatorConfig estimator;
  /// sjf-affinity escape threshold, in units of the call's predicted
  /// duration (see header comment).
  double sjf_affinity_slack{2.0};
  /// Enables the short-class fast path (front-of-queue publish).
  bool deadline_classes{false};
  /// Predicted-duration bound under which a call is short-class.
  sim::SimTime short_class_bound{sim::SimTime::millis(250)};
  /// Deadline-class dispersion guard: the short-class test compares
  /// `predict + factor * deviation` against the bound, so a function
  /// whose durations swing wildly must predict well under the bound
  /// before it may jump queues. 0 (default) preserves the plain
  /// predicted <= bound test bit-for-bit.
  double short_class_deviation_factor{0.0};
};

class CallScheduler {
 public:
  explicit CallScheduler(SchedConfig config = {})
      : config_{config}, estimator_{config.estimator} {}

  CallScheduler(const CallScheduler&) = delete;
  CallScheduler& operator=(const CallScheduler&) = delete;

  // --- Routing -------------------------------------------------------------

  struct Decision {
    /// Sentinel runner_up: no alternative existed (single candidate).
    static constexpr WorkerId kNoRunnerUp = ~WorkerId{0};

    WorkerId worker{0};
    std::int64_t predicted_ticks{0};  ///< bare duration prediction
    std::int64_t cost_ticks{0};       ///< duration + cold overhead if cold
    bool expected_cold{false};        ///< worker outside the warm set
    bool short_class{false};          ///< publish to the queue front

    // Explainability (observation only — nothing below feeds back into a
    // routing choice, so decision logs are unchanged by its presence).
    WorkerId runner_up{kNoRunnerUp};       ///< the pick that lost
    std::int64_t runner_up_cost_ticks{0};  ///< its expected completion
    std::int64_t backlog_ticks{0};  ///< chosen worker's charge at decision
    std::uint32_t candidates{0};    ///< workers considered
  };

  /// Least-expected-work pick among `workers` (ascending, non-empty).
  [[nodiscard]] Decision route_least_expected_work(
      const std::string& function, const std::vector<WorkerId>& workers);

  /// SJF-tiebroken hash affinity; `home_index` indexes into `workers`
  /// (the caller owns the hash — sched does not know function hashing).
  [[nodiscard]] Decision route_sjf_affinity(
      const std::string& function, const std::vector<WorkerId>& workers,
      std::size_t home_index);

  // --- Lifecycle feedback (the controller drives these) --------------------

  /// The call was published to decision.worker: charge the ledger.
  void on_routed(CallId call, const Decision& decision);

  /// The call started executing on `by`. Moves (or re-creates, after a
  /// rescue) its charge and marks `by` warm for the function.
  void on_started(CallId call, WorkerId by, const std::string& function);

  /// The call left its queue for the fast lane (drain hand-off, rescue):
  /// its predicted work no longer waits on the charged worker.
  void on_requeued(CallId call);

  struct Outcome {
    bool had_charge{false};
    bool observed{false};
    std::int64_t predicted_ticks{0};
    std::int64_t actual_ticks{0};
    /// |actual - predicted|, valid when observed.
    std::int64_t abs_error_ticks{0};
  };

  /// Terminal state: releases the charge and — for completed executions
  /// (`actual` >= 0) — folds the actual duration into the estimator.
  Outcome on_finished(CallId call, const std::string& function,
                      std::int64_t actual_ticks, bool cold_start);
  /// As above, attributing the sample to the worker that executed the
  /// call (feeds the per-worker models when they are enabled; pass
  /// DurationEstimator::kAnyWorker when unknown).
  Outcome on_finished(CallId call, const std::string& function,
                      std::int64_t actual_ticks, bool cold_start,
                      WorkerId worker);

  /// The worker vanished without hand-off: drop all its charges (the
  /// watchdog's rescue re-charges survivors when they restart).
  void forget_worker(WorkerId worker);

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] const DurationEstimator& estimator() const {
    return estimator_;
  }
  [[nodiscard]] const BacklogLedger& ledger() const { return ledger_; }
  [[nodiscard]] bool is_warm(WorkerId worker,
                             const std::string& function) const;
  [[nodiscard]] const SchedConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t decisions{0};
    std::uint64_t cold_routed{0};      ///< decisions outside the warm set
    std::uint64_t short_class{0};      ///< front-of-queue publishes
    std::uint64_t affinity_kept{0};    ///< sjf-affinity stayed home
    std::uint64_t affinity_escaped{0}; ///< ... or fled to the best worker
    std::uint64_t rescue_charges{0};   ///< charges re-created at start
    std::uint64_t forgotten{0};        ///< charges dropped by forget_worker
    /// Prediction-error tallies over observed completions (benches read
    /// these; the obs histogram carries the full distribution).
    std::uint64_t error_observations{0};
    std::int64_t sum_abs_error_ticks{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Cost {
    std::int64_t cost{0};
    std::int64_t predicted{0};
    std::int64_t backlog{0};
    bool cold{false};
  };
  [[nodiscard]] Cost cost_at(const std::string& function,
                             WorkerId worker) const;
  [[nodiscard]] Decision finalize(const std::string& function,
                                  WorkerId worker, const Cost& cost,
                                  std::size_t candidates, WorkerId runner_up,
                                  std::int64_t runner_up_cost);

  SchedConfig config_;
  DurationEstimator estimator_;
  BacklogLedger ledger_;
  /// Workers holding (or having held) a warm container for a function.
  /// Small sorted vectors: worker counts are tens-to-hundreds and the
  /// order makes iteration deterministic.
  std::unordered_map<std::string, std::vector<WorkerId>> warm_;
  Stats stats_;
};

}  // namespace hpcwhisk::sched
