#pragma once
// Online per-function execution-duration models — the "observation" half
// of the data-driven call scheduler (Żuk & Rzadca: *Call Scheduling to
// Reduce Response Time of a FaaS System* / *Data-driven scheduling in
// serverless computing*, PAPERS.md).
//
// Two complementary models per function, both O(1) per observation and
// fully deterministic (no RNG, state is a pure fold over the observation
// sequence — which is what lets SimCheck replay-hash runs that route on
// these estimates):
//
//  * an EWMA mean + mean-absolute-deviation pair, kept separately for
//    cold-start and warm-start executions (cold executions dilate and
//    should not pollute the steady-state estimate, and vice versa);
//  * a log-bucketed quantile sketch using the same bucketing scheme as
//    obs::MetricsRegistry histograms (8 sub-buckets per octave,
//    <= 12.5 % relative quantile error) so routing policies can ask for
//    a tail estimate (e.g. p95) without storing raw samples.
//
// Functions never seen before fall back to a configurable prior — the
// papers' "no history" case. The estimator tells callers when it did
// (prior_hits), so benches can report how long the cold-history window
// lasted.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::sched {

/// Log-bucketed quantile sketch over non-negative tick counts. Mirrors
/// the bucketing of obs::Histogram (kSubBuckets linear slices per
/// octave) but stays dependency-free: sched sits *below* whisk and obs
/// in the layer order, so it cannot link against them.
class QuantileSketch {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kOctaves = 60;

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Quantile estimate from bucket boundaries, clamped to the observed
  /// [min, max]. q in [0, 1]; 0 with no samples.
  [[nodiscard]] double quantile(double q) const;

 private:
  static std::size_t bucket_index(double v);
  static double bucket_mid(std::size_t idx);

  // 480 buckets x 2 bytes would be enough at sim scale, but keep u32 for
  // soak runs; ~2 KB per tracked function.
  std::uint32_t buckets_[static_cast<std::size_t>(kOctaves) * kSubBuckets]{};
  std::uint64_t count_{0};
  double min_{0};
  double max_{0};
};

struct EstimatorConfig {
  /// EWMA smoothing factor for mean and mean-absolute-deviation.
  double alpha{0.25};
  /// Duration assumed for a function with no history (the papers use the
  /// fleet median; we make it a knob so benches can mis-set it on
  /// purpose and measure how fast the model recovers).
  sim::SimTime prior{sim::SimTime::millis(100)};
  /// Extra cost charged when routing a function to an invoker that has
  /// never run it (expected container cold-start overhead). Only a
  /// routing-cost prior: the cold/warm duration models below measure
  /// execution time, which in this simulator excludes container setup.
  sim::SimTime cold_overhead{sim::SimTime::millis(500)};
  /// Additionally keep a (function, worker) EWMA pair and let the
  /// worker-qualified predict overloads answer from it when it has
  /// history. Captures per-node heterogeneity (CPU dilation under
  /// co-location, slow nodes) that the global model averages away.
  /// Off by default: the overloads then delegate to the global model
  /// and routing decisions are byte-identical.
  bool per_worker{false};
};

/// Per-function online duration model fed from activation completions.
class DurationEstimator {
 public:
  /// Worker id meaning "not attributable to a worker" (matches the
  /// controller's kNoInvoker sentinel, ~0u): per-worker folding and
  /// lookups are skipped for it.
  static constexpr std::uint32_t kAnyWorker = ~std::uint32_t{0};

  explicit DurationEstimator(EstimatorConfig config = {})
      : config_{config} {}

  /// Folds one completed execution into the function's model.
  void observe(const std::string& function, sim::SimTime duration,
               bool cold_start);
  /// As above, additionally folding the (function, worker) model when
  /// EstimatorConfig::per_worker is set and `worker` != kAnyWorker.
  void observe(const std::string& function, sim::SimTime duration,
               bool cold_start, std::uint32_t worker);

  /// Best single-point prediction for one execution of `function`:
  /// warm EWMA if warm history exists, else cold EWMA, else the prior.
  /// Reads never mutate state (prior_hits is the only, explicit, tally).
  [[nodiscard]] sim::SimTime predict(const std::string& function) const;
  /// Worker-qualified prediction: the (function, worker) warm EWMA when
  /// per_worker is on and that pair has history; otherwise identical to
  /// the global predict() (same value, same prior_hits accounting).
  [[nodiscard]] sim::SimTime predict(const std::string& function,
                                     std::uint32_t worker) const;
  /// Prediction for a cold execution (cold EWMA, falling back like
  /// predict()). The cold-start *overhead* is config().cold_overhead.
  [[nodiscard]] sim::SimTime predict_cold(const std::string& function) const;
  /// Worker-qualified cold prediction (see predict(function, worker)).
  [[nodiscard]] sim::SimTime predict_cold(const std::string& function,
                                          std::uint32_t worker) const;
  /// Tail estimate from the quantile sketch; predict() with no samples.
  [[nodiscard]] sim::SimTime predict_quantile(const std::string& function,
                                              double q) const;
  /// EWMA of |sample - mean| for the warm model (0 with no history):
  /// a dispersion signal for deadline classification.
  [[nodiscard]] sim::SimTime deviation(const std::string& function) const;

  [[nodiscard]] bool seen(const std::string& function) const {
    return models_.find(function) != models_.end();
  }
  [[nodiscard]] std::uint64_t observations(const std::string& function) const;
  [[nodiscard]] std::size_t tracked_functions() const {
    return models_.size();
  }
  [[nodiscard]] const EstimatorConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t observations{0};
    std::uint64_t cold_observations{0};
    /// predict() calls answered by the never-seen prior.
    mutable std::uint64_t prior_hits{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Ewma {
    double mean{0};
    double abs_dev{0};
    std::uint64_t count{0};

    void fold(double sample, double alpha);
  };

  struct WorkerEwmas {
    Ewma warm;
    Ewma cold;
  };

  struct Model {
    Ewma warm;
    Ewma cold;
    QuantileSketch sketch;
    /// Populated only when EstimatorConfig::per_worker is set.
    std::unordered_map<std::uint32_t, WorkerEwmas> per_worker;
  };

  EstimatorConfig config_;
  std::unordered_map<std::string, Model> models_;
  Stats stats_;
};

}  // namespace hpcwhisk::sched
