#pragma once
// Per-worker expected-backlog accounting: the "state" half of the
// data-driven scheduler. Every outstanding call carries one charge — the
// predicted remaining work the worker still owes it — and the ledger
// guarantees by construction that a worker's backlog is exactly the sum
// of the charges currently attached to it: charges are integer ticks, so
// add/remove round-trips are exact and the leak test can assert == 0
// after arbitrary reroute/kill interleavings.
//
// The controller drives the transitions:
//   assign   submit routed the call to a worker           (+charge)
//   move     the call started executing somewhere else    (charge moves)
//   release  terminal state, or requeued to the fast lane (-charge)
//   forget   the worker vanished (hard kill): drop everything it held —
//            rescued calls re-charge at their next assign/move.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hpcwhisk::sched {

using CallId = std::uint64_t;
using WorkerId = std::uint32_t;

class BacklogLedger {
 public:
  struct Charge {
    WorkerId worker{0};
    std::int64_t cost_ticks{0};       ///< charged to `worker`
    std::int64_t predicted_ticks{0};  ///< the bare duration prediction
  };

  /// Charges `cost_ticks` of predicted work for `call` to `worker`.
  /// A call holds at most one charge: re-assigning an already-charged
  /// call moves it (keeping the *original* prediction for error
  /// reporting, so a reroute does not reset the forecast).
  void assign(CallId call, WorkerId worker, std::int64_t cost_ticks,
              std::int64_t predicted_ticks);

  /// Moves the call's charge to `worker` (no-op if uncharged or already
  /// there). Returns true if a charge moved.
  bool move(CallId call, WorkerId worker);

  /// Removes the call's charge. Returns the charge if one existed.
  [[nodiscard]] bool release(CallId call, Charge* out = nullptr);

  /// Drops every charge attached to `worker` (hard-kill path). Returns
  /// how many charges were dropped.
  std::size_t forget_worker(WorkerId worker);

  /// Predicted outstanding work on `worker`, in ticks (>= 0).
  [[nodiscard]] std::int64_t backlog(WorkerId worker) const;
  /// Sum over all workers, in ticks.
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] std::size_t charge_count() const { return charges_.size(); }
  /// The call's charge, if any (prediction-error reporting).
  [[nodiscard]] const Charge* find(CallId call) const;

 private:
  std::unordered_map<CallId, Charge> charges_;
  std::unordered_map<WorkerId, std::int64_t> backlog_;
  std::int64_t total_{0};
};

}  // namespace hpcwhisk::sched
