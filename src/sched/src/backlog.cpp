#include "hpcwhisk/sched/backlog.hpp"

namespace hpcwhisk::sched {

void BacklogLedger::assign(CallId call, WorkerId worker,
                           std::int64_t cost_ticks,
                           std::int64_t predicted_ticks) {
  const auto it = charges_.find(call);
  if (it != charges_.end()) {
    // Reroute of a still-charged call: move the existing charge.
    backlog_[it->second.worker] -= it->second.cost_ticks;
    total_ -= it->second.cost_ticks;
    it->second.worker = worker;
    it->second.cost_ticks = cost_ticks;
    backlog_[worker] += cost_ticks;
    total_ += cost_ticks;
    return;
  }
  charges_.emplace(call, Charge{worker, cost_ticks, predicted_ticks});
  backlog_[worker] += cost_ticks;
  total_ += cost_ticks;
}

bool BacklogLedger::move(CallId call, WorkerId worker) {
  const auto it = charges_.find(call);
  if (it == charges_.end() || it->second.worker == worker) return false;
  backlog_[it->second.worker] -= it->second.cost_ticks;
  backlog_[worker] += it->second.cost_ticks;
  it->second.worker = worker;
  return true;
}

bool BacklogLedger::release(CallId call, Charge* out) {
  const auto it = charges_.find(call);
  if (it == charges_.end()) return false;
  if (out != nullptr) *out = it->second;
  backlog_[it->second.worker] -= it->second.cost_ticks;
  total_ -= it->second.cost_ticks;
  charges_.erase(it);
  return true;
}

std::size_t BacklogLedger::forget_worker(WorkerId worker) {
  std::size_t dropped = 0;
  for (auto it = charges_.begin(); it != charges_.end();) {
    if (it->second.worker == worker) {
      total_ -= it->second.cost_ticks;
      it = charges_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  backlog_.erase(worker);
  return dropped;
}

std::int64_t BacklogLedger::backlog(WorkerId worker) const {
  const auto it = backlog_.find(worker);
  return it == backlog_.end() ? 0 : it->second;
}

const BacklogLedger::Charge* BacklogLedger::find(CallId call) const {
  const auto it = charges_.find(call);
  return it == charges_.end() ? nullptr : &it->second;
}

}  // namespace hpcwhisk::sched
