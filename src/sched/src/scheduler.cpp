#include "hpcwhisk/sched/scheduler.hpp"

#include <algorithm>

namespace hpcwhisk::sched {

CallScheduler::Cost CallScheduler::cost_at(const std::string& function,
                                           WorkerId worker) const {
  Cost c;
  c.cold = !is_warm(worker, function);
  c.backlog = ledger_.backlog(worker);
  // Worker-qualified predictions: identical to the global model unless
  // per-worker models are enabled and this (function, worker) pair has
  // history of its own.
  if (c.cold) {
    c.predicted = estimator_.predict_cold(function, worker).ticks();
    c.cost = c.backlog + c.predicted + config_.estimator.cold_overhead.ticks();
  } else {
    c.predicted = estimator_.predict(function, worker).ticks();
    c.cost = c.backlog + c.predicted;
  }
  return c;
}

CallScheduler::Decision CallScheduler::finalize(
    const std::string& function, WorkerId worker, const Cost& cost,
    std::size_t candidates, WorkerId runner_up,
    std::int64_t runner_up_cost) {
  Decision d;
  d.worker = worker;
  d.predicted_ticks = cost.predicted;
  d.cost_ticks = cost.predicted + (cost.cold
                                       ? config_.estimator.cold_overhead.ticks()
                                       : std::int64_t{0});
  d.expected_cold = cost.cold;
  d.runner_up = runner_up;
  d.runner_up_cost_ticks = runner_up_cost;
  d.backlog_ticks = cost.backlog;
  d.candidates = static_cast<std::uint32_t>(candidates);
  if (config_.deadline_classes) {
    sim::SimTime metric = estimator_.predict(function);
    if (config_.short_class_deviation_factor > 0.0) {
      // Dispersion guard: high-variance functions must predict well
      // under the bound before they may jump queues.
      metric = metric + sim::SimTime::micros(static_cast<std::int64_t>(
                            config_.short_class_deviation_factor *
                            static_cast<double>(
                                estimator_.deviation(function).ticks())));
    }
    if (metric <= config_.short_class_bound) {
      d.short_class = true;
      ++stats_.short_class;
    }
  }
  ++stats_.decisions;
  if (d.expected_cold) ++stats_.cold_routed;
  return d;
}

CallScheduler::Decision CallScheduler::route_least_expected_work(
    const std::string& function, const std::vector<WorkerId>& workers) {
  WorkerId best = workers.front();
  Cost best_cost = cost_at(function, best);
  // Second-best tracking is explainability bookkeeping only: the chosen
  // worker comes out of exactly the comparison chain this always ran.
  WorkerId second = Decision::kNoRunnerUp;
  std::int64_t second_cost = 0;
  for (std::size_t i = 1; i < workers.size(); ++i) {
    const Cost c = cost_at(function, workers[i]);
    // Strict < keeps the lowest id on exact ties; on a cost tie a warm
    // worker beats a cold one even at a higher id (same expected finish,
    // fewer containers spawned).
    if (c.cost < best_cost.cost ||
        (c.cost == best_cost.cost && best_cost.cold && !c.cold)) {
      second = best;
      second_cost = best_cost.cost;
      best = workers[i];
      best_cost = c;
    } else if (second == Decision::kNoRunnerUp || c.cost < second_cost) {
      second = workers[i];
      second_cost = c.cost;
    }
  }
  return finalize(function, best, best_cost, workers.size(), second,
                  second_cost);
}

CallScheduler::Decision CallScheduler::route_sjf_affinity(
    const std::string& function, const std::vector<WorkerId>& workers,
    std::size_t home_index) {
  home_index %= workers.size();
  const WorkerId home = workers[home_index];
  const Cost home_cost = cost_at(function, home);

  WorkerId best = home;
  Cost best_cost = home_cost;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (i == home_index) continue;
    const Cost c = cost_at(function, workers[i]);
    if (c.cost < best_cost.cost ||
        (c.cost == best_cost.cost && best_cost.cold && !c.cold)) {
      best = workers[i];
      best_cost = c;
    }
  }

  // SJF-flavored escape: leave the warm home only when its excess
  // queueing exceeds a cold start (what an escape risks paying at the
  // destination) plus a duration-proportional term — short calls flee
  // real overload quickly, long calls tolerate proportionally more, and
  // nobody trades a warm home for sub-cold-start noise.
  const double slack =
      config_.sjf_affinity_slack *
          static_cast<double>(std::max<std::int64_t>(home_cost.predicted, 1)) +
      static_cast<double>(config_.estimator.cold_overhead.ticks());
  if (best != home && static_cast<double>(home_cost.cost - best_cost.cost) >
                          slack) {
    ++stats_.affinity_escaped;
    // The rejected alternative is the warm home the call abandoned.
    return finalize(function, best, best_cost, workers.size(), home,
                    home_cost.cost);
  }
  ++stats_.affinity_kept;
  const WorkerId runner_up = best != home ? best : Decision::kNoRunnerUp;
  return finalize(function, home, home_cost, workers.size(), runner_up,
                  best != home ? best_cost.cost : 0);
}

void CallScheduler::on_routed(CallId call, const Decision& decision) {
  ledger_.assign(call, decision.worker, decision.cost_ticks,
                 decision.predicted_ticks);
}

void CallScheduler::on_started(CallId call, WorkerId by,
                               const std::string& function) {
  if (ledger_.find(call) != nullptr) {
    ledger_.move(call, by);
  } else {
    // Charge was dropped (forget_worker after a hard kill) or the call
    // predates the scheduler: re-charge against the executing worker so
    // its in-flight work is visible again.
    const std::int64_t predicted = estimator_.predict(function).ticks();
    ledger_.assign(call, by, predicted, predicted);
    ++stats_.rescue_charges;
  }
  auto& warm = warm_[function];
  const auto it = std::lower_bound(warm.begin(), warm.end(), by);
  if (it == warm.end() || *it != by) warm.insert(it, by);
}

void CallScheduler::on_requeued(CallId call) { (void)ledger_.release(call); }

CallScheduler::Outcome CallScheduler::on_finished(CallId call,
                                                  const std::string& function,
                                                  std::int64_t actual_ticks,
                                                  bool cold_start) {
  return on_finished(call, function, actual_ticks, cold_start,
                     DurationEstimator::kAnyWorker);
}

CallScheduler::Outcome CallScheduler::on_finished(CallId call,
                                                  const std::string& function,
                                                  std::int64_t actual_ticks,
                                                  bool cold_start,
                                                  WorkerId worker) {
  Outcome out;
  BacklogLedger::Charge charge;
  out.had_charge = ledger_.release(call, &charge);
  if (actual_ticks < 0) return out;  // never executed (timeout, 503, kill)
  // Pin the prediction *before* folding the sample in, so the reported
  // error is a genuine forecast error even on the uncharged path.
  out.predicted_ticks = out.had_charge ? charge.predicted_ticks
                                       : estimator_.predict(function).ticks();
  estimator_.observe(function, sim::SimTime::micros(actual_ticks), cold_start,
                     worker);
  out.observed = true;
  out.actual_ticks = actual_ticks;
  out.abs_error_ticks = out.actual_ticks >= out.predicted_ticks
                            ? out.actual_ticks - out.predicted_ticks
                            : out.predicted_ticks - out.actual_ticks;
  ++stats_.error_observations;
  stats_.sum_abs_error_ticks += out.abs_error_ticks;
  return out;
}

void CallScheduler::forget_worker(WorkerId worker) {
  stats_.forgotten += ledger_.forget_worker(worker);
  for (auto& [fn, warm] : warm_) {
    const auto it = std::lower_bound(warm.begin(), warm.end(), worker);
    if (it != warm.end() && *it == worker) warm.erase(it);
  }
}

bool CallScheduler::is_warm(WorkerId worker,
                            const std::string& function) const {
  const auto it = warm_.find(function);
  if (it == warm_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), worker);
}

}  // namespace hpcwhisk::sched
