#include "hpcwhisk/sched/estimator.hpp"

#include <algorithm>
#include <cmath>

namespace hpcwhisk::sched {

// --- QuantileSketch --------------------------------------------------------
// Same bucket geometry as obs::Histogram: octave = floor(log2 v), each
// octave split into kSubBuckets linear slices.

std::size_t QuantileSketch::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // negatives, zeros, NaNs: first bucket
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant in [0.5,1)
  const int octave = std::min(exp - 1, kOctaves - 1);
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets));
  return static_cast<std::size_t>(octave) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double QuantileSketch::bucket_mid(std::size_t idx) {
  const double octave = static_cast<double>(idx / kSubBuckets);
  const double sub = static_cast<double>(idx % kSubBuckets);
  const double lo =
      std::ldexp(1.0 + sub / kSubBuckets, static_cast<int>(octave));
  const double hi =
      std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, static_cast<int>(octave));
  return (lo + hi) / 2.0;
}

void QuantileSketch::observe(double v) {
  ++buckets_[bucket_index(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1,
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kOctaves) * kSubBuckets;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::clamp(bucket_mid(i), min_, max_);
  }
  return max_;
}

// --- DurationEstimator -----------------------------------------------------

void DurationEstimator::Ewma::fold(double sample, double alpha) {
  if (count == 0) {
    mean = sample;
    abs_dev = 0.0;
  } else {
    const double err = sample - mean;
    mean += alpha * err;
    abs_dev += alpha * (std::abs(err) - abs_dev);
  }
  ++count;
}

void DurationEstimator::observe(const std::string& function,
                                sim::SimTime duration, bool cold_start) {
  observe(function, duration, cold_start, kAnyWorker);
}

void DurationEstimator::observe(const std::string& function,
                                sim::SimTime duration, bool cold_start,
                                std::uint32_t worker) {
  Model& model = models_[function];
  const auto sample = static_cast<double>(duration.ticks());
  (cold_start ? model.cold : model.warm).fold(sample, config_.alpha);
  model.sketch.observe(sample);
  if (config_.per_worker && worker != kAnyWorker) {
    WorkerEwmas& w = model.per_worker[worker];
    (cold_start ? w.cold : w.warm).fold(sample, config_.alpha);
  }
  ++stats_.observations;
  if (cold_start) ++stats_.cold_observations;
}

sim::SimTime DurationEstimator::predict(const std::string& function) const {
  const auto it = models_.find(function);
  if (it == models_.end()) {
    ++stats_.prior_hits;
    return config_.prior;
  }
  const Model& m = it->second;
  const Ewma& e = m.warm.count > 0 ? m.warm : m.cold;
  return sim::SimTime::micros(static_cast<std::int64_t>(e.mean));
}

sim::SimTime DurationEstimator::predict(const std::string& function,
                                        std::uint32_t worker) const {
  if (!config_.per_worker || worker == kAnyWorker) return predict(function);
  const auto it = models_.find(function);
  if (it == models_.end()) {
    ++stats_.prior_hits;
    return config_.prior;
  }
  const Model& m = it->second;
  const auto w = m.per_worker.find(worker);
  if (w != m.per_worker.end() && w->second.warm.count > 0)
    return sim::SimTime::micros(
        static_cast<std::int64_t>(w->second.warm.mean));
  const Ewma& e = m.warm.count > 0 ? m.warm : m.cold;
  return sim::SimTime::micros(static_cast<std::int64_t>(e.mean));
}

sim::SimTime DurationEstimator::predict_cold(
    const std::string& function) const {
  const auto it = models_.find(function);
  if (it == models_.end()) {
    ++stats_.prior_hits;
    return config_.prior;
  }
  const Model& m = it->second;
  const Ewma& e = m.cold.count > 0 ? m.cold : m.warm;
  return sim::SimTime::micros(static_cast<std::int64_t>(e.mean));
}

sim::SimTime DurationEstimator::predict_cold(const std::string& function,
                                             std::uint32_t worker) const {
  if (!config_.per_worker || worker == kAnyWorker)
    return predict_cold(function);
  const auto it = models_.find(function);
  if (it == models_.end()) {
    ++stats_.prior_hits;
    return config_.prior;
  }
  const Model& m = it->second;
  const auto w = m.per_worker.find(worker);
  if (w != m.per_worker.end() && w->second.cold.count > 0)
    return sim::SimTime::micros(
        static_cast<std::int64_t>(w->second.cold.mean));
  const Ewma& e = m.cold.count > 0 ? m.cold : m.warm;
  return sim::SimTime::micros(static_cast<std::int64_t>(e.mean));
}

sim::SimTime DurationEstimator::predict_quantile(const std::string& function,
                                                 double q) const {
  const auto it = models_.find(function);
  if (it == models_.end() || it->second.sketch.count() == 0) {
    return predict(function);
  }
  return sim::SimTime::micros(
      static_cast<std::int64_t>(it->second.sketch.quantile(q)));
}

sim::SimTime DurationEstimator::deviation(const std::string& function) const {
  const auto it = models_.find(function);
  if (it == models_.end()) return sim::SimTime::zero();
  return sim::SimTime::micros(
      static_cast<std::int64_t>(it->second.warm.abs_dev));
}

std::uint64_t DurationEstimator::observations(
    const std::string& function) const {
  const auto it = models_.find(function);
  if (it == models_.end()) return 0;
  return it->second.warm.count + it->second.cold.count;
}

}  // namespace hpcwhisk::sched
