#pragma once
// Named-topic broker. HPC-Whisk uses one topic per invoker plus a single
// global "fast lane" topic that drained invokers re-publish into and that
// every invoker polls before its own topic (Sec. III-C of the paper).

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/mq/topic.hpp"

namespace hpcwhisk::obs {
struct Observability;
}

namespace hpcwhisk::mq {

class Broker {
 public:
  /// Conventional name of the global fast-lane topic.
  static constexpr const char* kFastLane = "fast-lane";

  Broker();

  /// Returns the topic, creating it if absent. The pointer stays valid for
  /// the broker's lifetime (topics are never destroyed, matching Kafka's
  /// durable-topic semantics within a run).
  Topic& topic(const std::string& name);

  /// Returns the topic or nullptr if it was never created.
  [[nodiscard]] Topic* find(const std::string& name);

  Topic& fast_lane() { return *fast_lane_; }

  /// Runs `hook` on every existing topic and on each topic created later
  /// (invoker topics appear dynamically as pilots register). The chaos
  /// engine uses this to install fault filters broker-wide. One hook at a
  /// time; an empty function clears it.
  void set_topic_hook(std::function<void(Topic&)> hook);

  /// Names sorted lexicographically: the underlying map is unordered, so
  /// sorting keeps logs and reports reproducible across platforms.
  [[nodiscard]] std::vector<std::string> topic_names() const;
  [[nodiscard]] std::size_t topic_count() const;

  /// Registers a metrics collector on `obs` that sums every topic's
  /// counters into the mq.* instruments at snapshot time (publishes stay
  /// uninstrumented — the hot path is untouched). `obs` must not outlive
  /// the broker. Null is a no-op.
  void set_observability(obs::Observability* obs);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Topic>> topics_;
  std::function<void(Topic&)> topic_hook_;
  Topic* fast_lane_{nullptr};
};

}  // namespace hpcwhisk::mq
