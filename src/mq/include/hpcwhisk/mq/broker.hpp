#pragma once
// Named-topic broker. HPC-Whisk uses one topic per invoker plus a single
// global "fast lane" topic that drained invokers re-publish into and that
// every invoker polls before its own topic (Sec. III-C of the paper).
//
// Lookup structure: the name map is sharded by name hash, each shard
// behind its own mutex, so concurrent resolution from benchmark worker
// threads never funnels through one broker-wide lock. But the intended
// steady state is cheaper still: components resolve a TopicRef once at
// wiring time (invoker registration) and afterwards publish/consume
// straight through the cached handle — zero string hashing and zero
// broker locking per message. The string-keyed topic() API remains as a
// thin resolve-then-forward wrapper for tests and one-off lookups.
//
// A small directory (its own mutex, strictly after any shard mutex in
// lock order) interns TopicIds, caches the sorted name list, and lets
// the observability collector snapshot the topic set without stalling
// publishes.

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/mq/topic.hpp"

namespace hpcwhisk::obs {
struct Observability;
}

namespace hpcwhisk::mq {

/// Cached topic handle: the broker lookup (name hash + shard lock) is
/// paid once when the ref is resolved; every publish/consume through it
/// afterwards touches only the topic itself. Refs stay valid for the
/// broker's lifetime (topics are never destroyed).
class TopicRef {
 public:
  TopicRef() = default;

  [[nodiscard]] Topic* get() const { return t_; }
  Topic* operator->() const { return t_; }
  Topic& operator*() const { return *t_; }
  [[nodiscard]] explicit operator bool() const { return t_ != nullptr; }
  [[nodiscard]] TopicId id() const { return t_ != nullptr ? t_->id() : TopicId{}; }

 private:
  friend class Broker;
  explicit TopicRef(Topic* t) : t_{t} {}
  Topic* t_{nullptr};
};

class Broker {
 public:
  /// Conventional name of the global fast-lane topic.
  static constexpr const char* kFastLane = "fast-lane";
  static constexpr std::size_t kShardCount = 16;

  Broker();

  /// Resolves (creating if absent) and returns a cached handle. Wiring-
  /// time API: call once per consumer/producer, keep the ref.
  TopicRef resolve(const std::string& name);

  /// Returns the topic, creating it if absent. The pointer stays valid for
  /// the broker's lifetime (topics are never destroyed, matching Kafka's
  /// durable-topic semantics within a run). Thin wrapper over resolve().
  Topic& topic(const std::string& name) { return *resolve(name); }

  /// Returns the topic or nullptr if it was never created.
  [[nodiscard]] Topic* find(const std::string& name);

  /// Resolves an interned id back to its topic; nullptr for invalid or
  /// foreign ids.
  [[nodiscard]] Topic* by_id(TopicId id) const;

  Topic& fast_lane() { return *fast_lane_; }

  /// Runs `hook` on every existing topic and on each topic created later
  /// (invoker topics appear dynamically as pilots register). The chaos
  /// engine uses this to install fault filters broker-wide. One hook at a
  /// time; an empty function clears it.
  void set_topic_hook(std::function<void(Topic&)> hook);

  /// Names sorted lexicographically: the underlying maps are unordered,
  /// so sorting keeps logs and reports reproducible across platforms.
  /// The sorted list is cached and only rebuilt after a topic was
  /// created, so repeated calls (report loops) don't re-sort.
  [[nodiscard]] std::vector<std::string> topic_names() const;
  [[nodiscard]] std::size_t topic_count() const;

  /// Registers a metrics collector on `obs` that sums every topic's
  /// counters into the mq.* instruments at snapshot time (publishes stay
  /// uninstrumented — the hot path is untouched). The collector snapshots
  /// the topic list under the directory lock, then sums counters through
  /// per-topic locks only — no broker-wide lock is held while summing,
  /// so a slow metrics sweep never stalls publishes. `obs` must not
  /// outlive the broker. Null is a no-op.
  void set_observability(obs::Observability* obs);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Topic>> topics;
  };

  [[nodiscard]] Shard& shard_for(const std::string& name) {
    return shards_[std::hash<std::string>{}(name) % kShardCount];
  }
  [[nodiscard]] const Shard& shard_for(const std::string& name) const {
    return const_cast<Broker*>(this)->shard_for(name);
  }

  std::array<Shard, kShardCount> shards_;

  /// Directory: id interning, name cache, hook. Lock order: a shard
  /// mutex may be held when taking dir_mu_ (topic creation), never the
  /// reverse.
  mutable std::mutex dir_mu_;
  std::vector<Topic*> by_id_;
  mutable std::vector<std::string> names_cache_;
  mutable bool names_dirty_{false};
  std::function<void(Topic&)> topic_hook_;
  Topic* fast_lane_{nullptr};
};

}  // namespace hpcwhisk::mq
