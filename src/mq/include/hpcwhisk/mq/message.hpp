#pragma once
// Messages carried by the broker. In OpenWhisk, per-invoker Kafka topics
// carry activation requests; we carry an opaque 64-bit id (the activation
// id) plus a small key/value pair for diagnostics.

#include <cstdint>
#include <string>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::mq {

struct Message {
  /// Application-level id (HPC-Whisk stores the activation id here).
  std::uint64_t id{0};
  /// Routing key (HPC-Whisk stores the function name here).
  std::string key;
  /// First time this message was published to any topic.
  sim::SimTime first_published;
  /// How many times the message has been (re)published — 1 on first
  /// publish, +1 per fast-lane reroute. Diagnoses requeue storms.
  std::uint32_t delivery_count{0};
};

}  // namespace hpcwhisk::mq
