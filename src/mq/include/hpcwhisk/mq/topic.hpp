#pragma once
// A FIFO topic with pull-based consumption, mirroring how OpenWhisk
// invokers consume their individual Kafka topics.
//
// Thread-safe: the simulator itself is single-threaded, but benchmark
// harnesses drive independent brokers from worker threads, so the topic
// guards its queue with a mutex (uncontended locks are cheap).
//
// Hot-path shape: consumers poll far more often than producers publish,
// so the empty case is the common case. approx_empty() answers it with
// one relaxed atomic load — no lock — and poll_into()/poll_one() bail
// out through it before ever touching the mutex. poll_into() appends to
// a caller-owned scratch vector, so a steady-state poll tick performs
// zero allocations.
//
// Fault injection: an optional fault filter intercepts every publish and
// may drop, delay, or duplicate the message — the broker-level failure
// modes an at-least-once pipeline must survive. The filter is consulted
// once per publish; delayed and duplicated copies are delivered through
// an internal path that bypasses it, so a fault decision never cascades.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hpcwhisk/mq/message.hpp"

namespace hpcwhisk::sim {
class Simulation;
}  // namespace hpcwhisk::sim

namespace hpcwhisk::mq {

/// Dense broker-assigned topic handle (interning): stable for the
/// broker's lifetime, resolvable back to the topic without hashing the
/// name. Default-constructed ids are invalid (a topic created outside a
/// broker never gets one).
class TopicId {
 public:
  constexpr TopicId() = default;
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  constexpr bool operator==(const TopicId&) const = default;

 private:
  friend class Broker;
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  constexpr explicit TopicId(std::uint32_t v) : value_{v} {}
  std::uint32_t value_{kInvalid};
};

class Topic {
 public:
  explicit Topic(std::string name) : name_{std::move(name)} {}

  Topic(const Topic&) = delete;
  Topic& operator=(const Topic&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// The broker-assigned intern id; invalid for free-standing topics.
  [[nodiscard]] TopicId id() const { return id_; }

  /// Appends a message to the tail. Stamps first_published on the first
  /// publish and bumps delivery_count. Subject to the fault filter.
  void publish(Message msg, sim::SimTime now);

  /// Like publish(), but enqueues at the *head*: the message preempts
  /// queue position (deadline-class dispatch), never a consumer that has
  /// already pulled. Subject to the fault filter; a fault-delayed copy
  /// loses its front position (it re-enters whenever the delay fires).
  void publish_front(Message msg, sim::SimTime now);

  /// One relaxed atomic load, no lock. Precise whenever publishes and
  /// polls happen on one thread (the simulator); under concurrent
  /// producers a consumer may see a just-published message one poll
  /// late, which pull-based consumption tolerates by construction.
  [[nodiscard]] bool approx_empty() const {
    return approx_size_.load(std::memory_order_relaxed) == 0;
  }

  /// Pops up to `max_count` messages from the head (FIFO), appending to
  /// `out`. Returns the number popped. The empty case returns through
  /// approx_empty() without locking or allocating.
  std::size_t poll_into(std::size_t max_count, std::vector<Message>& out);

  /// Pops up to `max_count` messages from the head (FIFO). Convenience
  /// wrapper over poll_into() that allocates the result vector.
  [[nodiscard]] std::vector<Message> poll(std::size_t max_count);

  /// Pops a single message, if any.
  [[nodiscard]] std::optional<Message> poll_one();

  /// Removes and returns *all* queued messages. Used by the controller to
  /// move a draining invoker's unpulled backlog to the fast-lane topic.
  [[nodiscard]] std::vector<Message> drain();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  // --- Fault injection -----------------------------------------------------

  /// What the fault filter decided for one publish. Default = deliver
  /// normally. `drop` wins over the other fields.
  struct FaultAction {
    bool drop{false};
    /// Extra copies enqueued beyond the original (at-least-once
    /// duplication, e.g. a producer retry after a lost ack).
    std::uint32_t extra_copies{0};
    /// Delivery delay; requires a simulation to schedule against (the
    /// message is delivered whole after the delay, copies included).
    sim::SimTime delay{sim::SimTime::zero()};
  };
  using FaultFilter = std::function<FaultAction(const Message&)>;

  /// Installs (or, with an empty function, removes) the fault filter.
  /// `simulation` is required for delayed delivery; without it, delays
  /// degrade to immediate delivery.
  void set_fault_filter(FaultFilter filter, sim::Simulation* simulation);

  /// Lifetime counters (monotonic).
  struct Counters {
    std::uint64_t published{0};
    std::uint64_t front_published{0};  ///< subset of published
    std::uint64_t consumed{0};
    std::uint64_t drained{0};
    std::uint64_t fault_dropped{0};
    std::uint64_t fault_delayed{0};
    std::uint64_t fault_duplicated{0};  ///< extra copies enqueued
  };
  [[nodiscard]] Counters counters() const;

 private:
  friend class Broker;  ///< assigns id_ at interning time

  /// Enqueues one copy, bypassing the fault filter.
  void deliver(Message msg, sim::SimTime now);
  void deliver_front(Message msg, sim::SimTime now);

  const std::string name_;
  TopicId id_;
  mutable std::mutex mu_;
  std::deque<Message> queue_;
  /// Mirrors queue_.size(); written under mu_, readable without it.
  std::atomic<std::size_t> approx_size_{0};
  FaultFilter fault_filter_;
  sim::Simulation* sim_{nullptr};
  Counters counters_;
};

}  // namespace hpcwhisk::mq
