#pragma once
// A FIFO topic with pull-based consumption, mirroring how OpenWhisk
// invokers consume their individual Kafka topics.
//
// Thread-safe: the simulator itself is single-threaded, but benchmark
// harnesses drive independent brokers from worker threads, so the topic
// guards its queue with a mutex (uncontended locks are cheap).

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hpcwhisk/mq/message.hpp"

namespace hpcwhisk::mq {

class Topic {
 public:
  explicit Topic(std::string name) : name_{std::move(name)} {}

  Topic(const Topic&) = delete;
  Topic& operator=(const Topic&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Appends a message to the tail. Stamps first_published on the first
  /// publish and bumps delivery_count.
  void publish(Message msg, sim::SimTime now);

  /// Pops up to `max_count` messages from the head (FIFO).
  [[nodiscard]] std::vector<Message> poll(std::size_t max_count);

  /// Pops a single message, if any.
  [[nodiscard]] std::optional<Message> poll_one();

  /// Removes and returns *all* queued messages. Used by the controller to
  /// move a draining invoker's unpulled backlog to the fast-lane topic.
  [[nodiscard]] std::vector<Message> drain();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Lifetime counters (monotonic).
  struct Counters {
    std::uint64_t published{0};
    std::uint64_t consumed{0};
    std::uint64_t drained{0};
  };
  [[nodiscard]] Counters counters() const;

 private:
  const std::string name_;
  mutable std::mutex mu_;
  std::deque<Message> queue_;
  Counters counters_;
};

}  // namespace hpcwhisk::mq
