#pragma once
// Offset-based, append-only message log with consumer groups — the
// full-fidelity Kafka-topic model.
//
// The HPC-Whisk protocols only need the destructive pull-queue view
// (mq::Topic): the invoker owns its topic exclusively and messages are
// explicitly re-published on hand-off. Log exists for the use cases
// Topic deliberately omits — replay, multiple independent consumer
// groups, committed offsets, and lag monitoring — and is tested to the
// same standard.

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/mq/message.hpp"

namespace hpcwhisk::mq {

using Offset = std::uint64_t;

class Log {
 public:
  explicit Log(std::string name) : name_{std::move(name)} {}

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Appends a message; returns its offset (monotonic from 0).
  Offset append(Message msg, sim::SimTime now);

  /// Reads up to `max_count` messages starting at `from` (inclusive),
  /// without consuming anything. Offsets older than the retention floor
  /// are skipped forward.
  [[nodiscard]] std::vector<Message> read(Offset from,
                                          std::size_t max_count) const;

  // --- Consumer groups ----------------------------------------------------
  // Each group holds one committed offset: the next offset it will read.
  // poll() reads from the committed position WITHOUT advancing it;
  // commit() advances. (At-least-once consumption: crash between poll
  // and commit re-delivers.)

  /// Creates the group positioned at the current end (only new messages)
  /// or at the retention floor. No-op if the group exists.
  void create_group(const std::string& group, bool from_beginning = false);

  [[nodiscard]] std::vector<Message> poll(const std::string& group,
                                          std::size_t max_count) const;

  /// Advances the group's committed offset to `next` (must not exceed
  /// end_offset; must not move backwards unless `allow_rewind`).
  void commit(const std::string& group, Offset next,
              bool allow_rewind = false);

  /// Messages between the group's committed offset and the log end.
  [[nodiscard]] std::uint64_t lag(const std::string& group) const;

  [[nodiscard]] Offset committed(const std::string& group) const;

  // --- Retention -----------------------------------------------------------

  /// Discards messages below `floor` (committed offsets are clamped up).
  void trim(Offset floor);

  [[nodiscard]] Offset begin_offset() const;
  [[nodiscard]] Offset end_offset() const;
  [[nodiscard]] std::size_t size() const;

 private:
  [[nodiscard]] const Offset* find_group(const std::string& group) const;

  const std::string name_;
  mutable std::mutex mu_;
  std::deque<Message> entries_;  // entries_[i] has offset base_ + i
  Offset base_{0};
  std::unordered_map<std::string, Offset> groups_;
};

}  // namespace hpcwhisk::mq
