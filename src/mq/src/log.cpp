#include "hpcwhisk/mq/log.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcwhisk::mq {

Offset Log::append(Message msg, sim::SimTime now) {
  std::lock_guard lock{mu_};
  if (msg.delivery_count == 0) msg.first_published = now;
  ++msg.delivery_count;
  entries_.push_back(std::move(msg));
  return base_ + entries_.size() - 1;
}

std::vector<Message> Log::read(Offset from, std::size_t max_count) const {
  std::lock_guard lock{mu_};
  const Offset start = std::max(from, base_);
  const Offset end = base_ + entries_.size();
  std::vector<Message> out;
  for (Offset o = start; o < end && out.size() < max_count; ++o) {
    out.push_back(entries_[o - base_]);
  }
  return out;
}

void Log::create_group(const std::string& group, bool from_beginning) {
  std::lock_guard lock{mu_};
  const Offset pos = from_beginning ? base_ : base_ + entries_.size();
  groups_.emplace(group, pos);
}

const Offset* Log::find_group(const std::string& group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : &it->second;
}

std::vector<Message> Log::poll(const std::string& group,
                               std::size_t max_count) const {
  Offset from;
  {
    std::lock_guard lock{mu_};
    const Offset* pos = find_group(group);
    if (pos == nullptr)
      throw std::out_of_range("Log::poll: unknown group '" + group + "'");
    from = *pos;
  }
  return read(from, max_count);
}

void Log::commit(const std::string& group, Offset next, bool allow_rewind) {
  std::lock_guard lock{mu_};
  const auto it = groups_.find(group);
  if (it == groups_.end())
    throw std::out_of_range("Log::commit: unknown group '" + group + "'");
  if (next > base_ + entries_.size())
    throw std::invalid_argument("Log::commit: offset beyond log end");
  if (next < it->second && !allow_rewind)
    throw std::invalid_argument("Log::commit: offset moves backwards");
  it->second = std::max(next, base_);
}

std::uint64_t Log::lag(const std::string& group) const {
  std::lock_guard lock{mu_};
  const Offset* pos = find_group(group);
  if (pos == nullptr)
    throw std::out_of_range("Log::lag: unknown group '" + group + "'");
  const Offset end = base_ + entries_.size();
  return end - std::max(*pos, base_);
}

Offset Log::committed(const std::string& group) const {
  std::lock_guard lock{mu_};
  const Offset* pos = find_group(group);
  if (pos == nullptr)
    throw std::out_of_range("Log::committed: unknown group '" + group + "'");
  return *pos;
}

void Log::trim(Offset floor) {
  std::lock_guard lock{mu_};
  const Offset end = base_ + entries_.size();
  const Offset new_base = std::min(std::max(floor, base_), end);
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<std::ptrdiff_t>(new_base - base_));
  base_ = new_base;
  for (auto& [group, pos] : groups_) pos = std::max(pos, base_);
}

Offset Log::begin_offset() const {
  std::lock_guard lock{mu_};
  return base_;
}

Offset Log::end_offset() const {
  std::lock_guard lock{mu_};
  return base_ + entries_.size();
}

std::size_t Log::size() const {
  std::lock_guard lock{mu_};
  return entries_.size();
}

}  // namespace hpcwhisk::mq
