#include "hpcwhisk/mq/topic.hpp"

#include "hpcwhisk/sim/simulation.hpp"

namespace hpcwhisk::mq {

void Topic::publish(Message msg, sim::SimTime now) {
  FaultAction action;
  bool filtered = false;
  {
    std::lock_guard lock{mu_};
    if (fault_filter_) {
      action = fault_filter_(msg);
      filtered = true;
    }
  }
  if (!filtered) {
    deliver(std::move(msg), now);
    return;
  }
  if (action.drop) {
    std::lock_guard lock{mu_};
    ++counters_.fault_dropped;
    return;
  }
  const std::uint32_t copies = 1 + action.extra_copies;
  {
    std::lock_guard lock{mu_};
    counters_.fault_duplicated += action.extra_copies;
    if (action.delay > sim::SimTime::zero() && sim_ != nullptr)
      ++counters_.fault_delayed;
  }
  if (action.delay > sim::SimTime::zero() && sim_ != nullptr) {
    sim::Simulation* simulation = sim_;
    for (std::uint32_t i = 0; i < copies; ++i) {
      simulation->after(action.delay, [this, simulation, msg] {
        deliver(msg, simulation->now());
      });
    }
    return;
  }
  for (std::uint32_t i = 0; i < copies; ++i) deliver(msg, now);
}

void Topic::publish_front(Message msg, sim::SimTime now) {
  FaultAction action;
  bool filtered = false;
  {
    std::lock_guard lock{mu_};
    if (fault_filter_) {
      action = fault_filter_(msg);
      filtered = true;
    }
  }
  if (!filtered) {
    deliver_front(std::move(msg), now);
    return;
  }
  if (action.drop) {
    std::lock_guard lock{mu_};
    ++counters_.fault_dropped;
    return;
  }
  const std::uint32_t copies = 1 + action.extra_copies;
  {
    std::lock_guard lock{mu_};
    counters_.fault_duplicated += action.extra_copies;
    if (action.delay > sim::SimTime::zero() && sim_ != nullptr)
      ++counters_.fault_delayed;
  }
  if (action.delay > sim::SimTime::zero() && sim_ != nullptr) {
    // A delayed short-class message forfeits its head position: it joins
    // the tail when the delay fires, like any late arrival.
    sim::Simulation* simulation = sim_;
    for (std::uint32_t i = 0; i < copies; ++i) {
      simulation->after(action.delay, [this, simulation, msg] {
        deliver(msg, simulation->now());
      });
    }
    return;
  }
  for (std::uint32_t i = 0; i < copies; ++i) deliver_front(msg, now);
}

void Topic::deliver(Message msg, sim::SimTime now) {
  std::lock_guard lock{mu_};
  if (msg.delivery_count == 0) msg.first_published = now;
  ++msg.delivery_count;
  queue_.push_back(std::move(msg));
  approx_size_.store(queue_.size(), std::memory_order_relaxed);
  ++counters_.published;
}

void Topic::deliver_front(Message msg, sim::SimTime now) {
  std::lock_guard lock{mu_};
  if (msg.delivery_count == 0) msg.first_published = now;
  ++msg.delivery_count;
  queue_.push_front(std::move(msg));
  approx_size_.store(queue_.size(), std::memory_order_relaxed);
  ++counters_.published;
  ++counters_.front_published;
}

void Topic::set_fault_filter(FaultFilter filter, sim::Simulation* simulation) {
  std::lock_guard lock{mu_};
  fault_filter_ = std::move(filter);
  sim_ = simulation;
}

std::size_t Topic::poll_into(std::size_t max_count, std::vector<Message>& out) {
  if (approx_empty()) return 0;  // steady state: no lock, no alloc
  std::lock_guard lock{mu_};
  const std::size_t n = std::min(max_count, queue_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  approx_size_.store(queue_.size(), std::memory_order_relaxed);
  counters_.consumed += n;
  return n;
}

std::vector<Message> Topic::poll(std::size_t max_count) {
  std::vector<Message> out;
  (void)poll_into(max_count, out);
  return out;
}

std::optional<Message> Topic::poll_one() {
  if (approx_empty()) return std::nullopt;
  std::lock_guard lock{mu_};
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  approx_size_.store(queue_.size(), std::memory_order_relaxed);
  ++counters_.consumed;
  return m;
}

std::vector<Message> Topic::drain() {
  std::lock_guard lock{mu_};
  std::vector<Message> out{std::make_move_iterator(queue_.begin()),
                           std::make_move_iterator(queue_.end())};
  counters_.drained += out.size();
  queue_.clear();
  approx_size_.store(0, std::memory_order_relaxed);
  return out;
}

std::size_t Topic::size() const {
  std::lock_guard lock{mu_};
  return queue_.size();
}

Topic::Counters Topic::counters() const {
  std::lock_guard lock{mu_};
  return counters_;
}

}  // namespace hpcwhisk::mq
