#include "hpcwhisk/mq/topic.hpp"

namespace hpcwhisk::mq {

void Topic::publish(Message msg, sim::SimTime now) {
  std::lock_guard lock{mu_};
  if (msg.delivery_count == 0) msg.first_published = now;
  ++msg.delivery_count;
  queue_.push_back(std::move(msg));
  ++counters_.published;
}

std::vector<Message> Topic::poll(std::size_t max_count) {
  std::lock_guard lock{mu_};
  std::vector<Message> out;
  const std::size_t n = std::min(max_count, queue_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  counters_.consumed += n;
  return out;
}

std::optional<Message> Topic::poll_one() {
  std::lock_guard lock{mu_};
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  ++counters_.consumed;
  return m;
}

std::vector<Message> Topic::drain() {
  std::lock_guard lock{mu_};
  std::vector<Message> out{std::make_move_iterator(queue_.begin()),
                           std::make_move_iterator(queue_.end())};
  counters_.drained += out.size();
  queue_.clear();
  return out;
}

std::size_t Topic::size() const {
  std::lock_guard lock{mu_};
  return queue_.size();
}

Topic::Counters Topic::counters() const {
  std::lock_guard lock{mu_};
  return counters_;
}

}  // namespace hpcwhisk::mq
