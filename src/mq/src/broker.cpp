#include "hpcwhisk/mq/broker.hpp"

namespace hpcwhisk::mq {

Broker::Broker() { fast_lane_ = &topic(kFastLane); }

Topic& Broker::topic(const std::string& name) {
  std::lock_guard lock{mu_};
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    it = topics_.emplace(name, std::make_unique<Topic>(name)).first;
  }
  return *it->second;
}

Topic* Broker::find(const std::string& name) {
  std::lock_guard lock{mu_};
  const auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Broker::topic_names() const {
  std::lock_guard lock{mu_};
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, _] : topics_) names.push_back(name);
  return names;
}

std::size_t Broker::topic_count() const {
  std::lock_guard lock{mu_};
  return topics_.size();
}

}  // namespace hpcwhisk::mq
