#include "hpcwhisk/mq/broker.hpp"

#include <algorithm>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::mq {

Broker::Broker() { fast_lane_ = &topic(kFastLane); }

Topic& Broker::topic(const std::string& name) {
  Topic* created = nullptr;
  Topic* result = nullptr;
  {
    std::lock_guard lock{mu_};
    auto it = topics_.find(name);
    if (it == topics_.end()) {
      it = topics_.emplace(name, std::make_unique<Topic>(name)).first;
      created = it->second.get();
    }
    result = it->second.get();
  }
  // The hook runs outside the broker lock so it may take the topic's own.
  if (created != nullptr && topic_hook_) topic_hook_(*created);
  return *result;
}

Topic* Broker::find(const std::string& name) {
  std::lock_guard lock{mu_};
  const auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second.get();
}

void Broker::set_topic_hook(std::function<void(Topic&)> hook) {
  std::vector<Topic*> existing;
  {
    std::lock_guard lock{mu_};
    topic_hook_ = std::move(hook);
    if (!topic_hook_) return;
    existing.reserve(topics_.size());
    for (const auto& [name, t] : topics_) existing.push_back(t.get());
  }
  for (Topic* t : existing) topic_hook_(*t);
}

std::vector<std::string> Broker::topic_names() const {
  std::lock_guard lock{mu_};
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, _] : topics_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::size_t Broker::topic_count() const {
  std::lock_guard lock{mu_};
  return topics_.size();
}

void Broker::set_observability(obs::Observability* obs) {
  HW_OBS_IF(obs) {
    obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      Topic::Counters total;
      Topic::Counters fast;
      {
        std::lock_guard lock{mu_};
        for (const auto& [name, t] : topics_) {
          const Topic::Counters c = t->counters();
          total.published += c.published;
          total.consumed += c.consumed;
          total.drained += c.drained;
          total.fault_dropped += c.fault_dropped;
          total.fault_delayed += c.fault_delayed;
          total.fault_duplicated += c.fault_duplicated;
          if (t.get() == fast_lane_) fast = c;
        }
      }
      m.counter("mq.published").set(total.published);
      m.counter("mq.consumed").set(total.consumed);
      m.counter("mq.drained").set(total.drained);
      m.counter("mq.fault_dropped").set(total.fault_dropped);
      m.counter("mq.fault_delayed").set(total.fault_delayed);
      m.counter("mq.fault_duplicated").set(total.fault_duplicated);
      m.counter("mq.fast_lane.published").set(fast.published);
      m.counter("mq.fast_lane.consumed").set(fast.consumed);
      m.gauge("mq.topics").set(static_cast<double>(topics_.size()));
    });
  }
}

}  // namespace hpcwhisk::mq
