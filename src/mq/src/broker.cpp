#include "hpcwhisk/mq/broker.hpp"

#include <algorithm>

namespace hpcwhisk::mq {

Broker::Broker() { fast_lane_ = &topic(kFastLane); }

Topic& Broker::topic(const std::string& name) {
  Topic* created = nullptr;
  Topic* result = nullptr;
  {
    std::lock_guard lock{mu_};
    auto it = topics_.find(name);
    if (it == topics_.end()) {
      it = topics_.emplace(name, std::make_unique<Topic>(name)).first;
      created = it->second.get();
    }
    result = it->second.get();
  }
  // The hook runs outside the broker lock so it may take the topic's own.
  if (created != nullptr && topic_hook_) topic_hook_(*created);
  return *result;
}

Topic* Broker::find(const std::string& name) {
  std::lock_guard lock{mu_};
  const auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second.get();
}

void Broker::set_topic_hook(std::function<void(Topic&)> hook) {
  std::vector<Topic*> existing;
  {
    std::lock_guard lock{mu_};
    topic_hook_ = std::move(hook);
    if (!topic_hook_) return;
    existing.reserve(topics_.size());
    for (const auto& [name, t] : topics_) existing.push_back(t.get());
  }
  for (Topic* t : existing) topic_hook_(*t);
}

std::vector<std::string> Broker::topic_names() const {
  std::lock_guard lock{mu_};
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, _] : topics_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::size_t Broker::topic_count() const {
  std::lock_guard lock{mu_};
  return topics_.size();
}

}  // namespace hpcwhisk::mq
