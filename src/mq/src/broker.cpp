#include "hpcwhisk/mq/broker.hpp"

#include <algorithm>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::mq {

Broker::Broker() { fast_lane_ = resolve(kFastLane).get(); }

TopicRef Broker::resolve(const std::string& name) {
  Shard& sh = shard_for(name);
  Topic* created = nullptr;
  Topic* result = nullptr;
  std::function<void(Topic&)> hook;
  {
    std::lock_guard lock{sh.mu};
    auto it = sh.topics.find(name);
    if (it == sh.topics.end()) {
      it = sh.topics.emplace(name, std::make_unique<Topic>(name)).first;
      created = it->second.get();
      // Intern under the directory lock (shard -> dir order, never the
      // reverse): creation is rare, so the nested lock is off the hot
      // path by construction.
      std::lock_guard dir{dir_mu_};
      created->id_ = TopicId{static_cast<std::uint32_t>(by_id_.size())};
      by_id_.push_back(created);
      names_dirty_ = true;
      hook = topic_hook_;
    }
    result = it->second.get();
  }
  // The hook runs outside all broker locks so it may take the topic's own.
  if (created != nullptr && hook) hook(*created);
  return TopicRef{result};
}

Topic* Broker::find(const std::string& name) {
  const Shard& sh = shard_for(name);
  std::lock_guard lock{sh.mu};
  const auto it = sh.topics.find(name);
  return it == sh.topics.end() ? nullptr : it->second.get();
}

Topic* Broker::by_id(TopicId id) const {
  std::lock_guard lock{dir_mu_};
  if (!id.valid() || id.value() >= by_id_.size()) return nullptr;
  return by_id_[id.value()];
}

void Broker::set_topic_hook(std::function<void(Topic&)> hook) {
  std::vector<Topic*> existing;
  {
    std::lock_guard lock{dir_mu_};
    topic_hook_ = std::move(hook);
    if (!topic_hook_) return;
    existing = by_id_;
  }
  for (Topic* t : existing) topic_hook_(*t);
}

std::vector<std::string> Broker::topic_names() const {
  std::lock_guard lock{dir_mu_};
  if (names_dirty_) {
    names_cache_.clear();
    names_cache_.reserve(by_id_.size());
    for (const Topic* t : by_id_) names_cache_.push_back(t->name());
    std::sort(names_cache_.begin(), names_cache_.end());
    names_dirty_ = false;
  }
  return names_cache_;
}

std::size_t Broker::topic_count() const {
  std::lock_guard lock{dir_mu_};
  return by_id_.size();
}

void Broker::set_observability(obs::Observability* obs) {
  HW_OBS_IF(obs) {
    obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      // Snapshot the topic set under the directory lock, sum outside it:
      // each counters() call takes only that topic's mutex, so publishes
      // to other topics (and resolution on every shard) proceed
      // concurrently with the sweep.
      std::vector<Topic*> snapshot;
      Topic* fast_ptr = nullptr;
      {
        std::lock_guard lock{dir_mu_};
        snapshot = by_id_;
        fast_ptr = fast_lane_;
      }
      Topic::Counters total;
      Topic::Counters fast;
      for (const Topic* t : snapshot) {
        const Topic::Counters c = t->counters();
        total.published += c.published;
        total.consumed += c.consumed;
        total.drained += c.drained;
        total.fault_dropped += c.fault_dropped;
        total.fault_delayed += c.fault_delayed;
        total.fault_duplicated += c.fault_duplicated;
        if (t == fast_ptr) fast = c;
      }
      m.counter("mq.published").set(total.published);
      m.counter("mq.consumed").set(total.consumed);
      m.counter("mq.drained").set(total.drained);
      m.counter("mq.fault_dropped").set(total.fault_dropped);
      m.counter("mq.fault_delayed").set(total.fault_delayed);
      m.counter("mq.fault_duplicated").set(total.fault_duplicated);
      m.counter("mq.fast_lane.published").set(fast.published);
      m.counter("mq.fast_lane.consumed").set(fast.consumed);
      m.gauge("mq.topics").set(static_cast<double>(snapshot.size()));
    });
  }
}

}  // namespace hpcwhisk::mq
