#include "hpcwhisk/check/simcheck.hpp"

#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <utility>

#include "hpcwhisk/check/repro.hpp"
#include "hpcwhisk/check/runner.hpp"
#include "hpcwhisk/check/shrink.hpp"
#include "hpcwhisk/exec/parallel_trials.hpp"

namespace hpcwhisk::check {
namespace {

std::string hash_string(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, hash);
  return buf;
}

}  // namespace

CheckResult check_scenario(const ScenarioSpec& spec,
                           const InvariantSuite& suite,
                           const CheckOptions& opts) {
  const RunObservation obs = run_scenario(spec);
  CheckResult result;
  result.violations = suite.run(spec, obs);
  result.decision_hash = obs.decision_hash;
  if (opts.replay_check) {
    const RunObservation replay = run_scenario(spec);
    result.replayed = true;
    result.replay_hash = replay.decision_hash;
    if (replay.decision_hash != obs.decision_hash) {
      result.violations.push_back(
          {"replay-determinism",
           "decision-log hash diverged across two runs of the same spec: " +
               hash_string(obs.decision_hash) + " vs " +
               hash_string(replay.decision_hash)});
    }
  }
  return result;
}

CampaignResult run_campaign(const CampaignOptions& options,
                            const InvariantSuite& suite,
                            std::ostream& progress) {
  std::vector<std::uint64_t> seeds(options.seeds);
  std::iota(seeds.begin(), seeds.end(), options.seed_base);

  CampaignResult campaign;
  campaign.outcomes = exec::parallel_trials(
      seeds,
      [&](const std::uint64_t seed, std::ostream& out) {
        SeedOutcome outcome;
        outcome.seed = seed;
        outcome.spec = ScenarioSpec::sample(seed, options.sample);
        CheckOptions copts;
        copts.replay_check = options.replay_check;
        outcome.check = check_scenario(outcome.spec, suite, copts);
        if (outcome.check.ok()) {
          out << "seed " << seed << ": ok "
              << hash_string(outcome.check.decision_hash) << " ("
              << outcome.spec.summary() << ")\n";
          return outcome;
        }
        const Violation& first = outcome.check.violations.front();
        out << "seed " << seed << ": FAIL [" << first.invariant << "] "
            << first.message << " (" << outcome.spec.summary() << ")\n";

        ScenarioSpec repro_spec = outcome.spec;
        if (options.shrink) {
          ShrinkOptions sopts;
          sopts.max_attempts = options.shrink_budget;
          ShrinkResult shrunk =
              shrink(outcome.spec, first.invariant, suite, sopts);
          outcome.shrunk_valid = true;
          outcome.shrunk = shrunk.spec;
          outcome.shrink_attempts = shrunk.attempts;
          repro_spec = shrunk.spec;
          out << "seed " << seed << ": shrunk to " << repro_spec.elements()
              << " elements in " << shrunk.attempts << " runs ("
              << repro_spec.summary() << ")\n";
        }
        // One more run of the repro spec pins its decision hash (the
        // shrinker verified it still violates `first.invariant`).
        const RunObservation final_obs = run_scenario(repro_spec);
        outcome.shrunk_hash = final_obs.decision_hash;
        const std::vector<Violation> final_violations =
            suite.run(repro_spec, final_obs);
        Repro repro;
        repro.invariant = first.invariant;
        repro.message = final_violations.empty()
                            ? first.message
                            : final_violations.front().message;
        repro.decision_hash = final_obs.decision_hash;
        repro.spec = repro_spec;
        outcome.repro_json = write_repro(repro);
        return outcome;
      },
      options.jobs, progress);

  for (const SeedOutcome& o : campaign.outcomes) {
    if (!o.check.ok()) ++campaign.failures;
  }
  return campaign;
}

}  // namespace hpcwhisk::check
