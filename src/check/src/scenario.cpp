#include "hpcwhisk/check/scenario.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "hpcwhisk/sim/rng.hpp"

namespace hpcwhisk::check {

const char* to_string(BugPlant p) {
  switch (p) {
    case BugPlant::kNone: return "none";
    case BugPlant::kTruncateGrace: return "truncate-grace";
    case BugPlant::kTresOvercommit: return "tres-overcommit";
    case BugPlant::kReservationIgnored: return "reservation-ignored";
  }
  return "?";
}

BugPlant bug_plant_from_string(std::string_view name) {
  if (name == "none") return BugPlant::kNone;
  if (name == "truncate-grace") return BugPlant::kTruncateGrace;
  if (name == "tres-overcommit") return BugPlant::kTresOvercommit;
  if (name == "reservation-ignored") return BugPlant::kReservationIgnored;
  throw std::invalid_argument("unknown bug plant: " + std::string{name});
}

ScenarioSpec ScenarioSpec::sample(std::uint64_t seed,
                                  const SampleOptions& options) {
  // Draw order is part of the repro contract: new fields must append
  // draws, never reorder them, or existing seeds change meaning.
  sim::Rng rng{seed * 0x9E3779B97F4A7C15ULL + 0x5D1CC3ULL};
  ScenarioSpec s;
  s.seed = seed;
  s.plant = options.plant;
  s.nodes = static_cast<std::uint32_t>(
      rng.uniform_int(options.min_nodes, options.max_nodes));
  s.clusters = 1;
  if (options.max_clusters > 1 && rng.bernoulli(options.fed_probability)) {
    s.clusters =
        static_cast<std::uint32_t>(rng.uniform_int(2, options.max_clusters));
  }
  s.supply = rng.bernoulli(0.5) ? core::SupplyModel::kFib
                                : core::SupplyModel::kVar;
  s.length_set = rng.bernoulli(0.5) ? "A1" : "C1";
  s.fib_per_length = static_cast<std::size_t>(rng.uniform_int(2, 4));
  s.horizon = sim::SimTime::minutes(
      static_cast<double>(rng.uniform_int(
          static_cast<std::int64_t>(options.min_horizon_minutes),
          static_cast<std::int64_t>(options.max_horizon_minutes))));
  s.faas_qps = 0.5 * static_cast<double>(rng.uniform_int(2, 12));
  s.faas_functions = static_cast<std::uint32_t>(rng.uniform_int(4, 16));
  s.faas_duration =
      sim::SimTime::seconds(static_cast<double>(rng.uniform_int(1, 4)));
  s.faas_poisson = rng.bernoulli(0.5);
  s.hpc_backlog = static_cast<std::size_t>(rng.uniform_int(8, 30));

  if (options.chaos) {
    fault::FaultProfile profile;
    profile.start = sim::SimTime::minutes(3);
    profile.horizon = s.horizon - sim::SimTime::minutes(5);
    profile.node_crash_rate_per_hour = 6.0;
    profile.invoker_stall_rate_per_hour = 9.0;
    profile.invoker_crash_rate_per_hour = 6.0;
    profile.mq_fault_rate_per_hour = 9.0;
    profile.mean_outage = sim::SimTime::minutes(2);
    profile.mean_stall = sim::SimTime::seconds(30);
    const fault::FaultPlan plan =
        fault::FaultPlan::sample(profile, rng.next_u64());
    s.faults.reserve(plan.size());
    for (const fault::FaultEvent& ev : plan.events()) {
      ScenarioFault f;
      f.cluster = s.clusters > 1 ? static_cast<std::uint32_t>(rng.uniform_int(
                                       0, s.clusters - 1))
                                 : 0;
      f.event = ev;
      s.faults.push_back(f);
    }
  }

  // Appended draws (route-mode coverage arrived after the first repro
  // format): per the draw-order contract above, new fields draw LAST so
  // every earlier field keeps its pre-existing value for old seeds.
  static constexpr whisk::RouteMode kRouteModes[] = {
      whisk::RouteMode::kHashProbing,
      whisk::RouteMode::kHashOnly,
      whisk::RouteMode::kRoundRobin,
      whisk::RouteMode::kLeastLoaded,
      whisk::RouteMode::kLeastExpectedWork,
      whisk::RouteMode::kSjfAffinity,
  };
  s.route_mode = kRouteModes[rng.uniform_int(0, 5)];
  s.deadline_classes = rng.bernoulli(0.5);
  s.lease_mode = rng.bernoulli(0.3);

  // Slurm fidelity regime (appended after lease_mode). Every draw is
  // unconditional — even when tres_mode comes up false — so the draw
  // count is fixed and future appended fields stay stable for old seeds.
  s.tres_mode = rng.bernoulli(0.45);
  s.node_cpus = static_cast<std::uint32_t>(rng.uniform_int(4, 16));
  s.node_mem_mb =
      static_cast<std::uint32_t>(rng.uniform_int(16, 64)) * 1000u;
  s.pilot_cpus = static_cast<std::uint32_t>(
      rng.uniform_int(1, std::max<std::int64_t>(1, s.node_cpus / 2)));
  // Pilot memory tracks its cpu share of the node, so neither axis is
  // trivially the sole binding constraint.
  s.pilot_mem_mb = s.node_mem_mb / s.node_cpus * s.pilot_cpus;
  s.qos_preempt = rng.bernoulli(0.4);
  s.reservation = rng.bernoulli(0.35);
  s.res_start_frac = 0.2 + 0.05 * static_cast<double>(rng.uniform_int(0, 8));
  s.res_duration_min = static_cast<std::uint32_t>(rng.uniform_int(4, 10));
  s.res_nodes = static_cast<std::uint32_t>(
      rng.uniform_int(1, std::max<std::int64_t>(2, s.nodes / 4)));
  return s;
}

std::string ScenarioSpec::summary() const {
  std::ostringstream out;
  out << "seed=" << seed << " nodes=" << nodes;
  if (clusters > 1) out << "x" << clusters;
  out << " " << core::to_string(supply) << "/" << length_set << " horizon="
      << horizon.to_string() << " qps=" << faas_qps << " fns="
      << faas_functions << " route=" << whisk::to_string(route_mode);
  if (deadline_classes) out << "+dl";
  if (lease_mode) out << "+lease";
  if (tres_mode) {
    out << "+tres(" << node_cpus << "c/" << pilot_cpus << "c)";
    if (qos_preempt) out << "+qos";
    if (reservation) out << "+resv";
  }
  out << " faults=" << faults.size();
  if (plant != BugPlant::kNone) out << " plant=" << to_string(plant);
  return out.str();
}

}  // namespace hpcwhisk::check
