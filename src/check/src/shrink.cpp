#include "hpcwhisk/check/shrink.hpp"

#include <algorithm>
#include <utility>

#include "hpcwhisk/check/simcheck.hpp"

namespace hpcwhisk::check {
namespace {

bool still_fails(const ScenarioSpec& spec, const std::string& invariant,
                 const InvariantSuite& suite) {
  CheckOptions opts;
  opts.replay_check = false;  // one run per candidate; replay is re-checked
                              // on the final shrunk spec by the caller
  const CheckResult result = check_scenario(spec, suite, opts);
  return std::any_of(result.violations.begin(), result.violations.end(),
                     [&](const Violation& v) { return v.invariant == invariant; });
}

}  // namespace

ShrinkResult shrink(const ScenarioSpec& failing, const std::string& invariant,
                    const InvariantSuite& suite,
                    const ShrinkOptions& options) {
  ShrinkResult res;
  res.invariant = invariant;
  ScenarioSpec best = failing;

  const auto attempt = [&](ScenarioSpec candidate) {
    if (res.attempts >= options.max_attempts) return false;
    ++res.attempts;
    if (!still_fails(candidate, invariant, suite)) return false;
    best = std::move(candidate);
    ++res.reductions;
    return true;
  };

  bool progress = true;
  while (progress && res.attempts < options.max_attempts) {
    progress = false;

    // Collapse the federation first: one cluster halves the run cost and
    // usually keeps single-cluster invariant failures alive.
    if (best.clusters > 1) {
      ScenarioSpec c = best;
      c.clusters = 1;
      for (ScenarioFault& f : c.faults) f.cluster = 0;
      progress |= attempt(std::move(c));
    }

    // Faults, ddmin-style: all, then halves, then singles.
    if (!best.faults.empty()) {
      {
        ScenarioSpec c = best;
        c.faults.clear();
        progress |= attempt(std::move(c));
      }
      if (best.faults.size() > 1) {
        const std::size_t half = best.faults.size() / 2;
        {
          ScenarioSpec c = best;
          c.faults.erase(c.faults.begin(),
                         c.faults.begin() + static_cast<std::ptrdiff_t>(half));
          progress |= attempt(std::move(c));
        }
        {
          ScenarioSpec c = best;
          c.faults.erase(c.faults.begin() + static_cast<std::ptrdiff_t>(half),
                         c.faults.end());
          progress |= attempt(std::move(c));
        }
      }
      if (!best.faults.empty() && best.faults.size() <= 8) {
        for (std::size_t i = 0;
             i < best.faults.size() && res.attempts < options.max_attempts;) {
          ScenarioSpec c = best;
          c.faults.erase(c.faults.begin() + static_cast<std::ptrdiff_t>(i));
          if (attempt(std::move(c))) {
            progress = true;  // best shrank; index i now names the next fault
          } else {
            ++i;
          }
        }
      }
    }

    // Load shape.
    if (best.faas_functions > 1) {
      ScenarioSpec c = best;
      c.faas_functions = 1;
      if (attempt(std::move(c))) {
        progress = true;
      } else if (best.faas_functions > 2) {
        ScenarioSpec h = best;
        h.faas_functions = best.faas_functions / 2;
        progress |= attempt(std::move(h));
      }
    }
    if (best.faas_qps > 0.5) {
      ScenarioSpec c = best;
      c.faas_qps = std::max(0.5, best.faas_qps / 2.0);
      progress |= attempt(std::move(c));
    }
    if (best.fib_per_length > 1) {
      ScenarioSpec c = best;
      c.fib_per_length = 1;
      progress |= attempt(std::move(c));
    }
    if (best.hpc_backlog > 4) {
      ScenarioSpec c = best;
      c.hpc_backlog = std::max<std::size_t>(4, best.hpc_backlog / 2);
      progress |= attempt(std::move(c));
    }

    // Geometry.
    if (best.nodes > 4) {
      ScenarioSpec c = best;
      c.nodes = std::max<std::uint32_t>(4, best.nodes / 2);
      progress |= attempt(std::move(c));
    }
    if (best.horizon > sim::SimTime::minutes(10)) {
      ScenarioSpec c = best;
      c.horizon = std::max(sim::SimTime::minutes(10),
                           sim::SimTime::micros(best.horizon.ticks() / 2));
      progress |= attempt(std::move(c));
    }
  }

  res.spec = std::move(best);
  return res;
}

}  // namespace hpcwhisk::check
