#include "hpcwhisk/check/repro.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hpcwhisk::check {
namespace {

// --- Writer ----------------------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_time(std::string& out, sim::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, t.ticks());
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_fault(std::string& out, const ScenarioFault& f) {
  const fault::FaultEvent& e = f.event;
  out += "{\"cluster\": ";
  append_u64(out, f.cluster);
  out += ", \"kind\": ";
  append_escaped(out, fault::to_string(e.kind));
  out += ", \"at_us\": ";
  append_time(out, e.at);
  out += ", \"grace_us\": ";
  append_time(out, e.grace);
  out += ", \"outage_us\": ";
  append_time(out, e.outage);
  out += ", \"stall_us\": ";
  append_time(out, e.stall);
  out += ", \"window_us\": ";
  append_time(out, e.window);
  out += ", \"probability\": ";
  append_double(out, e.probability);
  out += ", \"delay_us\": ";
  append_time(out, e.delay);
  out += ", \"copies\": ";
  append_u64(out, e.copies);
  out += ", \"target\": ";
  append_u64(out, e.target);
  out += "}";
}

// --- Minimal JSON parser ---------------------------------------------------
// Just enough for the repro grammar: objects, arrays, strings (with the
// escapes the writer emits), numbers, true/false.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind{Kind::kNull};
  bool boolean{false};
  std::string text;  ///< kString: decoded; kNumber: raw literal
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("repro JSON: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return bool_value();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key.text), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': v.text += '"'; break;
          case '\\': v.text += '\\'; break;
          case 'n': v.text += '\n'; break;
          case 't': v.text += '\t'; break;
          case '/': v.text += '/'; break;
          default: fail("unsupported escape");
        }
      } else {
        v.text += c;
      }
    }
  }

  JsonValue bool_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected boolean");
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    v.text = std::string{text_.substr(start, pos_ - start)};
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
};

// --- Typed field access ----------------------------------------------------

const JsonValue& require(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    throw std::invalid_argument("repro JSON: missing field '" +
                                std::string{key} + "'");
  }
  return *v;
}

std::uint64_t as_u64(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber) {
    throw std::invalid_argument("repro JSON: expected a number");
  }
  return std::strtoull(v.text.c_str(), nullptr, 10);
}

std::int64_t as_i64(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber) {
    throw std::invalid_argument("repro JSON: expected a number");
  }
  return std::strtoll(v.text.c_str(), nullptr, 10);
}

double as_double(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber) {
    throw std::invalid_argument("repro JSON: expected a number");
  }
  return std::strtod(v.text.c_str(), nullptr);
}

bool as_bool(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kBool) {
    throw std::invalid_argument("repro JSON: expected a boolean");
  }
  return v.boolean;
}

const std::string& as_string(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kString) {
    throw std::invalid_argument("repro JSON: expected a string");
  }
  return v.text;
}

sim::SimTime as_time(const JsonValue& v) {
  return sim::SimTime::micros(as_i64(v));
}

ScenarioFault parse_fault(const JsonValue& v) {
  ScenarioFault f;
  f.cluster = static_cast<std::uint32_t>(as_u64(require(v, "cluster")));
  f.event.kind = fault::fault_kind_from_string(as_string(require(v, "kind")));
  f.event.at = as_time(require(v, "at_us"));
  f.event.grace = as_time(require(v, "grace_us"));
  f.event.outage = as_time(require(v, "outage_us"));
  f.event.stall = as_time(require(v, "stall_us"));
  f.event.window = as_time(require(v, "window_us"));
  f.event.probability = as_double(require(v, "probability"));
  f.event.delay = as_time(require(v, "delay_us"));
  f.event.copies = static_cast<std::uint32_t>(as_u64(require(v, "copies")));
  f.event.target = static_cast<std::uint32_t>(as_u64(require(v, "target")));
  return f;
}

}  // namespace

std::string write_repro(const Repro& repro) {
  const ScenarioSpec& s = repro.spec;
  std::string out;
  out.reserve(1024);
  out += "{\n  \"format\": ";
  append_escaped(out, kReproFormat);
  out += ",\n  \"invariant\": ";
  append_escaped(out, repro.invariant);
  out += ",\n  \"message\": ";
  append_escaped(out, repro.message);
  out += ",\n  \"decision_hash\": ";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"",
                  repro.decision_hash);
    out += buf;
  }
  out += ",\n  \"spec\": {\n    \"seed\": ";
  append_u64(out, s.seed);
  out += ",\n    \"nodes\": ";
  append_u64(out, s.nodes);
  out += ",\n    \"clusters\": ";
  append_u64(out, s.clusters);
  out += ",\n    \"supply\": ";
  append_escaped(out, core::to_string(s.supply));
  out += ",\n    \"length_set\": ";
  append_escaped(out, s.length_set);
  out += ",\n    \"fib_per_length\": ";
  append_u64(out, s.fib_per_length);
  out += ",\n    \"horizon_us\": ";
  append_time(out, s.horizon);
  out += ",\n    \"settle_us\": ";
  append_time(out, s.settle);
  out += ",\n    \"faas_qps\": ";
  append_double(out, s.faas_qps);
  out += ",\n    \"faas_functions\": ";
  append_u64(out, s.faas_functions);
  out += ",\n    \"faas_duration_us\": ";
  append_time(out, s.faas_duration);
  out += ",\n    \"faas_poisson\": ";
  out += s.faas_poisson ? "true" : "false";
  out += ",\n    \"hpc_backlog\": ";
  append_u64(out, s.hpc_backlog);
  out += ",\n    \"lull_probability\": ";
  append_double(out, s.lull_probability);
  out += ",\n    \"grace_us\": ";
  append_time(out, s.grace);
  out += ",\n    \"route_mode\": ";
  append_escaped(out, whisk::to_string(s.route_mode));
  out += ",\n    \"deadline_classes\": ";
  out += s.deadline_classes ? "true" : "false";
  out += ",\n    \"lease_mode\": ";
  out += s.lease_mode ? "true" : "false";
  out += ",\n    \"tres_mode\": ";
  out += s.tres_mode ? "true" : "false";
  out += ",\n    \"node_cpus\": ";
  append_u64(out, s.node_cpus);
  out += ",\n    \"node_mem_mb\": ";
  append_u64(out, s.node_mem_mb);
  out += ",\n    \"pilot_cpus\": ";
  append_u64(out, s.pilot_cpus);
  out += ",\n    \"pilot_mem_mb\": ";
  append_u64(out, s.pilot_mem_mb);
  out += ",\n    \"qos_preempt\": ";
  out += s.qos_preempt ? "true" : "false";
  out += ",\n    \"reservation\": ";
  out += s.reservation ? "true" : "false";
  out += ",\n    \"res_start_frac\": ";
  append_double(out, s.res_start_frac);
  out += ",\n    \"res_duration_min\": ";
  append_u64(out, s.res_duration_min);
  out += ",\n    \"res_nodes\": ";
  append_u64(out, s.res_nodes);
  out += ",\n    \"plant\": ";
  append_escaped(out, to_string(s.plant));
  out += ",\n    \"faults\": [";
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    out += i == 0 ? "\n      " : ",\n      ";
    append_fault(out, s.faults[i]);
  }
  out += s.faults.empty() ? "]" : "\n    ]";
  out += "\n  }\n}\n";
  return out;
}

Repro parse_repro(std::string_view json) {
  const JsonValue doc = Parser{json}.parse();
  if (doc.kind != JsonValue::Kind::kObject) {
    throw std::invalid_argument("repro JSON: top level must be an object");
  }
  if (as_string(require(doc, "format")) != kReproFormat) {
    throw std::invalid_argument("repro JSON: unknown format '" +
                                as_string(require(doc, "format")) + "'");
  }
  Repro repro;
  repro.invariant = as_string(require(doc, "invariant"));
  repro.message = as_string(require(doc, "message"));
  repro.decision_hash = std::strtoull(
      as_string(require(doc, "decision_hash")).c_str(), nullptr, 16);

  const JsonValue& spec = require(doc, "spec");
  ScenarioSpec& s = repro.spec;
  s.seed = as_u64(require(spec, "seed"));
  s.nodes = static_cast<std::uint32_t>(as_u64(require(spec, "nodes")));
  s.clusters = static_cast<std::uint32_t>(as_u64(require(spec, "clusters")));
  const std::string& supply = as_string(require(spec, "supply"));
  if (supply == core::to_string(core::SupplyModel::kFib)) {
    s.supply = core::SupplyModel::kFib;
  } else if (supply == core::to_string(core::SupplyModel::kVar)) {
    s.supply = core::SupplyModel::kVar;
  } else {
    throw std::invalid_argument("repro JSON: unknown supply model '" +
                                supply + "'");
  }
  s.length_set = as_string(require(spec, "length_set"));
  s.fib_per_length =
      static_cast<std::size_t>(as_u64(require(spec, "fib_per_length")));
  s.horizon = as_time(require(spec, "horizon_us"));
  s.settle = as_time(require(spec, "settle_us"));
  s.faas_qps = as_double(require(spec, "faas_qps"));
  s.faas_functions =
      static_cast<std::uint32_t>(as_u64(require(spec, "faas_functions")));
  s.faas_duration = as_time(require(spec, "faas_duration_us"));
  s.faas_poisson = as_bool(require(spec, "faas_poisson"));
  s.hpc_backlog =
      static_cast<std::size_t>(as_u64(require(spec, "hpc_backlog")));
  s.lull_probability = as_double(require(spec, "lull_probability"));
  s.grace = as_time(require(spec, "grace_us"));
  // Route-mode fields postdate the v1 format: optional-with-default so
  // repros written before data-driven scheduling still parse (and still
  // mean what they meant — the defaults match the old hard-wired modes).
  if (const JsonValue* rm = spec.find("route_mode")) {
    const auto mode = whisk::route_mode_from_string(as_string(*rm));
    if (!mode.has_value()) {
      throw std::invalid_argument("repro JSON: unknown route mode '" +
                                  as_string(*rm) + "'");
    }
    s.route_mode = *mode;
  }
  if (const JsonValue* dl = spec.find("deadline_classes")) {
    s.deadline_classes = as_bool(*dl);
  }
  if (const JsonValue* lm = spec.find("lease_mode")) {
    s.lease_mode = as_bool(*lm);
  }
  // Slurm-fidelity fields postdate the v1 format too: each is optional
  // with a legacy-meaning default (tres_mode off = the whole-node system
  // every pre-fidelity repro was recorded against).
  if (const JsonValue* v = spec.find("tres_mode")) s.tres_mode = as_bool(*v);
  if (const JsonValue* v = spec.find("node_cpus")) {
    s.node_cpus = static_cast<std::uint32_t>(as_u64(*v));
  }
  if (const JsonValue* v = spec.find("node_mem_mb")) {
    s.node_mem_mb = static_cast<std::uint32_t>(as_u64(*v));
  }
  if (const JsonValue* v = spec.find("pilot_cpus")) {
    s.pilot_cpus = static_cast<std::uint32_t>(as_u64(*v));
  }
  if (const JsonValue* v = spec.find("pilot_mem_mb")) {
    s.pilot_mem_mb = static_cast<std::uint32_t>(as_u64(*v));
  }
  if (const JsonValue* v = spec.find("qos_preempt")) {
    s.qos_preempt = as_bool(*v);
  }
  if (const JsonValue* v = spec.find("reservation")) {
    s.reservation = as_bool(*v);
  }
  if (const JsonValue* v = spec.find("res_start_frac")) {
    s.res_start_frac = as_double(*v);
  }
  if (const JsonValue* v = spec.find("res_duration_min")) {
    s.res_duration_min = static_cast<std::uint32_t>(as_u64(*v));
  }
  if (const JsonValue* v = spec.find("res_nodes")) {
    s.res_nodes = static_cast<std::uint32_t>(as_u64(*v));
  }
  s.plant = bug_plant_from_string(as_string(require(spec, "plant")));
  const JsonValue& faults = require(spec, "faults");
  if (faults.kind != JsonValue::Kind::kArray) {
    throw std::invalid_argument("repro JSON: 'faults' must be an array");
  }
  s.faults.reserve(faults.items.size());
  for (const JsonValue& f : faults.items) s.faults.push_back(parse_fault(f));
  return repro;
}

}  // namespace hpcwhisk::check
