#include "hpcwhisk/check/invariants.hpp"

#include <algorithm>

#include "hpcwhisk/check/fidelity.hpp"
#include <cstdio>
#include <map>
#include <numeric>
#include <sstream>
#include <utility>

namespace hpcwhisk::check {
namespace {

std::string job_tag(std::size_t cluster, const JobInfo& j) {
  std::ostringstream out;
  out << "c" << cluster << " job " << j.id << " (" << j.partition << ")";
  return out.str();
}

void check_activation_conservation(const ScenarioSpec&,
                                   const RunObservation& obs,
                                   std::vector<Violation>& out) {
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    for (const std::string& v : obs.clusters[c].audit.violations) {
      out.push_back({"activation-conservation",
                     "c" + std::to_string(c) + ": " + v});
    }
  }
}

void check_terminal_balance(const ScenarioSpec&, const RunObservation& obs,
                            std::vector<Violation>& out) {
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    const ClusterObservation& co = obs.clusters[c];
    const auto& ct = co.controller;
    const auto tag = [&](const std::string& msg) {
      out.push_back({"terminal-balance", "c" + std::to_string(c) + ": " + msg});
    };
    if (ct.submitted != ct.accepted + ct.rejected_503) {
      tag("submitted " + std::to_string(ct.submitted) + " != accepted " +
          std::to_string(ct.accepted) + " + rejected_503 " +
          std::to_string(ct.rejected_503));
    }
    if (ct.accepted != ct.completed + ct.failed + ct.timed_out) {
      tag("accepted " + std::to_string(ct.accepted) + " != completed " +
          std::to_string(ct.completed) + " + failed " +
          std::to_string(ct.failed) + " + timed_out " +
          std::to_string(ct.timed_out));
    }
    if (co.nonterminal_activations != 0) {
      tag(std::to_string(co.nonterminal_activations) +
          " activations still non-terminal after the settle window");
    }
  }
  if (!obs.federated && !obs.clusters.empty()) {
    const auto& ct = obs.clusters[0].controller;
    if (ct.submitted != obs.faas_issued) {
      out.push_back({"terminal-balance",
                     "issued " + std::to_string(obs.faas_issued) +
                         " calls but controller saw " +
                         std::to_string(ct.submitted)});
    }
  }
}

void check_pilot_accounting(const ScenarioSpec&, const RunObservation& obs,
                            std::vector<Violation>& out) {
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    const auto& m = obs.clusters[c].manager;
    // hard_killed is excluded: it annotates a subset of node_failed
    // (ends that arrived with no SIGTERM warning), not a disjoint class.
    const std::uint64_t accounted = m.preempted + m.timed_out + m.completed +
                                    m.node_failed + m.cancelled +
                                    obs.clusters[c].active_pilots;
    if (m.started != accounted) {
      out.push_back(
          {"pilot-accounting",
           "c" + std::to_string(c) + ": started " + std::to_string(m.started) +
               " != preempted " + std::to_string(m.preempted) +
               " + timed_out " + std::to_string(m.timed_out) +
               " + completed " + std::to_string(m.completed) +
               " + node_failed " + std::to_string(m.node_failed) +
               " + cancelled " + std::to_string(m.cancelled) +
               " + active " + std::to_string(obs.clusters[c].active_pilots)});
    }
    if (m.hard_killed > m.node_failed) {
      out.push_back({"pilot-accounting",
                     "c" + std::to_string(c) + ": hard_killed " +
                         std::to_string(m.hard_killed) +
                         " exceeds node_failed " +
                         std::to_string(m.node_failed)});
    }
  }
}

void check_node_timeline(const ScenarioSpec&, const RunObservation& obs,
                         std::vector<Violation>& out) {
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    const ClusterObservation& co = obs.clusters[c];
    // intervals() after finalize: sorted by (node, start).
    std::vector<char> seen(co.node_count, 0);
    slurm::NodeId current = 0;
    sim::SimTime cursor = sim::SimTime::zero();
    bool open = false;
    const auto close_node = [&](slurm::NodeId node) {
      if (open && cursor != obs.end_time) {
        out.push_back({"node-timeline",
                       "c" + std::to_string(c) + " node " +
                           std::to_string(node) + " timeline ends at " +
                           std::to_string(cursor.ticks()) + " ticks, not " +
                           std::to_string(obs.end_time.ticks())});
      }
    };
    for (const analysis::NodeInterval& iv : co.node_intervals) {
      if (!open || iv.node != current) {
        if (open) close_node(current);
        current = iv.node;
        cursor = sim::SimTime::zero();
        open = true;
        if (iv.node < co.node_count) seen[iv.node] = 1;
      }
      if (iv.start != cursor) {
        out.push_back({"node-timeline",
                       "c" + std::to_string(c) + " node " +
                           std::to_string(iv.node) + " has a gap/overlap at " +
                           std::to_string(iv.start.ticks()) + " ticks"});
      }
      if (iv.end < iv.start) {
        out.push_back({"node-timeline",
                       "c" + std::to_string(c) + " node " +
                           std::to_string(iv.node) +
                           " has a negative-length interval"});
      }
      cursor = iv.end;
    }
    if (open) close_node(current);
    for (std::uint32_t n = 0; n < co.node_count; ++n) {
      if (!seen[n]) {
        out.push_back({"node-timeline", "c" + std::to_string(c) + " node " +
                                            std::to_string(n) +
                                            " has no timeline at all"});
      }
    }
  }
}

void check_no_double_allocation(const ScenarioSpec& spec,
                                const RunObservation& obs,
                                std::vector<Violation>& out) {
  // TRES mode: jobs legitimately co-reside on partial nodes; the vector
  // form (tres-capacity below) takes over.
  if (spec.tres_mode) return;
  struct Hold {
    sim::SimTime start;
    sim::SimTime release;
    slurm::JobId id;
  };
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    const ClusterObservation& co = obs.clusters[c];
    std::map<slurm::NodeId, std::vector<Hold>> holds;
    for (const JobInfo& j : co.jobs) {
      if (j.start == sim::SimTime::max()) continue;
      const sim::SimTime release = j.ended ? j.end : obs.end_time;
      for (const slurm::NodeId n : j.nodes) {
        holds[n].push_back({j.start, release, j.id});
      }
    }
    for (auto& [node, hv] : holds) {
      std::sort(hv.begin(), hv.end(), [](const Hold& a, const Hold& b) {
        return a.start != b.start ? a.start < b.start : a.id < b.id;
      });
      for (std::size_t i = 1; i < hv.size(); ++i) {
        if (hv[i].start < hv[i - 1].release) {
          out.push_back({"no-double-allocation",
                         "c" + std::to_string(c) + " node " +
                             std::to_string(node) + " held by jobs " +
                             std::to_string(hv[i - 1].id) + " and " +
                             std::to_string(hv[i].id) + " simultaneously"});
        }
      }
    }
  }
}

void check_grace_respected(const ScenarioSpec& spec, const RunObservation& obs,
                           std::vector<Violation>& out) {
  // default_partitions keeps the hpc partition at the canonical 3-minute
  // grace regardless of the pilot grace knob.
  const sim::SimTime hpc_grace = sim::SimTime::minutes(3);
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    for (const JobInfo& j : obs.clusters[c].jobs) {
      if (!j.got_sigterm) continue;
      // Preemption and time-limit SIGTERMs must grant *exactly* the
      // partition grace — a truncated grace is as much a bug as an
      // overlong one (fault-injected kNodeFailed kills are exempt: their
      // truncation is the injected fault itself).
      if (j.sigterm_reason == slurm::EndReason::kPreempted ||
          j.sigterm_reason == slurm::EndReason::kTimeLimit) {
        const sim::SimTime expected =
            j.partition == "pilot" ? spec.grace : hpc_grace;
        if (j.sigterm_grace != expected) {
          out.push_back(
              {"grace-respected",
               job_tag(c, j) + " got " +
                   std::to_string(j.sigterm_grace.ticks()) +
                   " ticks of grace on " +
                   slurm::to_string(j.sigterm_reason) + ", partition promises " +
                   std::to_string(expected.ticks())});
        }
        if (j.sigterm_deadline != j.sigterm_at + j.sigterm_grace) {
          out.push_back({"grace-respected",
                         job_tag(c, j) +
                             " SIGKILL deadline disagrees with the granted "
                             "grace window"});
        }
      }
      // Every SIGTERM'd job must be gone by the announced deadline
      // (early voluntary exit is fine; an overstay means SIGKILL never
      // fired). Jobs cut off by the end of the run are skipped.
      if (j.ended && j.end > j.sigterm_deadline) {
        out.push_back({"grace-respected",
                       job_tag(c, j) + " outlived its SIGKILL deadline by " +
                           std::to_string((j.end - j.sigterm_deadline).ticks()) +
                           " ticks"});
      }
    }
  }
}

void check_backfill_priority(const ScenarioSpec& spec,
                             const RunObservation& obs,
                             std::vector<Violation>& out) {
  // EASY backfill legality on the hpc partition: when job K received an
  // allocation, no older, strictly higher-priority fixed job P that was
  // still undecided could have used that same allocation (P needs no
  // more nodes and no more time than K got). The scheduler scans in
  // priority order and K's nodes passed the reservation filter for
  // K.granted_limit >= P.time_limit, so P would have started first —
  // starting K instead delays the reservation holder. Pilots (tier 0,
  // separate placement policy) and variable jobs (resized per pass) are
  // out of scope.
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    const ClusterObservation& co = obs.clusters[c];
    std::vector<const JobInfo*> hpc;
    for (const JobInfo& j : co.jobs) {
      if (j.partition == "hpc" && j.fixed) hpc.push_back(&j);
    }
    for (const JobInfo* k : hpc) {
      if (k->decision == sim::SimTime::max() || k->nodes.empty()) continue;
      for (const JobInfo* p : hpc) {
        if (p == k) continue;
        const bool higher = p->priority > k->priority ||
                            (p->priority == k->priority && p->id < k->id);
        if (!higher) continue;
        if (p->submit >= k->decision) continue;     // not yet queued
        if (p->decision <= k->decision) continue;   // already placed
        if (p->ended && p->end <= k->decision) continue;  // cancelled
        if (p->num_nodes > k->nodes.size()) continue;
        if (p->time_limit > k->granted_limit) continue;
        // TRES mode: P provably fit K's allocation only if its per-node
        // request fits inside what K actually took (the nodes may have
        // had no free TRES beyond that).
        if (spec.tres_mode && !p->tres.fits_within(k->tres)) continue;
        out.push_back(
            {"backfill-priority",
             job_tag(c, *k) + " backfilled at " +
                 std::to_string(k->decision.ticks()) + " ticks over " +
                 job_tag(c, *p) + " (prio " + std::to_string(p->priority) +
                 " > " + std::to_string(k->priority) +
                 ") which fit the same allocation"});
      }
    }
  }
}

void check_federation_conservation(const ScenarioSpec&,
                                   const RunObservation& obs,
                                   std::vector<Violation>& out) {
  if (!obs.federated) return;
  const auto& g = obs.gateway;
  if (g.invocations != g.cluster_calls + g.cloud_calls) {
    out.push_back({"federation-conservation",
                   "gateway invocations " + std::to_string(g.invocations) +
                       " != cluster " + std::to_string(g.cluster_calls) +
                       " + cloud " + std::to_string(g.cloud_calls)});
  }
  if (g.invocations != obs.faas_issued) {
    out.push_back({"federation-conservation",
                   "issued " + std::to_string(obs.faas_issued) +
                       " calls but the gateway routed " +
                       std::to_string(g.invocations)});
  }
  const std::uint64_t per_cluster_sum = std::accumulate(
      obs.per_cluster_calls.begin(), obs.per_cluster_calls.end(),
      std::uint64_t{0});
  if (per_cluster_sum != g.cluster_calls) {
    out.push_back({"federation-conservation",
                   "per-cluster calls sum to " +
                       std::to_string(per_cluster_sum) + ", gateway counted " +
                       std::to_string(g.cluster_calls)});
  }
  std::uint64_t accepted = 0;
  for (const ClusterObservation& co : obs.clusters) {
    accepted += co.controller.accepted;
  }
  if (accepted != g.cluster_calls) {
    out.push_back({"federation-conservation",
                   "clusters accepted " + std::to_string(accepted) +
                       " activations, gateway placed " +
                       std::to_string(g.cluster_calls)});
  }
}

}  // namespace

void check_tres_capacity(const ScenarioSpec& spec, const RunObservation& obs,
                         std::vector<Violation>& out) {
  if (!spec.tres_mode) return;
  struct Ev {
    sim::SimTime at;
    bool is_start;
    slurm::JobId id;
    slurm::TresVector tres;
  };
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    const ClusterObservation& co = obs.clusters[c];
    const slurm::TresVector cap = co.node_capacity.is_zero()
                                      ? promised_capacity(spec)
                                      : co.node_capacity;
    std::map<slurm::NodeId, std::vector<Ev>> events;
    for (const JobInfo& j : co.jobs) {
      if (j.start == sim::SimTime::max()) continue;
      // Zero request = whole node (submit substitutes the capacity, so
      // this only shows up for synthetic observations).
      const slurm::TresVector tres = j.tres.is_zero() ? cap : j.tres;
      const sim::SimTime release = j.ended ? j.end : obs.end_time;
      for (const slurm::NodeId n : j.nodes) {
        events[n].push_back({j.start, true, j.id, tres});
        events[n].push_back({release, false, j.id, tres});
      }
    }
    for (auto& [node, evs] : events) {
      // Releases before starts at equal times: a preemption victim's end
      // and its claimant's launch share a tick legitimately.
      std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
        if (a.at != b.at) return a.at < b.at;
        if (a.is_start != b.is_start) return !a.is_start;
        return a.id < b.id;
      });
      slurm::TresVector used{};
      for (const Ev& e : evs) {
        if (!e.is_start) {
          used -= e.tres;
          continue;
        }
        used += e.tres;
        if (!used.fits_within(cap)) {
          out.push_back(
              {"tres-capacity",
               "c" + std::to_string(c) + " node " + std::to_string(node) +
                   " allocated " + used.to_string() + " > promised " +
                   cap.to_string() + " at " + std::to_string(e.at.ticks()) +
                   " ticks (job " + std::to_string(e.id) + " launching)"});
          break;  // one violation per node tells the story
        }
      }
    }
  }
}

void check_reservation_exclusion(const ScenarioSpec& spec,
                                 const RunObservation& obs,
                                 std::vector<Violation>& out) {
  if (!spec.tres_mode || !spec.reservation) return;
  const slurm::Reservation r = spec_reservation(spec);
  const sim::SimTime hpc_grace = sim::SimTime::minutes(3);
  for (std::size_t c = 0; c < obs.clusters.size(); ++c) {
    for (const JobInfo& j : obs.clusters[c].jobs) {
      if (j.start == sim::SimTime::max()) continue;
      const bool on_reserved =
          std::any_of(j.nodes.begin(), j.nodes.end(), [&](slurm::NodeId n) {
            return std::find(r.nodes.begin(), r.nodes.end(), n) !=
                   r.nodes.end();
          });
      if (!on_reserved) continue;
      if (j.start >= r.start && j.start < r.end) {
        out.push_back({"reservation-exclusion",
                       job_tag(c, j) + " started at " +
                           std::to_string(j.start.ticks()) +
                           " ticks inside the reservation window [" +
                           std::to_string(r.start.ticks()) + ", " +
                           std::to_string(r.end.ticks()) + ")"});
        continue;
      }
      if (j.start < r.start) {
        // Running at window-open: must be preempted away within the
        // partition grace.
        const sim::SimTime grace =
            j.partition == "pilot" ? spec.grace : hpc_grace;
        const sim::SimTime deadline = r.start + grace;
        const sim::SimTime gone = j.ended ? j.end : obs.end_time;
        if (gone > deadline) {
          out.push_back(
              {"reservation-exclusion",
               job_tag(c, j) + " survived " +
                   std::to_string((gone - deadline).ticks()) +
                   " ticks past the reservation-open grace deadline"});
        }
      }
    }
  }
}

InvariantSuite& InvariantSuite::add(std::string name, Fn fn) {
  names_.push_back(std::move(name));
  fns_.push_back(std::move(fn));
  return *this;
}

std::vector<Violation> InvariantSuite::run(const ScenarioSpec& spec,
                                           const RunObservation& obs) const {
  std::vector<Violation> out;
  for (const Fn& fn : fns_) fn(spec, obs, out);
  return out;
}

InvariantSuite InvariantSuite::standard() {
  InvariantSuite suite;
  suite.add("activation-conservation", check_activation_conservation)
      .add("terminal-balance", check_terminal_balance)
      .add("pilot-accounting", check_pilot_accounting)
      .add("node-timeline", check_node_timeline)
      .add("no-double-allocation", check_no_double_allocation)
      .add("grace-respected", check_grace_respected)
      .add("backfill-priority", check_backfill_priority)
      .add("federation-conservation", check_federation_conservation)
      .add("tres-capacity", check_tres_capacity)
      .add("reservation-exclusion", check_reservation_exclusion);
  return suite;
}

}  // namespace hpcwhisk::check
