#include "hpcwhisk/check/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "hpcwhisk/check/fidelity.hpp"

#include "hpcwhisk/obs/trace.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/trace/faas_workload.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"
#include "hpcwhisk/whisk/function.hpp"

namespace hpcwhisk::check {
namespace {

// Per-cluster probes. The vector holding these is reserved up front:
// observer lambdas capture stable pointers into it.
struct ClusterProbe {
  std::map<slurm::JobId, JobInfo> jobs;
  std::string log;
  std::unique_ptr<analysis::NodeStateLog> node_log;
  std::unique_ptr<analysis::ConservationAudit> audit;
};

void append_job_event(std::string& log, std::size_t cluster,
                      const slurm::JobEvent& ev) {
  char buf[160];
  switch (ev.kind) {
    case slurm::JobEventKind::kSubmitted:
      std::snprintf(buf, sizeof buf, "c%zu Q %llu %lld\n", cluster,
                    static_cast<unsigned long long>(ev.id),
                    static_cast<long long>(ev.when.ticks()));
      break;
    case slurm::JobEventKind::kClaimed:
      std::snprintf(buf, sizeof buf, "c%zu C %llu %lld\n", cluster,
                    static_cast<unsigned long long>(ev.id),
                    static_cast<long long>(ev.when.ticks()));
      break;
    case slurm::JobEventKind::kLaunched:
      std::snprintf(buf, sizeof buf, "c%zu S %llu %lld %lld\n", cluster,
                    static_cast<unsigned long long>(ev.id),
                    static_cast<long long>(ev.when.ticks()),
                    static_cast<long long>(ev.job->granted_limit.ticks()));
      break;
    case slurm::JobEventKind::kSigterm:
      std::snprintf(buf, sizeof buf, "c%zu G %llu %lld %lld %s\n", cluster,
                    static_cast<unsigned long long>(ev.id),
                    static_cast<long long>(ev.when.ticks()),
                    static_cast<long long>(ev.deadline.ticks()),
                    slurm::to_string(ev.reason));
      break;
    case slurm::JobEventKind::kEnded:
      std::snprintf(buf, sizeof buf, "c%zu E %llu %lld %s\n", cluster,
                    static_cast<unsigned long long>(ev.id),
                    static_cast<long long>(ev.when.ticks()),
                    slurm::to_string(ev.reason));
      break;
  }
  log += buf;
  if (ev.kind == slurm::JobEventKind::kLaunched) {
    // Allocation is part of the decision; id order within the record.
    std::string& line = log;
    line.pop_back();  // rejoin the node list to the S line
    for (const slurm::NodeId n : ev.job->nodes) {
      std::snprintf(buf, sizeof buf, " %u", n);
      line += buf;
    }
    line += '\n';
  }
}

void record_job_event(std::map<slurm::JobId, JobInfo>& jobs,
                      const slurm::JobEvent& ev) {
  JobInfo& info = jobs[ev.id];
  const slurm::JobRecord& rec = *ev.job;
  switch (ev.kind) {
    case slurm::JobEventKind::kSubmitted:
      info.id = ev.id;
      info.partition = rec.spec.partition;
      info.tier = rec.priority_tier;
      info.fixed = rec.spec.time_min == sim::SimTime::zero();
      info.priority = rec.spec.priority;
      info.num_nodes = rec.spec.num_nodes;
      info.tres = rec.spec.tres_per_node;
      info.time_limit = rec.spec.time_limit;
      info.time_min = rec.spec.time_min;
      info.submit = ev.when;
      break;
    case slurm::JobEventKind::kClaimed:
      if (ev.when < info.decision) info.decision = ev.when;
      break;
    case slurm::JobEventKind::kLaunched:
      if (ev.when < info.decision) info.decision = ev.when;
      info.start = ev.when;
      info.granted_limit = rec.granted_limit;
      info.nodes = rec.nodes;
      break;
    case slurm::JobEventKind::kSigterm:
      info.got_sigterm = true;
      info.sigterm_at = ev.when;
      info.sigterm_deadline = ev.deadline;
      info.sigterm_grace = ev.grace;
      info.sigterm_reason = ev.reason;
      break;
    case slurm::JobEventKind::kEnded:
      info.ended = true;
      info.end = ev.when;
      info.end_reason = ev.reason;
      break;
  }
}

void attach_probe(ClusterProbe& probe, std::size_t cluster_index,
                  core::HpcWhiskSystem& system, sim::SimTime start) {
  probe.node_log = std::make_unique<analysis::NodeStateLog>(
      system.slurm().node_count(), start);
  system.slurm().set_node_observer(
      [&probe](const slurm::NodeTransition& t) { probe.node_log->record(t); });
  system.slurm().set_job_observer(
      [&probe, cluster_index](const slurm::JobEvent& ev) {
        record_job_event(probe.jobs, ev);
        append_job_event(probe.log, cluster_index, ev);
      });
  // The audit takes the controller's single terminal-observer slot; the
  // runner must not set another (it would displace the audit silently).
  probe.audit = std::make_unique<analysis::ConservationAudit>(
      system.controller());
}

core::HpcWhiskSystem::Config system_config(const ScenarioSpec& spec,
                                           std::uint32_t cluster) {
  core::HpcWhiskSystem::Config cfg;
  cfg.seed = spec.seed + 1000003ULL * cluster;
  cfg.slurm.node_count = spec.nodes;
  cfg.partitions = core::default_partitions(
      spec.plant == BugPlant::kTruncateGrace ? sim::SimTime::seconds(5)
                                             : spec.grace);
  cfg.manager.model = spec.supply;
  cfg.manager.fib_lengths = core::job_length_set(spec.length_set);
  cfg.manager.fib_per_length = spec.fib_per_length;
  cfg.controller.route_mode = spec.route_mode;
  cfg.controller.sched.deadline_classes = spec.deadline_classes;
  cfg.controller.lease.enabled = spec.lease_mode;
  if (spec.tres_mode) {
    auto& fid = cfg.slurm.fidelity;
    fid.tres_mode = true;
    fid.node_capacity = promised_capacity(spec);
    const slurm::TresVector pilot_tres{spec.pilot_cpus, spec.pilot_mem_mb, 0};
    if (spec.plant == BugPlant::kTresOvercommit) {
      // Plant: build the nodes larger than the spec promises (one extra
      // pilot's worth), so the scheduler legitimately packs beyond the
      // promised capacity and the per-TRES invariant must catch it.
      fid.node_capacity += pilot_tres;
    }
    cfg.manager.pilot_tres = pilot_tres;
    if (spec.qos_preempt) {
      // Two pilot tiers below every HPC partition tier: low dies first,
      // high (the longest fib class / all var pilots' partition default
      // stays tier 0) is preempted only when low supply is exhausted.
      fid.qos.push_back({"pilot-low", -1, 0, 1.0});
      fid.qos.push_back({"pilot-high", 0, 0, 1.0});
      cfg.manager.pilot_qos = "pilot-low";
      cfg.manager.pilot_qos_long = "pilot-high";
    }
    if (spec.reservation && spec.plant != BugPlant::kReservationIgnored) {
      cfg.slurm.fidelity.reservations.push_back(spec_reservation(spec));
    }
  }
  for (const ScenarioFault& f : spec.faults) {
    if (f.cluster == cluster) cfg.faults.add(f.event);
  }
  return cfg;
}

trace::HpcWorkloadGenerator::Config hpc_config(const ScenarioSpec& spec) {
  trace::HpcWorkloadGenerator::Config cfg;
  cfg.backlog_target = spec.hpc_backlog;
  cfg.lull_probability_per_tick = spec.lull_probability;
  if (spec.tres_mode) {
    // Mixed fractional requests so nodes host prime work AND leave TRES
    // room for pilots — the co-residency regime under test.
    const slurm::TresVector full = promised_capacity(spec);
    const slurm::TresVector half{std::max(1u, full.cpus / 2),
                                 std::max(1u, full.mem_mb / 2), 0};
    const slurm::TresVector quarter{std::max(1u, full.cpus / 4),
                                    std::max(1u, full.mem_mb / 4), 0};
    cfg.tres_buckets = {{full, 0.5}, {half, 0.3}, {quarter, 0.2}};
  }
  return cfg;
}

std::vector<std::string> function_names(std::uint32_t count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "sleep-%03u", i);
    names.emplace_back(buf);
  }
  return names;
}

ClusterObservation collect_cluster(ClusterProbe& probe,
                                   core::HpcWhiskSystem& system,
                                   sim::SimTime end) {
  probe.node_log->finalize(end);
  ClusterObservation co;
  co.node_count = system.slurm().node_count();
  co.jobs.reserve(probe.jobs.size());
  for (auto& [id, info] : probe.jobs) co.jobs.push_back(std::move(info));
  co.audit = probe.audit->finalize();
  co.controller = system.controller().counters();
  co.slurm = system.slurm().counters();
  co.manager = system.manager().counters();
  co.active_pilots = system.manager().active_pilots();
  co.node_intervals = probe.node_log->intervals();
  // Activation outcomes join the decision log post-hoc (the audit holds
  // the controller's only terminal-observer slot), in id order — which
  // is deterministic because the store is append-only.
  for (const whisk::ActivationRecord& rec :
       system.controller().activations()) {
    if (!whisk::is_terminal(rec.state)) ++co.nonterminal_activations;
    char buf[128];
    std::snprintf(buf, sizeof buf, "A %llu %s %lld %lld\n",
                  static_cast<unsigned long long>(rec.id),
                  whisk::to_string(rec.state),
                  static_cast<long long>(rec.submit_time.ticks()),
                  static_cast<long long>(rec.end_time.ticks()));
    probe.log += buf;
  }
  return co;
}

RunObservation run_single(const ScenarioSpec& spec) {
  sim::Simulation sim;
  core::HpcWhiskSystem system{sim, system_config(spec, 0)};
  std::vector<ClusterProbe> probes(1);
  attach_probe(probes[0], 0, system, sim.now());

  const std::vector<std::string> functions = trace::register_sleep_functions(
      system.functions(), spec.faas_functions, spec.faas_duration);
  trace::HpcWorkloadGenerator hpc{sim, system.slurm(), hpc_config(spec),
                                  sim::Rng{spec.seed * 77 + 1}};
  trace::FaasLoadGenerator faas{
      sim,
      {.rate_qps = spec.faas_qps,
       .poisson = spec.faas_poisson,
       .functions = functions},
      [&system](const std::string& fn) {
        (void)system.controller().submit(fn);
      },
      sim::Rng{spec.seed * 77 + 2}};

  hpc.start();
  system.start();
  faas.start(spec.horizon);
  sim.run_until(spec.horizon + spec.settle);

  RunObservation obs;
  obs.end_time = sim.now();
  obs.faas_issued = faas.issued();
  obs.clusters.push_back(collect_cluster(probes[0], system, sim.now()));
  if (spec.tres_mode) obs.clusters[0].node_capacity = promised_capacity(spec);
  obs.decision_log = std::move(probes[0].log);
  obs.decision_hash = obs::fnv1a(obs.decision_log);
  return obs;
}

RunObservation run_federated(const ScenarioSpec& spec) {
  sim::Simulation sim;
  fed::FederatedGateway::Config gcfg;
  gcfg.policy = fed::FedPolicy::kPowerOfTwo;
  gcfg.seed = spec.seed * 77 + 5;
  gcfg.log_decisions = true;
  for (std::uint32_t i = 0; i < spec.clusters; ++i) {
    fed::FederatedGateway::ClusterSpec cs;
    cs.system = system_config(spec, i);
    cs.hpc_load = hpc_config(spec);
    cs.hpc_seed = spec.seed * 77 + 1 + i;
    gcfg.clusters.push_back(std::move(cs));
  }
  fed::FederatedGateway gateway{sim, gcfg};

  std::vector<ClusterProbe> probes(spec.clusters);
  for (std::uint32_t i = 0; i < spec.clusters; ++i) {
    attach_probe(probes[i], i, gateway.cluster(i), sim.now());
  }

  const std::vector<std::string> functions =
      function_names(spec.faas_functions);
  for (const std::string& name : functions) {
    gateway.register_function(
        whisk::fixed_duration_function(name, spec.faas_duration,
                                       /*memory_mb=*/128));
  }
  trace::FaasLoadGenerator faas{
      sim,
      {.rate_qps = spec.faas_qps,
       .poisson = spec.faas_poisson,
       .functions = functions},
      [&gateway](const std::string& fn) { (void)gateway.invoke(fn); },
      sim::Rng{spec.seed * 77 + 2}};

  gateway.start();
  faas.start(spec.horizon);
  sim.run_until(spec.horizon + spec.settle);

  RunObservation obs;
  obs.federated = true;
  obs.end_time = sim.now();
  obs.faas_issued = faas.issued();
  obs.gateway = gateway.counters();
  obs.per_cluster_calls = gateway.per_cluster_calls();
  for (std::uint32_t i = 0; i < spec.clusters; ++i) {
    obs.clusters.push_back(
        collect_cluster(probes[i], gateway.cluster(i), sim.now()));
    if (spec.tres_mode) {
      obs.clusters.back().node_capacity = promised_capacity(spec);
    }
    obs.decision_log += probes[i].log;
  }
  obs.decision_log += gateway.decision_log();
  obs.decision_hash = obs::fnv1a(obs.decision_log);
  return obs;
}

}  // namespace

RunObservation run_scenario(const ScenarioSpec& spec) {
  return spec.clusters > 1 ? run_federated(spec) : run_single(spec);
}

}  // namespace hpcwhisk::check
