#pragma once
// ScenarioSpec: a whole experiment sampled from one seed.
//
// SimCheck explores the system's behavior space the way QuickCheck
// explores an input space: a seed deterministically expands into a full
// experiment — cluster size, pilot supply model, FaaS load mix, HPC
// churn, an optional fault plan, and optionally an N-cluster federation
// topology. The spec is plain data: it serializes to the JSON repro
// format (repro.hpp), compares for equality (shrinker bookkeeping), and
// two runs of the same spec replay byte-identically.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hpcwhisk/core/job_manager.hpp"
#include "hpcwhisk/fault/fault_plan.hpp"
#include "hpcwhisk/sim/time.hpp"
#include "hpcwhisk/whisk/controller.hpp"

namespace hpcwhisk::check {

/// Deliberately planted defects for the checker's self-tests: the runner
/// mis-configures the system in a known way and SimCheck must catch it.
enum class BugPlant : std::uint8_t {
  kNone,
  /// Build the pilot partition with a 5-second grace while the spec
  /// promises `grace` — preempted pilots get SIGKILL far too early,
  /// violating the grace-respected invariant.
  kTruncateGrace,
  /// TRES mode: build nodes with more capacity than the spec promises
  /// (inflated by one pilot's request), so the scheduler co-locates more
  /// work than the promised capacity admits — the per-TRES
  /// no-double-allocation invariant must fire.
  kTresOvercommit,
  /// TRES mode: silently drop the spec's declared reservation window, so
  /// jobs start (and keep running) inside it — the reservation-exclusion
  /// invariant must fire.
  kReservationIgnored,
};

[[nodiscard]] const char* to_string(BugPlant p);
[[nodiscard]] BugPlant bug_plant_from_string(std::string_view name);

/// One fault event pinned to a cluster of the scenario.
struct ScenarioFault {
  std::uint32_t cluster{0};
  fault::FaultEvent event;

  friend bool operator==(const ScenarioFault&, const ScenarioFault&) = default;
};

/// Knobs for ScenarioSpec::sample.
struct SampleOptions {
  bool chaos{false};          ///< sample a fault plan into the scenario
  std::uint32_t max_clusters{1};  ///< >1 enables federated scenarios
  double fed_probability{0.4};    ///< chance of clusters > 1 when allowed
  std::uint32_t min_nodes{6};
  std::uint32_t max_nodes{20};
  double min_horizon_minutes{18.0};
  double max_horizon_minutes{30.0};
  /// Deliberate defect stamped on every sampled spec (self-tests and the
  /// `simcheck --plant` pipeline check).
  BugPlant plant{BugPlant::kNone};
};

struct ScenarioSpec {
  std::uint64_t seed{1};
  std::uint32_t nodes{12};     ///< per cluster
  std::uint32_t clusters{1};   ///< 1 = plain system, >1 = federation
  core::SupplyModel supply{core::SupplyModel::kFib};
  std::string length_set{"C1"};
  std::size_t fib_per_length{3};
  sim::SimTime horizon{sim::SimTime::minutes(24)};
  /// Drain window past the horizon; must exceed the activation timeout
  /// (5 min default) so every accepted activation can reach a terminal
  /// state before the invariants run.
  sim::SimTime settle{sim::SimTime::minutes(7)};
  double faas_qps{4.0};
  std::uint32_t faas_functions{10};
  sim::SimTime faas_duration{sim::SimTime::seconds(2)};
  bool faas_poisson{false};
  std::size_t hpc_backlog{20};
  double lull_probability{0.005};
  /// Pilot-partition preemption grace the scenario promises (the
  /// invariant suite checks the system honors exactly this).
  sim::SimTime grace{sim::SimTime::minutes(3)};
  /// Controller routing policy under test; the data-driven modes
  /// (least-expected-work, sjf-affinity) exercise the sched layer —
  /// estimators, backlog ledger, and (when enabled) deadline classes.
  whisk::RouteMode route_mode{whisk::RouteMode::kHashProbing};
  /// Short-class front-of-queue publish. Only data-driven modes act on
  /// it (legacy modes have no scheduler), but it is sampled and
  /// round-tripped unconditionally so the knob is always explicit.
  bool deadline_classes{false};
  /// Lease-based serving tier: hot functions get warm-executor leases
  /// and bypass the topic via direct invoke. Every invariant (call
  /// conservation, grace, backlog hygiene) must hold with it on.
  bool lease_mode{false};
  /// --- Slurm fidelity regime (sampled unconditionally, applied only
  /// when tres_mode; defaults reproduce the legacy whole-node system) ---
  /// Per-TRES scheduling: nodes carry a {cpus, mem} capacity vector,
  /// HPC jobs request fractions, pilots co-reside on partial nodes.
  bool tres_mode{false};
  std::uint32_t node_cpus{8};
  std::uint32_t node_mem_mb{32000};
  std::uint32_t pilot_cpus{0};    ///< 0 = whole-node pilots
  std::uint32_t pilot_mem_mb{0};
  /// QOS preemption tiers: two pilot QOS classes (low preemptible first)
  /// instead of the binary partition flag.
  bool qos_preempt{false};
  /// One advance reservation carving `res_nodes` nodes out of both
  /// supplies for `res_duration_min` starting at `res_start_frac` of the
  /// horizon.
  bool reservation{false};
  double res_start_frac{0.3};
  std::uint32_t res_duration_min{6};
  std::uint32_t res_nodes{1};
  std::vector<ScenarioFault> faults;
  BugPlant plant{BugPlant::kNone};

  /// Expands `seed` into a full scenario. Same seed + options => same
  /// spec, on every platform (all draws go through sim::Rng).
  [[nodiscard]] static ScenarioSpec sample(std::uint64_t seed,
                                           const SampleOptions& options = {});

  /// Scenario size for the shrinker's "≤ N elements" target: one element
  /// per fault, per registered FaaS function, and per cluster.
  [[nodiscard]] std::size_t elements() const {
    return faults.size() + faas_functions + clusters;
  }

  /// One-line human description for progress output.
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

}  // namespace hpcwhisk::check
