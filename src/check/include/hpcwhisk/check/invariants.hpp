#pragma once
// The pluggable invariant suite: predicates over a RunObservation that
// must hold for every scenario, no matter what the sampler threw at the
// system. Each invariant returns human-readable violations; an empty
// list means the run passed. The standard catalogue (DESIGN.md §12):
//
//   activation-conservation  every accepted activation reaches exactly
//                            one terminal state (audit reconciliation)
//   terminal-balance         controller counters balance and nothing is
//                            non-terminal after the settle window
//   pilot-accounting         every started pilot is accounted for
//   node-timeline            per-node state intervals tile [0, end]
//   no-double-allocation     no node is held by two jobs at once
//   grace-respected          preempt/timeout SIGTERMs grant exactly the
//                            partition grace, and SIGKILL honors the
//                            deadline announced at SIGTERM
//   backfill-priority        EASY backfill never delays an older,
//                            higher-priority fixed job it could have run
//   federation-conservation  every gateway call is placed exactly once
//   tres-capacity            TRES mode: at every event, the allocated
//                            TRES vectors on a node sum to <= the
//                            *promised* per-node capacity (vector form
//                            of no-double-allocation, which is skipped:
//                            co-residency is the point of TRES mode)
//   reservation-exclusion    TRES mode: nothing starts inside a declared
//                            reservation window on a reserved node, and
//                            jobs running at window-open are gone within
//                            the partition grace

#include <functional>
#include <string>
#include <vector>

#include "hpcwhisk/check/observation.hpp"
#include "hpcwhisk/check/scenario.hpp"

namespace hpcwhisk::check {

struct Violation {
  std::string invariant;
  std::string message;
};

class InvariantSuite {
 public:
  /// An invariant appends violations for one run.
  using Fn = std::function<void(const ScenarioSpec&, const RunObservation&,
                                std::vector<Violation>&)>;

  InvariantSuite& add(std::string name, Fn fn);

  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  /// Runs every invariant; violations come back grouped in registration
  /// order (deterministic).
  [[nodiscard]] std::vector<Violation> run(const ScenarioSpec& spec,
                                           const RunObservation& obs) const;

  /// The standard catalogue above.
  [[nodiscard]] static InvariantSuite standard();

 private:
  std::vector<std::string> names_;
  std::vector<Fn> fns_;
};

/// The per-TRES checkers, exposed as free functions so the fidelity
/// bench can run exactly the shipped invariants against its own regimes
/// (part of its acceptance contract) without dragging in the full suite.
void check_tres_capacity(const ScenarioSpec& spec, const RunObservation& obs,
                         std::vector<Violation>& out);
void check_reservation_exclusion(const ScenarioSpec& spec,
                                 const RunObservation& obs,
                                 std::vector<Violation>& out);

}  // namespace hpcwhisk::check
