#pragma once
// What one scenario run leaves behind for the invariant suite: per-job
// lifecycle snapshots rebuilt from the Slurmctld JobEvent stream, the
// finalized node-state timeline, the activation-conservation audit, all
// component counters, and a canonical decision log whose FNV-1a hash is
// the replay-determinism fingerprint.

#include <cstdint>
#include <string>
#include <vector>

#include "hpcwhisk/analysis/conservation.hpp"
#include "hpcwhisk/analysis/node_state_log.hpp"
#include "hpcwhisk/core/job_manager.hpp"
#include "hpcwhisk/fed/federated_gateway.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"
#include "hpcwhisk/whisk/controller.hpp"

namespace hpcwhisk::check {

/// Final snapshot of one Slurm job, rebuilt from the JobEvent stream.
struct JobInfo {
  slurm::JobId id{0};
  std::string partition;
  std::int32_t tier{0};
  bool fixed{true};  ///< time_min == 0 (scheduler cannot resize)
  std::int64_t priority{0};
  std::uint32_t num_nodes{1};
  /// Per-node TRES request (zero in legacy / whole-node mode).
  slurm::TresVector tres;
  sim::SimTime time_limit;
  sim::SimTime time_min;
  sim::SimTime submit{sim::SimTime::max()};
  /// First scheduling decision: claimed (waiting on preempted victims)
  /// or launched, whichever came first. max() if never decided.
  sim::SimTime decision{sim::SimTime::max()};
  sim::SimTime start{sim::SimTime::max()};  ///< launched; max() if never
  sim::SimTime end{sim::SimTime::max()};    ///< ended; max() if still live
  sim::SimTime granted_limit;
  std::vector<slurm::NodeId> nodes;  ///< allocation, copied at launch
  bool got_sigterm{false};
  sim::SimTime sigterm_at;
  sim::SimTime sigterm_deadline;  ///< SIGKILL time promised at SIGTERM
  sim::SimTime sigterm_grace;     ///< grace actually granted
  slurm::EndReason sigterm_reason{slurm::EndReason::kCompleted};
  bool ended{false};
  slurm::EndReason end_reason{slurm::EndReason::kCompleted};
};

/// Everything observed on one cluster.
struct ClusterObservation {
  std::uint32_t node_count{0};
  /// Per-node capacity the *spec promised* (zero in legacy mode). The
  /// per-TRES invariants check against this, not what the system was
  /// actually built with — that gap is exactly what the tres-overcommit
  /// bug plant opens.
  slurm::TresVector node_capacity{};
  std::vector<JobInfo> jobs;  ///< job-id order
  analysis::ConservationAudit::Result audit;
  whisk::Controller::Counters controller;
  slurm::Slurmctld::Counters slurm;
  core::JobManager::Counters manager;
  std::size_t active_pilots{0};
  std::size_t nonterminal_activations{0};
  std::vector<analysis::NodeInterval> node_intervals;  ///< finalized
};

struct RunObservation {
  std::vector<ClusterObservation> clusters;
  sim::SimTime end_time;
  std::uint64_t faas_issued{0};
  bool federated{false};
  fed::FederatedGateway::Counters gateway;  ///< zeros when !federated
  std::vector<std::uint64_t> per_cluster_calls;
  /// Canonical decision log: per-cluster job events and activation
  /// outcomes, then the gateway routing log. A pure function of the
  /// spec; decision_hash is its FNV-1a.
  std::string decision_log;
  std::uint64_t decision_hash{0};
};

}  // namespace hpcwhisk::check
