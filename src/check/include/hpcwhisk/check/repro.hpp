#pragma once
// Replayable repro files. A failing (shrunk) scenario serializes to a
// small JSON document; `simcheck --replay file.json` parses it back and
// re-runs the exact same experiment — all times in integer microsecond
// ticks, doubles printed with round-trip precision, so the replay is
// bit-identical on every platform. Format: DESIGN.md §12.

#include <cstdint>
#include <string>
#include <string_view>

#include "hpcwhisk/check/scenario.hpp"

namespace hpcwhisk::check {

inline constexpr std::string_view kReproFormat = "hpcwhisk-simcheck-repro-v1";

struct Repro {
  std::string invariant;       ///< violated invariant name
  std::string message;         ///< first violation message
  std::uint64_t decision_hash{0};  ///< FNV-1a of the spec's decision log
  ScenarioSpec spec;
};

[[nodiscard]] std::string write_repro(const Repro& repro);

/// Throws std::invalid_argument on malformed input or a format mismatch.
[[nodiscard]] Repro parse_repro(std::string_view json);

}  // namespace hpcwhisk::check
