#pragma once
// check_scenario: run one spec and judge it; run_campaign: fan seeds out
// over the exec::ThreadPool (via parallel_trials, so progress output is
// byte-identical to a serial sweep) with shrinking and repro emission
// for every failure.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "hpcwhisk/check/invariants.hpp"
#include "hpcwhisk/check/scenario.hpp"

namespace hpcwhisk::check {

struct CheckOptions {
  /// Run the scenario twice and require identical decision-log hashes
  /// (the replay-determinism invariant). Doubles the cost.
  bool replay_check{true};
};

struct CheckResult {
  std::vector<Violation> violations;
  std::uint64_t decision_hash{0};
  bool replayed{false};
  std::uint64_t replay_hash{0};

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Runs `spec` (twice when opts.replay_check) and evaluates the suite. A
/// hash mismatch between the two runs is reported as a
/// "replay-determinism" violation.
[[nodiscard]] CheckResult check_scenario(const ScenarioSpec& spec,
                                         const InvariantSuite& suite,
                                         const CheckOptions& opts = {});

struct CampaignOptions {
  std::uint64_t seed_base{1};
  std::size_t seeds{20};
  /// Worker threads; 0 = exec::job_count() (HW_BENCH_JOBS or hardware).
  std::size_t jobs{0};
  SampleOptions sample;
  bool shrink{true};
  std::size_t shrink_budget{96};  ///< max candidate runs per failure
  bool replay_check{true};
};

struct SeedOutcome {
  std::uint64_t seed{0};
  ScenarioSpec spec;
  CheckResult check;
  /// Valid when the seed failed and shrinking ran.
  bool shrunk_valid{false};
  ScenarioSpec shrunk;
  std::size_t shrink_attempts{0};
  std::uint64_t shrunk_hash{0};
  /// Repro JSON for the (shrunk) failing spec; empty when the seed passed.
  std::string repro_json;
};

struct CampaignResult {
  std::vector<SeedOutcome> outcomes;  ///< seed order
  std::size_t failures{0};

  [[nodiscard]] bool ok() const { return failures == 0; }
};

/// One line of progress per seed goes to `progress`, in seed order.
[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options,
                                          const InvariantSuite& suite,
                                          std::ostream& progress = std::cout);

}  // namespace hpcwhisk::check
