#pragma once
// Shared spec -> fidelity-regime derivations. The runner builds the
// system from these and the invariant suite re-derives the same values
// when checking, so the promised TRES capacity and the reservation
// window never need to be smuggled through the observation — they are a
// pure function of the ScenarioSpec.

#include <algorithm>
#include <cstdint>

#include "hpcwhisk/check/scenario.hpp"
#include "hpcwhisk/slurm/reservation.hpp"
#include "hpcwhisk/slurm/tres.hpp"

namespace hpcwhisk::check {

/// Per-node capacity the spec promises (TRES mode). The tres-overcommit
/// bug plant builds the system *larger* than this; the per-TRES
/// invariant checks against this promise, which is how it catches it.
[[nodiscard]] inline slurm::TresVector promised_capacity(
    const ScenarioSpec& s) {
  return {s.node_cpus, s.node_mem_mb, 0};
}

/// The single advance reservation a tres_mode+reservation spec declares:
/// the first min(res_nodes, nodes) node ids, opening at res_start_frac
/// of the horizon, for res_duration_min minutes. (The node-count clamp
/// matters under shrinking: the ddmin geometry step halves spec.nodes
/// without touching res_nodes.)
[[nodiscard]] inline slurm::Reservation spec_reservation(
    const ScenarioSpec& s) {
  slurm::Reservation r;
  r.name = "maint";
  r.start = sim::SimTime::seconds(s.horizon.to_seconds() * s.res_start_frac);
  r.end = r.start + sim::SimTime::minutes(s.res_duration_min);
  const std::uint32_t count = std::min(s.res_nodes, s.nodes);
  r.nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) r.nodes.push_back(i);
  return r;
}

}  // namespace hpcwhisk::check
