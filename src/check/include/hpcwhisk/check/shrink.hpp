#pragma once
// Greedy delta-debugging shrinker: starting from a failing ScenarioSpec,
// repeatedly tries cheaper/smaller candidates (drop faults ddmin-style,
// collapse the federation, fewer functions, lower QPS, fewer nodes,
// shorter horizon) and keeps a candidate iff a fresh run still violates
// the *same* invariant. Terminates at a fixpoint or when the attempt
// budget is spent; the result is the smallest spec found, which the
// repro file records for `simcheck --replay`.

#include <cstddef>
#include <string>

#include "hpcwhisk/check/invariants.hpp"
#include "hpcwhisk/check/scenario.hpp"

namespace hpcwhisk::check {

struct ShrinkOptions {
  /// Max candidate runs (each candidate costs one full scenario run).
  std::size_t max_attempts{96};
};

struct ShrinkResult {
  ScenarioSpec spec;          ///< smallest still-failing spec found
  std::string invariant;      ///< the invariant being preserved
  std::size_t attempts{0};    ///< candidate runs spent
  std::size_t reductions{0};  ///< accepted shrink steps
};

/// `invariant` is the name of the violation to preserve (typically the
/// first violation of the original failure).
[[nodiscard]] ShrinkResult shrink(const ScenarioSpec& failing,
                                  const std::string& invariant,
                                  const InvariantSuite& suite,
                                  const ShrinkOptions& options = {});

}  // namespace hpcwhisk::check
