#pragma once
// Executes one ScenarioSpec inside a fresh sim::Simulation and returns
// the RunObservation the invariant suite consumes. Deterministic: two
// calls with the same spec produce byte-identical decision logs.

#include "hpcwhisk/check/observation.hpp"
#include "hpcwhisk/check/scenario.hpp"

namespace hpcwhisk::check {

[[nodiscard]] RunObservation run_scenario(const ScenarioSpec& spec);

}  // namespace hpcwhisk::check
