#include "hpcwhisk/slurm/status.hpp"

#include <array>
#include <cstdio>
#include <sstream>

namespace hpcwhisk::slurm {

std::string compact_node_list(const std::vector<NodeId>& nodes) {
  std::string out;
  std::size_t i = 0;
  while (i < nodes.size()) {
    std::size_t j = i;
    while (j + 1 < nodes.size() && nodes[j + 1] == nodes[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(nodes[i]);
    if (j > i) {
      out += (j == i + 1) ? ',' : '-';
      out += std::to_string(nodes[j]);
    }
    i = j + 1;
  }
  return out;
}

std::string format_sinfo(const Slurmctld& ctld) {
  std::array<std::vector<NodeId>, 4> by_state;
  for (NodeId n = 0; n < ctld.node_count(); ++n) {
    by_state[static_cast<std::size_t>(ctld.observed_state(n))].push_back(n);
  }
  std::ostringstream os;
  os << "NODES " << ctld.node_count() << '\n';
  static constexpr std::array<ObservedNodeState, 4> kOrder{
      ObservedNodeState::kHpc, ObservedNodeState::kPilot,
      ObservedNodeState::kIdle, ObservedNodeState::kDown};
  for (const auto state : kOrder) {
    const auto& nodes = by_state[static_cast<std::size_t>(state)];
    if (nodes.empty()) continue;
    char line[64];
    std::snprintf(line, sizeof line, "%-6s %5zu  ", to_string(state),
                  nodes.size());
    os << line;
    const std::string compact = compact_node_list(nodes);
    if (compact.size() <= 60) {
      os << compact;
    } else {
      os << compact.substr(0, 57) << "...";
    }
    os << '\n';
  }
  return os.str();
}

std::string format_squeue(const Slurmctld& ctld, std::size_t max_rows) {
  std::ostringstream os;
  char header[96];
  std::snprintf(header, sizeof header, "%8s %-12s %-10s %6s %10s\n", "JOBID",
                "PARTITION", "STATE", "NODES", "TIMELIMIT");
  os << header;
  std::size_t rows = 0, omitted = 0;
  ctld.for_each_job([&](const JobRecord& rec) {
    if (rec.state != JobState::kPending && !rec.is_active()) return;
    if (rows >= max_rows) {
      ++omitted;
      return;
    }
    ++rows;
    char line[128];
    std::snprintf(line, sizeof line, "%8llu %-12s %-10s %6u %10s\n",
                  static_cast<unsigned long long>(rec.id),
                  rec.spec.partition.c_str(), to_string(rec.state),
                  rec.spec.num_nodes, rec.spec.time_limit.to_string().c_str());
    os << line;
  });
  if (omitted > 0) os << "... and " << omitted << " more\n";
  return os.str();
}

}  // namespace hpcwhisk::slurm
