#include "hpcwhisk/slurm/slurmctld.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::slurm {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending: return "PENDING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kCompleting: return "COMPLETING";
    case JobState::kCompleted: return "COMPLETED";
    case JobState::kTimedOut: return "TIMEOUT";
    case JobState::kPreempted: return "PREEMPTED";
    case JobState::kCancelled: return "CANCELLED";
    case JobState::kNodeFailed: return "NODE_FAIL";
  }
  return "?";
}

const char* to_string(EndReason r) {
  switch (r) {
    case EndReason::kCompleted: return "completed";
    case EndReason::kTimeLimit: return "time-limit";
    case EndReason::kPreempted: return "preempted";
    case EndReason::kCancelled: return "cancelled";
    case EndReason::kNodeFailed: return "node-failed";
  }
  return "?";
}

const char* to_string(JobEventKind k) {
  switch (k) {
    case JobEventKind::kSubmitted: return "submitted";
    case JobEventKind::kClaimed: return "claimed";
    case JobEventKind::kLaunched: return "launched";
    case JobEventKind::kSigterm: return "sigterm";
    case JobEventKind::kEnded: return "ended";
  }
  return "?";
}

const char* to_string(ObservedNodeState s) {
  switch (s) {
    case ObservedNodeState::kIdle: return "idle";
    case ObservedNodeState::kHpc: return "hpc";
    case ObservedNodeState::kPilot: return "pilot";
    case ObservedNodeState::kDown: return "down";
  }
  return "?";
}

namespace {
sim::SimTime floor_to_slot(sim::SimTime t, sim::SimTime slot) {
  if (slot <= sim::SimTime::zero()) return t;
  return slot * (t / slot);
}
}  // namespace

Slurmctld::Slurmctld(sim::Simulation& simulation, Config config,
                     std::vector<Partition> partitions)
    : sim_{simulation}, config_{config} {
  if (config_.node_count == 0)
    throw std::invalid_argument("Slurmctld: node_count must be positive");
  for (auto& p : partitions) {
    const std::string name = p.name;
    if (!partitions_.emplace(name, std::move(p)).second)
      throw std::invalid_argument("Slurmctld: duplicate partition " + name);
  }
  nodes_.resize(config_.node_count);
  for (std::uint32_t i = 0; i < config_.node_count; ++i) nodes_[i].id = i;
  last_freed_.assign(config_.node_count, sim::SimTime::zero());
  draining_.assign(config_.node_count, false);
  last_pass_reserved_from_.assign(config_.node_count, sim::SimTime::max());

  // Fidelity extensions (ROADMAP item 4); everything below is inert with
  // the default-constructed Fidelity block.
  tres_on_ = config_.fidelity.tres_mode;
  if (tres_on_) {
    if (config_.fidelity.node_capacity.is_zero())
      throw std::invalid_argument(
          "Slurmctld: tres_mode requires a non-zero node_capacity");
    for (Node& node : nodes_) node.capacity = config_.fidelity.node_capacity;
  }
  for (const Qos& q : config_.fidelity.qos) {
    if (q.name.empty())
      throw std::invalid_argument("Slurmctld: QOS with empty name");
    if (!qos_.emplace(q.name, q).second)
      throw std::invalid_argument("Slurmctld: duplicate QOS " + q.name);
  }
  qos_on_ = !qos_.empty();
  for (const Reservation& r : config_.fidelity.reservations) add_reservation(r);

  sim_.every(config_.sched_interval, [this] { run_sched_pass(true); });
  HW_OBS_IF(config_.obs) {
    config_.obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      m.counter("slurm.jobs.submitted").set(counters_.submitted);
      m.counter("slurm.jobs.started").set(counters_.started);
      m.counter("slurm.jobs.completed").set(counters_.completed);
      m.counter("slurm.jobs.timed_out").set(counters_.timed_out);
      m.counter("slurm.jobs.preempted").set(counters_.preempted);
      m.counter("slurm.jobs.cancelled").set(counters_.cancelled);
      m.counter("slurm.node_failures").set(counters_.node_failures);
      m.counter("slurm.sched_passes").set(counters_.sched_passes);
      m.gauge("slurm.nodes.idle").set(static_cast<double>(idle_node_count()));
      m.gauge("slurm.jobs.running").set(static_cast<double>(running_count()));
    });
  }
}

void Slurmctld::enqueue_pending(std::int32_t tier, const JobRecord& rec) {
  auto& q = pending_[tier];
  // effective_priority == spec.priority when QOS and fair-share are off,
  // so legacy queue orderings (and golden decision logs) are unchanged.
  const QueueEntry entry{rec.effective_priority, rec.id};
  q.insert(std::upper_bound(q.begin(), q.end(), entry), entry);
}

void Slurmctld::remove_pending(std::int32_t tier, JobId id) {
  auto& q = pending_[tier];
  q.erase(std::remove_if(q.begin(), q.end(),
                         [id](const QueueEntry& e) { return e.id == id; }),
          q.end());
}

JobId Slurmctld::submit(JobSpec spec) {
  const auto pit = partitions_.find(spec.partition);
  if (pit == partitions_.end())
    throw std::invalid_argument("Slurmctld::submit: unknown partition '" +
                                spec.partition + "'");
  const Partition& part = pit->second;
  if (spec.num_nodes == 0 || spec.num_nodes > nodes_.size())
    throw std::invalid_argument("Slurmctld::submit: bad node count");
  if (spec.time_limit <= sim::SimTime::zero())
    throw std::invalid_argument("Slurmctld::submit: non-positive time limit");
  if (part.max_time > sim::SimTime::zero() && spec.time_limit > part.max_time)
    throw std::invalid_argument("Slurmctld::submit: limit exceeds partition max");
  if (spec.time_min > spec.time_limit)
    throw std::invalid_argument("Slurmctld::submit: time_min > time_limit");
  if (tres_on_) {
    // All-zero request means "whole node" (legacy exclusive semantics).
    if (spec.tres_per_node.is_zero()) {
      spec.tres_per_node = config_.fidelity.node_capacity;
    } else if (!spec.tres_per_node.fits_within(config_.fidelity.node_capacity)) {
      throw std::invalid_argument(
          "Slurmctld::submit: TRES request exceeds node capacity");
    }
  }
  const Qos* qos = find_qos(spec.qos);
  if (!spec.qos.empty() && qos_on_ && qos == nullptr)
    throw std::invalid_argument("Slurmctld::submit: unknown QOS '" + spec.qos +
                                "'");

  JobRecord rec;
  rec.id = next_job_id_++;
  rec.priority_tier = part.priority_tier;
  rec.preemptible = part.preempt_mode == PreemptMode::kCancel;
  rec.submit_time = sim_.now();
  rec.spec = std::move(spec);
  rec.preempt_tier = qos ? qos->preempt_tier : part.priority_tier;
  rec.effective_priority = rec.spec.priority + (qos ? qos->priority_weight : 0);
  if (config_.fidelity.fair_share.enabled) {
    const std::string& account =
        rec.spec.account.empty() ? rec.spec.partition : rec.spec.account;
    rec.effective_priority -= debit_for_usage(decayed_usage(account));
  }
  const JobId id = rec.id;
  const bool is_var = rec.spec.time_min > sim::SimTime::zero();
  const std::int32_t tier = rec.priority_tier;
  const auto [it, inserted] = jobs_.emplace(id, std::move(rec));
  enqueue_pending(tier, it->second);
  ++counters_.submitted;
  notify_job(JobEventKind::kSubmitted, it->second);
  // Variable-length pilots wait for the periodic pass when configured so.
  if (!(is_var && config_.var_jobs_periodic_only && tier == 0)) {
    request_schedule();
  }
  return id;
}

bool Slurmctld::cancel(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  JobRecord& rec = it->second;
  switch (rec.state) {
    case JobState::kPending:
      remove_pending(rec.priority_tier, id);
      finish_job(rec, EndReason::kCancelled);
      return true;
    case JobState::kRunning:
      begin_grace(rec, EndReason::kTimeLimit);
      return true;
    case JobState::kCompleting:
      return true;  // already on its way out
    default:
      return false;
  }
}

void Slurmctld::job_exited(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  JobRecord& rec = it->second;
  if (!rec.is_active()) return;
  finish_job(rec, rec.state == JobState::kCompleting
                      ? rec.grace_reason  // exited during grace
                      : EndReason::kCompleted);
}

void Slurmctld::set_node_down(NodeId id) {
  Node& node = nodes_.at(id);
  if (node.state == NodeState::kDown) return;
  if (node.state == NodeState::kAllocated) {
    if (tres_on_) {
      // Keep claimants off this node while its jobs collapse (a victim
      // ending here must not complete a claim onto a dying node).
      draining_[id] = true;
      std::vector<JobId> doomed = node.running_jobs;
      ++counters_.node_failures;
      for (const JobId jid : doomed) {
        const auto jit = jobs_.find(jid);
        if (jit != jobs_.end() && jit->second.is_active())
          finish_job(jit->second, EndReason::kNodeFailed);
      }
    } else {
      JobRecord& rec = jobs_.at(node.running_job);
      ++counters_.node_failures;
      finish_job(rec, EndReason::kNodeFailed);
    }
  }
  // A pending launch claiming this node can no longer be satisfied here;
  // requeue the claimant.
  const auto claim = node_claims_.find(id);
  if (claim != node_claims_.end()) {
    const JobId claimant = claim->second;
    drop_claim_tres(claimant);
    JobRecord& rec = jobs_.at(claimant);
    rec.state = JobState::kPending;
    enqueue_pending(rec.priority_tier, rec);
  }
  node.state = NodeState::kDown;
  node.running_job = 0;
  if (tres_on_) {
    node.allocated = TresVector{};
    node.running_jobs.clear();
  }
  announce(id);
  request_schedule();
}

void Slurmctld::fail_node(NodeId id, sim::SimTime grace) {
  Node& node = nodes_.at(id);
  if (node.state == NodeState::kDown) return;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(obs::Cat::kFault, obs::Phase::kInstant,
                              "node_fail", obs::Track::kSlurmctld, 0, id,
                              sim_.now(), grace.to_seconds());
  }
  if (grace <= sim::SimTime::zero() || node.state != NodeState::kAllocated) {
    set_node_down(id);
    return;
  }
  if (tres_on_) {
    ++counters_.node_failures;
    draining_[id] = true;
    std::vector<JobId> doomed = node.running_jobs;
    for (const JobId jid : doomed) {
      JobRecord& rec = jobs_.at(jid);
      if (rec.state == JobState::kRunning)
        begin_grace(rec, EndReason::kNodeFailed, grace);
    }
    return;
  }
  JobRecord& rec = jobs_.at(node.running_job);
  ++counters_.node_failures;
  // Like a maintenance drain, the node leaves service once its job is
  // gone — but here the job is being killed on a truncated clock.
  draining_[id] = true;
  if (rec.state == JobState::kRunning)
    begin_grace(rec, EndReason::kNodeFailed, grace);
  // kCompleting: a grace window is already running with an earlier-or-
  // equal partition deadline; the node goes down when the job leaves.
}

void Slurmctld::set_node_up(NodeId id) {
  Node& node = nodes_.at(id);
  draining_[id] = false;
  if (node.state != NodeState::kDown) return;
  node.state = NodeState::kIdle;
  announce(id);
  request_schedule();
}

void Slurmctld::drain_node(NodeId id) {
  Node& node = nodes_.at(id);
  if (node.state == NodeState::kDown) return;
  draining_[id] = true;
  if (node.state == NodeState::kIdle) {
    node.state = NodeState::kDown;
    announce(id);
  }
  // Allocated: the running job finishes normally; free_nodes handles the
  // hand-over to maintenance.
}

bool Slurmctld::is_draining(NodeId id) const { return draining_.at(id); }

const JobRecord& Slurmctld::job(JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("Slurmctld::job: unknown id");
  return it->second;
}

bool Slurmctld::is_known(JobId id) const { return jobs_.contains(id); }

void Slurmctld::for_each_job(
    const std::function<void(const JobRecord&)>& fn) const {
  // jobs_ is unordered; visit in id order for stable output.
  std::vector<JobId> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const JobId id : ids) fn(jobs_.at(id));
}

std::size_t Slurmctld::pending_count(const std::string& partition) const {
  std::size_t n = 0;
  for (const auto& [tier, q] : pending_) {
    for (const QueueEntry& e : q) {
      if (jobs_.at(e.id).spec.partition == partition) ++n;
    }
  }
  return n;
}

std::size_t Slurmctld::running_count() const {
  std::size_t n = 0;
  for (const auto& [id, rec] : jobs_) {
    if (rec.is_active()) ++n;
  }
  return n;
}

ObservedNodeState Slurmctld::observed_state(NodeId id) const {
  const Node& node = nodes_.at(id);
  switch (node.state) {
    case NodeState::kDown:
      return ObservedNodeState::kDown;
    case NodeState::kIdle:
      return ObservedNodeState::kIdle;
    case NodeState::kAllocated: {
      if (tres_on_) {
        // Prime HPC work dominates the observed role: the paper's sinfo
        // perspective reports a shared node as busy with HPC.
        for (const JobId jid : node.running_jobs) {
          if (jobs_.at(jid).priority_tier != 0) return ObservedNodeState::kHpc;
        }
        return ObservedNodeState::kPilot;
      }
      const JobRecord& rec = jobs_.at(node.running_job);
      return rec.priority_tier == 0 ? ObservedNodeState::kPilot
                                    : ObservedNodeState::kHpc;
    }
  }
  return ObservedNodeState::kIdle;
}

std::vector<ObservedNodeState> Slurmctld::observed_states() const {
  std::vector<ObservedNodeState> out(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    out[i] = observed_state(static_cast<NodeId>(i));
  return out;
}

std::size_t Slurmctld::idle_node_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (node.state == NodeState::kIdle) ++n;
  return n;
}

std::size_t Slurmctld::available_node_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kIdle) {
      ++n;
    } else if (node.state == NodeState::kAllocated) {
      if (tres_on_) {
        if (observed_state(node.id) == ObservedNodeState::kPilot) ++n;
        continue;
      }
      const JobRecord& rec = jobs_.at(node.running_job);
      if (rec.priority_tier == 0) ++n;
    }
  }
  return n;
}

Slurmctld::StateTotals Slurmctld::state_totals() const {
  StateTotals t;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    switch (observed_state(static_cast<NodeId>(i))) {
      case ObservedNodeState::kIdle: ++t.idle; break;
      case ObservedNodeState::kHpc: ++t.hpc; break;
      case ObservedNodeState::kPilot: ++t.pilot; break;
      case ObservedNodeState::kDown: ++t.down; break;
    }
  }
  return t;
}

void Slurmctld::schedule_now() { run_sched_pass(false); }

void Slurmctld::request_schedule() {
  if (pass_requested_) return;
  pass_requested_ = true;
  const sim::SimTime at =
      std::max(sim_.now(), last_pass_ + config_.min_pass_gap);
  sim_.at(at, [this] {
    pass_requested_ = false;
    run_sched_pass(false);
  });
}

const Partition& Slurmctld::partition_of(const JobRecord& rec) const {
  return partitions_.at(rec.spec.partition);
}

void Slurmctld::build_availability_into(std::int32_t tier,
                                        Availability& a) const {
  const sim::SimTime now = sim_.now();
  a.free_at.assign(nodes_.size(), now);
  a.pilot_free_at.assign(nodes_.size(), now);
  const bool any_claims = !node_claims_.empty();
  for (const Node& node : nodes_) {
    sim::SimTime hpc_free = now;
    sim::SimTime pilot_free = now;
    if (node.state == NodeState::kDown) {
      hpc_free = pilot_free = sim::SimTime::max();
    } else if (node.state == NodeState::kAllocated) {
      if (tres_on_) {
        // Free when the *last* co-resident job is expected out; the node
        // is transparent to `tier` only if every job on it is
        // preemptable by that tier.
        sim::SimTime expected_max = now;
        bool all_preemptable = true;
        for (const JobId jid : node.running_jobs) {
          const JobRecord& rec = jobs_.at(jid);
          sim::SimTime expected = rec.expected_end();
          if (rec.state == JobState::kCompleting)
            expected = std::min(expected, rec.end_time);
          expected_max = std::max(expected_max, std::max(expected, now));
          if (!(rec.preemptible && rec.preempt_tier < tier))
            all_preemptable = false;
        }
        pilot_free = expected_max;
        hpc_free = all_preemptable ? now : expected_max;
      } else {
        const JobRecord& rec = jobs_.at(node.running_job);
        sim::SimTime expected = rec.expected_end();
        if (rec.state == JobState::kCompleting)
          expected = std::min(expected, rec.end_time);
        expected = std::max(expected, now);
        pilot_free = expected;
        // Preemptible lower-tier jobs are transparent to higher tiers.
        const bool preemptable_by_us =
            rec.preemptible && rec.priority_tier < tier;
        hpc_free = preemptable_by_us ? now : expected;
      }
    }
    // Claimed nodes are spoken for until the claimant's expected end.
    if (any_claims) {
      const auto claim = node_claims_.find(node.id);
      if (claim != node_claims_.end()) {
        const JobRecord& claimant = jobs_.at(claim->second);
        const sim::SimTime claim_end =
            now + claimant.granted_limit + partition_of(claimant).grace_time;
        hpc_free = std::max(hpc_free, claim_end);
        pilot_free = std::max(pilot_free, claim_end);
      }
    }
    a.free_at[node.id] = hpc_free;
    a.pilot_free_at[node.id] = pilot_free;
  }
}

Slurmctld::Availability Slurmctld::availability_snapshot(
    std::int32_t tier) const {
  Availability a;
  build_availability_into(tier, a);
  return a;
}

void Slurmctld::run_sched_pass(bool periodic) {
  if (tres_on_) {
    // TRES mode runs a parallel pass implementation; the legacy body
    // below is never entered, so legacy decision logs cannot shift.
    run_sched_pass_tres(periodic);
    return;
  }
  ++counters_.sched_passes;
  const std::uint64_t started_before = counters_.started;
  const sim::SimTime now = sim_.now();
  last_pass_ = now;

  // Node lists for this pass, updated in place as launches happen. All
  // pass-local vectors are member scratch: steady-state passes allocate
  // nothing (ISSUE 2 hot-path contract, pinned by SchedGolden).
  PassCache& cache = pass_cache_;
  cache.idle.clear();
  cache.pilot_held.clear();
  const bool any_claims = !node_claims_.empty();
  for (const Node& node : nodes_) {
    if (any_claims && node_claims_.contains(node.id)) continue;
    if (node.state == NodeState::kIdle) {
      cache.idle.push_back(node.id);
    } else if (node.state == NodeState::kAllocated) {
      const JobRecord& rec = jobs_.at(node.running_job);
      if (rec.preemptible && rec.priority_tier == 0 &&
          rec.state == JobState::kRunning) {
        cache.pilot_held.push_back(node.id);
      }
    }
  }
  // LIFO reuse: most recently freed first (ties by id for determinism).
  std::stable_sort(cache.idle.begin(), cache.idle.end(),
                   [this](NodeId a, NodeId b) {
                     return last_freed_[a] > last_freed_[b];
                   });

  // ---- Phase 1: HPC tiers (>= 1), highest first, backfill with up to
  // reservation_depth future reservations. reserved_from[n] = earliest
  // instant from which node n is reserved for a blocked job (max() when
  // unreserved); backfilled jobs must end before it.
  std::vector<sim::SimTime>& reserved_from = reserved_from_scratch_;
  reserved_from.assign(nodes_.size(), sim::SimTime::max());
  std::size_t reservations_made = 0;

  for (auto& [tier, queue] : pending_) {
    if (tier == 0) break;  // pilots handled in phase 2

    // Planning timeline for this tier: when each node is expected free,
    // advanced as we launch jobs and book reservations within this pass.
    // Built once per (pass, tier) into the cached buffer and then
    // mutated in place — never rebuilt or copied mid-tier.
    build_availability_into(tier, avail_scratch_);
    std::vector<sim::SimTime>& scratch = avail_scratch_.free_at;

    std::vector<QueueEntry>& still_pending = still_pending_scratch_;
    still_pending.clear();
    still_pending.reserve(queue.size());
    std::size_t examined = 0;
    for (const QueueEntry& entry : queue) {
      JobRecord& rec = jobs_.at(entry.id);
      if (examined++ >= config_.backfill_depth) {
        still_pending.push_back(entry);
        continue;
      }
      if (try_start_hpc(rec, cache, reserved_from)) {
        // Reflect the launch (or claim) in the planning timeline.
        const sim::SimTime busy_until =
            now + rec.granted_limit + partition_of(rec).grace_time;
        for (const NodeId n : rec.nodes)
          scratch[n] = std::max(scratch[n], busy_until);
        continue;
      }
      still_pending.push_back(entry);
      if (reservations_made < config_.reservation_depth) {
        // Book a future reservation for this blocked job on the nodes
        // that free earliest in the planning timeline.
        std::vector<std::pair<sim::SimTime, NodeId>>& horizon =
            horizon_scratch_;
        horizon.clear();
        horizon.reserve(nodes_.size());
        for (const Node& node : nodes_) {
          if (scratch[node.id] == sim::SimTime::max()) continue;
          horizon.emplace_back(scratch[node.id], node.id);
        }
        if (horizon.size() >= rec.spec.num_nodes) {
          std::nth_element(horizon.begin(),
                           horizon.begin() + (rec.spec.num_nodes - 1),
                           horizon.end());
          const sim::SimTime res_start = horizon[rec.spec.num_nodes - 1].first;
          if (res_start <= now + config_.backfill_window) {
            for (std::uint32_t k = 0; k < rec.spec.num_nodes; ++k) {
              const NodeId n = horizon[k].second;
              reserved_from[n] = std::min(reserved_from[n], res_start);
              scratch[n] = res_start + rec.spec.time_limit;
            }
            ++reservations_made;
          }
        }
      }
    }
    queue.swap(still_pending);
  }

  // ---- Phase 2: tier-0 pilot placement on idle nodes. ------------------
  place_pilots(cache, reserved_from, periodic);

  // Remember this pass's reservation picture for stale var sizing.
  if (periodic) last_pass_reserved_from_ = reserved_from;

  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(
        obs::Cat::kSched, obs::Phase::kInstant, "sched_pass",
        obs::Track::kSlurmctld, 0, counters_.sched_passes, now,
        periodic ? 1.0 : 0.0,
        static_cast<double>(counters_.started - started_before));
  }
}

bool Slurmctld::try_start_hpc(JobRecord& rec, PassCache& cache,
                              const std::vector<sim::SimTime>& reserved_until) {
  const sim::SimTime now = sim_.now();
  // Variable-length jobs can shrink to time_min, so that is what must fit
  // before a reservation; fixed jobs need their full declared limit.
  const sim::SimTime limit = rec.spec.time_min > sim::SimTime::zero()
                                 ? rec.spec.time_min
                                 : rec.spec.time_limit;

  // Cheap reject: not enough usable nodes even before constraints.
  if (cache.idle.size() + cache.pilot_held.size() < rec.spec.num_nodes)
    return false;

  // A reserved node is usable only if this job ends before the
  // reservation starts (EASY backfill condition).
  const auto usable = [&](NodeId n) {
    return reserved_until[n] == sim::SimTime::max() ||
           now + limit <= reserved_until[n];
  };

  // Prefer idle nodes: fewer preemptions, no grace-period delay.
  std::vector<NodeId>& chosen = chosen_scratch_;
  chosen.clear();
  chosen.reserve(rec.spec.num_nodes);
  std::vector<std::size_t>& taken_idle_idx = taken_idle_scratch_;
  taken_idle_idx.clear();
  for (std::size_t i = 0; i < cache.idle.size(); ++i) {
    if (chosen.size() == rec.spec.num_nodes) break;
    if (!usable(cache.idle[i])) continue;
    chosen.push_back(cache.idle[i]);
    taken_idle_idx.push_back(i);
  }
  // Preempt the *youngest* pilots first: the least accumulated serving
  // time is lost, and long-lived workers (warm containers, long queues)
  // survive — matching the long-serving invoker tail the paper reports.
  // Start times are gathered once so the sort never touches the jobs_
  // hash table (two lookups per comparison in the old code).
  std::vector<sim::SimTime>& pilot_start = pilot_start_scratch_;
  pilot_start.clear();
  pilot_start.reserve(cache.pilot_held.size());
  for (const NodeId n : cache.pilot_held)
    pilot_start.push_back(jobs_.at(nodes_[n].running_job).start_time);
  std::vector<std::size_t>& pilot_order = pilot_order_scratch_;
  pilot_order.resize(cache.pilot_held.size());
  for (std::size_t i = 0; i < pilot_order.size(); ++i) pilot_order[i] = i;
  std::stable_sort(pilot_order.begin(), pilot_order.end(),
                   [&pilot_start](std::size_t a, std::size_t b) {
                     return pilot_start[a] > pilot_start[b];
                   });
  std::vector<NodeId>& victim_nodes = victim_scratch_;
  victim_nodes.clear();
  std::vector<std::size_t>& taken_pilot_idx = taken_pilot_scratch_;
  taken_pilot_idx.clear();
  for (const std::size_t i : pilot_order) {
    if (chosen.size() == rec.spec.num_nodes) break;
    if (!usable(cache.pilot_held[i])) continue;
    chosen.push_back(cache.pilot_held[i]);
    victim_nodes.push_back(cache.pilot_held[i]);
    taken_pilot_idx.push_back(i);
  }
  std::sort(taken_pilot_idx.begin(), taken_pilot_idx.end());
  if (chosen.size() < rec.spec.num_nodes) return false;

  // Commit: strike the chosen nodes from the pass cache (erase by value,
  // back-to-front to keep indices valid).
  for (auto it = taken_idle_idx.rbegin(); it != taken_idle_idx.rend(); ++it)
    cache.idle.erase(cache.idle.begin() + static_cast<std::ptrdiff_t>(*it));
  for (auto it = taken_pilot_idx.rbegin(); it != taken_pilot_idx.rend(); ++it)
    cache.pilot_held.erase(cache.pilot_held.begin() +
                           static_cast<std::ptrdiff_t>(*it));

  // Variable-length HPC jobs: size to the nearest reservation horizon.
  sim::SimTime granted = rec.spec.time_limit;
  if (rec.spec.time_min > sim::SimTime::zero()) {
    sim::SimTime horizon = sim::SimTime::max();
    for (const NodeId n : chosen)
      horizon = std::min(horizon, reserved_until[n]);
    if (horizon != sim::SimTime::max()) {
      granted = std::clamp(floor_to_slot(horizon - now, config_.slot),
                           rec.spec.time_min, rec.spec.time_limit);
    }
  }

  if (victim_nodes.empty()) {
    launch(rec, std::move(chosen), granted);
    return true;
  }

  // Preempt victims and park the job until its nodes drain.
  PendingLaunch pl;
  pl.id = rec.id;
  pl.nodes = chosen;
  pl.granted_limit = granted;
  pl.nodes_missing = victim_nodes.size();
  for (const NodeId n : chosen) node_claims_[n] = rec.id;
  pending_launches_.push_back(std::move(pl));
  notify_job(JobEventKind::kClaimed, rec);

  for (const NodeId n : victim_nodes) {
    JobRecord& victim = jobs_.at(nodes_.at(n).running_job);
    if (victim.state == JobState::kRunning)
      begin_grace(victim, EndReason::kPreempted);
    // kCompleting victims are already draining; the claim waits for them.
  }
  return true;
}

void Slurmctld::place_pilots(PassCache& cache,
                             const std::vector<sim::SimTime>& reserved_from,
                             bool periodic) {
  const auto tier0 = pending_.find(0);
  if (tier0 == pending_.end() || tier0->second.empty()) return;
  auto& queue = tier0->second;

  const sim::SimTime now = sim_.now();
  const std::vector<sim::SimTime>& sizing_view =
      config_.var_jobs_periodic_only ? last_pass_reserved_from_ : reserved_from;
  bool var_allowed = !config_.var_jobs_periodic_only || periodic;
  if (var_allowed && config_.var_jobs_periodic_only &&
      now - last_var_pass_ < config_.var_pass_period) {
    var_allowed = false;
  }
  if (var_allowed && config_.var_jobs_periodic_only) last_var_pass_ = now;

  // For each idle node, pick the best (highest-priority) queued pilot
  // that may start there: under the preempt-aware policy that is simply
  // the head of the queue; under hole-fitting, the first pilot whose
  // declared limit fits before the node's reservation.
  // Pilots take the *coldest* idle nodes (longest idle first): under the
  // LIFO reuse order HPC jobs consume hot nodes, so cold placement keeps
  // pilots out of the line of fire and lengthens their serving lives.
  std::vector<NodeId>& unused_nodes = unused_nodes_scratch_;
  unused_nodes.clear();
  std::vector<NodeId>& cold_first = cold_first_scratch_;
  cold_first.assign(cache.idle.rbegin(), cache.idle.rend());
  for (const NodeId node : cold_first) {
    if (now - last_freed_[node] < config_.pilot_min_idle) {
      unused_nodes.push_back(node);
      continue;
    }
    if (queue.empty()) {
      unused_nodes.push_back(node);
      continue;
    }
    const sim::SimTime hole = reserved_from[node] == sim::SimTime::max()
                                  ? sim::SimTime::max()
                                  : reserved_from[node] - now;

    bool placed = false;
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      JobRecord& rec = jobs_.at(it->id);
      assert(rec.spec.num_nodes == 1 &&
             "tier-0 pilots are single-node by design");
      const bool is_var = rec.spec.time_min > sim::SimTime::zero();
      if (is_var && !var_allowed) continue;

      sim::SimTime granted = rec.spec.time_limit;
      if (is_var) {
        // Sized against the (possibly stale) availability picture.
        const sim::SimTime stale_hole =
            sizing_view[node] == sim::SimTime::max()
                ? sim::SimTime::max()
                : sizing_view[node] - now;
        if (stale_hole != sim::SimTime::max()) {
          granted = std::clamp(floor_to_slot(stale_hole, config_.slot),
                               rec.spec.time_min, rec.spec.time_limit);
        }
      } else if (config_.pilot_placement == PilotPlacement::kHoleFitting &&
                 hole != sim::SimTime::max() && rec.spec.time_limit > hole) {
        continue;  // does not fit; try a shorter pilot for this node
      }

      queue.erase(it);
      launch(rec, {node}, granted);
      placed = true;
      break;
    }
    if (!placed) unused_nodes.push_back(node);
  }
  std::reverse(unused_nodes.begin(), unused_nodes.end());
  cache.idle.swap(unused_nodes);
}

void Slurmctld::launch(JobRecord& rec, std::vector<NodeId> nodes,
                       sim::SimTime granted_limit) {
  const sim::SimTime now = sim_.now();
  rec.state = JobState::kRunning;
  rec.start_time = now;
  rec.granted_limit = granted_limit;
  rec.nodes = std::move(nodes);
  for (const NodeId n : rec.nodes) {
    Node& node = nodes_.at(n);
    if (tres_on_) {
      const ObservedNodeState prev = observed_state(n);
      node.allocated += rec.spec.tres_per_node;
      node.running_jobs.push_back(rec.id);
      node.state = NodeState::kAllocated;
      node.running_job = node.running_jobs.front();
      if (observed_state(n) != prev) announce(n);
    } else {
      assert(node.state == NodeState::kIdle);
      node.state = NodeState::kAllocated;
      node.running_job = rec.id;
      announce(n);
    }
  }
  ++counters_.started;
  notify_job(JobEventKind::kLaunched, rec);
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kSched, obs::Phase::kInstant, "job_launch",
        obs::Track::kSlurmctld, 0, rec.id, now,
        static_cast<double>(rec.nodes.size()), granted_limit.to_seconds());
  }

  const JobId id = rec.id;
  const sim::SimTime natural =
      rec.spec.actual_runtime == sim::SimTime::max()
          ? sim::SimTime::max()
          : now + rec.spec.actual_runtime;
  const sim::SimTime at_limit = now + granted_limit;
  if (natural <= at_limit) {
    end_events_[id] = sim_.at(natural, [this, id] {
      end_events_.erase(id);
      finish_job(jobs_.at(id), EndReason::kCompleted);
    });
  } else {
    // The job will outlive its granted limit: SIGTERM at the limit,
    // grace, then SIGKILL (Prometheus grants the full grace on timeout
    // too — Sec. III-C: "because of eviction or timeout").
    end_events_[id] = sim_.at(at_limit, [this, id] {
      end_events_.erase(id);
      begin_grace(jobs_.at(id), EndReason::kTimeLimit);
    });
  }

  if (rec.spec.on_start) {
    if (config_.launch_latency > sim::SimTime::zero()) {
      auto cb = rec.spec.on_start;
      sim_.after(config_.launch_latency, [this, id, cb] {
        if (is_known(id) && jobs_.at(id).is_active()) cb(jobs_.at(id));
      });
    } else {
      rec.spec.on_start(rec);
    }
  }
}

void Slurmctld::begin_grace(JobRecord& rec, EndReason reason,
                            sim::SimTime grace_override) {
  assert(rec.state == JobState::kRunning);
  const sim::SimTime now = sim_.now();
  const Partition& part = partition_of(rec);
  sim::SimTime grace = part.grace_time;
  if (grace_override != sim::SimTime::max())
    grace = std::min(grace, grace_override);
  rec.state = JobState::kCompleting;
  rec.grace_reason = reason;
  // end_time doubles as the SIGKILL deadline while completing.
  rec.end_time = now + grace;

  // The natural-end event no longer applies (we are being terminated);
  // unless the job would finish on its own before the SIGKILL deadline.
  const auto evt = end_events_.find(rec.id);
  if (evt != end_events_.end()) {
    sim_.cancel(evt->second);
    end_events_.erase(evt);
  }
  const JobId id = rec.id;
  const sim::SimTime natural =
      rec.spec.actual_runtime == sim::SimTime::max()
          ? sim::SimTime::max()
          : rec.start_time + rec.spec.actual_runtime;
  if (natural < rec.end_time) {
    end_events_[id] = sim_.at(natural, [this, id] {
      end_events_.erase(id);
      finish_job(jobs_.at(id), EndReason::kCompleted);
    });
  }

  kill_events_[id] = sim_.at(rec.end_time, [this, id, reason] {
    kill_events_.erase(id);
    finish_job(jobs_.at(id), reason);
  });

  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kSched, obs::Phase::kInstant, "job_grace",
        obs::Track::kSlurmctld, 0, rec.id, now, grace.to_seconds(),
        static_cast<double>(static_cast<int>(reason)));
  }
  notify_job(JobEventKind::kSigterm, rec, rec.end_time, grace, reason);

  if (rec.spec.on_sigterm) rec.spec.on_sigterm(rec);
}

void Slurmctld::finish_job(JobRecord& rec, EndReason reason) {
  const auto evt = end_events_.find(rec.id);
  if (evt != end_events_.end()) {
    sim_.cancel(evt->second);
    end_events_.erase(evt);
  }
  const auto kevt = kill_events_.find(rec.id);
  if (kevt != kill_events_.end()) {
    sim_.cancel(kevt->second);
    kill_events_.erase(kevt);
  }
  const bool was_active = rec.is_active();
  rec.end_time = sim_.now();
  switch (reason) {
    case EndReason::kCompleted:
      rec.state = JobState::kCompleted;
      ++counters_.completed;
      break;
    case EndReason::kTimeLimit:
      rec.state = JobState::kTimedOut;
      ++counters_.timed_out;
      break;
    case EndReason::kPreempted:
      rec.state = JobState::kPreempted;
      ++counters_.preempted;
      break;
    case EndReason::kCancelled:
      rec.state = JobState::kCancelled;
      ++counters_.cancelled;
      break;
    case EndReason::kNodeFailed:
      rec.state = JobState::kNodeFailed;
      break;
  }
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kSched, obs::Phase::kInstant, "job_end",
        obs::Track::kSlurmctld, 0, rec.id, rec.end_time,
        static_cast<double>(static_cast<int>(reason)));
  }
  notify_job(JobEventKind::kEnded, rec, sim::SimTime::zero(),
             sim::SimTime::zero(), reason);
  if (was_active) free_nodes(rec);
  if (was_active && config_.fidelity.fair_share.enabled) charge_fair_share(rec);
  if (tres_on_) victim_ended_tres(rec.id);
  if (rec.spec.on_end) rec.spec.on_end(rec, reason);
  if (was_active) request_schedule();
}

void Slurmctld::free_nodes(const JobRecord& rec) {
  for (const NodeId n : rec.nodes) {
    Node& node = nodes_.at(n);
    if (node.state == NodeState::kDown) continue;  // failed underneath us
    if (tres_on_) {
      auto& rj = node.running_jobs;
      const auto it = std::find(rj.begin(), rj.end(), rec.id);
      if (it == rj.end()) continue;
      const ObservedNodeState prev = observed_state(n);
      rj.erase(it);
      node.allocated -= rec.spec.tres_per_node;
      if (rj.empty()) {
        node.allocated = TresVector{};
        node.running_job = 0;
        if (draining_[n]) {
          node.state = NodeState::kDown;
        } else {
          node.state = NodeState::kIdle;
          last_freed_[n] = sim_.now();
        }
      } else {
        node.running_job = rj.front();
      }
      if (observed_state(n) != prev) announce(n);
      // Claims complete via victim_ended_tres, not per-node node_freed.
      continue;
    }
    if (node.running_job != rec.id) continue;
    if (draining_[n]) {
      // Maintenance hand-over: the node leaves service instead of going
      // back to the pool.
      node.state = NodeState::kDown;
      node.running_job = 0;
      announce(n);
      continue;
    }
    node.state = NodeState::kIdle;
    node.running_job = 0;
    last_freed_[n] = sim_.now();
    announce(n);
    node_freed(n);
  }
}

void Slurmctld::node_freed(NodeId id) {
  const auto claim = node_claims_.find(id);
  if (claim == node_claims_.end()) return;
  const JobId claimant = claim->second;
  for (auto it = pending_launches_.begin(); it != pending_launches_.end();
       ++it) {
    if (it->id != claimant) continue;
    assert(it->nodes_missing > 0);
    if (--it->nodes_missing == 0) {
      PendingLaunch pl = std::move(*it);
      pending_launches_.erase(it);
      for (const NodeId n : pl.nodes) node_claims_.erase(n);
      JobRecord& rec = jobs_.at(pl.id);
      launch(rec, std::move(pl.nodes), pl.granted_limit);
    }
    return;
  }
}

// --- TRES-mode scheduling ---------------------------------------------------

void Slurmctld::build_reservation_deadlines(
    std::vector<sim::SimTime>& out) const {
  out.assign(nodes_.size(), sim::SimTime::max());
  if (reservations_.empty()) return;
  const sim::SimTime now = sim_.now();
  for (const Reservation& r : reservations_) {
    if (r.end <= now) continue;
    const sim::SimTime from = std::max(r.start, now);
    for (const NodeId n : r.nodes) out[n] = std::min(out[n], from);
  }
}

bool Slurmctld::reservation_allows(
    const std::vector<sim::SimTime>& res_next_start, NodeId node,
    sim::SimTime limit_plus_grace) const {
  return res_next_start[node] == sim::SimTime::max() ||
         sim_.now() + limit_plus_grace <= res_next_start[node];
}

void Slurmctld::run_sched_pass_tres(bool periodic) {
  ++counters_.sched_passes;
  const std::uint64_t started_before = counters_.started;
  const sim::SimTime now = sim_.now();
  last_pass_ = now;

  std::vector<sim::SimTime>& res_next = res_deadline_scratch_;
  build_reservation_deadlines(res_next);

  // Phase 1: HPC tiers, highest first, strict priority order with EASY
  // backfill: once the head job of a tier is blocked, later jobs may
  // start only if they end before its shadow time.
  for (auto& [tier, queue] : pending_) {
    if (tier == 0) break;  // pilots handled in phase 2
    std::vector<QueueEntry>& still_pending = still_pending_scratch_;
    still_pending.clear();
    still_pending.reserve(queue.size());
    sim::SimTime shadow = sim::SimTime::max();
    bool head_blocked = false;
    std::size_t examined = 0;
    for (const QueueEntry& entry : queue) {
      JobRecord& rec = jobs_.at(entry.id);
      if (examined++ >= config_.backfill_depth) {
        still_pending.push_back(entry);
        continue;
      }
      if (try_start_tres(rec, res_next, shadow)) continue;
      if (!head_blocked) {
        head_blocked = true;
        shadow = tres_shadow_time(rec, res_next);
      }
      still_pending.push_back(entry);
    }
    queue.swap(still_pending);
  }

  // Phase 2: pilots pack into whatever TRES is left — including partial
  // nodes already running prime HPC work (fractional-node harvesting).
  place_pilots_tres(res_next, periodic);

  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(
        obs::Cat::kSched, obs::Phase::kInstant, "sched_pass",
        obs::Track::kSlurmctld, 0, counters_.sched_passes, now,
        periodic ? 1.0 : 0.0,
        static_cast<double>(counters_.started - started_before));
  }
}

bool Slurmctld::try_start_tres(JobRecord& rec,
                               const std::vector<sim::SimTime>& res_next_start,
                               sim::SimTime shadow) {
  const sim::SimTime now = sim_.now();
  const bool is_var = rec.spec.time_min > sim::SimTime::zero();
  const sim::SimTime limit = is_var ? rec.spec.time_min : rec.spec.time_limit;
  const Partition& part = partition_of(rec);
  const sim::SimTime fence = limit + part.grace_time;
  // EASY legality: backfilled jobs must end before the head job's shadow.
  if (shadow != sim::SimTime::max() && now + limit > shadow) return false;

  const TresVector want = rec.spec.tres_per_node;

  const auto node_usable = [&](const Node& node) {
    return node.state != NodeState::kDown && !draining_[node.id] &&
           !node_claims_.contains(node.id) &&
           reservation_allows(res_next_start, node.id, fence);
  };

  // Nodes whose free TRES fits right now, best-fit first (least free
  // cpus): partial nodes fill up before idle nodes are broken open,
  // keeping whole-node holes for multi-node jobs and cold pilots.
  std::vector<std::pair<std::uint64_t, NodeId>>& cand = tres_cand_scratch_;
  cand.clear();
  for (const Node& node : nodes_) {
    if (!node_usable(node)) continue;
    const TresVector free = node.capacity - node.allocated;
    if (!want.fits_within(free)) continue;
    cand.emplace_back((std::uint64_t{free.cpus} << 32) | node.id, node.id);
  }
  std::sort(cand.begin(), cand.end());
  std::vector<NodeId>& chosen = chosen_scratch_;
  chosen.clear();
  for (const auto& [key, n] : cand) {
    if (chosen.size() == rec.spec.num_nodes) break;
    chosen.push_back(n);
  }

  // Local (not scratch): victim callbacks below can re-enter the
  // scheduler (a drained pilot may exit synchronously).
  std::vector<JobId> victims;
  if (chosen.size() < rec.spec.num_nodes) {
    // QOS preemption: complete the allocation on nodes where evicting
    // strictly-lower-tier preemptible jobs frees enough TRES. Lowest
    // tier dies first; youngest first within a tier (least accumulated
    // serving time lost, as in the legacy victim order).
    struct Victim {
      std::int32_t tier;
      sim::SimTime start;
      JobId id;
      TresVector tres;
    };
    std::vector<Victim> evict;
    for (const Node& node : nodes_) {
      if (chosen.size() == rec.spec.num_nodes) break;
      if (!node_usable(node)) continue;
      TresVector freeable = node.capacity - node.allocated;
      if (want.fits_within(freeable)) continue;  // already in `chosen`
      evict.clear();
      for (const JobId jid : node.running_jobs) {
        const JobRecord& v = jobs_.at(jid);
        if (!v.preemptible || !v.is_active()) continue;
        if (v.preempt_tier >= rec.preempt_tier) continue;
        evict.push_back({v.preempt_tier, v.start_time, jid, v.spec.tres_per_node});
      }
      std::sort(evict.begin(), evict.end(),
                [](const Victim& a, const Victim& b) {
                  if (a.tier != b.tier) return a.tier < b.tier;
                  if (a.start != b.start) return a.start > b.start;
                  return a.id > b.id;
                });
      std::size_t used = 0;
      for (const Victim& v : evict) {
        if (want.fits_within(freeable)) break;
        freeable += v.tres;
        ++used;
      }
      if (!want.fits_within(freeable)) continue;
      chosen.push_back(node.id);
      for (std::size_t i = 0; i < used; ++i) victims.push_back(evict[i].id);
    }
    if (chosen.size() < rec.spec.num_nodes) return false;
    // A multi-node victim can be credited to several chosen nodes.
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  }

  // Variable-length jobs: size into the gap before the earliest upcoming
  // reservation window on the chosen nodes (the SIGKILL deadline must
  // clear the window, hence the grace subtraction).
  sim::SimTime granted = rec.spec.time_limit;
  if (is_var) {
    sim::SimTime horizon = sim::SimTime::max();
    for (const NodeId n : chosen)
      horizon = std::min(horizon, res_next_start[n]);
    if (horizon != sim::SimTime::max()) {
      granted =
          std::clamp(floor_to_slot(horizon - now - part.grace_time, config_.slot),
                     rec.spec.time_min, rec.spec.time_limit);
    }
  }

  if (victims.empty()) {
    launch(rec, std::move(chosen), granted);
    return true;
  }

  PendingLaunch pl;
  pl.id = rec.id;
  pl.nodes = chosen;
  pl.granted_limit = granted;
  pl.nodes_missing = victims.size();  // victim *jobs* in TRES mode
  for (const NodeId n : chosen) node_claims_[n] = rec.id;
  for (const JobId v : victims) victim_claims_.emplace(v, rec.id);
  pending_launches_.push_back(std::move(pl));
  notify_job(JobEventKind::kClaimed, rec);

  for (const JobId v : victims) {
    JobRecord& victim = jobs_.at(v);
    if (victim.state == JobState::kRunning)
      begin_grace(victim, EndReason::kPreempted);
    // kCompleting victims are already draining; the claim waits for them.
  }
  return true;
}

sim::SimTime Slurmctld::tres_shadow_time(
    const JobRecord& rec,
    const std::vector<sim::SimTime>& res_next_start) const {
  const sim::SimTime now = sim_.now();
  const bool is_var = rec.spec.time_min > sim::SimTime::zero();
  const sim::SimTime limit = is_var ? rec.spec.time_min : rec.spec.time_limit;
  const sim::SimTime fence = limit + partition_of(rec).grace_time;
  const TresVector want = rec.spec.tres_per_node;

  // Per-node earliest fit time: walk the node's jobs by expected end,
  // accumulating frees until the request fits. Planning free-TRES only
  // grows over time, so the walk is exact on declared limits.
  std::vector<std::pair<sim::SimTime, NodeId>> fits;
  std::vector<std::pair<sim::SimTime, TresVector>> ends;
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kDown || draining_[node.id]) continue;
    if (node_claims_.contains(node.id)) continue;
    if (!reservation_allows(res_next_start, node.id, fence)) continue;
    TresVector free = node.capacity - node.allocated;
    if (want.fits_within(free)) {
      fits.emplace_back(now, node.id);
      continue;
    }
    ends.clear();
    for (const JobId jid : node.running_jobs) {
      const JobRecord& j = jobs_.at(jid);
      sim::SimTime expected = j.expected_end();
      if (j.state == JobState::kCompleting)
        expected = std::min(expected, j.end_time);
      ends.emplace_back(std::max(expected, now), j.spec.tres_per_node);
    }
    std::sort(ends.begin(), ends.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [end, tres] : ends) {
      free += tres;
      if (want.fits_within(free)) {
        fits.emplace_back(end, node.id);
        break;
      }
    }
  }
  if (fits.size() < rec.spec.num_nodes) return sim::SimTime::max();
  std::nth_element(fits.begin(), fits.begin() + (rec.spec.num_nodes - 1),
                   fits.end());
  const sim::SimTime shadow = fits[rec.spec.num_nodes - 1].first;
  if (shadow > now + config_.backfill_window) return sim::SimTime::max();
  return std::max(shadow, now);
}

void Slurmctld::place_pilots_tres(
    const std::vector<sim::SimTime>& res_next_start, bool periodic) {
  const auto tier0 = pending_.find(0);
  if (tier0 == pending_.end() || tier0->second.empty()) return;
  auto& queue = tier0->second;

  const sim::SimTime now = sim_.now();
  bool var_allowed = !config_.var_jobs_periodic_only || periodic;
  if (var_allowed && config_.var_jobs_periodic_only &&
      now - last_var_pass_ < config_.var_pass_period) {
    var_allowed = false;
  }
  if (var_allowed && config_.var_jobs_periodic_only) last_var_pass_ = now;

  // Candidate order: most free cpus first (whole idle nodes before
  // partial ones), coldest first within a level — the fractional-
  // harvesting analogue of the legacy cold-first pilot policy.
  std::vector<NodeId>& order = cold_first_scratch_;
  order.clear();
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kDown || draining_[node.id]) continue;
    if (node_claims_.contains(node.id)) continue;
    if ((node.capacity - node.allocated).is_zero()) continue;
    // The fresh-idle gate only guards fully idle nodes: partial nodes
    // are already pinned down by their HPC resident.
    if (node.state == NodeState::kIdle &&
        now - last_freed_[node.id] < config_.pilot_min_idle) {
      continue;
    }
    order.push_back(node.id);
  }
  std::sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
    const std::uint32_t fa = nodes_[a].capacity.cpus - nodes_[a].allocated.cpus;
    const std::uint32_t fb = nodes_[b].capacity.cpus - nodes_[b].allocated.cpus;
    if (fa != fb) return fa > fb;
    if (last_freed_[a] != last_freed_[b]) return last_freed_[a] < last_freed_[b];
    return a < b;
  });

  for (const NodeId nid : order) {
    if (queue.empty()) break;
    Node& node = nodes_[nid];
    bool progress = true;
    while (progress && !queue.empty()) {
      progress = false;
      const TresVector free = node.capacity - node.allocated;
      if (free.is_zero()) break;
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        JobRecord& rec = jobs_.at(it->id);
        assert(rec.spec.num_nodes == 1 &&
               "tier-0 pilots are single-node by design");
        const bool is_var = rec.spec.time_min > sim::SimTime::zero();
        if (is_var && !var_allowed) continue;
        if (!rec.spec.tres_per_node.fits_within(free)) continue;
        const Partition& part = partition_of(rec);
        // Fixed pilots need their whole declared limit (plus grace) to
        // clear any upcoming window; variable ones shrink into the gap.
        const sim::SimTime feas =
            (is_var ? rec.spec.time_min : rec.spec.time_limit) +
            part.grace_time;
        if (!reservation_allows(res_next_start, nid, feas)) continue;
        sim::SimTime granted = rec.spec.time_limit;
        if (is_var && res_next_start[nid] != sim::SimTime::max()) {
          const sim::SimTime hole = res_next_start[nid] - now - part.grace_time;
          granted = std::clamp(floor_to_slot(hole, config_.slot),
                               rec.spec.time_min, rec.spec.time_limit);
        }
        queue.erase(it);
        launch(rec, {nid}, granted);
        progress = true;
        break;
      }
    }
  }
}

void Slurmctld::victim_ended_tres(JobId victim) {
  if (victim_claims_.empty()) return;
  const auto range = victim_claims_.equal_range(victim);
  if (range.first == range.second) return;
  std::vector<JobId> claimants;
  for (auto it = range.first; it != range.second; ++it)
    claimants.push_back(it->second);
  victim_claims_.erase(victim);

  for (const JobId claimant : claimants) {
    const auto plit =
        std::find_if(pending_launches_.begin(), pending_launches_.end(),
                     [claimant](const PendingLaunch& p) {
                       return p.id == claimant;
                     });
    if (plit == pending_launches_.end()) continue;
    assert(plit->nodes_missing > 0);
    if (--plit->nodes_missing != 0) continue;

    PendingLaunch pl = std::move(*plit);
    pending_launches_.erase(plit);
    for (const NodeId n : pl.nodes) node_claims_.erase(n);
    JobRecord& rec = jobs_.at(pl.id);

    // Re-check the world: a reservation window or node failure may have
    // closed in while the victims drained.
    build_reservation_deadlines(res_deadline_scratch_);
    const Partition& part = partition_of(rec);
    const sim::SimTime fence = pl.granted_limit + part.grace_time;
    bool ok = true;
    for (const NodeId n : pl.nodes) {
      const Node& node = nodes_[n];
      if (node.state == NodeState::kDown || draining_[n] ||
          !reservation_allows(res_deadline_scratch_, n, fence) ||
          !rec.spec.tres_per_node.fits_within(node.capacity - node.allocated)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      rec.state = JobState::kPending;
      enqueue_pending(rec.priority_tier, rec);
      request_schedule();
      continue;
    }
    launch(rec, std::move(pl.nodes), pl.granted_limit);
  }
}

void Slurmctld::drop_claim_tres(JobId claimant) {
  for (auto it = pending_launches_.begin(); it != pending_launches_.end();
       ++it) {
    if (it->id != claimant) continue;
    for (const NodeId n : it->nodes) node_claims_.erase(n);
    pending_launches_.erase(it);
    break;
  }
  for (auto it = victim_claims_.begin(); it != victim_claims_.end();) {
    it = it->second == claimant ? victim_claims_.erase(it) : std::next(it);
  }
}

// --- Reservations -----------------------------------------------------------

void Slurmctld::add_reservation(Reservation r) {
  if (!tres_on_)
    throw std::invalid_argument(
        "Slurmctld::add_reservation: requires fidelity.tres_mode");
  if (r.end <= r.start)
    throw std::invalid_argument("Slurmctld::add_reservation: empty window");
  for (const NodeId n : r.nodes) {
    if (n >= nodes_.size())
      throw std::invalid_argument("Slurmctld::add_reservation: bad node id");
  }
  const std::size_t index = reservations_.size();
  reservations_.push_back(std::move(r));
  const Reservation& res = reservations_.back();
  const sim::SimTime now = sim_.now();
  if (res.end <= now) return;  // already over; keep for the record only
  sim_.at(std::max(res.start, now),
          [this, index] { reservation_window_begin(index); });
  sim_.at(res.end, [this, index] { reservation_window_end(index); });
}

void Slurmctld::reservation_window_begin(std::size_t index) {
  const Reservation res = reservations_[index];  // copy: callbacks re-enter
  for (const NodeId id : res.nodes) {
    Node& node = nodes_.at(id);
    if (node.state == NodeState::kDown) continue;
    draining_[id] = true;
    // A claimant waiting on this node can no longer be satisfied here.
    const auto claim = node_claims_.find(id);
    if (claim != node_claims_.end()) {
      const JobId claimant = claim->second;
      drop_claim_tres(claimant);
      JobRecord& crec = jobs_.at(claimant);
      crec.state = JobState::kPending;
      enqueue_pending(crec.priority_tier, crec);
    }
    if (node.state == NodeState::kIdle) {
      node.state = NodeState::kDown;
      announce(id);
      continue;
    }
    // Jobs still on the node (the reservation was registered after they
    // launched): preempt with the partition grace. Completing jobs are
    // already on their way out.
    std::vector<JobId> doomed = node.running_jobs;
    for (const JobId jid : doomed) {
      const auto jit = jobs_.find(jid);
      if (jit != jobs_.end() && jit->second.state == JobState::kRunning)
        begin_grace(jit->second, EndReason::kPreempted);
    }
  }
}

void Slurmctld::reservation_window_end(std::size_t index) {
  const Reservation res = reservations_[index];
  const sim::SimTime now = sim_.now();
  for (const NodeId id : res.nodes) {
    // Another still-open window may cover the node; stay out if so.
    bool still_reserved = false;
    for (std::size_t i = 0; i < reservations_.size(); ++i) {
      if (i == index) continue;
      const Reservation& other = reservations_[i];
      if (other.start <= now && now < other.end &&
          std::find(other.nodes.begin(), other.nodes.end(), id) !=
              other.nodes.end()) {
        still_reserved = true;
        break;
      }
    }
    if (!still_reserved) set_node_up(id);
  }
}

// --- Fair-share / QOS -------------------------------------------------------

const Qos* Slurmctld::find_qos(const std::string& name) const {
  if (name.empty() || !qos_on_) return nullptr;
  const auto it = qos_.find(name);
  return it == qos_.end() ? nullptr : &it->second;
}

double Slurmctld::decayed_usage(const std::string& account) const {
  const auto it = usage_.find(account);
  if (it == usage_.end()) return 0.0;
  const FairShareConfig& fs = config_.fidelity.fair_share;
  if (fs.half_life <= sim::SimTime::zero()) return it->second.usage;
  const double dt = (sim_.now() - it->second.last).to_seconds();
  const double hl = fs.half_life.to_seconds();
  return it->second.usage * std::exp2(-dt / hl);
}

std::int64_t Slurmctld::debit_for_usage(double usage) const {
  const FairShareConfig& fs = config_.fidelity.fair_share;
  if (!fs.enabled || usage <= 0.0) return 0;
  const double frac = usage / (usage + fs.usage_norm);
  return std::llround(static_cast<double>(fs.weight) * frac);
}

void Slurmctld::charge_fair_share(const JobRecord& rec) {
  const FairShareConfig& fs = config_.fidelity.fair_share;
  if (!fs.enabled) return;
  const sim::SimTime elapsed = rec.end_time - rec.start_time;
  if (elapsed <= sim::SimTime::zero()) return;
  double node_seconds =
      elapsed.to_seconds() * static_cast<double>(rec.spec.num_nodes);
  if (tres_on_ && config_.fidelity.node_capacity.cpus > 0) {
    // Fractional allocations are charged in proportion to the cpu share
    // actually held (cons_tres billing weights, cpu axis only).
    node_seconds *= static_cast<double>(rec.spec.tres_per_node.cpus) /
                    static_cast<double>(config_.fidelity.node_capacity.cpus);
  }
  if (const Qos* q = find_qos(rec.spec.qos)) node_seconds *= q->usage_factor;
  const std::string& account =
      rec.spec.account.empty() ? rec.spec.partition : rec.spec.account;
  const double decayed = decayed_usage(account);
  AccountUsage& au = usage_[account];
  au.usage = decayed + node_seconds;
  au.last = sim_.now();
}

// --- Fidelity introspection -------------------------------------------------

const TresVector& Slurmctld::node_capacity(NodeId id) const {
  return nodes_.at(id).capacity;
}

TresVector Slurmctld::node_free(NodeId id) const {
  const Node& node = nodes_.at(id);
  return node.capacity - node.allocated;
}

Slurmctld::TresTotals Slurmctld::tres_totals() const {
  TresTotals t;
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kDown) continue;
    t.capacity += node.capacity;
    for (const JobId jid : node.running_jobs) {
      const JobRecord& rec = jobs_.at(jid);
      if (rec.priority_tier == 0) {
        t.pilot += rec.spec.tres_per_node;
      } else {
        t.hpc += rec.spec.tres_per_node;
      }
    }
  }
  return t;
}

double Slurmctld::account_usage(const std::string& account) const {
  return decayed_usage(account);
}

std::int64_t Slurmctld::fair_share_debit(const std::string& account) const {
  return debit_for_usage(decayed_usage(account));
}

void Slurmctld::announce(NodeId node) {
  if (node_observer_)
    node_observer_(NodeTransition{sim_.now(), node, observed_state(node)});
}

void Slurmctld::notify_job(JobEventKind kind, const JobRecord& rec,
                           sim::SimTime deadline, sim::SimTime grace,
                           EndReason reason) {
  if (!job_observer_) return;
  JobEvent ev;
  ev.when = sim_.now();
  ev.kind = kind;
  ev.id = rec.id;
  ev.deadline = deadline;
  ev.grace = grace;
  ev.reason = reason;
  ev.job = &rec;
  job_observer_(ev);
}

}  // namespace hpcwhisk::slurm
