#pragma once
// Cluster node model and the observable node states used by the paper's
// Slurm-level monitoring perspective (idle / HPC / pilot / down).

#include <cstdint>
#include <vector>

#include "hpcwhisk/slurm/job.hpp"
#include "hpcwhisk/slurm/tres.hpp"

namespace hpcwhisk::slurm {

/// Internal allocation state of a node.
enum class NodeState {
  kIdle,
  kAllocated,
  kDown,
};

/// What an external observer (the paper's 10-second `sinfo` logger)
/// sees: a node is either running prime HPC work, running an HPC-Whisk
/// pilot, idle, or unavailable.
enum class ObservedNodeState : std::uint8_t {
  kIdle = 0,
  kHpc = 1,
  kPilot = 2,
  kDown = 3,
};

[[nodiscard]] const char* to_string(ObservedNodeState s);

struct Node {
  NodeId id{0};
  NodeState state{NodeState::kIdle};
  JobId running_job{0};  ///< valid iff state == kAllocated

  // --- TRES mode only (Config::fidelity.tres_mode). In legacy mode the
  // vectors stay empty/zero and `running_job` is the single owner; in
  // TRES mode several jobs can co-reside on partial allocations and
  // `running_job` mirrors the first entry of `running_jobs` (or 0).
  TresVector capacity{};   ///< total TRES this node offers
  TresVector allocated{};  ///< Σ per-node TRES of running/completing jobs
  std::vector<JobId> running_jobs{};
};

}  // namespace hpcwhisk::slurm
