#pragma once
// The canonical seeded scheduler trace behind the golden decision-log
// pin: a 2-hour mixed workload (fixed + variable HPC jobs, a replenished
// tier-0 pilot pool) drives Slurmctld with production-default pass
// cadence, and every launch decision (time, job, granted limit, exact
// node set) plus every end reason folds into an FNV-1a hash.
//
// Shared between tests/slurm/sched_golden_test (the pin itself) and
// bench/ablation_fidelity (whose acceptance contract re-asserts the pin
// to prove the fidelity knobs are opt-in: legacy configs must stay
// byte-identical). The optional config hook lets callers spell out
// "all fidelity knobs off" explicitly and still demand kGoldenHash.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "hpcwhisk/obs/trace.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::slurm::testing {

/// Captured from the pre-optimization scheduler (PR 2 baseline). A
/// failure against these means scheduling *decisions* changed, not just
/// their cost.
inline constexpr std::uint64_t kGoldenHash = 0xd9c33b629e8bafacULL;
inline constexpr std::size_t kGoldenLogBytes = 7045;

inline std::vector<Partition> golden_partitions() {
  Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  Partition pilot;
  pilot.name = "pilot";
  pilot.priority_tier = 0;
  pilot.preempt_mode = PreemptMode::kCancel;
  pilot.grace_time = sim::SimTime::minutes(3);
  return {hpc, pilot};
}

struct GoldenOutcome {
  std::uint64_t hash{0};
  std::size_t log_bytes{0};
  std::string head;  // first log lines, for mismatch triage
  Slurmctld::Counters counters;
};

/// Runs the seeded trace and returns the decision-log digest. All
/// randomness flows through one Rng in a fixed draw order, so the log is
/// a pure function of (seed, config, scheduler behavior). `mutate`, when
/// set, edits the production-default config before construction.
inline GoldenOutcome run_golden_trace(
    std::uint64_t seed,
    const std::function<void(Slurmctld::Config&)>& mutate = {}) {
  sim::Simulation sim;
  Slurmctld::Config cfg;  // production defaults: 30 s passes, 20 s gap
  cfg.node_count = 48;
  if (mutate) mutate(cfg);
  Slurmctld ctld{sim, cfg, golden_partitions()};
  sim::Rng rng{seed};
  std::string log;
  const sim::SimTime end = sim::SimTime::hours(2);

  const auto record = [&log](const char tag, const JobRecord& rec,
                             sim::SimTime at, EndReason reason) {
    log += tag;
    log += ' ';
    log += std::to_string(rec.id);
    log += ' ';
    log += std::to_string(at.ticks());
    if (tag == 'S') {
      log += ' ';
      log += std::to_string(rec.granted_limit.ticks());
      for (const NodeId n : rec.nodes) {
        log += ' ';
        log += std::to_string(n);
      }
    } else {
      log += ' ';
      log += to_string(reason);
    }
    log += '\n';
  };

  const auto instrument = [&](JobSpec spec) {
    spec.on_start = [&, record](const JobRecord& rec) {
      record('S', rec, rec.start_time, EndReason::kCompleted);
    };
    spec.on_end = [&, record](const JobRecord& rec, EndReason reason) {
      record('E', rec, rec.end_time, reason);
    };
    return spec;
  };

  // Tier-0 pilot pool: 12 variable-length pilots up front, each replaced
  // 10 s after it leaves (mirrors the job manager's replenishment).
  std::function<void()> submit_pilot = [&] {
    JobSpec spec;
    spec.partition = "pilot";
    spec.num_nodes = 1;
    spec.time_limit = sim::SimTime::minutes(120);
    spec.time_min = sim::SimTime::minutes(4);
    spec = instrument(std::move(spec));
    auto on_end = std::move(spec.on_end);
    spec.on_end = [&, on_end](const JobRecord& rec, EndReason reason) {
      on_end(rec, reason);
      if (sim.now() < end) {
        sim.after(sim::SimTime::seconds(10), [&] { submit_pilot(); });
      }
    };
    ctld.submit(std::move(spec));
  };
  for (int i = 0; i < 12; ++i) submit_pilot();

  // HPC arrivals: Poisson (mean 40 s) mix of fixed and variable jobs
  // whose declared limits overshoot their true runtimes (the slack that
  // drives backfill and reservations).
  std::function<void()> arrive = [&] {
    if (sim.now() >= end) return;
    JobSpec spec;
    spec.partition = "hpc";
    spec.num_nodes = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
    const double limit_min = static_cast<double>(rng.uniform_int(6, 60));
    spec.time_limit = sim::SimTime::minutes(limit_min);
    spec.actual_runtime =
        sim::SimTime::minutes(limit_min * rng.uniform(0.3, 1.0));
    spec.priority = rng.uniform_int(0, 3);
    if (rng.bernoulli(0.2)) {
      spec.time_min = sim::SimTime::minutes(4);
      spec.actual_runtime = sim::SimTime::max();  // var jobs run to grant
    }
    ctld.submit(instrument(std::move(spec)));
    sim.after(sim::SimTime::seconds(rng.exponential(40.0)), arrive);
  };
  sim.after(sim::SimTime::seconds(rng.exponential(40.0)), arrive);

  sim.run_until(end);

  GoldenOutcome out;
  out.hash = obs::fnv1a(log);
  out.log_bytes = log.size();
  out.head = log.substr(0, 400);
  out.counters = ctld.counters();
  return out;
}

}  // namespace hpcwhisk::slurm::testing
