#pragma once
// Advance reservations / maintenance windows (slurmctld/reservation.c):
// a named [start, end) window over an explicit node set, carving those
// nodes out of both the prime HPC supply and the pilot supply.
//
// Semantics (fidelity mode):
//  * the scheduler never launches a job on a reserved node unless the
//    job's granted limit *plus its grace window* ends before the window
//    opens (so not even a SIGKILL deadline can spill into the window);
//  * when the window opens, any job still on the node (possible only if
//    the reservation was registered after the job launched) is preempted
//    with its partition grace, and the node leaves service (reported
//    down, like a maintenance drain);
//  * when the window closes the node returns to the idle pool.

#include <string>
#include <vector>

#include "hpcwhisk/sim/time.hpp"
#include "hpcwhisk/slurm/job.hpp"

namespace hpcwhisk::slurm {

struct Reservation {
  std::string name;
  sim::SimTime start;
  sim::SimTime end;
  std::vector<NodeId> nodes;
};

}  // namespace hpcwhisk::slurm
