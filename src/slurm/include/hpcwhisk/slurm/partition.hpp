#pragma once
// Partitions carry the two Slurm knobs HPC-Whisk relies on (Sec. III-D):
// PriorityTier (pilots at tier 0, every HPC partition at tier >= 1) and
// PreemptMode=CANCEL with a grace period (3 minutes on Prometheus).

#include <string>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::slurm {

enum class PreemptMode {
  kOff,     ///< jobs in this partition are never preempted
  kCancel,  ///< SIGTERM, grace period, then SIGKILL (job is not requeued)
};

struct Partition {
  std::string name;
  std::int32_t priority_tier{1};
  PreemptMode preempt_mode{PreemptMode::kOff};
  /// SIGTERM -> SIGKILL grace for preempted/timed-out jobs.
  sim::SimTime grace_time{sim::SimTime::minutes(3)};
  /// Upper bound on a job's declared time limit (0 = unlimited).
  sim::SimTime max_time{sim::SimTime::zero()};
};

}  // namespace hpcwhisk::slurm
