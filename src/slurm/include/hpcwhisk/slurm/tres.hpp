#pragma once
// Trackable resources (Slurm "TRES"): the per-node resource vector used
// by the opt-in fidelity mode (Slurmctld::Config::fidelity.tres_mode).
//
// In legacy mode a job owns whole nodes and this vector never appears on
// a scheduling path. In TRES mode every node carries a capacity vector,
// every job a per-node request, and the scheduler packs jobs onto
// *partial* nodes — so a node can host prime HPC work and an HPC-Whisk
// pilot simultaneously (fractional-node harvesting), the way Slurm's
// cons_tres select plugin allocates cpus/memory/gres independently.

#include <cstdint>
#include <string>

namespace hpcwhisk::slurm {

struct TresVector {
  std::uint32_t cpus{0};
  std::uint32_t mem_mb{0};
  std::uint32_t gres{0};  ///< opaque generic-resource count (e.g. GPUs)

  [[nodiscard]] constexpr bool is_zero() const {
    return cpus == 0 && mem_mb == 0 && gres == 0;
  }

  /// Component-wise <=: does this request fit inside `cap`?
  [[nodiscard]] constexpr bool fits_within(const TresVector& cap) const {
    return cpus <= cap.cpus && mem_mb <= cap.mem_mb && gres <= cap.gres;
  }

  constexpr TresVector& operator+=(const TresVector& o) {
    cpus += o.cpus;
    mem_mb += o.mem_mb;
    gres += o.gres;
    return *this;
  }

  /// Saturating subtraction: releasing more than is held clamps to zero
  /// instead of wrapping (the invariant suite catches the underlying
  /// accounting bug from the event stream; the allocator must not UB).
  constexpr TresVector& operator-=(const TresVector& o) {
    cpus = cpus >= o.cpus ? cpus - o.cpus : 0;
    mem_mb = mem_mb >= o.mem_mb ? mem_mb - o.mem_mb : 0;
    gres = gres >= o.gres ? gres - o.gres : 0;
    return *this;
  }

  friend constexpr TresVector operator+(TresVector a, const TresVector& b) {
    a += b;
    return a;
  }
  friend constexpr TresVector operator-(TresVector a, const TresVector& b) {
    a -= b;
    return a;
  }
  friend constexpr bool operator==(const TresVector&,
                                   const TresVector&) = default;

  [[nodiscard]] std::string to_string() const {
    return "cpu=" + std::to_string(cpus) + ",mem=" + std::to_string(mem_mb) +
           "M,gres=" + std::to_string(gres);
  }
};

}  // namespace hpcwhisk::slurm
