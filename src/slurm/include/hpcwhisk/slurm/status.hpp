#pragma once
// Operator-facing status rendering: compact sinfo/squeue-style text for
// examples, logs and debugging sessions.

#include <string>

#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::slurm {

/// sinfo-style summary: one line per observed node state with counts and
/// a compacted node list, e.g. "idle 3 nodes: 2,5-6".
[[nodiscard]] std::string format_sinfo(const Slurmctld& ctld);

/// squeue-style listing of active and pending jobs (bounded to
/// `max_rows` data rows; a trailer reports how many were omitted).
[[nodiscard]] std::string format_squeue(const Slurmctld& ctld,
                                        std::size_t max_rows = 20);

/// Compacts a sorted node-id list into Slurm's range notation
/// ("0-3,7,9-10"). Exposed for testing.
[[nodiscard]] std::string compact_node_list(const std::vector<NodeId>& nodes);

}  // namespace hpcwhisk::slurm
