#pragma once
// Job model for the Slurm-like workload manager.
//
// A job declares a node count and a time limit (and, for variable-length
// jobs, a minimum time — Slurm's --time-min). The *actual* runtime is
// carried in the spec but hidden from the scheduler, which plans using
// declared limits only; the gap between the two (the "slack" of Fig. 2)
// is what creates the unpredictable idle periods HPC-Whisk harvests.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hpcwhisk/sim/time.hpp"
#include "hpcwhisk/slurm/tres.hpp"

namespace hpcwhisk::slurm {

using JobId = std::uint64_t;
using NodeId = std::uint32_t;

enum class JobState {
  kPending,     ///< queued, not yet allocated
  kRunning,     ///< executing on its allocation
  kCompleting,  ///< received SIGTERM, inside the grace period
  kCompleted,   ///< ended on its own (or exited during grace)
  kTimedOut,    ///< killed at its (granted) time limit
  kPreempted,   ///< killed by SIGKILL at the end of a preemption grace
  kCancelled,   ///< cancelled while pending or running
  kNodeFailed,  ///< lost its node (failure injection)
};

enum class EndReason {
  kCompleted,
  kTimeLimit,
  kPreempted,
  kCancelled,
  kNodeFailed,
};

[[nodiscard]] const char* to_string(JobState s);
[[nodiscard]] const char* to_string(EndReason r);

class Slurmctld;
struct JobRecord;

/// What the user hands to submit().
struct JobSpec {
  std::string name;
  std::string partition;
  std::uint32_t num_nodes{1};

  /// Declared (maximum) run time: Slurm's --time.
  sim::SimTime time_limit;

  /// Minimum acceptable run time: Slurm's --time-min. Zero means a
  /// fixed-length job; non-zero lets the scheduler size the job anywhere
  /// in [time_min, time_limit] to fit an availability hole.
  sim::SimTime time_min{sim::SimTime::zero()};

  /// True run time, unknown to the scheduler. SimTime::max() means the
  /// job never exits on its own (HPC-Whisk pilots run until their granted
  /// limit or preemption).
  sim::SimTime actual_runtime{sim::SimTime::max()};

  /// Priority within the partition's tier (higher runs first). The fib
  /// job manager maps longer pilot lengths to higher priorities.
  std::int64_t priority{0};

  /// Per-node TRES request (TRES mode only). All-zero means "whole
  /// node": submit() substitutes the configured node capacity, which
  /// reproduces legacy exclusive allocation for that job.
  TresVector tres_per_node{};

  /// QOS name (fidelity mode). Empty means no QOS: the job's preempt
  /// tier falls back to its partition's priority tier, reproducing the
  /// legacy binary preemption semantics.
  std::string qos;

  /// Fair-share accounting bucket. Empty means the partition name.
  std::string account;

  /// Fired when the job starts on its allocation.
  std::function<void(const JobRecord&)> on_start;
  /// Fired when the job receives SIGTERM (grace period begins). Only
  /// fired for jobs that are terminated while running (preemption or
  /// time limit), not for natural completion.
  std::function<void(const JobRecord&)> on_sigterm;
  /// Fired exactly once when the job leaves the system.
  std::function<void(const JobRecord&, EndReason)> on_end;
};

/// The scheduler's book-keeping for one job. Stable address for the
/// job's lifetime; exposed const to callbacks and queries.
struct JobRecord {
  JobId id{0};
  JobSpec spec;
  JobState state{JobState::kPending};
  std::int32_t priority_tier{0};
  bool preemptible{false};

  /// Preemption ordering tier: QOS tier when the job carries a
  /// registered QOS, else the partition priority tier. Strictly-higher
  /// tiers may preempt this job (TRES mode); legacy mode keeps its
  /// binary tier-0-victim rule.
  std::int32_t preempt_tier{0};
  /// Queue priority after QOS bonus and fair-share debit. Equals
  /// spec.priority exactly when both knobs are off, so legacy decision
  /// logs are byte-identical.
  std::int64_t effective_priority{0};

  sim::SimTime submit_time;
  sim::SimTime start_time;
  sim::SimTime end_time;
  /// The limit the scheduler granted (== spec.time_limit for fixed jobs;
  /// scheduler-chosen within [time_min, time_limit] for variable jobs).
  sim::SimTime granted_limit;
  std::vector<NodeId> nodes;
  /// While kCompleting: why the grace period started (kPreempted or
  /// kTimeLimit). A job exiting during grace is attributed to this cause.
  EndReason grace_reason{EndReason::kCompleted};

  [[nodiscard]] bool is_active() const {
    return state == JobState::kRunning || state == JobState::kCompleting;
  }
  /// When the scheduler expects the allocation back (limit-based).
  [[nodiscard]] sim::SimTime expected_end() const {
    return start_time + granted_limit;
  }
};

}  // namespace hpcwhisk::slurm
