#pragma once
// Slurm-like centralized workload manager (slurmctld).
//
// Faithful to the mechanisms HPC-Whisk depends on:
//  * multifactor ordering: priority tier >> job priority >> submit time;
//  * EASY backfill on a per-node availability timeline built from
//    *declared* limits (slack between limit and runtime is what creates
//    the unpredictable idleness the paper harvests);
//  * PreemptMode=CANCEL: a higher-tier allocation may claim nodes held by
//    preemptible lower-tier jobs; victims get SIGTERM, a grace period,
//    then SIGKILL; the claimant starts once its nodes are free;
//  * variable-length sizing (--time-min/--time): the scheduler grants a
//    limit that fits the node's predicted availability hole, quantized to
//    the backfill slot (2 minutes on Prometheus);
//  * periodic backfill passes plus event-driven passes on job completion.
//
// Scheduling of tier-0 pilots supports two placement policies (an
// ablation in the benches): preempt-aware (faithful: place on any idle
// node, conflicts resolved by preemption) and hole-fitting (place only
// if the declared limit fits before the head-job reservation).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/slurm/job.hpp"
#include "hpcwhisk/slurm/node.hpp"
#include "hpcwhisk/slurm/partition.hpp"
#include "hpcwhisk/slurm/qos.hpp"
#include "hpcwhisk/slurm/reservation.hpp"
#include "hpcwhisk/slurm/tres.hpp"

namespace hpcwhisk::obs {
struct Observability;
}

namespace hpcwhisk::slurm {

/// Per-node observed-state transition, the ground-truth event stream that
/// the analysis module samples to reproduce the paper's perspectives.
struct NodeTransition {
  sim::SimTime when;
  NodeId node;
  ObservedNodeState state;
};

/// Job-lifecycle event stream, the scheduler-side ground truth consumed
/// by the SimCheck invariant suite (src/check). One event per decision:
/// a job is submitted, claims preempted nodes (kClaimed), launches on its
/// allocation, receives SIGTERM with a SIGKILL deadline, and ends.
enum class JobEventKind : std::uint8_t {
  kSubmitted,  ///< entered the pending queue
  kClaimed,    ///< scheduling decision made; waiting on preempted victims
  kLaunched,   ///< allocation started (record carries nodes + granted limit)
  kSigterm,    ///< grace window opened; `deadline`/`grace`/`reason` valid
  kEnded,      ///< left the system; `reason` valid
};

[[nodiscard]] const char* to_string(JobEventKind k);

struct JobEvent {
  sim::SimTime when;
  JobEventKind kind{JobEventKind::kSubmitted};
  JobId id{0};
  /// kSigterm: when SIGKILL fires and the grace actually granted (the
  /// partition grace, possibly truncated by fault injection).
  sim::SimTime deadline;
  sim::SimTime grace;
  /// kSigterm: why the grace window opened; kEnded: terminal reason.
  EndReason reason{EndReason::kCompleted};
  /// The full record at event time; valid only during the callback.
  const JobRecord* job{nullptr};
};

enum class PilotPlacement {
  kPreemptAware,  ///< faithful: start pilots on idle nodes regardless of
                  ///< future reservations; preemption resolves conflicts
  kHoleFitting,   ///< conservative: start a pilot only if its limit fits
                  ///< before the node's earliest reservation
};

class Slurmctld {
 public:
  struct Config {
    std::uint32_t node_count{0};
    /// Interval of the periodic scheduling/backfill pass.
    sim::SimTime sched_interval{sim::SimTime::seconds(30)};
    /// Backfill look-ahead window (Prometheus: 120 minutes).
    sim::SimTime backfill_window{sim::SimTime::minutes(120)};
    /// Allocation slot: limits are quantized to this (Prometheus: 2 min).
    sim::SimTime slot{sim::SimTime::minutes(2)};
    /// How many pending jobs each backfill pass examines per tier
    /// (Slurm's bf_max_job_test).
    std::size_t backfill_depth{200};
    /// How many blocked jobs get a future reservation per pass (Slurm's
    /// bf_max_job_test effectively bounds this; plain EASY uses 1).
    /// Reservations are what protect short idle holes from greedy
    /// backfill — and what bounds the holes pilots can use.
    std::size_t reservation_depth{16};
    /// Minimum gap between scheduling passes (Slurm's sched_min_interval
    /// / batched event scheduling). Event-driven pass requests arriving
    /// earlier are deferred, which is what leaves freed nodes visibly
    /// idle for a while even when fitting work is queued.
    sim::SimTime min_pass_gap{sim::SimTime::seconds(20)};
    PilotPlacement pilot_placement{PilotPlacement::kPreemptAware};
    /// If true, variable-length (time_min > 0) jobs are only considered
    /// during periodic passes, sized against the availability picture of
    /// the *previous* pass. Models the scheduling lag the paper blames
    /// for the var model's 68% (vs 84% bound) coverage (Sec. V-B2).
    bool var_jobs_periodic_only{true};
    /// Minimum spacing between passes that place variable-length jobs:
    /// sizing them (schedule at --time-min, try to extend) is the
    /// expensive scheduler path, so it runs much less often than plain
    /// backfill. This is the dominant source of the var model's
    /// coverage penalty.
    sim::SimTime var_pass_period{sim::SimTime::seconds(90)};
    /// A node must have been idle at least this long before a tier-0
    /// pilot may take it. Models the slow backfill cycle that places
    /// pilots on a busy production scheduler; the resulting small pool
    /// of fresh-idle nodes absorbs most HPC allocations, which is what
    /// lets pilots serve for minutes instead of seconds.
    sim::SimTime pilot_min_idle{sim::SimTime::zero()};
    /// Scheduler processing latency applied to each job launch
    /// (state propagation, prolog). Small but nonzero in production.
    sim::SimTime launch_latency{sim::SimTime::millis(200)};
    /// Optional trace/metrics sink; null disables all instrumentation.
    obs::Observability* obs{nullptr};

    /// Opt-in fidelity extensions (ROADMAP item 4). Everything here is
    /// default-off; with the defaults the scheduler's decision log is
    /// byte-identical to the pre-fidelity golden hashes.
    struct Fidelity {
      /// Per-TRES packing: nodes carry a TresVector capacity, jobs a
      /// per-node request, and several jobs (prime HPC work + pilots)
      /// can share one node. Switches scheduling to the TRES pass.
      bool tres_mode{false};
      /// Capacity of every node (required non-zero when tres_mode).
      TresVector node_capacity{};
      /// Usage-decayed fair-share priority (applies in both modes).
      FairShareConfig fair_share{};
      /// Registered QOS levels; jobs reference them by JobSpec::qos.
      std::vector<Qos> qos{};
      /// Advance reservations active from t=0 (more can be added at
      /// runtime via add_reservation). TRES mode only.
      std::vector<Reservation> reservations{};
    };
    Fidelity fidelity{};
  };

  Slurmctld(sim::Simulation& simulation, Config config,
            std::vector<Partition> partitions);

  Slurmctld(const Slurmctld&) = delete;
  Slurmctld& operator=(const Slurmctld&) = delete;

  /// Submits a job; scheduling is attempted on the next pass (an
  /// event-driven pass is triggered immediately for fixed-length jobs).
  JobId submit(JobSpec spec);

  /// Cancels a pending or running job. Running jobs get SIGTERM + grace.
  /// Returns false if the job is unknown or already finished.
  bool cancel(JobId id);

  /// A running job announces it has exited on its own (e.g. a drained
  /// pilot exiting early inside its grace period). Frees nodes at once.
  void job_exited(JobId id);

  /// Failure injection: marks a node down, killing whatever ran there
  /// (no grace — models a hardware failure). No-op if already down.
  void set_node_down(NodeId id);
  /// Failure injection with a *truncated* grace: the running job gets
  /// SIGTERM now and SIGKILL after `grace` (instead of the partition's
  /// full grace) — a node dying with only seconds of warning. The node
  /// leaves service once the job is gone and stays down until
  /// set_node_up(). `grace` <= 0 degrades to set_node_down().
  void fail_node(NodeId id, sim::SimTime grace);
  /// Returns a down node to service (idle).
  void set_node_up(NodeId id);

  /// Operator maintenance: stop scheduling onto the node; once its
  /// current job ends (running jobs are NOT killed), the node goes down
  /// for maintenance. Idle nodes go down immediately.
  void drain_node(NodeId id);
  [[nodiscard]] bool is_draining(NodeId id) const;

  /// Registers an advance reservation / maintenance window (TRES mode).
  /// Windows starting in the past apply immediately; node ids must be
  /// valid and end must be after start.
  void add_reservation(Reservation r);

  // --- Introspection -----------------------------------------------------

  [[nodiscard]] const JobRecord& job(JobId id) const;
  [[nodiscard]] bool is_known(JobId id) const;
  /// Visits every job record in id order (status rendering, audits).
  void for_each_job(const std::function<void(const JobRecord&)>& fn) const;
  [[nodiscard]] std::size_t pending_count(const std::string& partition) const;
  [[nodiscard]] std::size_t running_count() const;
  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] ObservedNodeState observed_state(NodeId id) const;
  [[nodiscard]] std::vector<ObservedNodeState> observed_states() const;
  [[nodiscard]] std::size_t idle_node_count() const;
  /// Idle nodes plus nodes running tier-0 pilots: what would be idle if
  /// HPC-Whisk were absent (the paper's "originally idle" baseline).
  [[nodiscard]] std::size_t available_node_count() const;

  /// All four observed-state counts in one allocation-free pass: the
  /// node-timeline sample of the time-series tier (idle + pilot is the
  /// forecastable idle-capacity signal of ROADMAP item 5).
  struct StateTotals {
    std::uint32_t idle{0};
    std::uint32_t hpc{0};
    std::uint32_t pilot{0};
    std::uint32_t down{0};
    [[nodiscard]] std::uint32_t available() const { return idle + pilot; }
  };
  [[nodiscard]] StateTotals state_totals() const;

  // --- Fidelity introspection (all cheap; meaningful in TRES mode) -------

  [[nodiscard]] bool tres_mode() const { return tres_on_; }
  /// Declared capacity of `id` (zero vector in legacy mode).
  [[nodiscard]] const TresVector& node_capacity(NodeId id) const;
  /// Currently unallocated TRES on `id` (zero vector in legacy mode).
  [[nodiscard]] TresVector node_free(NodeId id) const;
  /// Cluster-wide TRES occupancy split by observed role.
  struct TresTotals {
    TresVector capacity;  ///< Σ capacity over non-down nodes
    TresVector hpc;       ///< Σ allocations held by tier>0 jobs
    TresVector pilot;     ///< Σ allocations held by tier-0 pilots
  };
  [[nodiscard]] TresTotals tres_totals() const;
  /// Decayed fair-share usage (node-seconds) of `account` as of now.
  [[nodiscard]] double account_usage(const std::string& account) const;
  /// Priority debit currently applied to submissions from `account`.
  [[nodiscard]] std::int64_t fair_share_debit(
      const std::string& account) const;

  /// Ground-truth observer: invoked on every observed-state transition.
  /// The initial state of every node (idle at t=0) is not announced.
  void set_node_observer(std::function<void(const NodeTransition&)> cb) {
    node_observer_ = std::move(cb);
  }

  /// Job-lifecycle observer: invoked on every JobEvent, after the
  /// scheduler's own bookkeeping and before the job's user callbacks.
  /// One observer at a time; unset costs nothing.
  void set_job_observer(std::function<void(const JobEvent&)> cb) {
    job_observer_ = std::move(cb);
  }

  struct Counters {
    std::uint64_t submitted{0};
    std::uint64_t started{0};
    std::uint64_t completed{0};
    std::uint64_t timed_out{0};
    std::uint64_t preempted{0};
    std::uint64_t cancelled{0};
    std::uint64_t node_failures{0};
    std::uint64_t sched_passes{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Forces a full scheduling pass right now (tests/benches).
  void schedule_now();

  /// Availability timeline: for every node, when the scheduler expects it
  /// to be free (now for idle; expected_end for HPC jobs; `now` for nodes
  /// held only by preemptible lower-tier jobs when scheduling tier >= 1).
  struct Availability {
    std::vector<sim::SimTime> free_at;       // per node, for HPC planning
    std::vector<sim::SimTime> pilot_free_at; // per node, incl. pilots
  };
  /// Rebuilds and returns the availability timeline for `tier`. Exposed
  /// for micro-benchmarks and tooling; scheduling passes reuse internal
  /// scratch buffers instead of calling this.
  [[nodiscard]] Availability availability_snapshot(std::int32_t tier) const;

 private:
  /// Pending-queue entry, kept sorted by (priority desc, id asc) at
  /// insertion so scheduling passes never sort.
  struct QueueEntry {
    std::int64_t priority{0};
    JobId id{0};
    friend bool operator<(const QueueEntry& a, const QueueEntry& b) {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.id < b.id;
    }
  };
  void enqueue_pending(std::int32_t tier, const JobRecord& rec);
  void remove_pending(std::int32_t tier, JobId id);

  /// Node lists cached for the duration of one scheduling pass; updated
  /// in place as the pass launches jobs and claims nodes.
  struct PassCache {
    std::vector<NodeId> idle;        ///< idle, unclaimed
    std::vector<NodeId> pilot_held;  ///< running a preemptible tier-0 job
  };

  // Scheduling pipeline.
  void request_schedule();       // coalesced event-driven pass
  void run_sched_pass(bool periodic);
  /// Rebuilds the availability timeline for `tier` into `out`, reusing
  /// its capacity. Called once per (pass, tier); the scheduler then
  /// advances `out.free_at` in place as its planning timeline, instead
  /// of ever copying or reallocating full per-node vectors.
  void build_availability_into(std::int32_t tier, Availability& out) const;

  /// Attempts to start `rec` now, preempting lower tiers if allowed.
  /// Returns true if the job was launched or is waiting on preempted
  /// nodes (counted as scheduled either way).
  bool try_start_hpc(JobRecord& rec, PassCache& cache,
                     const std::vector<sim::SimTime>& reserved_until);

  /// Pilot placement pass over currently idle nodes.
  void place_pilots(PassCache& cache,
                    const std::vector<sim::SimTime>& reserved_from,
                    bool periodic);

  void launch(JobRecord& rec, std::vector<NodeId> nodes,
              sim::SimTime granted_limit);
  /// Starts the SIGTERM→SIGKILL grace window attributing it to `reason`.
  /// `grace_override` (when not max()) truncates the partition's grace —
  /// the fault-injection path for nodes failing with little warning.
  void begin_grace(JobRecord& rec, EndReason reason,
                   sim::SimTime grace_override = sim::SimTime::max());
  void finish_job(JobRecord& rec, EndReason reason);
  void free_nodes(const JobRecord& rec);
  void announce(NodeId node);
  void notify_job(JobEventKind kind, const JobRecord& rec,
                  sim::SimTime deadline = sim::SimTime::zero(),
                  sim::SimTime grace = sim::SimTime::zero(),
                  EndReason reason = EndReason::kCompleted);
  [[nodiscard]] const Partition& partition_of(const JobRecord& rec) const;

  /// Jobs whose allocation is decided but whose nodes are still draining
  /// preempted victims; launched when the last victim leaves.
  struct PendingLaunch {
    JobId id;
    std::vector<NodeId> nodes;
    sim::SimTime granted_limit;
    /// Legacy mode: victim *nodes* still to drain (decremented by
    /// node_freed). TRES mode: victim *jobs* still to end (decremented
    /// via victim_claims_ in finish_job).
    std::size_t nodes_missing{0};
  };
  void node_freed(NodeId id);

  // --- TRES-mode scheduling pipeline -------------------------------------
  // A parallel implementation of the pass; the legacy pass body is never
  // entered when tres_mode is on and vice versa, so the golden decision
  // logs of legacy configs cannot shift.
  void run_sched_pass_tres(bool periodic);
  bool try_start_tres(JobRecord& rec,
                      const std::vector<sim::SimTime>& res_next_start,
                      sim::SimTime shadow);
  /// EASY shadow time for the head blocked job: the earliest instant at
  /// which `rec`'s full nodes×TRES request fits on the planning
  /// timeline. max() when beyond the backfill window (unconstrained).
  [[nodiscard]] sim::SimTime tres_shadow_time(
      const JobRecord& rec,
      const std::vector<sim::SimTime>& res_next_start) const;
  void place_pilots_tres(const std::vector<sim::SimTime>& res_next_start,
                         bool periodic);
  /// Fills per-node "next reservation window opens at" (max() if none).
  void build_reservation_deadlines(std::vector<sim::SimTime>& out) const;
  [[nodiscard]] bool reservation_allows(
      const std::vector<sim::SimTime>& res_next_start, NodeId node,
      sim::SimTime limit_plus_grace) const;
  /// A claimed victim ended: decrement every waiting claimant, launching
  /// (or, if a reservation closed in, requeueing) those now complete.
  void victim_ended_tres(JobId victim);
  void drop_claim_tres(JobId claimant);
  void reservation_window_begin(std::size_t index);
  void reservation_window_end(std::size_t index);

  // --- Fair-share / QOS ---------------------------------------------------
  /// Charges `rec`'s node-seconds to its account (decaying first).
  void charge_fair_share(const JobRecord& rec);
  [[nodiscard]] double decayed_usage(const std::string& account) const;
  [[nodiscard]] std::int64_t debit_for_usage(double usage) const;
  [[nodiscard]] const Qos* find_qos(const std::string& name) const;


  sim::Simulation& sim_;
  Config config_;
  std::unordered_map<std::string, Partition> partitions_;
  std::vector<Node> nodes_;
  std::unordered_map<JobId, JobRecord> jobs_;
  /// Pending jobs per tier (descending tier order via std::greater);
  /// each queue kept sorted by (priority desc, id asc).
  std::map<std::int32_t, std::vector<QueueEntry>, std::greater<>> pending_;
  std::unordered_map<JobId, sim::EventId> end_events_;
  std::unordered_map<JobId, sim::EventId> kill_events_;
  std::vector<PendingLaunch> pending_launches_;
  /// When each node last became idle (drives LIFO reuse: recently freed
  /// nodes are preferred, matching Slurm's stable node-weight ordering
  /// and producing the heavy-tailed per-node idleness of Fig. 1b).
  std::vector<sim::SimTime> last_freed_;
  /// Nodes marked for maintenance: no new jobs; down when freed.
  std::vector<bool> draining_;
  std::unordered_map<NodeId, JobId> node_claims_;  // node -> waiting job
  std::function<void(const NodeTransition&)> node_observer_;
  std::function<void(const JobEvent&)> job_observer_;
  JobId next_job_id_{1};
  bool pass_requested_{false};
  sim::SimTime last_pass_{sim::SimTime::zero() - sim::SimTime::hours(1)};
  sim::SimTime last_var_pass_{sim::SimTime::zero() - sim::SimTime::hours(1)};
  Counters counters_;
  /// Stale availability picture for var sizing (see Config).
  std::vector<sim::SimTime> last_pass_reserved_from_;

  // --- Per-pass scratch buffers ------------------------------------------
  // The scheduler pass runs every <=30 s simulated over thousands of
  // nodes; all working vectors live here so steady-state passes perform
  // no heap allocation at all (capacities stabilize after the first few
  // passes). Only valid for the duration of one pass.
  Availability avail_scratch_;                  ///< per-tier timeline cache
  PassCache pass_cache_;
  std::vector<sim::SimTime> reserved_from_scratch_;
  std::vector<std::pair<sim::SimTime, NodeId>> horizon_scratch_;
  std::vector<QueueEntry> still_pending_scratch_;
  std::vector<NodeId> chosen_scratch_;
  std::vector<NodeId> victim_scratch_;
  std::vector<std::size_t> taken_idle_scratch_;
  std::vector<std::size_t> taken_pilot_scratch_;
  std::vector<std::size_t> pilot_order_scratch_;
  std::vector<sim::SimTime> pilot_start_scratch_;
  std::vector<NodeId> cold_first_scratch_;
  std::vector<NodeId> unused_nodes_scratch_;

  // --- Fidelity state ----------------------------------------------------
  bool tres_on_{false};
  bool qos_on_{false};
  std::unordered_map<std::string, Qos> qos_;
  /// Decayed per-account usage; `last` is the decay reference point.
  struct AccountUsage {
    double usage{0.0};
    sim::SimTime last{sim::SimTime::zero()};
  };
  std::unordered_map<std::string, AccountUsage> usage_;
  std::vector<Reservation> reservations_;
  /// TRES mode: victim job -> claimant(s) waiting on its TRES. A
  /// multi-node victim can be claimed by several claimants at once.
  std::unordered_multimap<JobId, JobId> victim_claims_;
  /// Pass scratch: per-node next-reservation-start and node candidates.
  std::vector<sim::SimTime> res_deadline_scratch_;
  std::vector<std::pair<std::uint64_t, NodeId>> tres_cand_scratch_;
  std::vector<JobId> victim_jobs_scratch_;
};

}  // namespace hpcwhisk::slurm
