#pragma once
// QOS preemption tiers and fair-share priority decay — the accounting
// half of the opt-in fidelity mode, modeled on slurmctld/acct_policy.c.
//
// QOS decouples *preemption ordering* from the partition priority tier:
// a job may preempt preemptible jobs whose preempt tier is strictly
// lower, so pilots can be split into sacrificial and protected tiers
// instead of the legacy binary preemptible flag.
//
// Fair-share replaces the static job priority with a usage-decayed
// effective priority: accounts that recently consumed node-seconds are
// debited, and the debit decays with a configurable half-life.

#include <cstdint>
#include <string>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::slurm {

struct Qos {
  std::string name;
  /// Preemption ordering: this job may preempt preemptible jobs with a
  /// strictly lower preempt tier, and is itself preemptible only by
  /// strictly higher tiers. Jobs without a QOS use their partition's
  /// priority tier here, so an empty QOS table reproduces legacy
  /// semantics exactly.
  std::int32_t preempt_tier{0};
  /// Flat bonus folded into the job's effective priority at submit.
  std::int64_t priority_weight{0};
  /// Fair-share charge multiplier (UsageFactor): how expensive a
  /// node-second under this QOS is in the decayed-usage ledger.
  double usage_factor{1.0};
};

struct FairShareConfig {
  bool enabled{false};
  /// Half-life of the decayed per-account usage accumulator
  /// (PriorityDecayHalfLife).
  sim::SimTime half_life{sim::SimTime::hours(4)};
  /// Maximum priority debit; the debit saturates towards this as usage
  /// grows (PriorityWeightFairshare).
  std::int64_t weight{1000};
  /// Usage (node-seconds) at which the debit reaches weight/2. The debit
  /// is weight * u / (u + usage_norm): monotone in usage, bounded, and
  /// strictly decaying as usage decays.
  double usage_norm{3600.0};
};

}  // namespace hpcwhisk::slurm
