#include "hpcwhisk/sebs/kernels.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hpcwhisk::sebs {

std::vector<std::uint32_t> bfs(const Graph& graph, VertexId source) {
  const std::size_t n = graph.num_vertices();
  if (source >= n) throw std::out_of_range("bfs: source out of range");
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  dist[source] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const VertexId u : frontier) {
      for (const VertexId* it = graph.begin(u); it != graph.end(u); ++it) {
        if (dist[*it] == kUnreachable) {
          dist[*it] = level;
          next.push_back(*it);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

DisjointSets::DisjointSets(std::size_t n)
    : parent_(n), size_(n, 1), sets_{n} {
  std::iota(parent_.begin(), parent_.end(), 0);
}

VertexId DisjointSets::find(VertexId x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool DisjointSets::unite(VertexId x, VertexId y) {
  VertexId rx = find(x);
  VertexId ry = find(y);
  if (rx == ry) return false;
  if (size_[rx] < size_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  size_[rx] += size_[ry];
  --sets_;
  return true;
}

MstResult mst(std::size_t num_vertices, std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight < b.weight;
            });
  DisjointSets dsu{num_vertices};
  MstResult result;
  for (const WeightedEdge& e : edges) {
    if (e.u >= num_vertices || e.v >= num_vertices)
      throw std::out_of_range("mst: vertex out of range");
    if (dsu.unite(e.u, e.v)) {
      result.total_weight += e.weight;
      ++result.edges_used;
      if (result.edges_used == num_vertices - 1) break;
    }
  }
  result.components = dsu.set_count();
  return result;
}

std::vector<double> pagerank(const Graph& graph, double damping,
                             int iterations) {
  if (damping <= 0.0 || damping >= 1.0)
    throw std::invalid_argument("pagerank: damping must be in (0,1)");
  if (iterations <= 0)
    throw std::invalid_argument("pagerank: non-positive iterations");
  const std::size_t n = graph.num_vertices();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (VertexId u = 0; u < n; ++u) {
      const std::size_t degree = graph.out_degree(u);
      if (degree == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(degree);
      for (const VertexId* v = graph.begin(u); v != graph.end(u); ++v)
        next[*v] += share;
    }
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    for (std::size_t v = 0; v < n; ++v) next[v] = base + damping * next[v];
    rank.swap(next);
  }
  return rank;
}

}  // namespace hpcwhisk::sebs
