#include "hpcwhisk/sebs/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcwhisk::sebs {

Graph::Graph(std::vector<std::uint64_t> offsets, std::vector<VertexId> targets)
    : offsets_{std::move(offsets)}, targets_{std::move(targets)} {
  if (offsets_.empty() || offsets_.back() != targets_.size())
    throw std::invalid_argument("Graph: inconsistent CSR arrays");
}

namespace {
Graph from_edge_list(std::size_t n,
                     std::vector<std::pair<VertexId, VertexId>> edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges) ++offsets[u + 1];
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  std::vector<VertexId> targets;
  targets.reserve(edges.size());
  for (const auto& [u, v] : edges) targets.push_back(v);
  return Graph{std::move(offsets), std::move(targets)};
}
}  // namespace

Graph make_uniform_graph(std::size_t n, double avg_degree,
                         std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("make_uniform_graph: empty graph");
  sim::Rng rng{seed};
  const std::size_t m = static_cast<std::size_t>(
      avg_degree * static_cast<double>(n));
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u != v) edges.emplace_back(u, v);
  }
  return from_edge_list(n, std::move(edges));
}

Graph make_preferential_graph(std::size_t n, std::size_t links_per_vertex,
                              std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("make_preferential_graph: too small");
  sim::Rng rng{seed};
  // Degree-proportional sampling via the repeated-endpoint trick: keep a
  // flat list where every edge endpoint appears once.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * n * links_per_vertex);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(2 * n * links_per_vertex);
  endpoints.push_back(0);
  for (VertexId v = 1; v < n; ++v) {
    const std::size_t links = std::min<std::size_t>(links_per_vertex, v);
    for (std::size_t l = 0; l < links; ++l) {
      const VertexId target = endpoints[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(endpoints.size()) - 1))];
      edges.emplace_back(v, target);
      edges.emplace_back(target, v);
      endpoints.push_back(target);
    }
    endpoints.push_back(v);
  }
  return from_edge_list(n, std::move(edges));
}

std::vector<WeightedEdge> make_weighted_edges(std::size_t n,
                                              double extra_degree,
                                              std::uint32_t max_weight,
                                              std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("make_weighted_edges: too small");
  if (max_weight == 0)
    throw std::invalid_argument("make_weighted_edges: zero max weight");
  sim::Rng rng{seed};
  std::vector<WeightedEdge> edges;
  const std::size_t extra = static_cast<std::size_t>(
      extra_degree * static_cast<double>(n));
  edges.reserve(n - 1 + extra);
  // Random spanning backbone guarantees connectivity.
  for (VertexId v = 1; v < n; ++v) {
    const auto u = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
    edges.push_back({u, v,
                     static_cast<std::uint32_t>(
                         rng.uniform_int(1, max_weight))});
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u == v) continue;
    edges.push_back({u, v,
                     static_cast<std::uint32_t>(
                         rng.uniform_int(1, max_weight))});
  }
  return edges;
}

}  // namespace hpcwhisk::sebs
