#pragma once
// Deterministic graph generators backing the SeBS compute kernels
// (Fig. 7 runs the suite's bfs, mst and pagerank functions; SeBS builds
// its inputs with igraph generators — we provide equivalent uniform and
// preferential-attachment generators).

#include <cstdint>
#include <vector>

#include "hpcwhisk/sim/rng.hpp"

namespace hpcwhisk::sebs {

using VertexId = std::uint32_t;

/// Immutable directed graph in CSR form.
class Graph {
 public:
  Graph(std::vector<std::uint64_t> offsets, std::vector<VertexId> targets);

  [[nodiscard]] std::size_t num_vertices() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_edges() const { return targets_.size(); }
  [[nodiscard]] std::size_t out_degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  /// Neighbors of v as a contiguous range.
  [[nodiscard]] const VertexId* begin(VertexId v) const {
    return targets_.data() + offsets_[v];
  }
  [[nodiscard]] const VertexId* end(VertexId v) const {
    return targets_.data() + offsets_[v + 1];
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> targets_;
};

/// Undirected weighted edge list (input to MST).
struct WeightedEdge {
  VertexId u;
  VertexId v;
  std::uint32_t weight;
};

/// Erdős–Rényi-style graph: n vertices, ~n*avg_degree directed edges,
/// deterministic for a seed.
[[nodiscard]] Graph make_uniform_graph(std::size_t n, double avg_degree,
                                       std::uint64_t seed);

/// Barabási–Albert-style preferential attachment: each new vertex links
/// to `links_per_vertex` earlier vertices (degree-biased), then the edge
/// set is symmetrized. Matches the skewed degree profile SeBS uses.
[[nodiscard]] Graph make_preferential_graph(std::size_t n,
                                            std::size_t links_per_vertex,
                                            std::uint64_t seed);

/// Connected weighted graph for MST: a random spanning backbone plus
/// ~n*extra_degree random edges, weights uniform in [1, max_weight].
[[nodiscard]] std::vector<WeightedEdge> make_weighted_edges(
    std::size_t n, double extra_degree, std::uint32_t max_weight,
    std::uint64_t seed);

}  // namespace hpcwhisk::sebs
