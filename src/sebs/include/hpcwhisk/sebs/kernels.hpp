#pragma once
// The three compute-intensive SeBS functions the paper benchmarks in
// Fig. 7 (bfs, mst, pagerank), implemented as real single-threaded C++
// kernels — no storage or network, exactly why the paper picked them for
// a node-compute comparison.

#include <cstdint>
#include <vector>

#include "hpcwhisk/sebs/graph.hpp"

namespace hpcwhisk::sebs {

inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// Level-synchronous BFS; returns hop distances (kUnreachable if not
/// reached).
[[nodiscard]] std::vector<std::uint32_t> bfs(const Graph& graph,
                                             VertexId source);

/// Union-find with path halving and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n);
  VertexId find(VertexId x);
  /// Returns false if x and y were already joined.
  bool unite(VertexId x, VertexId y);
  [[nodiscard]] std::size_t set_count() const { return sets_; }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t sets_;
};

struct MstResult {
  std::uint64_t total_weight{0};
  std::size_t edges_used{0};
  /// Connected components remaining (1 for a connected input).
  std::size_t components{1};
};

/// Kruskal's algorithm over the edge list.
[[nodiscard]] MstResult mst(std::size_t num_vertices,
                            std::vector<WeightedEdge> edges);

/// Power-iteration PageRank with uniform teleport; dangling mass is
/// redistributed uniformly. Returns the final rank vector (sums to ~1).
[[nodiscard]] std::vector<double> pagerank(const Graph& graph,
                                           double damping = 0.85,
                                           int iterations = 20);

}  // namespace hpcwhisk::sebs
