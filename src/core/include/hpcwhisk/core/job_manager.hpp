#pragma once
// The HPC-Whisk job manager (Sec. III-D b): keeps Slurm supplied with
// low-priority, preemptible pilot jobs so every idleness period can be
// filled, without ever flooding the scheduler.
//
// Two supply models from the paper:
//  * fib — bags of fixed-length jobs; default lengths are set A1
//    {2,4,6,8,14,22,34,56,90} minutes (chosen via Table I); 10 jobs of
//    each length kept queued; longer length => higher priority, which
//    makes Slurm greedy towards long idle periods.
//  * var — 100 flexible jobs with --time-min 2 min and --time 120 min;
//    Slurm sizes them during scheduling.
//
// The queue is replenished every 15 seconds and never exceeds 100 jobs;
// new jobs are created only to replace ones that already started.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hpcwhisk/core/pilot.hpp"
#include "hpcwhisk/mq/broker.hpp"
#include "hpcwhisk/sim/distributions.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"
#include "hpcwhisk/whisk/controller.hpp"
#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::core {

enum class SupplyModel { kFib, kVar };

[[nodiscard]] const char* to_string(SupplyModel m);

/// The job-length sets evaluated in Table I.
[[nodiscard]] std::vector<sim::SimTime> job_length_set(const std::string& name);

class JobManager {
 public:
  struct Config {
    SupplyModel model{SupplyModel::kFib};
    /// fib: fixed lengths (default: set A1).
    std::vector<sim::SimTime> fib_lengths;
    /// fib: queued jobs maintained per length.
    std::size_t fib_per_length{10};
    /// var: queued flexible jobs maintained.
    std::size_t var_target{100};
    sim::SimTime var_time_min{sim::SimTime::minutes(2)};
    sim::SimTime var_time_max{sim::SimTime::minutes(120)};
    /// Queue replenishment cadence (15 s on Prometheus).
    sim::SimTime replenish_interval{sim::SimTime::seconds(15)};
    /// Hard cap on queued pilot jobs (Sec. III-D: never above 100).
    std::size_t max_queued{100};
    std::string partition{"pilot"};

    /// Per-pilot TRES request (slurm fidelity/TRES mode). Zero means
    /// "whole node", reproducing the legacy exclusive pilots; a
    /// fractional request lets pilots co-reside with prime HPC work.
    slurm::TresVector pilot_tres{};
    /// QOS stamped on every pilot (empty = none: pilots sit at their
    /// partition's preempt tier, the legacy semantics).
    std::string pilot_qos;
    /// When non-empty and the fib model is active, pilots of the
    /// *longest* fib length class get this QOS instead — a protected
    /// pilot tier whose workers are preempted last (QOS regime of the
    /// fidelity bench). Deterministic: no extra RNG draws.
    std::string pilot_qos_long;
    /// Warm-up model (Sec. IV-B: median 12.48 s, P95 26.5 s).
    double warmup_median_s{12.48};
    double warmup_p95_s{26.5};
    whisk::Invoker::Config invoker;

    /// Adaptive length tuning (the paper's future-work direction:
    /// "identify the potential patterns in the workload which could be
    /// of value for the HPC-Whisk job manager"). When enabled with the
    /// fib model, the length set is recomputed periodically from the
    /// quantiles of recently observed pilot serving durations, so the
    /// supply tracks the cluster's actual hole structure.
    bool adaptive{false};
    sim::SimTime adapt_interval{sim::SimTime::minutes(60)};
    /// Minimum observations before the first adaptation.
    std::size_t adapt_min_samples{50};
    /// Observation source for adaptation: returns the lengths (minutes)
    /// of recently observed *availability periods* (e.g. from a
    /// NodeStateLog over the last window). This is the online analogue
    /// of the paper's offline Table-I input. When absent, the manager
    /// falls back to its own pilots' serving durations — a self-censored
    /// signal (a pilot never serves longer than its own limit), kept for
    /// comparison because it demonstrates *why* hole observation is
    /// needed.
    std::function<std::vector<double>()> hole_sampler;

    /// Optional trace/metrics sink, also handed to every pilot it
    /// creates; null disables all instrumentation. (The owner separately
    /// sets `invoker.obs` for invoker-level events.)
    obs::Observability* obs{nullptr};
  };

  JobManager(sim::Simulation& simulation, slurm::Slurmctld& slurmctld,
             mq::Broker& broker, const whisk::FunctionRegistry& registry,
             whisk::Controller& controller, Config config, sim::Rng rng);

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Submits the initial bag of jobs and starts the replenish loop.
  void start();

  /// Stops replenishment and cancels all queued (pending) pilots;
  /// running pilots keep serving until preempted/timed out.
  void stop();

  [[nodiscard]] std::size_t queued() const { return queued_.size(); }
  [[nodiscard]] std::size_t active_pilots() const { return pilots_.size(); }

  /// Live invokers of pilots in the serving phase, in slurm-job-id order
  /// (deterministic). The chaos engine's invoker directory.
  [[nodiscard]] std::vector<whisk::Invoker*> serving_invokers();

  /// Pilots currently in each phase (for the OW-level perspective).
  struct PhaseCounts {
    std::size_t warming_up{0};
    std::size_t serving{0};
    std::size_t draining{0};
  };
  [[nodiscard]] PhaseCounts phase_counts() const;

  struct Counters {
    std::uint64_t submitted{0};
    std::uint64_t started{0};
    std::uint64_t preempted{0};
    std::uint64_t timed_out{0};
    std::uint64_t completed{0};
    /// Lost to node failure (fault injection); any phase.
    std::uint64_t node_failed{0};
    /// Cancelled after starting (operator action); disjoint from the above.
    std::uint64_t cancelled{0};
    /// Ends that arrived while still serving, i.e. without any SIGTERM
    /// warning (hard node loss). A subset of node_failed, kept separate
    /// because it is the "local state lost" signal.
    std::uint64_t hard_killed{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Harvest-efficiency ledger (Sec. I's value proposition, made
  /// measurable): how much of the node time pilots occupied actually
  /// served FaaS, and where the rest went. Pilots are single-node, so
  /// occupied time IS node time. Accrued when a pilot ends.
  struct HarvestStats {
    /// Registration -> drain start (or end, if no SIGTERM arrived):
    /// node-time an invoker was accepting and executing work.
    sim::SimTime harvested;
    /// Boot -> registration, for pilots that reached serving.
    sim::SimTime warmup_overhead;
    /// SIGTERM -> Slurm-job end, for pilots that drained.
    sim::SimTime drain_overhead;
    /// Whole lifetime of pilots preempted/killed before ever serving —
    /// node-time spent warming up for nothing.
    sim::SimTime preempt_wasted;
    std::uint64_t pilots_served{0};
    std::uint64_t pilots_never_served{0};

    /// harvested / (harvested + all overheads); 0 when nothing accrued.
    [[nodiscard]] double efficiency() const {
      const double total = (harvested + warmup_overhead + drain_overhead +
                            preempt_wasted)
                               .to_seconds();
      return total > 0 ? harvested.to_seconds() / total : 0.0;
    }
  };
  [[nodiscard]] const HarvestStats& harvest() const { return harvest_; }

  /// Serving durations of finished pilots, for the "ready time" stats of
  /// Tables II/III (median ~11 min for fib, ~7 min for var).
  [[nodiscard]] const std::vector<sim::SimTime>& serving_durations() const {
    return serving_durations_;
  }
  /// Observed warm-up durations of pilots that reached serving.
  [[nodiscard]] const std::vector<sim::SimTime>& warmup_durations() const {
    return warmup_durations_;
  }

  /// Current fib length set (changes over time when adaptive).
  [[nodiscard]] const std::vector<sim::SimTime>& fib_lengths() const {
    return config_.fib_lengths;
  }
  [[nodiscard]] std::size_t adaptations() const { return adaptations_; }

 private:
  void replenish();
  void adapt_lengths();
  void submit_pilot(sim::SimTime length, bool variable);
  void on_pilot_start(const slurm::JobRecord& rec);
  void on_pilot_sigterm(const slurm::JobRecord& rec);
  void on_pilot_end(const slurm::JobRecord& rec, slurm::EndReason reason);
  void schedule_reap(slurm::JobId id);

  sim::Simulation& sim_;
  slurm::Slurmctld& slurmctld_;
  mq::Broker& broker_;
  const whisk::FunctionRegistry& registry_;
  whisk::Controller& controller_;
  Config config_;
  sim::Rng rng_;
  sim::LognormalFromQuantiles warmup_;
  /// Slurm job id -> declared length, for queued (not yet started) jobs.
  std::map<slurm::JobId, sim::SimTime> queued_;
  /// Slurm job id -> live pilot.
  std::map<slurm::JobId, std::unique_ptr<PilotJob>> pilots_;
  std::vector<std::unique_ptr<PilotJob>> graveyard_;
  sim::PeriodicHandle replenish_loop_;
  sim::PeriodicHandle adapt_loop_;
  bool running_{false};
  std::size_t adaptations_{0};
  std::size_t adapt_consumed_{0};  ///< serving samples already used
  Counters counters_;
  HarvestStats harvest_;
  std::vector<sim::SimTime> serving_durations_;
  std::vector<sim::SimTime> warmup_durations_;
};

}  // namespace hpcwhisk::core
