#pragma once
// End-to-end wiring of an HPC-Whisk deployment (Fig. 4): Slurm cluster,
// message broker, OpenWhisk controller, job manager, and optionally the
// commercial fallback. This is the top-level entry point of the library;
// see examples/quickstart.cpp for typical use.

#include <memory>

#include "hpcwhisk/cloud/lambda_service.hpp"
#include "hpcwhisk/core/client_wrapper.hpp"
#include "hpcwhisk/core/job_manager.hpp"
#include "hpcwhisk/fault/chaos_engine.hpp"
#include "hpcwhisk/mq/broker.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"
#include "hpcwhisk/whisk/controller.hpp"
#include "hpcwhisk/whisk/function.hpp"

namespace hpcwhisk::core {

/// Canonical partition layout: one "hpc" partition at tier 1 (never
/// preempted) and one "pilot" partition at tier 0 with PreemptMode=CANCEL
/// and a 3-minute grace (Sec. III-D a).
[[nodiscard]] std::vector<slurm::Partition> default_partitions(
    sim::SimTime grace = sim::SimTime::minutes(3));

class HpcWhiskSystem {
 public:
  struct Config {
    slurm::Slurmctld::Config slurm;
    std::vector<slurm::Partition> partitions;  // empty => defaults
    whisk::Controller::Config controller;
    JobManager::Config manager;
    cloud::LambdaService::Config commercial;
    ClientWrapper::Config wrapper;
    /// Fault plan replayed by an embedded ChaosEngine. An empty plan
    /// (the default) constructs no engine and leaves every injection
    /// seam — and the RNG fork order of existing runs — untouched.
    fault::FaultPlan faults;
    fault::ChaosEngine::Config chaos;  ///< plan field ignored; use `faults`
    std::uint64_t seed{1};
    /// Optional trace/metrics sink propagated to every component
    /// (slurmctld, controller, invokers, pilots, broker, chaos). Null —
    /// the default — disables all instrumentation; the instance must
    /// outlive the system. Per-component obs fields set inside the
    /// nested configs are overwritten by this one.
    obs::Observability* obs{nullptr};
  };

  /// Functions must be registered on `registry` before invocations; the
  /// registry may keep growing afterwards.
  HpcWhiskSystem(sim::Simulation& simulation, Config config);

  HpcWhiskSystem(const HpcWhiskSystem&) = delete;
  HpcWhiskSystem& operator=(const HpcWhiskSystem&) = delete;

  /// Starts the pilot job supply (and arms the chaos engine, if any).
  void start() {
    manager_->start();
    if (chaos_) chaos_->arm();
  }

  whisk::FunctionRegistry& functions() { return registry_; }
  slurm::Slurmctld& slurm() { return *slurmctld_; }
  whisk::Controller& controller() { return *controller_; }
  JobManager& manager() { return *manager_; }
  mq::Broker& broker() { return broker_; }
  cloud::LambdaService& commercial() { return *commercial_; }
  ClientWrapper& client() { return *client_; }
  /// Null when Config::faults was empty.
  [[nodiscard]] fault::ChaosEngine* chaos() { return chaos_.get(); }
  [[nodiscard]] const whisk::FunctionRegistry& functions() const {
    return registry_;
  }

 private:
  whisk::FunctionRegistry registry_;
  mq::Broker broker_;
  std::unique_ptr<slurm::Slurmctld> slurmctld_;
  std::unique_ptr<whisk::Controller> controller_;
  std::unique_ptr<JobManager> manager_;
  std::unique_ptr<cloud::LambdaService> commercial_;
  std::unique_ptr<ClientWrapper> client_;
  std::unique_ptr<fault::ChaosEngine> chaos_;
};

}  // namespace hpcwhisk::core
