#pragma once
// Alg. 1 of the paper: a client-side wrapper that shields FaaS users from
// the cluster's non-availability periods (Sec. III-E). Whenever HPC-Whisk
// answers 503 (no invoker), calls are offloaded to a commercial cloud for
// a cool-down window (60 s by default), then HPC-Whisk is retried.
//
// Window semantics (pinned by tests/core/client_wrapper_test.cpp): a call
// at exactly last_503 + fallback_window is still offloaded; the first
// retry against the cluster happens strictly after the window closes.

#include <cstdint>
#include <optional>
#include <string>

#include "hpcwhisk/cloud/lambda_service.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/whisk/controller.hpp"

namespace hpcwhisk::core {

class ClientWrapper {
 public:
  struct Config {
    /// How long to keep offloading after a 503.
    sim::SimTime fallback_window{sim::SimTime::seconds(60)};
    /// Memory configuration used for commercial invocations.
    std::int64_t commercial_memory_mb{2048};
    /// Optional trace/metrics sink; null disables all instrumentation.
    obs::Observability* obs{nullptr};
  };

  ClientWrapper(sim::Simulation& simulation, whisk::Controller& controller,
                cloud::LambdaService& commercial, Config config);

  enum class Backend { kHpcWhisk, kCommercial };

  struct Result {
    Backend backend{Backend::kHpcWhisk};
    /// Activation id (HPC-Whisk) or invocation id (commercial).
    std::uint64_t id{0};
  };

  /// Invokes `function`, implementing Alg. 1: try HPC-Whisk unless inside
  /// the fallback window; on 503, remember the time and recurse into the
  /// commercial backend. Never fails to place the call.
  Result invoke(const std::string& function);

  struct Counters {
    std::uint64_t hpcwhisk_calls{0};
    std::uint64_t commercial_calls{0};
    std::uint64_t rejections_seen{0};
    /// Distinct fallback windows opened (a 503 outside any open window).
    std::uint64_t windows_opened{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Time of the most recent 503 seen by this client; nullopt = never
  /// (Alg. 1 initializes Last_503 to "1970-01-01").
  [[nodiscard]] std::optional<sim::SimTime> last_503() const {
    return last_503_;
  }

  /// Whether a call issued at `at` (>= now) would be offloaded without
  /// probing the cluster — i.e. at <= last_503 + fallback_window.
  [[nodiscard]] bool in_fallback_window(sim::SimTime at) const {
    return last_503_.has_value() && at - *last_503_ <= config_.fallback_window;
  }

 private:
  void close_window_span(sim::SimTime expiry);

  sim::Simulation& sim_;
  whisk::Controller& controller_;
  cloud::LambdaService& commercial_;
  Config config_;
  /// Alg. 1's Last_503 variable; nullopt = never rejected.
  std::optional<sim::SimTime> last_503_;
  /// Open fallback-window span awaiting its closing trace event (the
  /// window ordinal doubles as the span correlation id).
  bool window_span_open_{false};
  Counters counters_;
};

}  // namespace hpcwhisk::core
