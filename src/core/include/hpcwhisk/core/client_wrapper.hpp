#pragma once
// Alg. 1 of the paper: a client-side wrapper that shields FaaS users from
// the cluster's non-availability periods (Sec. III-E). Whenever HPC-Whisk
// answers 503 (no invoker), calls are offloaded to a commercial cloud for
// a cool-down window (60 s by default), then HPC-Whisk is retried.

#include <cstdint>
#include <string>

#include "hpcwhisk/cloud/lambda_service.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/whisk/controller.hpp"

namespace hpcwhisk::core {

class ClientWrapper {
 public:
  struct Config {
    /// How long to keep offloading after a 503.
    sim::SimTime fallback_window{sim::SimTime::seconds(60)};
    /// Memory configuration used for commercial invocations.
    std::int64_t commercial_memory_mb{2048};
  };

  ClientWrapper(sim::Simulation& simulation, whisk::Controller& controller,
                cloud::LambdaService& commercial, Config config);

  enum class Backend { kHpcWhisk, kCommercial };

  struct Result {
    Backend backend{Backend::kHpcWhisk};
    /// Activation id (HPC-Whisk) or invocation id (commercial).
    std::uint64_t id{0};
  };

  /// Invokes `function`, implementing Alg. 1: try HPC-Whisk unless inside
  /// the fallback window; on 503, remember the time and recurse into the
  /// commercial backend. Never fails to place the call.
  Result invoke(const std::string& function);

  struct Counters {
    std::uint64_t hpcwhisk_calls{0};
    std::uint64_t commercial_calls{0};
    std::uint64_t rejections_seen{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  sim::Simulation& sim_;
  whisk::Controller& controller_;
  cloud::LambdaService& commercial_;
  Config config_;
  /// Alg. 1's Last_503 variable ("1970-01-01" => never).
  sim::SimTime last_503_{sim::SimTime::micros(-1)};
  Counters counters_;
};

}  // namespace hpcwhisk::core
