#pragma once
// An HPC-Whisk pilot job: the glue between a Slurm allocation and an
// OpenWhisk invoker (Sec. III-A).
//
// Lifecycle:
//   Slurm starts job          -> warm-up (boot, register: median 12.48 s,
//                                P95 26.5 s on Prometheus, Sec. IV-B)
//   warm-up done              -> serving (invoker registered, healthy)
//   SIGTERM (preempt/timeout) -> draining (invoker hand-off, seconds)
//   drain done                -> pilot exits the Slurm job early, well
//                                inside the 3-minute grace period
//   SIGKILL without drain     -> hard kill (lost work, stock-OpenWhisk
//                                failure mode)

#include <functional>
#include <memory>

#include "hpcwhisk/sim/distributions.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"
#include "hpcwhisk/whisk/invoker.hpp"

namespace hpcwhisk::obs {
struct Observability;
}

namespace hpcwhisk::core {

class PilotJob {
 public:
  enum class Phase {
    kWarmingUp,  ///< Slurm job running, invoker booting
    kServing,    ///< invoker registered and healthy
    kDraining,   ///< SIGTERM received, hand-off in progress
    kExited,     ///< left the system (cleanly or killed)
  };

  /// `warmup` models the boot-to-registered delay. The invoker is owned
  /// by the pilot and constructed immediately (it registers only after
  /// warm-up). `obs` (nullable) records the pilot's phase transitions.
  PilotJob(sim::Simulation& simulation, slurm::Slurmctld& slurmctld,
           slurm::JobId slurm_job, std::unique_ptr<whisk::Invoker> invoker,
           sim::SimTime warmup, obs::Observability* obs = nullptr);

  PilotJob(const PilotJob&) = delete;
  PilotJob& operator=(const PilotJob&) = delete;
  ~PilotJob();

  /// Slurm's SIGTERM (grace period begins): run the drain hand-off, then
  /// exit the Slurm job.
  void on_sigterm();

  /// The Slurm job ended (SIGKILL at grace end, node failure, or our own
  /// early exit already processed). Ensures the invoker is gone.
  void on_job_end();

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] const whisk::Invoker& invoker() const { return *invoker_; }
  /// Mutable access for fault injection (stall / hard-kill seams).
  [[nodiscard]] whisk::Invoker& invoker() { return *invoker_; }
  [[nodiscard]] slurm::JobId slurm_job() const { return slurm_job_; }
  [[nodiscard]] sim::SimTime started_at() const { return started_at_; }
  [[nodiscard]] sim::SimTime serving_since() const { return serving_since_; }
  /// When the serving->draining transition happened (zero if the pilot
  /// never drained — hard kill, or SIGTERM during warm-up).
  [[nodiscard]] sim::SimTime draining_since() const { return draining_since_; }

 private:
  sim::Simulation& sim_;
  slurm::Slurmctld& slurmctld_;
  slurm::JobId slurm_job_;
  std::unique_ptr<whisk::Invoker> invoker_;
  Phase phase_{Phase::kWarmingUp};
  sim::EventId warmup_event_;
  sim::SimTime started_at_;
  sim::SimTime serving_since_;
  sim::SimTime draining_since_;
  obs::Observability* obs_{nullptr};
};

}  // namespace hpcwhisk::core
