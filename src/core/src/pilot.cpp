#include "hpcwhisk/core/pilot.hpp"

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::core {

PilotJob::PilotJob(sim::Simulation& simulation, slurm::Slurmctld& slurmctld,
                   slurm::JobId slurm_job,
                   std::unique_ptr<whisk::Invoker> invoker, sim::SimTime warmup,
                   obs::Observability* obs)
    : sim_{simulation},
      slurmctld_{slurmctld},
      slurm_job_{slurm_job},
      invoker_{std::move(invoker)},
      started_at_{simulation.now()},
      obs_{obs} {
  warmup_event_ = sim_.after(warmup, [this] {
    if (phase_ != Phase::kWarmingUp) return;
    phase_ = Phase::kServing;
    serving_since_ = sim_.now();
    HW_OBS_IF(obs_) {
      obs_->trace.record_chained(
          obs::Cat::kPilot, obs::Phase::kInstant, "pilot_serving",
          obs::Track::kPilot, slurm_job_, slurm_job_, sim_.now());
    }
    invoker_->start();
  });
}

PilotJob::~PilotJob() {
  if (phase_ != Phase::kExited) {
    sim_.cancel(warmup_event_);
    invoker_->hard_kill();
  }
}

void PilotJob::on_sigterm() {
  HW_OBS_IF(obs_) {
    if (phase_ == Phase::kWarmingUp || phase_ == Phase::kServing) {
      obs_->trace.record_chained(
          obs::Cat::kPilot, obs::Phase::kInstant, "pilot_sigterm",
          obs::Track::kPilot, slurm_job_, slurm_job_, sim_.now(),
          static_cast<double>(static_cast<int>(phase_)));
    }
  }
  switch (phase_) {
    case Phase::kWarmingUp:
      // Not registered yet: nothing to hand off; exit immediately.
      sim_.cancel(warmup_event_);
      phase_ = Phase::kExited;
      slurmctld_.job_exited(slurm_job_);
      return;
    case Phase::kServing: {
      phase_ = Phase::kDraining;
      draining_since_ = sim_.now();
      invoker_->sigterm([this] {
        if (phase_ != Phase::kDraining) return;
        phase_ = Phase::kExited;
        slurmctld_.job_exited(slurm_job_);
      });
      return;
    }
    case Phase::kDraining:
    case Phase::kExited:
      return;  // duplicate signal
  }
}

void PilotJob::on_job_end() {
  if (phase_ == Phase::kExited) return;
  // SIGKILL landed before the drain finished (non-interruptible work), or
  // the node failed: whatever is left is lost.
  sim_.cancel(warmup_event_);
  invoker_->hard_kill();
  phase_ = Phase::kExited;
}

}  // namespace hpcwhisk::core
