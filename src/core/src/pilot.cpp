#include "hpcwhisk/core/pilot.hpp"

namespace hpcwhisk::core {

PilotJob::PilotJob(sim::Simulation& simulation, slurm::Slurmctld& slurmctld,
                   slurm::JobId slurm_job,
                   std::unique_ptr<whisk::Invoker> invoker, sim::SimTime warmup)
    : sim_{simulation},
      slurmctld_{slurmctld},
      slurm_job_{slurm_job},
      invoker_{std::move(invoker)},
      started_at_{simulation.now()} {
  warmup_event_ = sim_.after(warmup, [this] {
    if (phase_ != Phase::kWarmingUp) return;
    phase_ = Phase::kServing;
    serving_since_ = sim_.now();
    invoker_->start();
  });
}

PilotJob::~PilotJob() {
  if (phase_ != Phase::kExited) {
    sim_.cancel(warmup_event_);
    invoker_->hard_kill();
  }
}

void PilotJob::on_sigterm() {
  switch (phase_) {
    case Phase::kWarmingUp:
      // Not registered yet: nothing to hand off; exit immediately.
      sim_.cancel(warmup_event_);
      phase_ = Phase::kExited;
      slurmctld_.job_exited(slurm_job_);
      return;
    case Phase::kServing: {
      phase_ = Phase::kDraining;
      invoker_->sigterm([this] {
        if (phase_ != Phase::kDraining) return;
        phase_ = Phase::kExited;
        slurmctld_.job_exited(slurm_job_);
      });
      return;
    }
    case Phase::kDraining:
    case Phase::kExited:
      return;  // duplicate signal
  }
}

void PilotJob::on_job_end() {
  if (phase_ == Phase::kExited) return;
  // SIGKILL landed before the drain finished (non-interruptible work), or
  // the node failed: whatever is left is lost.
  sim_.cancel(warmup_event_);
  invoker_->hard_kill();
  phase_ = Phase::kExited;
}

}  // namespace hpcwhisk::core
