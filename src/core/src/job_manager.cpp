#include "hpcwhisk/core/job_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::core {

const char* to_string(SupplyModel m) {
  switch (m) {
    case SupplyModel::kFib: return "fib";
    case SupplyModel::kVar: return "var";
  }
  return "?";
}

std::vector<sim::SimTime> job_length_set(const std::string& name) {
  const auto mins = [](std::initializer_list<int> xs) {
    std::vector<sim::SimTime> out;
    out.reserve(xs.size());
    for (const int x : xs) out.push_back(sim::SimTime::minutes(x));
    return out;
  };
  if (name == "A1") return mins({2, 4, 6, 8, 14, 22, 34, 56, 90});
  if (name == "A2") return mins({2, 4, 8, 12, 20, 34, 54, 88});
  if (name == "A3") return mins({2, 4, 6, 10, 16, 26, 42, 68, 110});
  if (name == "B") return mins({2, 4, 8, 16, 32, 64});
  if (name == "C1") return mins({2, 4, 6, 8, 10, 12, 14, 16, 18, 20});
  if (name == "C2") {
    std::vector<sim::SimTime> out;
    for (int m = 2; m <= 120; m += 2) out.push_back(sim::SimTime::minutes(m));
    return out;
  }
  throw std::invalid_argument("job_length_set: unknown set '" + name + "'");
}

JobManager::JobManager(sim::Simulation& simulation, slurm::Slurmctld& slurmctld,
                       mq::Broker& broker,
                       const whisk::FunctionRegistry& registry,
                       whisk::Controller& controller, Config config,
                       sim::Rng rng)
    : sim_{simulation},
      slurmctld_{slurmctld},
      broker_{broker},
      registry_{registry},
      controller_{controller},
      config_{std::move(config)},
      rng_{rng},
      warmup_{config_.warmup_median_s, config_.warmup_p95_s, 0.95} {
  if (config_.fib_lengths.empty()) config_.fib_lengths = job_length_set("A1");
  HW_OBS_IF(config_.obs) {
    config_.obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      m.counter("pilot.submitted").set(counters_.submitted);
      m.counter("pilot.started").set(counters_.started);
      m.counter("pilot.preempted").set(counters_.preempted);
      m.counter("pilot.timed_out").set(counters_.timed_out);
      m.counter("pilot.completed").set(counters_.completed);
      m.counter("pilot.hard_killed").set(counters_.hard_killed);
      m.gauge("pilot.active").set(static_cast<double>(pilots_.size()));
      m.gauge("pilot.queued").set(static_cast<double>(queued_.size()));
      m.gauge("harvest.harvested_node_s").set(harvest_.harvested.to_seconds());
      m.gauge("harvest.warmup_overhead_s")
          .set(harvest_.warmup_overhead.to_seconds());
      m.gauge("harvest.drain_overhead_s")
          .set(harvest_.drain_overhead.to_seconds());
      m.gauge("harvest.preempt_wasted_s")
          .set(harvest_.preempt_wasted.to_seconds());
      m.gauge("harvest.efficiency").set(harvest_.efficiency());
      m.counter("harvest.pilots_served").set(harvest_.pilots_served);
      m.counter("harvest.pilots_never_served")
          .set(harvest_.pilots_never_served);
    });
  }
}

void JobManager::start() {
  if (running_) return;
  running_ = true;
  replenish();
  replenish_loop_ =
      sim_.every(config_.replenish_interval, [this] { replenish(); });
  if (config_.adaptive && config_.model == SupplyModel::kFib) {
    adapt_loop_ =
        sim_.every(config_.adapt_interval, [this] { adapt_lengths(); });
  }
}

void JobManager::adapt_lengths() {
  if (!running_) return;
  std::vector<double> window_min;
  if (config_.hole_sampler) {
    window_min = config_.hole_sampler();
    if (window_min.size() < config_.adapt_min_samples) return;
  } else {
    // Fallback: this manager's own pilots' serving durations since the
    // previous adaptation.
    if (serving_durations_.size() <
        adapt_consumed_ + config_.adapt_min_samples)
      return;
    window_min.reserve(serving_durations_.size() - adapt_consumed_);
    for (std::size_t i = adapt_consumed_; i < serving_durations_.size(); ++i)
      window_min.push_back(serving_durations_[i].to_minutes());
    adapt_consumed_ = serving_durations_.size();
  }
  std::sort(window_min.begin(), window_min.end());

  // New lengths: serving-duration quantiles, quantized to the 2-minute
  // allocation slot, deduplicated, clamped to [2, 120] minutes. The top
  // quantiles keep long holes coverable; the low ones keep short holes
  // fillable.
  const auto quantile = [&window_min](double p) {
    const std::size_t idx = std::min(
        window_min.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(window_min.size())));
    return window_min[idx];
  };
  // Serving durations are censored by the current lengths (a pilot can
  // never serve longer than its own limit), so pure quantiles would only
  // ever ratchet the set downward. Two exploration anchors — the 2-min
  // slot and the 120-min window — keep both ends of the hole spectrum
  // probed, letting the quantiles grow back when long holes exist.
  std::vector<sim::SimTime> lengths{sim::SimTime::minutes(2)};
  for (const double p : {0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double even_min =
        std::clamp(2.0 * std::round(quantile(p) / 2.0), 2.0, 120.0);
    const sim::SimTime len = sim::SimTime::minutes(even_min);
    if (lengths.back() < len) lengths.push_back(len);
  }
  if (lengths.back() < sim::SimTime::minutes(120))
    lengths.push_back(sim::SimTime::minutes(120));
  config_.fib_lengths = std::move(lengths);
  ++adaptations_;

  // Retire queued pilots with now-obsolete lengths; the next replenish
  // refills with the adapted set.
  std::vector<slurm::JobId> stale;
  for (const auto& [id, len] : queued_) {
    if (std::find(config_.fib_lengths.begin(), config_.fib_lengths.end(),
                  len) == config_.fib_lengths.end()) {
      stale.push_back(id);
    }
  }
  for (const slurm::JobId id : stale) slurmctld_.cancel(id);
}

void JobManager::stop() {
  if (!running_) return;
  running_ = false;
  replenish_loop_.stop();
  adapt_loop_.stop();
  // Cancel everything still queued; copy ids first because cancellation
  // mutates queued_ via on_pilot_end.
  std::vector<slurm::JobId> ids;
  ids.reserve(queued_.size());
  for (const auto& [id, len] : queued_) ids.push_back(id);
  for (const slurm::JobId id : ids) slurmctld_.cancel(id);
}

std::vector<whisk::Invoker*> JobManager::serving_invokers() {
  std::vector<whisk::Invoker*> out;
  for (auto& [id, pilot] : pilots_) {
    if (pilot->phase() == PilotJob::Phase::kServing)
      out.push_back(&pilot->invoker());
  }
  return out;
}

JobManager::PhaseCounts JobManager::phase_counts() const {
  PhaseCounts out;
  for (const auto& [id, pilot] : pilots_) {
    switch (pilot->phase()) {
      case PilotJob::Phase::kWarmingUp: ++out.warming_up; break;
      case PilotJob::Phase::kServing: ++out.serving; break;
      case PilotJob::Phase::kDraining: ++out.draining; break;
      case PilotJob::Phase::kExited: break;
    }
  }
  return out;
}

void JobManager::replenish() {
  if (!running_) return;
  graveyard_.clear();  // safe point: no pilot frames on the stack

  if (config_.model == SupplyModel::kFib) {
    // Count queued jobs per length; top each up to fib_per_length.
    std::map<std::int64_t, std::size_t> per_length;
    for (const auto& [id, len] : queued_) ++per_length[len.ticks()];
    for (const sim::SimTime len : config_.fib_lengths) {
      const std::size_t have = per_length[len.ticks()];
      for (std::size_t i = have; i < config_.fib_per_length; ++i) {
        if (queued_.size() >= config_.max_queued) return;
        submit_pilot(len, /*variable=*/false);
      }
    }
  } else {
    for (std::size_t i = queued_.size(); i < config_.var_target; ++i) {
      if (queued_.size() >= config_.max_queued) return;
      submit_pilot(config_.var_time_max, /*variable=*/true);
    }
  }
}

void JobManager::submit_pilot(sim::SimTime length, bool variable) {
  slurm::JobSpec spec;
  spec.name = variable ? "hpcwhisk-var" : "hpcwhisk-fib";
  spec.partition = config_.partition;
  spec.num_nodes = 1;
  spec.time_limit = length;
  spec.time_min = variable ? config_.var_time_min : sim::SimTime::zero();
  spec.actual_runtime = sim::SimTime::max();  // serves until terminated
  // Longer declared length => higher priority within the pilot tier,
  // making Slurm greedy towards long holes (Sec. III-D b).
  spec.priority = variable ? 0 : length / sim::SimTime::minutes(1);
  spec.tres_per_node = config_.pilot_tres;
  spec.qos = config_.pilot_qos;
  if (!config_.pilot_qos_long.empty() && !variable &&
      !config_.fib_lengths.empty() && length == config_.fib_lengths.back()) {
    spec.qos = config_.pilot_qos_long;
  }
  spec.on_start = [this](const slurm::JobRecord& rec) { on_pilot_start(rec); };
  spec.on_sigterm = [this](const slurm::JobRecord& rec) {
    on_pilot_sigterm(rec);
  };
  spec.on_end = [this](const slurm::JobRecord& rec, slurm::EndReason reason) {
    on_pilot_end(rec, reason);
  };
  const slurm::JobId id = slurmctld_.submit(std::move(spec));
  queued_.emplace(id, length);
  ++counters_.submitted;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kPilot, obs::Phase::kAsyncBegin, "pilot", obs::Track::kPilot,
        id, id, sim_.now(), length.to_minutes(), variable ? 1.0 : 0.0);
  }
}

void JobManager::on_pilot_start(const slurm::JobRecord& rec) {
  queued_.erase(rec.id);
  ++counters_.started;
  auto invoker = std::make_unique<whisk::Invoker>(
      sim_, broker_, registry_, controller_, config_.invoker, rng_.fork());
  const sim::SimTime warmup = sim::SimTime::seconds(warmup_.sample(rng_));
  warmup_durations_.push_back(warmup);
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kPilot, obs::Phase::kInstant, "pilot_start",
        obs::Track::kPilot, rec.id, rec.id, sim_.now(), warmup.to_seconds());
    config_.obs->metrics.histogram("pilot.warmup_s")
        .observe(warmup.to_seconds());
  }
  pilots_.emplace(rec.id, std::make_unique<PilotJob>(
                              sim_, slurmctld_, rec.id, std::move(invoker),
                              warmup, config_.obs));
}

void JobManager::on_pilot_sigterm(const slurm::JobRecord& rec) {
  const auto it = pilots_.find(rec.id);
  if (it == pilots_.end()) return;
  it->second->on_sigterm();
}

void JobManager::on_pilot_end(const slurm::JobRecord& rec,
                              slurm::EndReason reason) {
  queued_.erase(rec.id);  // covers cancellation while pending
  const auto it = pilots_.find(rec.id);
  if (it == pilots_.end()) return;

  PilotJob& pilot = *it->second;
  sim::SimTime served = sim::SimTime::zero();
  if (pilot.serving_since() > sim::SimTime::zero()) {
    served = sim_.now() - pilot.serving_since();
    serving_durations_.push_back(served);
    HW_OBS_IF(config_.obs) {
      config_.obs->metrics.histogram("pilot.serving_min")
          .observe(served.to_minutes());
    }
    // Harvest ledger: serving time up to the drain hand-off is harvested
    // node-time; warm-up and drain bracket it as overhead.
    ++harvest_.pilots_served;
    const bool drained = pilot.draining_since() > sim::SimTime::zero();
    const sim::SimTime drain_start =
        drained ? pilot.draining_since() : sim_.now();
    harvest_.harvested += drain_start - pilot.serving_since();
    harvest_.warmup_overhead += pilot.serving_since() - pilot.started_at();
    if (drained) harvest_.drain_overhead += sim_.now() - pilot.draining_since();
  } else {
    // Preempted/killed before registering: its whole allocation warmed
    // up for nothing.
    ++harvest_.pilots_never_served;
    harvest_.preempt_wasted += sim_.now() - pilot.started_at();
  }
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kPilot, obs::Phase::kAsyncEnd, "pilot", obs::Track::kPilot,
        rec.id, rec.id, sim_.now(),
        static_cast<double>(static_cast<int>(reason)), served.to_minutes());
  }
  // Ending while still serving means no SIGTERM ever arrived (node
  // failure / forced kill): local state is lost.
  if (pilot.phase() == PilotJob::Phase::kServing) ++counters_.hard_killed;
  pilot.on_job_end();

  switch (reason) {
    case slurm::EndReason::kPreempted: ++counters_.preempted; break;
    case slurm::EndReason::kTimeLimit: ++counters_.timed_out; break;
    case slurm::EndReason::kCompleted: ++counters_.completed; break;
    case slurm::EndReason::kNodeFailed: ++counters_.node_failed; break;
    case slurm::EndReason::kCancelled: ++counters_.cancelled; break;
  }

  // This callback may be running inside the pilot's own drain-completion
  // chain; defer destruction to a safe point.
  graveyard_.push_back(std::move(it->second));
  pilots_.erase(it);
  if (graveyard_.size() == 1) {
    sim_.at(sim_.now(), [this] { graveyard_.clear(); });
  }
}

}  // namespace hpcwhisk::core
