#include "hpcwhisk/core/client_wrapper.hpp"

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::core {

ClientWrapper::ClientWrapper(sim::Simulation& simulation,
                             whisk::Controller& controller,
                             cloud::LambdaService& commercial, Config config)
    : sim_{simulation},
      controller_{controller},
      commercial_{commercial},
      config_{config} {
  HW_OBS_IF(config_.obs) {
    config_.obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      m.counter("client.hpcwhisk_calls").set(counters_.hpcwhisk_calls);
      m.counter("client.commercial_calls").set(counters_.commercial_calls);
      m.counter("client.rejections_seen").set(counters_.rejections_seen);
      m.counter("client.windows_opened").set(counters_.windows_opened);
    });
  }
}

void ClientWrapper::close_window_span(sim::SimTime expiry) {
  if (!window_span_open_) return;
  window_span_open_ = false;
  HW_OBS_IF(config_.obs) {
    // The span closes at the window's semantic expiry, which is in the
    // past by the time the next invoke() observes it (exported events
    // carry explicit timestamps, so out-of-order appending is fine).
    config_.obs->trace.record_chained(
        obs::Cat::kClient, obs::Phase::kAsyncEnd, "fallback_window",
        obs::Track::kController, 0, counters_.windows_opened, expiry,
        config_.fallback_window.to_seconds());
  }
}

ClientWrapper::Result ClientWrapper::invoke(const std::string& function) {
  const sim::SimTime now = sim_.now();
  const bool in_fallback = in_fallback_window(now);
  if (!in_fallback) {
    if (last_503_.has_value()) {
      close_window_span(*last_503_ + config_.fallback_window);
    }
    const auto result = controller_.submit(function);
    if (result.accepted) {
      ++counters_.hpcwhisk_calls;
      return Result{Backend::kHpcWhisk, result.activation};
    }
    // 503: remember and fall through to the commercial backend (the
    // recursive call of Alg. 1, unrolled).
    ++counters_.rejections_seen;
    last_503_ = now;
    ++counters_.windows_opened;
    window_span_open_ = true;
    HW_OBS_IF(config_.obs) {
      config_.obs->trace.record_chained(
          obs::Cat::kClient, obs::Phase::kAsyncBegin, "fallback_window",
          obs::Track::kController, 0, counters_.windows_opened, now,
          config_.fallback_window.to_seconds());
    }
  }
  ++counters_.commercial_calls;
  HW_OBS_IF(config_.obs) {
    // Offload decision: instant tagged with the window ordinal and
    // whether this call opened the window (probe-503) or rode inside it.
    config_.obs->trace.record(obs::Cat::kClient, obs::Phase::kInstant,
                              "offload", obs::Track::kController, 0,
                              counters_.windows_opened, now,
                              in_fallback ? 0.0 : 1.0);
  }
  const std::uint64_t id =
      commercial_.invoke(function, config_.commercial_memory_mb);
  return Result{Backend::kCommercial, id};
}

}  // namespace hpcwhisk::core
