#include "hpcwhisk/core/client_wrapper.hpp"

namespace hpcwhisk::core {

ClientWrapper::ClientWrapper(sim::Simulation& simulation,
                             whisk::Controller& controller,
                             cloud::LambdaService& commercial, Config config)
    : sim_{simulation},
      controller_{controller},
      commercial_{commercial},
      config_{config} {}

ClientWrapper::Result ClientWrapper::invoke(const std::string& function) {
  const sim::SimTime now = sim_.now();
  const bool in_fallback = last_503_ >= sim::SimTime::zero() &&
                           now - last_503_ <= config_.fallback_window;
  if (!in_fallback) {
    const auto result = controller_.submit(function);
    if (result.accepted) {
      ++counters_.hpcwhisk_calls;
      return Result{Backend::kHpcWhisk, result.activation};
    }
    // 503: remember and fall through to the commercial backend (the
    // recursive call of Alg. 1, unrolled).
    ++counters_.rejections_seen;
    last_503_ = now;
  }
  ++counters_.commercial_calls;
  const std::uint64_t id =
      commercial_.invoke(function, config_.commercial_memory_mb);
  return Result{Backend::kCommercial, id};
}

}  // namespace hpcwhisk::core
