#include "hpcwhisk/core/system.hpp"

namespace hpcwhisk::core {

std::vector<slurm::Partition> default_partitions(sim::SimTime grace) {
  slurm::Partition hpc;
  hpc.name = "hpc";
  hpc.priority_tier = 1;
  hpc.preempt_mode = slurm::PreemptMode::kOff;

  slurm::Partition pilot;
  pilot.name = "pilot";
  pilot.priority_tier = 0;
  pilot.preempt_mode = slurm::PreemptMode::kCancel;
  pilot.grace_time = grace;
  pilot.max_time = sim::SimTime::hours(2);
  return {hpc, pilot};
}

HpcWhiskSystem::HpcWhiskSystem(sim::Simulation& simulation, Config config) {
  if (config.partitions.empty()) config.partitions = default_partitions();
  if (config.obs != nullptr) {
    // One sink for the whole deployment: fan the pointer out to every
    // component config before construction.
    config.slurm.obs = config.obs;
    config.controller.obs = config.obs;
    config.manager.obs = config.obs;
    config.manager.invoker.obs = config.obs;
    config.chaos.obs = config.obs;
    config.commercial.obs = config.obs;
    config.wrapper.obs = config.obs;
    broker_.set_observability(config.obs);
  }
  sim::Rng rng{config.seed};
  slurmctld_ = std::make_unique<slurm::Slurmctld>(simulation, config.slurm,
                                                  config.partitions);
  controller_ = std::make_unique<whisk::Controller>(simulation, broker_,
                                                    registry_,
                                                    config.controller);
  manager_ = std::make_unique<JobManager>(simulation, *slurmctld_, broker_,
                                          registry_, *controller_,
                                          config.manager, rng.fork());
  commercial_ = std::make_unique<cloud::LambdaService>(
      simulation, registry_, config.commercial, rng.fork());
  client_ = std::make_unique<ClientWrapper>(simulation, *controller_,
                                            *commercial_, config.wrapper);
  if (!config.faults.empty()) {
    // Forked last, and only when a plan exists: chaos-free runs draw the
    // exact same RNG streams as before the engine existed.
    fault::ChaosEngine::Config chaos = config.chaos;
    chaos.plan = std::move(config.faults);
    JobManager* manager = manager_.get();
    chaos_ = std::make_unique<fault::ChaosEngine>(
        simulation, *slurmctld_, *controller_, broker_, std::move(chaos),
        [manager] { return manager->serving_invokers(); }, rng.fork());
  }
}

}  // namespace hpcwhisk::core
