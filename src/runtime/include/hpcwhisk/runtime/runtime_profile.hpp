#pragma once
// Container runtime latency/capability profiles.
//
// HPC-Whisk replaces OpenWhisk's Docker backend with Singularity
// (Sec. III-B): Singularity needs no root daemon on the node, which is
// what makes the deployment non-invasive. Functionally both provide the
// same lifecycle; they differ in start-up latencies and in whether a
// root daemon must run on every node.

#include <string>

#include "hpcwhisk/sim/distributions.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::runtime {

enum class RuntimeKind { kDocker, kSingularity };

[[nodiscard]] const char* to_string(RuntimeKind kind);

/// Latency model for one container runtime.
class RuntimeProfile {
 public:
  struct Params {
    RuntimeKind kind{RuntimeKind::kSingularity};
    bool requires_root_daemon{false};
    /// Cold start: create + boot a container for a function with no warm
    /// instance ("usually in less than 500 ms", Sec. II).
    double cold_start_median_s{0.35};
    double cold_start_p95_s{0.48};
    /// Reusing a warm (paused or idle) container.
    double warm_start_median_s{0.010};
    double warm_start_p95_s{0.025};
    /// Tearing a container down (eviction before a new cold start).
    double remove_median_s{0.050};
    double remove_p95_s{0.120};
  };

  explicit RuntimeProfile(Params params);

  /// Default profiles roughly matching published figures.
  static RuntimeProfile docker();
  static RuntimeProfile singularity();

  [[nodiscard]] RuntimeKind kind() const { return params_.kind; }
  [[nodiscard]] bool requires_root_daemon() const {
    return params_.requires_root_daemon;
  }

  [[nodiscard]] sim::SimTime sample_cold_start(sim::Rng& rng) const;
  [[nodiscard]] sim::SimTime sample_warm_start(sim::Rng& rng) const;
  [[nodiscard]] sim::SimTime sample_remove(sim::Rng& rng) const;

 private:
  Params params_;
  sim::LognormalFromQuantiles cold_;
  sim::LognormalFromQuantiles warm_;
  sim::LognormalFromQuantiles remove_;
};

}  // namespace hpcwhisk::runtime
