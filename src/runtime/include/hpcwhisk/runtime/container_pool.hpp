#pragma once
// Per-node container pool: warm reuse, LRU eviction, concurrency cap.
//
// An OpenWhisk invoker keeps containers warm per function so repeated
// calls skip the cold start; when memory runs out it evicts idle
// containers. The node-wide cap on concurrently existing containers is
// load-bearing for reproduction: Sec. V-C reports an episode (14:30-17:00)
// where invokers hit "the upper limit of concurrently running container
// processes which resulted in an increased number of failed invocations".

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/runtime/runtime_profile.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::runtime {

using ContainerId = std::uint64_t;

enum class ContainerState { kWarming, kIdle, kBusy, kRemoved };

struct Container {
  ContainerId id{0};
  /// Function this container is specialized for; empty for prewarmed
  /// ("stem cell") containers that only carry a runtime kind.
  std::string function;
  /// Runtime kind (image family), e.g. "python:3".
  std::string kind;
  std::int64_t memory_mb{0};
  ContainerState state{ContainerState::kWarming};
  sim::SimTime created_at;
  sim::SimTime last_used;
  /// Prewarmed containers finish booting at this instant.
  sim::SimTime usable_at;
};

/// Result of asking the pool for an execution slot.
struct AcquireResult {
  enum class Kind {
    kWarm,       ///< reusing a warm container specialized for the function
    kPrewarmed,  ///< specialized a matching stem-cell container
    kCold,       ///< new container; start after a full cold start
    kRejected,   ///< node is saturated (cap/memory) and nothing evictable
  };
  Kind kind{Kind::kRejected};
  ContainerId container{0};
  sim::SimTime start_latency;  ///< includes any eviction cost paid first
};

/// Container keep-alive (idle-timeout) policy family (*Has Your FaaS
/// Application Been Decommissioned Yet?*, PAPERS.md: the keep-alive
/// policy dominates cold-start rate under real traffic).
enum class KeepAlivePolicy : std::uint8_t {
  /// Every idle container lives Config::idle_timeout — the historical
  /// single hardcoded constant (OpenWhisk's 10 minutes).
  kFixed,
  /// Per-function timeout proportional to the function's inter-arrival
  /// EWMA, clamped to [floor, ceiling]: rarely-called functions release
  /// memory early, hot functions never lose their container to a timer.
  kAdaptive,
  /// kAdaptive further scaled down toward `floor` as pool occupancy
  /// (containers or memory, whichever is tighter) crosses
  /// [pressure_low, pressure_high] — keep-alive generosity is a luxury
  /// of an empty node.
  kHybrid,
};

[[nodiscard]] const char* to_string(KeepAlivePolicy p);
[[nodiscard]] std::optional<KeepAlivePolicy> keep_alive_policy_from_string(
    const std::string& name);

struct KeepAliveConfig {
  KeepAlivePolicy policy{KeepAlivePolicy::kFixed};
  /// kAdaptive/kHybrid: timeout = clamp(margin * interarrival EWMA).
  double margin{4.0};
  sim::SimTime floor{sim::SimTime::seconds(30)};
  sim::SimTime ceiling{sim::SimTime::minutes(20)};
  /// Inter-arrival EWMA smoothing factor.
  double alpha{0.25};
  /// kHybrid occupancy band: below low the adaptive timeout applies
  /// untouched, above high only `floor` remains.
  double pressure_low{0.5};
  double pressure_high{0.9};
  /// Cadence of the invoker-side reap_idle() sweep. Zero (the default)
  /// disables periodic reaping — the historical behavior, where idle
  /// containers die only by eviction pressure.
  sim::SimTime reap_interval{sim::SimTime::zero()};
};

class ContainerPool {
 public:
  struct Config {
    /// Memory available to containers on the node (Prometheus node:
    /// 128 GB, minus system reserve).
    std::int64_t memory_mb{120 * 1024};
    /// Hard cap on concurrently existing containers on the node.
    std::size_t max_containers{64};
    /// Idle containers older than this are reaped by reap_idle() under
    /// KeepAlivePolicy::kFixed (and as the fallback before a function
    /// has arrival history under the adaptive policies).
    sim::SimTime idle_timeout{sim::SimTime::minutes(10)};
    /// Pluggable keep-alive policy; the default (kFixed) reproduces the
    /// historical behavior exactly.
    KeepAliveConfig keep_alive{};
    /// Stem-cell pool (OpenWhisk prewarm): generic containers of this
    /// kind are kept booted so the first call of a new function pays
    /// only a specialization latency instead of a full cold start.
    std::string prewarm_kind{"python:3"};
    std::size_t prewarm_count{2};
    std::int64_t prewarm_memory_mb{256};
  };

  ContainerPool(Config config, RuntimeProfile profile, sim::Rng rng);

  /// Requests a slot to run `function` (memory footprint `memory_mb`).
  /// Prefers a warm idle container for the same function; otherwise tries
  /// a cold start, evicting idle containers (oldest-first) if the cap or
  /// memory budget requires. Rejected iff the node cannot host the
  /// container even after evicting everything idle.
  AcquireResult acquire(const std::string& function, std::int64_t memory_mb,
                        sim::SimTime now);
  /// As above, with the function's runtime kind: a booted stem cell of a
  /// matching kind is specialized in preference to a cold start.
  AcquireResult acquire(const std::string& function, const std::string& kind,
                        std::int64_t memory_mb, sim::SimTime now);

  /// Tops the stem-cell pool back up to prewarm_count (capacity
  /// permitting; stem cells never evict warm containers). Call
  /// periodically (the invoker does so from its poll loop). The common
  /// case — pool already topped up — returns after one inline size
  /// check, so the per-tick cost is a compare, not a call.
  void maintain_prewarm(sim::SimTime now) {
    if (prewarmed_.size() >= config_.prewarm_count ||
        config_.prewarm_kind.empty())
      return;
    refill_prewarm(now);
  }

  /// Marks a previously acquired container busy (call when its start
  /// latency elapsed and execution begins).
  void mark_running(ContainerId id, sim::SimTime now);

  /// Returns a busy container to the warm (idle) set.
  void release(ContainerId id, sim::SimTime now);

  /// Destroys a container outright (e.g. the execution was interrupted
  /// by a drain and the invoker is shutting down).
  void remove(ContainerId id);

  /// Evicts idle containers unused for longer than their keep-alive
  /// timeout (per-function under the adaptive policies). Returns how
  /// many were reaped.
  std::size_t reap_idle(sim::SimTime now);

  /// The keep-alive timeout currently in force for `function`: the
  /// fixed idle_timeout, or the per-function adaptive value (pressure-
  /// scaled under kHybrid). Exposed for tests and observability.
  [[nodiscard]] sim::SimTime effective_idle_timeout(
      const std::string& function) const;

  /// True if an idle warm container for `function` (>= memory_mb) exists,
  /// i.e. an acquire right now would be a warm resume.
  [[nodiscard]] bool has_warm_idle(const std::string& function,
                                   std::int64_t memory_mb) const;

  /// True if a new container of `memory_mb` fits without evicting
  /// anything (the same admission rule refill_prewarm uses). Conservative
  /// headroom probe for the direct-invoke seam: when it is false a direct
  /// call would evict warm containers or be rejected outright, so callers
  /// should fall back to the queue path instead.
  [[nodiscard]] bool can_admit(std::int64_t memory_mb) const {
    return containers_.size() < config_.max_containers &&
           memory_in_use_mb_ + memory_mb <= config_.memory_mb;
  }

  /// Destroys every container (node handed back to the HPC workload).
  void clear();

  [[nodiscard]] std::size_t total_containers() const { return containers_.size(); }
  [[nodiscard]] std::size_t busy_containers() const { return busy_count_; }
  [[nodiscard]] std::size_t idle_containers() const;
  [[nodiscard]] std::size_t prewarmed_containers() const {
    return prewarmed_.size();
  }
  [[nodiscard]] std::int64_t memory_in_use_mb() const { return memory_in_use_mb_; }

  struct Counters {
    std::uint64_t warm_hits{0};
    std::uint64_t prewarm_hits{0};
    std::uint64_t cold_starts{0};
    std::uint64_t rejections{0};
    std::uint64_t evictions{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  /// Evicts idle containers until `memory_mb` fits and the count cap
  /// allows one more. Returns total removal latency, or nullopt if
  /// impossible.
  std::optional<sim::SimTime> make_room(std::int64_t memory_mb);

  /// Slow path of maintain_prewarm(): boots stem cells until the pool is
  /// full or capacity runs out.
  void refill_prewarm(sim::SimTime now);

  /// Folds an acquire into the function's inter-arrival EWMA (adaptive
  /// keep-alive policies only; kFixed never touches the map).
  void note_arrival(const std::string& function, sim::SimTime now);

  struct InterArrival {
    sim::SimTime last;
    double ewma_us{0.0};
    std::uint64_t count{0};
  };

  Config config_;
  RuntimeProfile profile_;
  sim::Rng rng_;
  std::unordered_map<ContainerId, Container> containers_;
  /// Idle containers in LRU order (front = least recently used).
  std::list<ContainerId> idle_lru_;
  /// Booted (or booting) stem cells awaiting specialization.
  std::list<ContainerId> prewarmed_;
  std::size_t busy_count_{0};
  std::int64_t memory_in_use_mb_{0};
  ContainerId next_id_{1};
  /// Per-function arrival stats for the adaptive keep-alive policies;
  /// empty (never populated) under kFixed.
  std::unordered_map<std::string, InterArrival> arrivals_;
  Counters counters_;
};

}  // namespace hpcwhisk::runtime
