#include "hpcwhisk/runtime/container_pool.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hpcwhisk::runtime {

const char* to_string(KeepAlivePolicy p) {
  switch (p) {
    case KeepAlivePolicy::kFixed: return "fixed";
    case KeepAlivePolicy::kAdaptive: return "adaptive";
    case KeepAlivePolicy::kHybrid: return "hybrid";
  }
  return "?";
}

std::optional<KeepAlivePolicy> keep_alive_policy_from_string(
    const std::string& name) {
  for (const KeepAlivePolicy p :
       {KeepAlivePolicy::kFixed, KeepAlivePolicy::kAdaptive,
        KeepAlivePolicy::kHybrid}) {
    if (name == to_string(p)) return p;
  }
  return std::nullopt;
}

ContainerPool::ContainerPool(Config config, RuntimeProfile profile,
                             sim::Rng rng)
    : config_{config}, profile_{profile}, rng_{rng} {}

AcquireResult ContainerPool::acquire(const std::string& function,
                                     std::int64_t memory_mb, sim::SimTime now) {
  return acquire(function, std::string{}, memory_mb, now);
}

AcquireResult ContainerPool::acquire(const std::string& function,
                                     const std::string& kind,
                                     std::int64_t memory_mb, sim::SimTime now) {
  if (config_.keep_alive.policy != KeepAlivePolicy::kFixed)
    note_arrival(function, now);
  // 1. Warm hit: scan the idle LRU (newest-first so the hottest container
  //    is reused) for a container of the same function.
  for (auto it = idle_lru_.rbegin(); it != idle_lru_.rend(); ++it) {
    Container& c = containers_.at(*it);
    if (c.function == function && c.memory_mb >= memory_mb) {
      idle_lru_.erase(std::next(it).base());
      c.state = ContainerState::kWarming;  // warm resume
      c.last_used = now;
      ++counters_.warm_hits;
      return AcquireResult{AcquireResult::Kind::kWarm, c.id,
                           profile_.sample_warm_start(rng_)};
    }
  }

  // 2. Stem-cell hit: specialize a booted prewarmed container of the
  //    matching kind (OpenWhisk pays roughly a warm start here, not a
  //    cold one — the sandbox already exists).
  if (!kind.empty() && kind == config_.prewarm_kind) {
    for (auto it = prewarmed_.begin(); it != prewarmed_.end(); ++it) {
      Container& c = containers_.at(*it);
      if (c.usable_at > now || c.memory_mb < memory_mb) continue;
      prewarmed_.erase(it);
      c.function = function;
      c.state = ContainerState::kWarming;
      c.last_used = now;
      ++counters_.prewarm_hits;
      return AcquireResult{AcquireResult::Kind::kPrewarmed, c.id,
                           profile_.sample_warm_start(rng_)};
    }
  }

  // 3. Cold start, evicting idle containers if needed.
  const auto eviction_latency = make_room(memory_mb);
  if (!eviction_latency) {
    ++counters_.rejections;
    return AcquireResult{};  // kRejected
  }

  Container c;
  c.id = next_id_++;
  c.function = function;
  c.memory_mb = memory_mb;
  c.state = ContainerState::kWarming;
  c.created_at = now;
  c.last_used = now;
  memory_in_use_mb_ += memory_mb;
  const ContainerId id = c.id;
  containers_.emplace(id, std::move(c));
  ++counters_.cold_starts;
  return AcquireResult{AcquireResult::Kind::kCold, id,
                       *eviction_latency + profile_.sample_cold_start(rng_)};
}

bool ContainerPool::has_warm_idle(const std::string& function,
                                  std::int64_t memory_mb) const {
  for (const ContainerId id : idle_lru_) {
    const Container& c = containers_.at(id);
    if (c.function == function && c.memory_mb >= memory_mb) return true;
  }
  return false;
}

std::optional<sim::SimTime> ContainerPool::make_room(std::int64_t memory_mb) {
  if (memory_mb > config_.memory_mb) return std::nullopt;  // can never fit
  sim::SimTime latency = sim::SimTime::zero();
  while (containers_.size() >= config_.max_containers ||
         memory_in_use_mb_ + memory_mb > config_.memory_mb) {
    // Stem cells are the cheapest victims, then idle warm containers.
    ContainerId victim;
    if (!prewarmed_.empty()) {
      victim = prewarmed_.front();
      prewarmed_.pop_front();
    } else if (!idle_lru_.empty()) {
      victim = idle_lru_.front();
      idle_lru_.pop_front();
    } else {
      return std::nullopt;  // all remaining are busy
    }
    const auto it = containers_.find(victim);
    assert(it != containers_.end());
    memory_in_use_mb_ -= it->second.memory_mb;
    containers_.erase(it);
    latency += profile_.sample_remove(rng_);
    ++counters_.evictions;
  }
  return latency;
}

void ContainerPool::refill_prewarm(sim::SimTime now) {
  while (prewarmed_.size() < config_.prewarm_count) {
    // Never evict for stem cells: only use genuinely free capacity.
    if (containers_.size() >= config_.max_containers) return;
    if (memory_in_use_mb_ + config_.prewarm_memory_mb > config_.memory_mb)
      return;
    Container c;
    c.id = next_id_++;
    c.kind = config_.prewarm_kind;
    c.memory_mb = config_.prewarm_memory_mb;
    c.state = ContainerState::kIdle;
    c.created_at = now;
    c.last_used = now;
    c.usable_at = now + profile_.sample_cold_start(rng_);
    memory_in_use_mb_ += c.memory_mb;
    const ContainerId id = c.id;
    containers_.emplace(id, std::move(c));
    prewarmed_.push_back(id);
  }
}

void ContainerPool::mark_running(ContainerId id, sim::SimTime now) {
  auto& c = containers_.at(id);
  if (c.state != ContainerState::kWarming)
    throw std::logic_error("mark_running: container not warming");
  c.state = ContainerState::kBusy;
  c.last_used = now;
  ++busy_count_;
}

void ContainerPool::release(ContainerId id, sim::SimTime now) {
  auto& c = containers_.at(id);
  if (c.state != ContainerState::kBusy)
    throw std::logic_error("release: container not busy");
  c.state = ContainerState::kIdle;
  c.last_used = now;
  --busy_count_;
  idle_lru_.push_back(id);
}

void ContainerPool::remove(ContainerId id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) return;
  if (it->second.state == ContainerState::kBusy) {
    --busy_count_;
  } else if (it->second.state == ContainerState::kIdle) {
    idle_lru_.remove(id);
    prewarmed_.remove(id);
  }
  memory_in_use_mb_ -= it->second.memory_mb;
  containers_.erase(it);
}

void ContainerPool::note_arrival(const std::string& function,
                                 sim::SimTime now) {
  InterArrival& a = arrivals_[function];
  if (a.count > 0) {
    const auto gap = static_cast<double>((now - a.last).ticks());
    a.ewma_us =
        a.count == 1 ? gap : a.ewma_us + config_.keep_alive.alpha * (gap - a.ewma_us);
  }
  a.last = now;
  ++a.count;
}

sim::SimTime ContainerPool::effective_idle_timeout(
    const std::string& function) const {
  const KeepAliveConfig& ka = config_.keep_alive;
  if (ka.policy == KeepAlivePolicy::kFixed) return config_.idle_timeout;
  sim::SimTime base = config_.idle_timeout;  // no history yet: old behavior
  const auto it = arrivals_.find(function);
  if (it != arrivals_.end() && it->second.count >= 2) {
    base = std::clamp(sim::SimTime::micros(static_cast<std::int64_t>(
                          ka.margin * it->second.ewma_us)),
                      ka.floor, ka.ceiling);
  }
  if (ka.policy == KeepAlivePolicy::kAdaptive || base <= ka.floor) return base;
  // kHybrid: occupancy pressure eats the margin above the floor.
  const double by_count =
      config_.max_containers == 0
          ? 0.0
          : static_cast<double>(containers_.size()) /
                static_cast<double>(config_.max_containers);
  const double by_memory =
      config_.memory_mb <= 0
          ? 0.0
          : static_cast<double>(memory_in_use_mb_) /
                static_cast<double>(config_.memory_mb);
  const double occupancy = std::max(by_count, by_memory);
  const double band = std::max(1e-9, ka.pressure_high - ka.pressure_low);
  const double p =
      std::clamp((occupancy - ka.pressure_low) / band, 0.0, 1.0);
  const auto above_floor = static_cast<double>((base - ka.floor).ticks());
  return base - sim::SimTime::micros(static_cast<std::int64_t>(p * above_floor));
}

std::size_t ContainerPool::reap_idle(sim::SimTime now) {
  std::size_t reaped = 0;
  const bool fixed = config_.keep_alive.policy == KeepAlivePolicy::kFixed;
  for (auto it = idle_lru_.begin(); it != idle_lru_.end();) {
    const Container& c = containers_.at(*it);
    const sim::SimTime timeout =
        fixed ? config_.idle_timeout : effective_idle_timeout(c.function);
    if (now - c.last_used > timeout) {
      memory_in_use_mb_ -= c.memory_mb;
      containers_.erase(*it);
      it = idle_lru_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

void ContainerPool::clear() {
  containers_.clear();
  idle_lru_.clear();
  prewarmed_.clear();
  busy_count_ = 0;
  memory_in_use_mb_ = 0;
}

std::size_t ContainerPool::idle_containers() const { return idle_lru_.size(); }

}  // namespace hpcwhisk::runtime
