#include "hpcwhisk/runtime/container_pool.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hpcwhisk::runtime {

ContainerPool::ContainerPool(Config config, RuntimeProfile profile,
                             sim::Rng rng)
    : config_{config}, profile_{profile}, rng_{rng} {}

AcquireResult ContainerPool::acquire(const std::string& function,
                                     std::int64_t memory_mb, sim::SimTime now) {
  return acquire(function, std::string{}, memory_mb, now);
}

AcquireResult ContainerPool::acquire(const std::string& function,
                                     const std::string& kind,
                                     std::int64_t memory_mb, sim::SimTime now) {
  // 1. Warm hit: scan the idle LRU (newest-first so the hottest container
  //    is reused) for a container of the same function.
  for (auto it = idle_lru_.rbegin(); it != idle_lru_.rend(); ++it) {
    Container& c = containers_.at(*it);
    if (c.function == function && c.memory_mb >= memory_mb) {
      idle_lru_.erase(std::next(it).base());
      c.state = ContainerState::kWarming;  // warm resume
      c.last_used = now;
      ++counters_.warm_hits;
      return AcquireResult{AcquireResult::Kind::kWarm, c.id,
                           profile_.sample_warm_start(rng_)};
    }
  }

  // 2. Stem-cell hit: specialize a booted prewarmed container of the
  //    matching kind (OpenWhisk pays roughly a warm start here, not a
  //    cold one — the sandbox already exists).
  if (!kind.empty() && kind == config_.prewarm_kind) {
    for (auto it = prewarmed_.begin(); it != prewarmed_.end(); ++it) {
      Container& c = containers_.at(*it);
      if (c.usable_at > now || c.memory_mb < memory_mb) continue;
      prewarmed_.erase(it);
      c.function = function;
      c.state = ContainerState::kWarming;
      c.last_used = now;
      ++counters_.prewarm_hits;
      return AcquireResult{AcquireResult::Kind::kPrewarmed, c.id,
                           profile_.sample_warm_start(rng_)};
    }
  }

  // 3. Cold start, evicting idle containers if needed.
  const auto eviction_latency = make_room(memory_mb);
  if (!eviction_latency) {
    ++counters_.rejections;
    return AcquireResult{};  // kRejected
  }

  Container c;
  c.id = next_id_++;
  c.function = function;
  c.memory_mb = memory_mb;
  c.state = ContainerState::kWarming;
  c.created_at = now;
  c.last_used = now;
  memory_in_use_mb_ += memory_mb;
  const ContainerId id = c.id;
  containers_.emplace(id, std::move(c));
  ++counters_.cold_starts;
  return AcquireResult{AcquireResult::Kind::kCold, id,
                       *eviction_latency + profile_.sample_cold_start(rng_)};
}

std::optional<sim::SimTime> ContainerPool::make_room(std::int64_t memory_mb) {
  if (memory_mb > config_.memory_mb) return std::nullopt;  // can never fit
  sim::SimTime latency = sim::SimTime::zero();
  while (containers_.size() >= config_.max_containers ||
         memory_in_use_mb_ + memory_mb > config_.memory_mb) {
    // Stem cells are the cheapest victims, then idle warm containers.
    ContainerId victim;
    if (!prewarmed_.empty()) {
      victim = prewarmed_.front();
      prewarmed_.pop_front();
    } else if (!idle_lru_.empty()) {
      victim = idle_lru_.front();
      idle_lru_.pop_front();
    } else {
      return std::nullopt;  // all remaining are busy
    }
    const auto it = containers_.find(victim);
    assert(it != containers_.end());
    memory_in_use_mb_ -= it->second.memory_mb;
    containers_.erase(it);
    latency += profile_.sample_remove(rng_);
    ++counters_.evictions;
  }
  return latency;
}

void ContainerPool::refill_prewarm(sim::SimTime now) {
  while (prewarmed_.size() < config_.prewarm_count) {
    // Never evict for stem cells: only use genuinely free capacity.
    if (containers_.size() >= config_.max_containers) return;
    if (memory_in_use_mb_ + config_.prewarm_memory_mb > config_.memory_mb)
      return;
    Container c;
    c.id = next_id_++;
    c.kind = config_.prewarm_kind;
    c.memory_mb = config_.prewarm_memory_mb;
    c.state = ContainerState::kIdle;
    c.created_at = now;
    c.last_used = now;
    c.usable_at = now + profile_.sample_cold_start(rng_);
    memory_in_use_mb_ += c.memory_mb;
    const ContainerId id = c.id;
    containers_.emplace(id, std::move(c));
    prewarmed_.push_back(id);
  }
}

void ContainerPool::mark_running(ContainerId id, sim::SimTime now) {
  auto& c = containers_.at(id);
  if (c.state != ContainerState::kWarming)
    throw std::logic_error("mark_running: container not warming");
  c.state = ContainerState::kBusy;
  c.last_used = now;
  ++busy_count_;
}

void ContainerPool::release(ContainerId id, sim::SimTime now) {
  auto& c = containers_.at(id);
  if (c.state != ContainerState::kBusy)
    throw std::logic_error("release: container not busy");
  c.state = ContainerState::kIdle;
  c.last_used = now;
  --busy_count_;
  idle_lru_.push_back(id);
}

void ContainerPool::remove(ContainerId id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) return;
  if (it->second.state == ContainerState::kBusy) {
    --busy_count_;
  } else if (it->second.state == ContainerState::kIdle) {
    idle_lru_.remove(id);
    prewarmed_.remove(id);
  }
  memory_in_use_mb_ -= it->second.memory_mb;
  containers_.erase(it);
}

std::size_t ContainerPool::reap_idle(sim::SimTime now) {
  std::size_t reaped = 0;
  for (auto it = idle_lru_.begin(); it != idle_lru_.end();) {
    const Container& c = containers_.at(*it);
    if (now - c.last_used > config_.idle_timeout) {
      memory_in_use_mb_ -= c.memory_mb;
      containers_.erase(*it);
      it = idle_lru_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

void ContainerPool::clear() {
  containers_.clear();
  idle_lru_.clear();
  prewarmed_.clear();
  busy_count_ = 0;
  memory_in_use_mb_ = 0;
}

std::size_t ContainerPool::idle_containers() const { return idle_lru_.size(); }

}  // namespace hpcwhisk::runtime
