#include "hpcwhisk/runtime/runtime_profile.hpp"

namespace hpcwhisk::runtime {

const char* to_string(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kDocker:
      return "docker";
    case RuntimeKind::kSingularity:
      return "singularity";
  }
  return "?";
}

RuntimeProfile::RuntimeProfile(Params params)
    : params_{params},
      cold_{params.cold_start_median_s, params.cold_start_p95_s, 0.95},
      warm_{params.warm_start_median_s, params.warm_start_p95_s, 0.95},
      remove_{params.remove_median_s, params.remove_p95_s, 0.95} {}

RuntimeProfile RuntimeProfile::docker() {
  Params p;
  p.kind = RuntimeKind::kDocker;
  p.requires_root_daemon = true;
  p.cold_start_median_s = 0.30;
  p.cold_start_p95_s = 0.45;
  return RuntimeProfile{p};
}

RuntimeProfile RuntimeProfile::singularity() {
  Params p;
  p.kind = RuntimeKind::kSingularity;
  p.requires_root_daemon = false;
  // Singularity launches a process from a SIF image; no daemon round-trip,
  // slightly higher image-open cost. Net: comparable, sub-500 ms starts.
  p.cold_start_median_s = 0.35;
  p.cold_start_p95_s = 0.48;
  return RuntimeProfile{p};
}

sim::SimTime RuntimeProfile::sample_cold_start(sim::Rng& rng) const {
  return sim::SimTime::seconds(cold_.sample(rng));
}
sim::SimTime RuntimeProfile::sample_warm_start(sim::Rng& rng) const {
  return sim::SimTime::seconds(warm_.sample(rng));
}
sim::SimTime RuntimeProfile::sample_remove(sim::Rng& rng) const {
  return sim::SimTime::seconds(remove_.sample(rng));
}

}  // namespace hpcwhisk::runtime
