#pragma once
// parallel_trials: fan independent (config, seed) simulation trials
// across a thread pool while keeping output byte-identical to a serial
// run. Contract:
//   * each trial runs fn(config, out) with a private std::ostringstream;
//   * results are gathered by input index;
//   * buffers are flushed to the sink in input order, on the calling
//     thread only, as soon as all earlier trials have finished;
//   * jobs == 1 runs everything inline on the calling thread — the exact
//     pre-parallel behavior (same thread, same order, same stream);
//   * a trial exception is rethrown on the calling thread after the
//     outputs of all earlier trials (and the failing trial's partial
//     output) have been flushed — again matching a serial run, where
//     later trials would never have started printing.
//
// Trials must be independent: one sim::Simulation per trial, no shared
// mutable state, RNG seeds forked per trial (see DESIGN.md §9).

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "hpcwhisk/exec/thread_pool.hpp"

namespace hpcwhisk::exec {

/// Worker count for trial sweeps: HW_BENCH_JOBS when set and positive,
/// otherwise std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] std::size_t job_count();

template <typename Config, typename Fn>
auto parallel_trials(const std::vector<Config>& configs, Fn fn,
                     std::size_t jobs = 0, std::ostream& sink = std::cout) {
  using R = std::invoke_result_t<Fn&, const Config&, std::ostream&>;
  constexpr bool kVoid = std::is_void_v<R>;
  using Stored = std::conditional_t<kVoid, char, R>;

  struct Trial {
    std::ostringstream out;
    std::optional<Stored> result;
    std::exception_ptr error;
    bool done{false};
  };

  const std::size_t n = configs.size();
  if (jobs == 0) jobs = job_count();
  jobs = std::min(jobs, std::max<std::size_t>(1, n));

  std::vector<Trial> trials(n);

  const auto run_one = [&fn](const Config& cfg, Trial& t) {
    try {
      if constexpr (kVoid) {
        fn(cfg, t.out);
        t.result.emplace();
      } else {
        t.result.emplace(fn(cfg, t.out));
      }
    } catch (...) {
      t.error = std::current_exception();
    }
  };

  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      run_one(configs[i], trials[i]);
      sink << trials[i].out.str();
      sink.flush();
      if (trials[i].error) std::rethrow_exception(trials[i].error);
    }
  } else {
    std::mutex mutex;
    std::condition_variable cv;
    {
      ThreadPool pool{jobs};
      for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
          run_one(configs[i], trials[i]);
          {
            const std::lock_guard lock{mutex};
            trials[i].done = true;
          }
          cv.notify_all();
        });
      }
      // In-order progressive flush on the calling thread.
      for (std::size_t i = 0; i < n; ++i) {
        {
          std::unique_lock lock{mutex};
          cv.wait(lock, [&] { return trials[i].done; });
        }
        sink << trials[i].out.str();
        sink.flush();
        if (trials[i].error) break;  // pool joins queued work on destruction
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (trials[i].error) std::rethrow_exception(trials[i].error);
    }
  }

  if constexpr (kVoid) {
    return;
  } else {
    std::vector<R> results;
    results.reserve(n);
    for (Trial& t : trials) results.push_back(std::move(*t.result));
    return results;
  }
}

}  // namespace hpcwhisk::exec
