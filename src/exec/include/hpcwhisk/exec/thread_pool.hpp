#pragma once
// A small fixed-size thread pool for fanning independent simulations
// across cores. Deliberately minimal: FIFO task queue, std::future-based
// result/exception propagation, join-on-destruction. Simulations share
// no mutable state (each trial owns its Simulation, RNG forks and logs),
// so the pool needs no work stealing or priorities — sweep throughput is
// bounded by the slowest trial, not by queueing discipline.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace hpcwhisk::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Signals shutdown and joins. Tasks already queued still run;
  /// submit() after destruction begins is undefined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. An exception
  /// thrown by `fn` is captured and rethrown from future::get().
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn fn) {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> out = task->get_future();
    {
      const std::lock_guard lock{mutex_};
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return out;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace hpcwhisk::exec
