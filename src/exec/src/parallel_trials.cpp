#include "hpcwhisk/exec/parallel_trials.hpp"

#include <cstdlib>
#include <thread>

namespace hpcwhisk::exec {

std::size_t job_count() {
  if (const char* env = std::getenv("HW_BENCH_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace hpcwhisk::exec
