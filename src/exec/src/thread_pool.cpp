#include "hpcwhisk/exec/thread_pool.hpp"

#include <algorithm>

namespace hpcwhisk::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{mutex_};
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace hpcwhisk::exec
