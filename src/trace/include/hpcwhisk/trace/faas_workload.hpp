#pragma once
// FaaS load generators.
//
// The paper's responsiveness experiment (Sec. V-C) uses Gatling to issue
// a constant open-loop 10 QPS over 100 identically-sized functions with
// distinct names (so the hash-based router spreads them over all warm
// invokers). We reproduce that, plus a Poisson arrival mode and an
// Azure-like duration mix (Shahrad et al. [2]: 50 % of functions finish
// under 3 s, 90 % under 1 min) for extension experiments.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/whisk/function.hpp"

namespace hpcwhisk::trace {

class FaasLoadGenerator {
 public:
  /// The generator is transport-agnostic: the sink receives the function
  /// name to invoke (wire it to Controller::submit or ClientWrapper::invoke).
  using Sink = std::function<void(const std::string&)>;

  struct Config {
    double rate_qps{10.0};
    /// false => strictly periodic arrivals (Gatling constantUsersPerSec);
    /// true  => Poisson arrivals at the same mean rate.
    bool poisson{false};
    std::vector<std::string> functions;
    /// Skewed popularity: with probability `hot_share` an arrival is
    /// drawn (round-robin) from the first `hot_count` names instead of
    /// the global round-robin — the few-hot-functions shape of
    /// production FaaS traces, and the mix the lease tier feeds on.
    /// The defaults make zero RNG draws, so existing arrival sequences
    /// stay byte-identical.
    double hot_share{0.0};
    std::size_t hot_count{0};
  };

  FaasLoadGenerator(sim::Simulation& simulation, Config config, Sink sink,
                    sim::Rng rng);

  /// Starts issuing calls until `until` (absolute time).
  void start(sim::SimTime until);
  void stop();

  [[nodiscard]] std::uint64_t issued() const { return issued_; }

 private:
  void arm_next();

  sim::Simulation& sim_;
  Config config_;
  Sink sink_;
  sim::Rng rng_;
  sim::SimTime until_;
  std::uint64_t issued_{0};
  std::size_t next_function_{0};
  std::size_t next_hot_{0};
  bool running_{false};
};

/// Registers `count` identical sleep-functions ("sleep-000"...) like the
/// paper's responsiveness workload: 10 ms fixed duration, tiny memory.
std::vector<std::string> register_sleep_functions(
    whisk::FunctionRegistry& registry, std::size_t count,
    sim::SimTime duration = sim::SimTime::millis(10));

/// Registers `count` functions with an Azure-like duration mix
/// (median ~0.6 s, 50 % < 3 s, 90 % < 60 s).
std::vector<std::string> register_azure_mix_functions(
    whisk::FunctionRegistry& registry, std::size_t count, sim::Rng& rng);

}  // namespace hpcwhisk::trace
