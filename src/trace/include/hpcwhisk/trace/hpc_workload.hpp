#pragma once
// Synthetic HPC workload calibrated to the published Prometheus
// statistics (Sec. I, Figs. 1-2):
//  * job time limits: median 60 min, 95 % of jobs declare >= 15 min;
//  * runtimes well below limits (the "slack" of Fig. 2);
//  * node counts from 1 to a significant share of the cluster;
//  * a deep pending backlog keeps utilization > 99 %, so idleness only
//    arises from scheduling frictions (fragmentation while a multi-node
//    head job waits, limit-vs-runtime slack) — the same mechanism that
//    produces the short idle periods on the real machine.
//
// The generator is closed-loop only in backlog depth (top up pending jobs
// to a target), never in placement: all scheduling is the Slurmctld's.

#include <cstdint>
#include <string>
#include <vector>

#include "hpcwhisk/sim/distributions.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/slurm/slurmctld.hpp"

namespace hpcwhisk::trace {

/// One generated job, also the unit of trace (de)serialization.
struct TraceJob {
  sim::SimTime submit;
  std::uint32_t num_nodes{1};
  sim::SimTime time_limit;
  sim::SimTime runtime;
  /// Per-node TRES request (zero = whole node; only meaningful when the
  /// target Slurmctld runs in TRES mode). Not persisted by save_trace.
  slurm::TresVector tres_per_node{};
};

class HpcWorkloadGenerator {
 public:
  enum class Mode {
    /// Calibrated near-critical load (default): a shallow pending backlog
    /// topped up at a bounded rate, with occasional submission lulls.
    /// Reproduces the published Prometheus idleness statistics (Fig. 1):
    /// ~10% zero-idle time, P25/P50/P80 of the idle-node count ~2/5/13,
    /// a steady sub-1% idle surface and a heavy idle-period tail.
    kCalibrated,
    /// Unbounded instant top-up: saturates the cluster completely
    /// (nearly zero idle). Used by stress/ablation benches.
    kSaturated,
  };

  struct Config {
    Mode mode{Mode::kCalibrated};
    /// Pending-backlog depth the top-up maintains.
    std::size_t backlog_target{30};
    /// Top-up / lull cadence.
    sim::SimTime check_interval{sim::SimTime::seconds(15)};
    /// kCalibrated: submissions per tick are bounded — users do not
    /// teleport jobs into fresh holes, so freed bursts absorb gradually.
    std::size_t max_submits_per_tick{2};
    /// kCalibrated: occasionally the submission stream slows to a trickle
    /// (nights, deadlines passing); completions then outpace submissions
    /// and idle nodes accumulate — the tail of Fig. 1b and the bursts of
    /// Fig. 1c.
    double lull_probability_per_tick{0.005};
    sim::SimTime lull_mean{sim::SimTime::minutes(18)};
    /// Fraction of jobs that run into their declared limit (timeout).
    double timeout_fraction{0.03};
    /// Beta-like runtime fraction parameters: runtime = limit * X where
    /// X has mean alpha/(alpha+beta).
    double runtime_alpha{2.0};
    double runtime_beta{2.2};
    /// Node-count buckets: {max_nodes, weight} pairs; a job's size is
    /// drawn uniformly within the chosen bucket.
    struct SizeBucket {
      std::uint32_t lo;
      std::uint32_t hi;
      double weight;
    };
    std::vector<SizeBucket> size_buckets;  // empty => Prometheus defaults
    std::string partition{"hpc"};
    /// Scale limits by this factor (1.0 = Fig. 2 calibration).
    double limit_scale{1.0};

    /// Per-node TRES mix (TRES-mode clusters): {request, weight} pairs;
    /// each job draws one bucket. Empty means whole-node jobs AND no
    /// extra RNG draws — committed decision-log hashes of legacy
    /// configs depend on the draw sequence staying put.
    struct TresBucket {
      slurm::TresVector tres;
      double weight;
    };
    std::vector<TresBucket> tres_buckets;
    /// QOS stamped on every generated job (empty = none).
    std::string qos;
  };

  HpcWorkloadGenerator(sim::Simulation& simulation, slurm::Slurmctld& ctld,
                       Config config, sim::Rng rng);

  /// Submits the initial backlog and starts the top-up loop.
  void start();
  void stop();

  /// Draws one job (without submitting); used for trace generation.
  [[nodiscard]] TraceJob draw_job();

  /// All jobs submitted so far (for the Fig. 2 CDFs).
  [[nodiscard]] const std::vector<TraceJob>& submitted_jobs() const {
    return submitted_;
  }

  /// The published Fig. 2 limit distribution (minutes).
  [[nodiscard]] static sim::EmpiricalCdf default_limit_cdf();

  /// Pending node-demand currently queued.
  [[nodiscard]] std::size_t pending_demand() const { return pending_demand_; }
  [[nodiscard]] std::size_t lulls_entered() const { return lulls_entered_; }

 private:
  void top_up();
  void submit_one();

  sim::Simulation& sim_;
  slurm::Slurmctld& ctld_;
  Config config_;
  sim::Rng rng_;
  sim::EmpiricalCdf limit_cdf_;
  std::vector<TraceJob> submitted_;
  std::size_t pending_now_{0};        ///< pending jobs (callback-tracked)
  std::size_t pending_demand_{0};     ///< pending node-demand
  sim::SimTime lull_until_;
  std::size_t lulls_entered_{0};
  sim::PeriodicHandle loop_;
  bool running_{false};
};

/// Writes/reads a job trace as CSV (submit_s,nodes,limit_s,runtime_s).
void save_trace(const std::string& path, const std::vector<TraceJob>& jobs);
[[nodiscard]] std::vector<TraceJob> load_trace(const std::string& path);

}  // namespace hpcwhisk::trace
