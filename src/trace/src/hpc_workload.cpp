#include "hpcwhisk/trace/hpc_workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hpcwhisk::trace {

namespace {
std::vector<HpcWorkloadGenerator::Config::SizeBucket> default_buckets() {
  // Calibrated against the published Fig. 1 statistics. Small (1-2 node)
  // jobs are scarce: their scarcity is what leaves a persistent floor of
  // a few idle nodes (fragmentation friction). The rare large buckets
  // produce the accumulation bursts of Fig. 1c without dominating the
  // idle surface.
  return {
      {1, 1, 0.051},  {2, 2, 0.021},  {3, 4, 0.14},    {5, 8, 0.13},
      {9, 16, 0.10},  {17, 32, 0.07}, {33, 64, 0.005}, {65, 128, 0.002},
      {129, 240, 0.001},
  };
}
}  // namespace

sim::EmpiricalCdf HpcWorkloadGenerator::default_limit_cdf() {
  // Fig. 2 (green): median 60 min, 5 % below 15 min, long tail to 72 h.
  return sim::EmpiricalCdf{{
      {5.0, 0.01},
      {15.0, 0.05},
      {30.0, 0.25},
      {60.0, 0.50},
      {120.0, 0.68},
      {240.0, 0.80},
      {720.0, 0.92},
      {1440.0, 0.97},
      {4320.0, 1.00},
  }};
}

HpcWorkloadGenerator::HpcWorkloadGenerator(sim::Simulation& simulation,
                                           slurm::Slurmctld& ctld,
                                           Config config, sim::Rng rng)
    : sim_{simulation},
      ctld_{ctld},
      config_{std::move(config)},
      rng_{rng},
      limit_cdf_{default_limit_cdf()} {
  if (config_.size_buckets.empty()) config_.size_buckets = default_buckets();
}

TraceJob HpcWorkloadGenerator::draw_job() {
  TraceJob job;
  job.submit = sim_.now();

  std::vector<double> weights;
  weights.reserve(config_.size_buckets.size());
  for (const auto& b : config_.size_buckets) weights.push_back(b.weight);
  const auto& bucket = config_.size_buckets[rng_.weighted_index(weights)];
  job.num_nodes = static_cast<std::uint32_t>(
      rng_.uniform_int(bucket.lo, bucket.hi));
  // Small test clusters: a job can never exceed the machine.
  job.num_nodes = std::min(job.num_nodes, ctld_.node_count());

  // TRES mix: guarded on a non-empty bucket set so legacy configs keep
  // their exact RNG draw sequence (committed decision-log hashes).
  if (!config_.tres_buckets.empty()) {
    std::vector<double> tres_weights;
    tres_weights.reserve(config_.tres_buckets.size());
    for (const auto& b : config_.tres_buckets) tres_weights.push_back(b.weight);
    job.tres_per_node =
        config_.tres_buckets[rng_.weighted_index(tres_weights)].tres;
  }

  const double limit_min = limit_cdf_.sample(rng_) * config_.limit_scale;
  job.time_limit = sim::SimTime::minutes(std::max(2.0, limit_min));

  if (rng_.bernoulli(config_.timeout_fraction)) {
    // Runs into the limit: model as "never finishes on its own".
    job.runtime = sim::SimTime::max();
  } else {
    // Runtime fraction: the product of two powered uniforms gives a
    // unimodal fraction with mean ~alpha/(alpha+1) * beta/(beta+1),
    // leaving substantial slack below the declared limit (Fig. 2).
    const double u1 = rng_.uniform();
    const double u2 = rng_.uniform();
    const double x = 0.05 + 0.9 * std::pow(u1, 1.0 / config_.runtime_alpha) *
                                std::pow(u2, 1.0 / config_.runtime_beta);
    job.runtime = sim::SimTime::seconds(
        std::max(30.0, job.time_limit.to_seconds() * std::min(1.0, x)));
  }
  return job;
}

void HpcWorkloadGenerator::start() {
  if (running_) return;
  running_ = true;
  if (config_.mode == Mode::kSaturated) {
    top_up();
    loop_ = sim_.every(config_.check_interval, [this] { top_up(); });
    return;
  }
  // kCalibrated: no pre-fill — the cluster warms up from empty through
  // the rate-limited top-up (give runs a burn-in of ~4 simulated hours
  // before measuring; the benches do). Pre-filling with an arrival-mix
  // batch was tried and rejected: it distorts the running-job length
  // mix (length-biased sampling) and suppresses the idle-period tail.
  top_up();
  loop_ = sim_.every(config_.check_interval, [this] { top_up(); });
}

void HpcWorkloadGenerator::stop() {
  running_ = false;
  loop_.stop();
}

void HpcWorkloadGenerator::top_up() {
  if (!running_) return;
  if (config_.mode == Mode::kSaturated) {
    while (pending_now_ < config_.backlog_target) submit_one();
    return;
  }
  const sim::SimTime now = sim_.now();
  const bool in_lull = now < lull_until_;
  if (!in_lull && rng_.uniform() < config_.lull_probability_per_tick) {
    lull_until_ =
        now + sim::SimTime::seconds(
                  rng_.exponential(config_.lull_mean.to_seconds()));
    ++lulls_entered_;
  }
  std::size_t budget = in_lull ? 1 : config_.max_submits_per_tick;
  while (pending_now_ < config_.backlog_target && budget-- > 0) submit_one();
}

void HpcWorkloadGenerator::submit_one() {
  const TraceJob job = draw_job();
  submitted_.push_back(job);

  slurm::JobSpec spec;
  spec.partition = config_.partition;
  spec.num_nodes = job.num_nodes;
  spec.time_limit = job.time_limit;
  spec.actual_runtime = job.runtime;
  spec.tres_per_node = job.tres_per_node;
  spec.qos = config_.qos;
  ++pending_now_;
  pending_demand_ += job.num_nodes;
  const std::uint32_t nodes = job.num_nodes;
  spec.on_start = [this, nodes](const slurm::JobRecord&) {
    if (pending_now_ > 0) --pending_now_;
    pending_demand_ -= std::min<std::size_t>(pending_demand_, nodes);
  };
  ctld_.submit(std::move(spec));
}

void save_trace(const std::string& path, const std::vector<TraceJob>& jobs) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  out.precision(12);
  out << "submit_s,nodes,limit_s,runtime_s\n";
  for (const TraceJob& j : jobs) {
    const double runtime = j.runtime == sim::SimTime::max()
                               ? -1.0
                               : j.runtime.to_seconds();
    out << j.submit.to_seconds() << ',' << j.num_nodes << ','
        << j.time_limit.to_seconds() << ',' << runtime << '\n';
  }
}

std::vector<TraceJob> load_trace(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::vector<TraceJob> jobs;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss{line};
    std::string field;
    TraceJob j;
    std::getline(ss, field, ',');
    j.submit = sim::SimTime::seconds(std::stod(field));
    std::getline(ss, field, ',');
    j.num_nodes = static_cast<std::uint32_t>(std::stoul(field));
    std::getline(ss, field, ',');
    j.time_limit = sim::SimTime::seconds(std::stod(field));
    std::getline(ss, field, ',');
    const double runtime = std::stod(field);
    j.runtime = runtime < 0 ? sim::SimTime::max() : sim::SimTime::seconds(runtime);
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace hpcwhisk::trace
