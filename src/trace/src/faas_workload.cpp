#include "hpcwhisk/trace/faas_workload.hpp"

#include <cstdio>

#include "hpcwhisk/sim/distributions.hpp"

namespace hpcwhisk::trace {

FaasLoadGenerator::FaasLoadGenerator(sim::Simulation& simulation,
                                     Config config, Sink sink, sim::Rng rng)
    : sim_{simulation},
      config_{std::move(config)},
      sink_{std::move(sink)},
      rng_{rng} {
  if (config_.rate_qps <= 0)
    throw std::invalid_argument("FaasLoadGenerator: rate must be positive");
  if (config_.functions.empty())
    throw std::invalid_argument("FaasLoadGenerator: no functions");
  if (!sink_) throw std::invalid_argument("FaasLoadGenerator: missing sink");
}

void FaasLoadGenerator::start(sim::SimTime until) {
  if (running_) return;
  running_ = true;
  until_ = until;
  arm_next();
}

void FaasLoadGenerator::stop() { running_ = false; }

void FaasLoadGenerator::arm_next() {
  if (!running_) return;
  const double mean_gap_s = 1.0 / config_.rate_qps;
  const sim::SimTime gap =
      config_.poisson ? sim::SimTime::seconds(rng_.exponential(mean_gap_s))
                      : sim::SimTime::seconds(mean_gap_s);
  if (sim_.now() + gap > until_) {
    running_ = false;
    return;
  }
  sim_.after(gap, [this] {
    if (!running_) return;
    std::size_t pick;
    if (config_.hot_share > 0.0 && config_.hot_count > 0 &&
        rng_.bernoulli(config_.hot_share)) {
      // Hot subset: its own round-robin over the first hot_count names.
      const std::size_t n =
          std::min(config_.hot_count, config_.functions.size());
      pick = next_hot_ % n;
      next_hot_ = (next_hot_ + 1) % n;
    } else {
      // Round-robin over the function names: with 100 distinct names this
      // exercises every healthy invoker's topic (hash routing).
      pick = next_function_;
      next_function_ = (next_function_ + 1) % config_.functions.size();
    }
    const std::string& fn = config_.functions[pick];
    ++issued_;
    sink_(fn);
    arm_next();
  });
}

std::vector<std::string> register_sleep_functions(
    whisk::FunctionRegistry& registry, std::size_t count,
    sim::SimTime duration) {
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "sleep-%03zu", i);
    whisk::FunctionSpec spec =
        whisk::fixed_duration_function(buf, duration, /*memory_mb=*/128);
    registry.put(std::move(spec));
    names.emplace_back(buf);
  }
  return names;
}

std::vector<std::string> register_azure_mix_functions(
    whisk::FunctionRegistry& registry, std::size_t count, sim::Rng& rng) {
  // Each function gets a characteristic median duration drawn from a
  // heavy-tailed mix calibrated to the Azure trace aggregates; individual
  // invocations are lognormal around it.
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "azure-%03zu", i);
    const double median_s =
        sim::BoundedPareto{0.6, 0.05, 300.0}.sample(rng);
    whisk::FunctionSpec spec;
    spec.name = buf;
    spec.memory_mb = 128 + 128 * rng.uniform_int(0, 3);
    const sim::LognormalFromQuantiles model{median_s, median_s * 2.5, 0.95};
    spec.duration = [model](sim::Rng& r) {
      return sim::SimTime::seconds(model.sample(r));
    };
    registry.put(std::move(spec));
    names.emplace_back(buf);
  }
  return names;
}

}  // namespace hpcwhisk::trace
