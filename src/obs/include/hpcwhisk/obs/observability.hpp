#pragma once
// The per-simulation observability context, and the zero-cost-when-off
// instrumentation gate.
//
// One Observability instance pairs one TraceCollector with one
// MetricsRegistry and belongs to exactly one simulation (one trial):
// parallel_trials stays byte-identical because trials never share a
// collector. Components receive a nullable pointer through their Config;
// a null pointer IS the runtime off switch.
//
// Instrumentation sites are written as
//
//   HW_OBS_IF(obs_) {
//     obs_->trace.record_chained(...);
//     obs_->metrics.counter("x").add();
//   }
//
// With observability compiled in (the default), that is a single
// predictable null-check per site — measured at <= 2 % of events/s on
// the canonical runs (bench/perf_report). Building with
// -DHPCWHISK_OBS=OFF defines HPCWHISK_OBS_COMPILED=0 and turns every
// site into `if constexpr (false)`, removing even the branch while still
// type-checking the body.

#include "hpcwhisk/obs/decisions.hpp"
#include "hpcwhisk/obs/metrics.hpp"
#include "hpcwhisk/obs/timeseries.hpp"
#include "hpcwhisk/obs/trace.hpp"

#ifndef HPCWHISK_OBS_COMPILED
#define HPCWHISK_OBS_COMPILED 1
#endif

#if HPCWHISK_OBS_COMPILED
#define HW_OBS_IF(obs) if ((obs) != nullptr)
#else
#define HW_OBS_IF(obs) if constexpr (false)
#endif

namespace hpcwhisk::obs {

struct Observability {
  struct Config {
    std::size_t trace_capacity{TraceCollector::kDefaultCapacity};
    /// Stored points per time series before downsampling (tier 2).
    std::size_t series_capacity{TimeSeriesRecorder::kDefaultCapacity};
    /// Routing "why" records kept before counted drops (tier 2).
    std::size_t decision_capacity{DecisionLog::kDefaultCapacity};
  };

  Observability() : Observability(Config{}) {}
  explicit Observability(Config config)
      : trace{config.trace_capacity},
        series{config.series_capacity},
        decisions{config.decision_capacity} {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  TraceCollector trace;
  MetricsRegistry metrics;
  /// Sim-time series (sampled by the run's owner, never by obs events).
  TimeSeriesRecorder series;
  /// Per-routing-decision explainability records.
  DecisionLog decisions;
};

}  // namespace hpcwhisk::obs
