#pragma once
// Scheduling-decision explainability: one structured "why" record per
// routing decision made by a data-driven policy — the policy name, the
// duration prediction, the backlog charge it saw, warm/cold expectation,
// and the runner-up it rejected. The records answer the question traces
// cannot ("why THIS invoker?") and are exportable as JSONL
// (obs::write_decisions_jsonl) for offline scheduler forensics.
//
// Recording is observation only: the controller copies an already-made
// sched::CallScheduler::Decision here, so the store can never perturb a
// choice — decision-log hashes stay identical with obs on and off. The
// buffer is bounded; past capacity, records drop (counted), matching the
// TraceCollector contract.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::obs {

struct RouteDecision {
  /// Sentinel worker id: no runner-up existed (single candidate).
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  std::uint64_t call{0};  ///< activation id
  sim::SimTime at;
  /// to_string(RouteMode) spelling; must point at static storage.
  const char* policy{"?"};
  std::string function;
  std::uint32_t chosen{0};
  std::uint32_t runner_up{kNone};
  std::uint32_t candidates{0};  ///< healthy invokers considered
  std::int64_t predicted_ticks{0};       ///< bare duration prediction
  std::int64_t chosen_cost_ticks{0};     ///< backlog + duration (+ cold)
  std::int64_t runner_up_cost_ticks{0};  ///< same, for the rejected pick
  std::int64_t backlog_ticks{0};  ///< chosen worker's charge at decision
  bool expected_cold{false};
  bool short_class{false};
};

class DecisionLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit DecisionLog(std::size_t capacity = kDefaultCapacity)
      : capacity_{capacity} {}

  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  void record(RouteDecision d);

  [[nodiscard]] const std::vector<RouteDecision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<RouteDecision> decisions_;
  std::uint64_t recorded_{0};
  std::uint64_t dropped_{0};
};

}  // namespace hpcwhisk::obs
