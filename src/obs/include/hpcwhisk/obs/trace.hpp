#pragma once
// TraceCollector: the typed event timeline behind every run diagnosis.
//
// The paper's entire evaluation is reconstructed from event timelines —
// per-activation state transitions (Figs. 5b/6b), pilot lifecycles and
// drain windows, node-state samples. The collector records those as
// typed spans and instant events in one append-only per-simulation
// buffer, in strict simulation order (the driver is single-threaded), so
// a trace is a total order of everything the run did.
//
// Cost model: recording is bounded-time (one bounds check, one struct
// write, and for chained events one hash-map update); names must be
// string literals so no allocation or copy ever happens per event. When
// tracing is off the collector does not exist at all — call sites guard
// on a null Observability pointer (see observability.hpp), which is the
// runtime flag, and the HW_OBS_IF macro compiles the whole site away
// when HPCWHISK_OBS_COMPILED=0.
//
// Causality: record_chained() links each event to the previous event
// recorded for the same (category, correlation id) — activation events
// thread controller → topic → invoker → container through submit /
// pull / exec / drain-reroute / terminal, so a terminal span can be
// walked back to its submission. tests/obs/causality_test.cpp holds the
// invariant.

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::obs {

/// Event category: the span taxonomy (DESIGN.md §10).
enum class Cat : std::uint8_t {
  kActivation,  ///< one function invocation, submit -> terminal
  kPilot,       ///< pilot-job / invoker lifecycle (queued..kill)
  kSched,       ///< slurmctld passes, launches, preemptions
  kFault,       ///< chaos injections and recoveries
  kMq,          ///< broker-level fault actions
  kAudit,       ///< conservation-audit findings
  kMark,        ///< harness markers (measure window, export points)
  kClient,      ///< client-side Alg. 1 path: fallback windows, offloads,
                ///< commercial (cloud) invocations
  kFed,         ///< federation gateway: routing, spillover, cool-downs
};

[[nodiscard]] const char* to_string(Cat c);

/// How the event renders on a timeline (mirrors Chrome trace phases).
enum class Phase : std::uint8_t {
  kBegin,       ///< synchronous span opens on its track
  kEnd,         ///< ... closes
  kAsyncBegin,  ///< id-correlated span opens (may migrate tracks)
  kAsyncEnd,    ///< ... closes
  kInstant,     ///< point event
};

/// Which timeline row the event belongs to. Exported as Perfetto thread
/// ids; `track` below disambiguates within a kind (invoker id, job id).
enum class Track : std::uint8_t {
  kController,
  kSlurmctld,
  kChaos,
  kInvoker,
  kPilot,
  kCloud,    ///< the commercial (Lambda-like) backend
  kGateway,  ///< the federation routing gateway
};

inline constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;
inline constexpr std::uint64_t kNoCorr = ~0ull;

struct TraceEvent {
  sim::SimTime at;
  const char* name;    ///< static string literal; never freed or copied
  std::uint64_t corr;  ///< correlation id (activation id, slurm job id)
  std::uint64_t track; ///< row within track_kind (invoker id, job id, 0)
  double arg0{0};
  double arg1{0};
  std::uint32_t parent{kNoParent};  ///< seq of the causal parent event
  Cat cat{};
  Phase phase{};
  Track track_kind{};
};

class TraceCollector {
 public:
  /// Default ring capacity: 1M events (~64 MB). Recording past capacity
  /// drops the newest events and counts them — never silently.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit TraceCollector(std::size_t capacity = kDefaultCapacity);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Records one event; returns its sequence number (index into
  /// events()), or kNoParent if the buffer is full and it was dropped.
  /// `name` MUST be a string literal (stored by pointer).
  std::uint32_t record(Cat cat, Phase phase, const char* name, Track track_kind,
                       std::uint64_t track, std::uint64_t corr,
                       sim::SimTime at, double arg0 = 0.0, double arg1 = 0.0);

  /// Like record(), but sets `parent` to the previous event recorded for
  /// the same (cat, corr) through this method — the causal-chain variant
  /// used for activation and pilot lifecycles.
  std::uint32_t record_chained(Cat cat, Phase phase, const char* name,
                               Track track_kind, std::uint64_t track,
                               std::uint64_t corr, sim::SimTime at,
                               double arg0 = 0.0, double arg1 = 0.0);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events refused because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Seq of the most recent chained event for (cat, corr); kNoParent if
  /// none (tests and exporters walk chains with this).
  [[nodiscard]] std::uint32_t chain_tail(Cat cat, std::uint64_t corr) const;

  void clear();

 private:
  static std::uint64_t chain_key(Cat cat, std::uint64_t corr) {
    return (static_cast<std::uint64_t>(cat) << 56) ^ corr;
  }

  std::vector<TraceEvent> events_;
  std::unordered_map<std::uint64_t, std::uint32_t> chain_tail_;
  std::size_t capacity_;
  std::uint64_t dropped_{0};
};

/// FNV-1a over bytes: the repo's canonical decision-log digest (shared
/// with tests/slurm/sched_golden_test.cpp and bench/obs_report's
/// traced-vs-untraced determinism check).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace hpcwhisk::obs
