#pragma once
// TraceCollector: the typed event timeline behind every run diagnosis.
//
// The paper's entire evaluation is reconstructed from event timelines —
// per-activation state transitions (Figs. 5b/6b), pilot lifecycles and
// drain windows, node-state samples. The collector records those as
// typed spans and instant events in one append-only per-simulation
// buffer, in strict simulation order (the driver is single-threaded), so
// a trace is a total order of everything the run did.
//
// Cost model: recording is bounded-time (one bounds check, one struct
// write, and for chained events one dense-array tail update — corr ids
// are small dense integers, so no hashing on the hot path); names must be
// string literals so no allocation or copy ever happens per event. When
// tracing is off the collector does not exist at all — call sites guard
// on a null Observability pointer (see observability.hpp), which is the
// runtime flag, and the HW_OBS_IF macro compiles the whole site away
// when HPCWHISK_OBS_COMPILED=0.
//
// Causality: record_chained() links each event to the previous event
// recorded for the same (category, correlation id) — activation events
// thread controller → topic → invoker → container through submit /
// pull / exec / drain-reroute / terminal, so a terminal span can be
// walked back to its submission. tests/obs/causality_test.cpp holds the
// invariant.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::obs {

/// Event category: the span taxonomy (DESIGN.md §10).
enum class Cat : std::uint8_t {
  kActivation,  ///< one function invocation, submit -> terminal
  kPilot,       ///< pilot-job / invoker lifecycle (queued..kill)
  kSched,       ///< slurmctld passes, launches, preemptions
  kFault,       ///< chaos injections and recoveries
  kMq,          ///< broker-level fault actions
  kAudit,       ///< conservation-audit findings
  kMark,        ///< harness markers (measure window, export points)
  kClient,      ///< client-side Alg. 1 path: fallback windows, offloads,
                ///< commercial (cloud) invocations
  kFed,         ///< federation gateway: routing, spillover, cool-downs
};

[[nodiscard]] const char* to_string(Cat c);

/// How the event renders on a timeline (mirrors Chrome trace phases).
enum class Phase : std::uint8_t {
  kBegin,       ///< synchronous span opens on its track
  kEnd,         ///< ... closes
  kAsyncBegin,  ///< id-correlated span opens (may migrate tracks)
  kAsyncEnd,    ///< ... closes
  kInstant,     ///< point event
};

/// Which timeline row the event belongs to. Exported as Perfetto thread
/// ids; `track` below disambiguates within a kind (invoker id, job id).
enum class Track : std::uint8_t {
  kController,
  kSlurmctld,
  kChaos,
  kInvoker,
  kPilot,
  kCloud,    ///< the commercial (Lambda-like) backend
  kGateway,  ///< the federation routing gateway
};

inline constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;
inline constexpr std::uint64_t kNoCorr = ~0ull;

/// Cache-line sized and aligned: the collector commits each event with
/// one full-line non-temporal store (see record()), which requires the
/// struct to tile the buffer in whole 64-byte lines.
struct alignas(64) TraceEvent {
  sim::SimTime at;
  const char* name;    ///< static string literal; never freed or copied
  std::uint64_t corr;  ///< correlation id (activation id, slurm job id)
  std::uint64_t track; ///< row within track_kind (invoker id, job id, 0)
  double arg0{0};
  double arg1{0};
  std::uint32_t parent{kNoParent};  ///< seq of the causal parent event
  Cat cat{};
  Phase phase{};
  Track track_kind{};
};

static_assert(sizeof(TraceEvent) == 64 && alignof(TraceEvent) == 64);
static_assert(std::is_trivially_copyable_v<TraceEvent>);

class TraceCollector {
 public:
  /// Default ring capacity: 1M events (~64 MB). Recording past capacity
  /// drops the newest events and counts them — never silently.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit TraceCollector(std::size_t capacity = kDefaultCapacity);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Records one event; returns its sequence number (index into
  /// events()), or kNoParent if the buffer is full and it was dropped.
  /// `name` MUST be a string literal (stored by pointer). Inline: this
  /// runs ~once per four simulation events in a traced run, and the
  /// call overhead alone is measurable in bench/obs_report.
  std::uint32_t record(Cat cat, Phase phase, const char* name, Track track_kind,
                       std::uint64_t track, std::uint64_t corr,
                       sim::SimTime at, double arg0 = 0.0, double arg1 = 0.0) {
    return record_with_parent(kNoParent, cat, phase, name, track_kind, track,
                              corr, at, arg0, arg1);
  }

  /// Like record(), but sets `parent` to the previous event recorded for
  /// the same (cat, corr) through this method — the causal-chain variant
  /// used for activation and pilot lifecycles. The parent is resolved
  /// BEFORE the event is committed so the stored line is never read
  /// back (record() streams it past the cache).
  std::uint32_t record_chained(Cat cat, Phase phase, const char* name,
                               Track track_kind, std::uint64_t track,
                               std::uint64_t corr, sim::SimTime at,
                               double arg0 = 0.0, double arg1 = 0.0) {
    if (size_ >= capacity_) {
      ++dropped_;
      return kNoParent;
    }
    const auto seq = static_cast<std::uint32_t>(size_);
    std::uint32_t parent;
    auto& tails = dense_tails_[static_cast<std::size_t>(cat)];
    if (corr < tails.size()) {
      parent = std::exchange(tails[static_cast<std::size_t>(corr)], seq);
    } else {
      parent = chain_slow(cat, corr, seq);
    }
    return record_with_parent(parent, cat, phase, name, track_kind, track,
                              corr, at, arg0, arg1);
  }

  [[nodiscard]] std::span<const TraceEvent> events() const {
    return {store_.get(), size_};
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events refused because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Seq of the most recent chained event for (cat, corr); kNoParent if
  /// none (tests and exporters walk chains with this).
  [[nodiscard]] std::uint32_t chain_tail(Cat cat, std::uint64_t corr) const;

  void clear();

 private:
  static std::uint64_t chain_key(Cat cat, std::uint64_t corr) {
    return (static_cast<std::uint64_t>(cat) << 56) ^ corr;
  }

  /// Correlation ids in this codebase are small dense integers
  /// (activation ids, slurm job ids, chaos/cluster indices), so chain
  /// tails live in per-category arrays indexed by corr — one L1-friendly
  /// load on the hot path instead of a hash-map probe. Ids at or above
  /// this bound (and kNoCorr) fall back to the sparse map; the bound
  /// caps a single array at 16 MB even against a hostile id.
  static constexpr std::uint64_t kDenseCorrLimit = 1u << 22;
  static constexpr std::size_t kNumCats =
      static_cast<std::size_t>(Cat::kFed) + 1;

  /// Cold paths kept out of line: buffer allocation and first-touch /
  /// sparse chain-tail slots (returns the previous tail, if any).
  void allocate_store();
  std::uint32_t chain_slow(Cat cat, std::uint64_t corr, std::uint32_t seq);

  /// The one hot store. The event buffer is write-once and read only at
  /// export time, so on x86 each 64-byte event is committed with
  /// non-temporal stores: no read-for-ownership and no eviction of the
  /// simulation's working set — the main residue of tracing overhead.
  /// Single-thread loads still see the data (same-CPU ordering), so
  /// exporters and tests need no fence.
  std::uint32_t record_with_parent(std::uint32_t parent, Cat cat, Phase phase,
                                   const char* name, Track track_kind,
                                   std::uint64_t track, std::uint64_t corr,
                                   sim::SimTime at, double arg0, double arg1) {
    if (size_ >= capacity_) {
      ++dropped_;
      return kNoParent;
    }
    if (store_ == nullptr) allocate_store();
    alignas(64) TraceEvent ev;
    ev.at = at;
    ev.name = name;
    ev.corr = corr;
    ev.track = track;
    ev.arg0 = arg0;
    ev.arg1 = arg1;
    ev.parent = parent;
    ev.cat = cat;
    ev.phase = phase;
    ev.track_kind = track_kind;
#if defined(__SSE2__)
    const auto* src = reinterpret_cast<const __m128i*>(&ev);
    auto* dst = reinterpret_cast<__m128i*>(store_.get() + size_);
    _mm_stream_si128(dst + 0, _mm_load_si128(src + 0));
    _mm_stream_si128(dst + 1, _mm_load_si128(src + 1));
    _mm_stream_si128(dst + 2, _mm_load_si128(src + 2));
    _mm_stream_si128(dst + 3, _mm_load_si128(src + 3));
#else
    std::memcpy(store_.get() + size_, &ev, sizeof ev);
#endif
    return static_cast<std::uint32_t>(size_++);
  }

  struct StoreDelete {
    void operator()(TraceEvent* p) const {
      ::operator delete(p, std::align_val_t{alignof(TraceEvent)});
    }
  };

  /// Raw 64-byte-aligned storage, allocated lazily at full capacity on
  /// the first record (virtual memory only — pages are touched as they
  /// fill). TraceEvent is an implicit-lifetime type, so the byte-copy
  /// commit above creates the objects without placement-new.
  std::unique_ptr<TraceEvent, StoreDelete> store_;
  std::size_t size_{0};
  std::vector<std::uint32_t> dense_tails_[kNumCats];
  std::unordered_map<std::uint64_t, std::uint32_t> sparse_tails_;
  std::size_t capacity_;
  std::uint64_t dropped_{0};
};

/// FNV-1a over bytes: the repo's canonical decision-log digest (shared
/// with tests/slurm/sched_golden_test.cpp and bench/obs_report's
/// traced-vs-untraced determinism check).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace hpcwhisk::obs
