#pragma once
// MetricsRegistry: named counters, gauges, and log-bucketed histograms.
//
// Runtime components register instruments once (a map lookup) and cache
// the returned reference; hot paths then pay one pointer write or one
// bucket increment. Histograms are HDR-style log-bucketed (8 sub-buckets
// per power of two => <= 12.5 % relative quantile error) so p50/p95/p99
// come out of 4 KB of fixed state without storing raw samples.
//
// Components whose counters already exist (Slurmctld::Counters,
// Controller::Counters, Topic::Counters...) register a *collector*
// instead: a callback run at snapshot time that copies those counters
// into the registry, keeping the hot paths untouched.
//
// Everything is deterministic: instruments iterate in name order
// (std::map) and values are integers or exact doubles, so a metrics
// snapshot of a seeded run is byte-identical across repeats — the same
// contract the benches already hold for their stdout.

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hpcwhisk::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  /// Absolute assignment: the collector path for pre-existing counters.
  void set(std::uint64_t v) { value_ = v; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0};
};

/// Log-bucketed histogram over non-negative values. Buckets split each
/// octave [2^k, 2^(k+1)) into kSubBuckets linear slices; values below 1
/// land in the first bucket (callers observe microsecond ticks, so only
/// sub-microsecond durations lose resolution there).
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kOctaves = 60;

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double avg() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Quantile estimate from the bucket boundaries, clamped to the exact
  /// observed [min, max]. q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  static std::size_t bucket_index(double v);
  /// Arithmetic midpoint of bucket `idx`'s value range.
  static double bucket_mid(std::size_t idx);

  std::array<std::uint64_t, static_cast<std::size_t>(kOctaves) * kSubBuckets>
      buckets_{};
  std::uint64_t count_{0};
  double sum_{0};
  double min_{0};
  double max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Return the named instrument, creating it on first use. References
  /// stay valid for the registry's lifetime. Re-requesting a name with a
  /// different type throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Snapshot callback: runs on every collect(), typically copying a
  /// component's existing counter struct into registry instruments.
  /// Collectors must not outlive the component they capture.
  void add_collector(std::function<void(MetricsRegistry&)> fn);

  /// Runs all collectors (in registration order). Call before exporting.
  void collect();

  /// One JSON object per line, sorted by metric name; deterministic for
  /// a seeded run. Does NOT call collect() — callers decide when.
  void write_jsonl(std::ostream& os) const;

  [[nodiscard]] std::size_t instrument_count() const { return entries_.size(); }

  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Type type{};
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> hist;  // 4 KB: heap-allocated on demand
  };
  /// Name-ordered iteration for exporters and tests.
  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }

 private:
  Entry& entry(const std::string& name, Type type);

  std::map<std::string, Entry> entries_;
  std::vector<std::function<void(MetricsRegistry&)>> collectors_;
};

}  // namespace hpcwhisk::obs
