#pragma once
// Sim-time series: the second observability tier. Where MetricsRegistry
// answers "how much in total" at end of run, a Series answers "when" —
// the utilization/responsiveness time profiles of the paper's Figs. 1,
// 5b and 6b (idle/busy/pilot node counts, container-pool occupancy,
// invoker in-flight and queue depth, cumulative harvested node-seconds).
//
// Memory is bounded: each series holds at most `capacity` stored
// samples. When a series overflows, adjacent samples are pairwise-merged
// (count-weighted mean, min of mins, max of maxes) and the effective
// stride doubles — an unbounded run degrades resolution, never memory.
// Sampling is driven by the *owner* (benches reuse their existing
// periodic sampler), never by obs-scheduled events: a simulation's
// executed-event count is part of the decision log, so the recorder must
// not perturb it. Everything is deterministic for a seeded run.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::obs {

/// One stored point: a raw observation, or — after downsampling — the
/// count-weighted merge of `count` consecutive raw observations starting
/// at `at`.
struct Sample {
  sim::SimTime at;
  double mean{0};
  double min{0};
  double max{0};
  std::uint32_t count{0};
};

/// One bounded, self-downsampling signal.
class Series {
 public:
  Series(std::string name, std::size_t capacity);

  /// Appends one raw observation. Observations must arrive in
  /// non-decreasing `at` order (the recorder's sweep guarantees it).
  void append(sim::SimTime at, double v);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  /// Raw observations folded into each *full* stored sample (1, 2, 4...);
  /// the tail sample may still be filling.
  [[nodiscard]] std::uint32_t stride() const { return stride_; }
  /// Total raw observations ever appended (survives downsampling).
  [[nodiscard]] std::uint64_t appended() const { return appended_; }
  [[nodiscard]] double last() const {
    return samples_.empty() ? 0.0 : samples_.back().mean;
  }

 private:
  /// Pairwise-merges adjacent samples and doubles the stride.
  void compact();

  std::string name_;
  std::size_t capacity_;
  std::uint32_t stride_{1};
  std::uint64_t appended_{0};
  std::vector<Sample> samples_;
};

/// Registry of series plus polled samplers. Components (or the bench
/// driver) register a sampler once; the owner of the clock calls
/// sample_all() at its chosen cadence and every polled series gets one
/// observation. Manual series skip the polling and are appended to
/// directly (cumulative signals with their own event cadence).
class TimeSeriesRecorder {
 public:
  using SeriesId = std::size_t;
  using Sampler = std::function<double()>;

  /// Stored samples per series before downsampling kicks in. 512 points
  /// cover a 24 h day at 10 s cadence with stride 32 — 16 KB per series.
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit TimeSeriesRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_{capacity < 2 ? 2 : capacity} {}

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Registers a manually-appended series.
  SeriesId add_series(std::string name);
  /// Registers a series polled by sample_all(). The sampler must not
  /// outlive the component it captures.
  SeriesId add_sampled(std::string name, Sampler fn);

  void append(SeriesId id, sim::SimTime at, double v);

  /// Polls every sampled series once, stamped `now`.
  void sample_all(sim::SimTime now);

  [[nodiscard]] const Series* find(std::string_view name) const;
  /// Registration order (deterministic for exporters).
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }

 private:
  struct Polled {
    SeriesId id;
    Sampler fn;
  };

  std::size_t capacity_;
  std::vector<Series> series_;
  std::vector<Polled> polled_;
  std::uint64_t sweeps_{0};
};

}  // namespace hpcwhisk::obs
