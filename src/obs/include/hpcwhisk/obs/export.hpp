#pragma once
// Trace/metrics exporters.
//
//  * write_perfetto_json — Chrome trace_event JSON (the legacy format
//    both chrome://tracing and ui.perfetto.dev load directly): sync
//    spans as B/E on per-component threads, causal activation/pilot
//    spans as legacy async b/e correlated by id, instants as i. Open
//    the file at https://ui.perfetto.dev to scrub the run's timeline.
//  * write_metrics_jsonl — one JSON object per instrument per line
//    (MetricsRegistry::write_jsonl plus a leading run-info line).
//
// Both outputs are deterministic for a seeded run: events emit in record
// order, metrics in name order, numbers in fixed formats.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "hpcwhisk/obs/decisions.hpp"
#include "hpcwhisk/obs/metrics.hpp"
#include "hpcwhisk/obs/timeseries.hpp"
#include "hpcwhisk/obs/trace.hpp"

namespace hpcwhisk::obs {

struct ExportInfo {
  std::string run{"hpcwhisk"};  ///< label stamped into both outputs
  std::uint64_t seed{0};
};

void write_perfetto_json(std::ostream& os, const TraceCollector& trace,
                         const ExportInfo& info = {});

/// Leading line: {"name":"_run","type":"info",...}; then the registry.
/// Call metrics.collect() first if collectors are registered.
void write_metrics_jsonl(std::ostream& os, const MetricsRegistry& metrics,
                         const ExportInfo& info = {});

/// One JSON object per series: name, stride, total raw observations and
/// the stored samples as [at_us, mean, min, max, count] tuples. Leading
/// line mirrors write_metrics_jsonl's "_run" info record.
void write_timeseries_jsonl(std::ostream& os, const TimeSeriesRecorder& series,
                            const ExportInfo& info = {});

/// One JSON object per routing decision (record order == decision
/// order); leading "_run" info line carries recorded/dropped totals.
void write_decisions_jsonl(std::ostream& os, const DecisionLog& decisions,
                           const ExportInfo& info = {});

/// Minimal structural validation of an exported Perfetto JSON document:
/// balanced braces/brackets outside strings and the required top-level
/// keys. Used by bench/obs_report to self-check its artifact (the CI
/// smoke additionally parses it with python3 when available).
[[nodiscard]] bool looks_like_perfetto_json(std::string_view doc);

/// Stable thread-id assignment used by the exporter, exposed so tests
/// can assert track mapping.
[[nodiscard]] std::uint64_t perfetto_tid(Track kind, std::uint64_t track);

}  // namespace hpcwhisk::obs
