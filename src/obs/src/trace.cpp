#include "hpcwhisk/obs/trace.hpp"

#include <algorithm>
#include <new>
#include <utility>

namespace hpcwhisk::obs {

const char* to_string(Cat c) {
  switch (c) {
    case Cat::kActivation: return "activation";
    case Cat::kPilot: return "pilot";
    case Cat::kSched: return "sched";
    case Cat::kFault: return "fault";
    case Cat::kMq: return "mq";
    case Cat::kAudit: return "audit";
    case Cat::kMark: return "mark";
    case Cat::kClient: return "client";
    case Cat::kFed: return "fed";
  }
  return "?";
}

TraceCollector::TraceCollector(std::size_t capacity) : capacity_{capacity} {}

void TraceCollector::allocate_store() {
  // Full-capacity allocation in one shot, but only virtual memory: the
  // kernel maps pages as the trace actually fills, so small traces
  // never pay the full footprint.
  store_.reset(static_cast<TraceEvent*>(::operator new(
      capacity_ * sizeof(TraceEvent), std::align_val_t{alignof(TraceEvent)})));
}

std::uint32_t TraceCollector::chain_slow(Cat cat, std::uint64_t corr,
                                         std::uint32_t seq) {
  if (corr < kDenseCorrLimit) {
    auto& tails = dense_tails_[static_cast<std::size_t>(cat)];
    // Doubling growth keeps the amortized cost O(1) as ids count up.
    const auto need = static_cast<std::size_t>(corr) + 1;
    tails.resize(std::max({need, tails.size() * 2, std::size_t{256}}),
                 kNoParent);
    return std::exchange(tails[static_cast<std::size_t>(corr)], seq);
  }
  const auto it =
      sparse_tails_.try_emplace(chain_key(cat, corr), kNoParent).first;
  return std::exchange(it->second, seq);
}

std::uint32_t TraceCollector::chain_tail(Cat cat, std::uint64_t corr) const {
  if (corr < kDenseCorrLimit) {
    const auto& tails = dense_tails_[static_cast<std::size_t>(cat)];
    return corr < tails.size() ? tails[static_cast<std::size_t>(corr)]
                               : kNoParent;
  }
  const auto it = sparse_tails_.find(chain_key(cat, corr));
  return it == sparse_tails_.end() ? kNoParent : it->second;
}

void TraceCollector::clear() {
  size_ = 0;
  for (auto& tails : dense_tails_) tails.clear();
  sparse_tails_.clear();
  dropped_ = 0;
}

}  // namespace hpcwhisk::obs
