#include "hpcwhisk/obs/trace.hpp"

#include <algorithm>

namespace hpcwhisk::obs {

const char* to_string(Cat c) {
  switch (c) {
    case Cat::kActivation: return "activation";
    case Cat::kPilot: return "pilot";
    case Cat::kSched: return "sched";
    case Cat::kFault: return "fault";
    case Cat::kMq: return "mq";
    case Cat::kAudit: return "audit";
    case Cat::kMark: return "mark";
    case Cat::kClient: return "client";
    case Cat::kFed: return "fed";
  }
  return "?";
}

TraceCollector::TraceCollector(std::size_t capacity) : capacity_{capacity} {
  // Reserve the first chunk up front; the vector then grows normally up
  // to `capacity` so small traces do not pay the full footprint.
  events_.reserve(std::min<std::size_t>(capacity_, 4096));
}

std::uint32_t TraceCollector::record(Cat cat, Phase phase, const char* name,
                                     Track track_kind, std::uint64_t track,
                                     std::uint64_t corr, sim::SimTime at,
                                     double arg0, double arg1) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return kNoParent;
  }
  TraceEvent ev;
  ev.at = at;
  ev.name = name;
  ev.corr = corr;
  ev.track = track;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  ev.cat = cat;
  ev.phase = phase;
  ev.track_kind = track_kind;
  events_.push_back(ev);
  return static_cast<std::uint32_t>(events_.size() - 1);
}

std::uint32_t TraceCollector::record_chained(Cat cat, Phase phase,
                                             const char* name, Track track_kind,
                                             std::uint64_t track,
                                             std::uint64_t corr, sim::SimTime at,
                                             double arg0, double arg1) {
  const std::uint32_t seq =
      record(cat, phase, name, track_kind, track, corr, at, arg0, arg1);
  if (seq == kNoParent) return kNoParent;
  auto [it, inserted] = chain_tail_.try_emplace(chain_key(cat, corr), seq);
  if (!inserted) {
    events_[seq].parent = it->second;
    it->second = seq;
  }
  return seq;
}

std::uint32_t TraceCollector::chain_tail(Cat cat, std::uint64_t corr) const {
  const auto it = chain_tail_.find(chain_key(cat, corr));
  return it == chain_tail_.end() ? kNoParent : it->second;
}

void TraceCollector::clear() {
  events_.clear();
  chain_tail_.clear();
  dropped_ = 0;
}

}  // namespace hpcwhisk::obs
