#include "hpcwhisk/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace hpcwhisk::obs {

std::size_t Histogram::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // negatives, zeros, NaNs: first bucket
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant in [0.5,1)
  const int octave = std::min(exp - 1, kOctaves - 1);
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets));
  return static_cast<std::size_t>(octave) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_mid(std::size_t idx) {
  const double octave = static_cast<double>(idx / kSubBuckets);
  const double sub = static_cast<double>(idx % kSubBuckets);
  const double lo = std::ldexp(1.0 + sub / kSubBuckets, static_cast<int>(octave));
  const double hi =
      std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, static_cast<int>(octave));
  return (lo + hi) / 2.0;
}

void Histogram::observe(double v) {
  ++buckets_[bucket_index(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (nearest-rank, 1-based).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::clamp(bucket_mid(i), min_, max_);
  }
  return max_;
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               Type type) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    if (type == Type::kHistogram)
      it->second.hist = std::make_unique<Histogram>();
  } else if (it->second.type != type) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' re-registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return entry(name, Type::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return entry(name, Type::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *entry(name, Type::kHistogram).hist;
}

void MetricsRegistry::add_collector(std::function<void(MetricsRegistry&)> fn) {
  collectors_.push_back(std::move(fn));
}

void MetricsRegistry::collect() {
  for (const auto& fn : collectors_) fn(*this);
}

namespace {
/// Shortest round-trip double rendering without locale surprises.
std::string json_num(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}
}  // namespace

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const auto& [name, e] : entries_) {
    switch (e.type) {
      case Type::kCounter:
        os << "{\"name\":\"" << name << "\",\"type\":\"counter\",\"value\":"
           << e.counter.value() << "}\n";
        break;
      case Type::kGauge:
        os << "{\"name\":\"" << name << "\",\"type\":\"gauge\",\"value\":"
           << json_num(e.gauge.value()) << "}\n";
        break;
      case Type::kHistogram: {
        const Histogram& h = *e.hist;
        os << "{\"name\":\"" << name << "\",\"type\":\"histogram\",\"count\":"
           << h.count() << ",\"sum\":" << json_num(h.sum())
           << ",\"min\":" << json_num(h.min())
           << ",\"max\":" << json_num(h.max())
           << ",\"avg\":" << json_num(h.avg())
           << ",\"p50\":" << json_num(h.quantile(0.50))
           << ",\"p95\":" << json_num(h.quantile(0.95))
           << ",\"p99\":" << json_num(h.quantile(0.99)) << "}\n";
        break;
      }
    }
  }
}

}  // namespace hpcwhisk::obs
