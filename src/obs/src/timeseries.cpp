#include "hpcwhisk/obs/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcwhisk::obs {

Series::Series(std::string name, std::size_t capacity)
    : name_{std::move(name)}, capacity_{capacity < 2 ? 2 : capacity} {
  samples_.reserve(std::min<std::size_t>(capacity_, 64));
}

void Series::append(sim::SimTime at, double v) {
  ++appended_;
  if (!samples_.empty() && samples_.back().count < stride_) {
    // The tail window is still filling: fold the observation in. The
    // window keeps its start time, so `at` spacing stays uniform.
    Sample& tail = samples_.back();
    const double n = static_cast<double>(tail.count);
    tail.mean = (tail.mean * n + v) / (n + 1.0);
    tail.min = std::min(tail.min, v);
    tail.max = std::max(tail.max, v);
    ++tail.count;
    return;
  }
  samples_.push_back(Sample{at, v, v, v, 1});
  if (samples_.size() > capacity_) compact();
}

void Series::compact() {
  std::vector<Sample> merged;
  merged.reserve((samples_.size() + 1) / 2);
  for (std::size_t i = 0; i < samples_.size(); i += 2) {
    if (i + 1 >= samples_.size()) {
      merged.push_back(samples_[i]);
      break;
    }
    const Sample& a = samples_[i];
    const Sample& b = samples_[i + 1];
    Sample m;
    m.at = a.at;
    const double na = static_cast<double>(a.count);
    const double nb = static_cast<double>(b.count);
    m.mean = (a.mean * na + b.mean * nb) / (na + nb);
    m.min = std::min(a.min, b.min);
    m.max = std::max(a.max, b.max);
    m.count = a.count + b.count;
    merged.push_back(m);
  }
  samples_ = std::move(merged);
  stride_ *= 2;
}

TimeSeriesRecorder::SeriesId TimeSeriesRecorder::add_series(std::string name) {
  series_.emplace_back(std::move(name), capacity_);
  return series_.size() - 1;
}

TimeSeriesRecorder::SeriesId TimeSeriesRecorder::add_sampled(std::string name,
                                                             Sampler fn) {
  const SeriesId id = add_series(std::move(name));
  polled_.push_back(Polled{id, std::move(fn)});
  return id;
}

void TimeSeriesRecorder::append(SeriesId id, sim::SimTime at, double v) {
  if (id >= series_.size())
    throw std::out_of_range("TimeSeriesRecorder::append: unknown series");
  series_[id].append(at, v);
}

void TimeSeriesRecorder::sample_all(sim::SimTime now) {
  ++sweeps_;
  for (const Polled& p : polled_) series_[p.id].append(now, p.fn());
}

const Series* TimeSeriesRecorder::find(std::string_view name) const {
  for (const Series& s : series_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

}  // namespace hpcwhisk::obs
