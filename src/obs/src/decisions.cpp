#include "hpcwhisk/obs/decisions.hpp"

#include <algorithm>

namespace hpcwhisk::obs {

void DecisionLog::record(RouteDecision d) {
  ++recorded_;
  if (decisions_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  if (decisions_.empty())
    decisions_.reserve(std::min<std::size_t>(capacity_, 1024));
  decisions_.push_back(std::move(d));
}

}  // namespace hpcwhisk::obs
