#include "hpcwhisk/obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

namespace hpcwhisk::obs {

namespace {

const char* phase_code(Phase p) {
  switch (p) {
    case Phase::kBegin: return "B";
    case Phase::kEnd: return "E";
    case Phase::kAsyncBegin: return "b";
    case Phase::kAsyncEnd: return "e";
    case Phase::kInstant: return "i";
  }
  return "i";
}

std::string json_num(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string track_name(Track kind, std::uint64_t track) {
  switch (kind) {
    case Track::kController: return "controller";
    case Track::kSlurmctld: return "slurmctld";
    case Track::kChaos: return "chaos";
    case Track::kInvoker: return "invoker-" + std::to_string(track);
    case Track::kPilot: return "pilot-job-" + std::to_string(track);
    case Track::kCloud: return "cloud";
    case Track::kGateway: return "gateway";
  }
  return "?";
}

}  // namespace

std::uint64_t perfetto_tid(Track kind, std::uint64_t track) {
  switch (kind) {
    case Track::kController: return 1;
    case Track::kSlurmctld: return 2;
    case Track::kChaos: return 3;
    case Track::kInvoker: return 100 + track;
    case Track::kPilot: return 100000 + track;
    case Track::kCloud: return 4;
    case Track::kGateway: return 5;
  }
  return 99;
}

void write_perfetto_json(std::ostream& os, const TraceCollector& trace,
                         const ExportInfo& info) {
  constexpr int kPid = 1;
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"run\": \""
     << info.run << "\", \"seed\": " << info.seed
     << ", \"events\": " << trace.size()
     << ", \"dropped_events\": " << trace.dropped() << "},\n"
     << "\"traceEvents\": [\n";

  os << "{\"ph\":\"M\",\"pid\":" << kPid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"hpc-whisk\"}}";

  // Deterministic thread metadata: every (kind, track) row seen, in tid
  // order.
  std::map<std::uint64_t, std::string> threads;
  for (const TraceEvent& ev : trace.events())
    threads.emplace(perfetto_tid(ev.track_kind, ev.track),
                    track_name(ev.track_kind, ev.track));
  for (const auto& [tid, name] : threads) {
    os << ",\n{\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name << "\"}}";
  }

  const auto& events = trace.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    os << ",\n{\"ph\":\"" << phase_code(ev.phase) << "\",\"pid\":" << kPid
       << ",\"tid\":" << perfetto_tid(ev.track_kind, ev.track)
       << ",\"ts\":" << ev.at.ticks() << ",\"name\":\"" << ev.name
       << "\",\"cat\":\"" << to_string(ev.cat) << '"';
    if (ev.phase == Phase::kAsyncBegin || ev.phase == Phase::kAsyncEnd) {
      os << ",\"id\":" << ev.corr;
    }
    if (ev.phase == Phase::kInstant) os << ",\"s\":\"t\"";
    os << ",\"args\":{\"seq\":" << i;
    if (ev.corr != kNoCorr) os << ",\"corr\":" << ev.corr;
    if (ev.parent != kNoParent) os << ",\"parent\":" << ev.parent;
    os << ",\"a0\":" << json_num(ev.arg0) << ",\"a1\":" << json_num(ev.arg1)
       << "}}";
  }
  os << "\n]\n}\n";
}

void write_metrics_jsonl(std::ostream& os, const MetricsRegistry& metrics,
                         const ExportInfo& info) {
  os << "{\"name\":\"_run\",\"type\":\"info\",\"run\":\"" << info.run
     << "\",\"seed\":" << info.seed
     << ",\"instruments\":" << metrics.instrument_count() << "}\n";
  metrics.write_jsonl(os);
}

void write_timeseries_jsonl(std::ostream& os, const TimeSeriesRecorder& series,
                            const ExportInfo& info) {
  os << "{\"name\":\"_run\",\"type\":\"info\",\"run\":\"" << info.run
     << "\",\"seed\":" << info.seed << ",\"series\":" << series.series().size()
     << ",\"sweeps\":" << series.sweeps() << "}\n";
  for (const Series& s : series.series()) {
    os << "{\"name\":\"" << s.name() << "\",\"type\":\"series\",\"stride\":"
       << s.stride() << ",\"appended\":" << s.appended() << ",\"samples\":[";
    const auto& samples = s.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& p = samples[i];
      os << (i > 0 ? "," : "") << '[' << p.at.ticks() << ','
         << json_num(p.mean) << ',' << json_num(p.min) << ','
         << json_num(p.max) << ',' << p.count << ']';
    }
    os << "]}\n";
  }
}

void write_decisions_jsonl(std::ostream& os, const DecisionLog& decisions,
                           const ExportInfo& info) {
  os << "{\"name\":\"_run\",\"type\":\"info\",\"run\":\"" << info.run
     << "\",\"seed\":" << info.seed
     << ",\"recorded\":" << decisions.recorded()
     << ",\"dropped\":" << decisions.dropped() << "}\n";
  for (const RouteDecision& d : decisions.decisions()) {
    os << "{\"call\":" << d.call << ",\"at_us\":" << d.at.ticks()
       << ",\"policy\":\"" << d.policy << "\",\"function\":\"" << d.function
       << "\",\"chosen\":" << d.chosen << ",\"runner_up\":";
    if (d.runner_up == RouteDecision::kNone) {
      os << "null";
    } else {
      os << d.runner_up;
    }
    os << ",\"candidates\":" << d.candidates
       << ",\"predicted_us\":" << d.predicted_ticks
       << ",\"chosen_cost_us\":" << d.chosen_cost_ticks
       << ",\"runner_up_cost_us\":" << d.runner_up_cost_ticks
       << ",\"backlog_us\":" << d.backlog_ticks << ",\"expected_cold\":"
       << (d.expected_cold ? "true" : "false") << ",\"short_class\":"
       << (d.short_class ? "true" : "false") << "}\n";
  }
}

bool looks_like_perfetto_json(std::string_view doc) {
  if (doc.find("\"traceEvents\"") == std::string_view::npos) return false;
  if (doc.find("\"otherData\"") == std::string_view::npos) return false;
  // Structural balance outside of strings.
  long braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : doc) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

}  // namespace hpcwhisk::obs
