#pragma once
// Warm-executor leases — the rFaaS-style serving fast path (ROADMAP
// item 3; *rFaaS: Enabling High Performance Serverless with RDMA and
// Leases*, PAPERS.md).
//
// The controller→topic→pull path pays broker and poll latency on every
// activation, even for a hot function whose warm container sits idle on
// a known invoker. A lease pins a function to one invoker for a bounded
// term so the controller can invoke the pinned container directly,
// skipping the queue hop. Tiering is driven by per-function inter-arrival
// EWMAs: only functions arriving fast enough (kHot) earn a lease; kWarm
// functions keep containers but route normally; kCold pay the usual path.
//
// The manager is bookkeeping only — it never touches the invoker. The
// controller owns the lifecycle: it observes arrivals, consults find()
// before routing, grants on the routed target, and revokes when the
// backing pilot drains (Slurm preemption) or the watchdog declares the
// invoker unresponsive (ChaosEngine node kill). Everything is a pure
// fold over the call sequence — no RNG, no wall clock — so seeded runs
// replay byte-identically (SimCheck samples lease mode).
//
// This module sits *below* whisk in the layer order (the controller
// links against it), so worker ids are raw std::uint32_t, matching
// sched::WorkerId / whisk::InvokerId width.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::lease {

using WorkerId = std::uint32_t;
using LeaseId = std::uint64_t;

/// Per-function serving tier from arrival statistics.
enum class Tier : std::uint8_t {
  kCold,  ///< rare or unseen: normal path, no container guarantees
  kWarm,  ///< regular: normal path, warm containers likely
  kHot,   ///< frequent: eligible for a direct-invoke lease
};

[[nodiscard]] const char* to_string(Tier t);

struct LeaseConfig {
  /// Master switch. Off by default: with leases disabled the controller
  /// behaves bit-for-bit like before (legacy golden hashes depend on it).
  bool enabled{false};
  /// Lease term; an expired lease lapses lazily on the next lookup.
  sim::SimTime term{sim::SimTime::seconds(30)};
  /// Renew the term on every hit (rFaaS clients re-lease while hot).
  bool auto_renew{true};
  /// Inter-arrival EWMA at or below this => kHot (lease-eligible).
  sim::SimTime hot_interarrival{sim::SimTime::millis(500)};
  /// ... at or below this => kWarm; above => kCold.
  sim::SimTime warm_interarrival{sim::SimTime::seconds(5)};
  /// Arrivals before tiering applies (one gap needs two arrivals).
  std::uint64_t min_arrivals{3};
  /// Inter-arrival EWMA smoothing factor.
  double alpha{0.25};
  /// Cap on concurrent leases pinned to one invoker, so a membership
  /// collapse cannot funnel every hot function onto the last survivor.
  std::size_t max_leases_per_worker{8};
};

struct Lease {
  LeaseId id{0};
  std::string function;
  WorkerId worker{0};
  sim::SimTime granted_at;
  sim::SimTime expires_at;
  std::uint64_t hits{0};
  std::uint64_t renewals{0};
};

class LeaseManager {
 public:
  explicit LeaseManager(LeaseConfig config = {}) : config_{config} {}

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  /// Folds one arrival of `function` into its inter-arrival EWMA.
  void observe_arrival(const std::string& function, sim::SimTime now);

  /// Current tier from the arrival stats (kCold until min_arrivals).
  [[nodiscard]] Tier tier(const std::string& function) const;

  /// The active lease for `function`, or nullptr. An expired lease is
  /// lapsed here (counted in stats().expired) — expiry is lazy, there is
  /// no sweep event that could perturb the simulation's event count.
  [[nodiscard]] const Lease* find(const std::string& function,
                                  sim::SimTime now);

  /// Grants a lease pinning `function` to `worker`. Returns nullptr if
  /// the function already holds a lease or the worker is at its cap.
  const Lease* acquire(const std::string& function, WorkerId worker,
                       sim::SimTime now);

  /// Extends the lease term from `now`. False if no lease exists.
  bool renew(const std::string& function, sim::SimTime now);

  /// A successful direct invoke through the lease: counts the hit and
  /// auto-renews when configured.
  void on_hit(const std::string& function, sim::SimTime now);

  /// Drops the lease (backing invoker unusable). False if none existed.
  bool revoke(const std::string& function);

  /// Drops every lease pinned to `worker` — the pilot was preempted,
  /// drained, or the node died. Returns how many were revoked.
  std::size_t revoke_worker(WorkerId worker);

  [[nodiscard]] std::size_t lease_count() const { return leases_.size(); }
  [[nodiscard]] std::size_t leases_on(WorkerId worker) const;
  /// Smoothed inter-arrival gap (zero until two arrivals).
  [[nodiscard]] sim::SimTime interarrival(const std::string& function) const;
  [[nodiscard]] const LeaseConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t granted{0};
    std::uint64_t renewed{0};
    std::uint64_t expired{0};
    std::uint64_t revoked{0};
    std::uint64_t hits{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Arrival {
    sim::SimTime last;
    double ewma_us{0.0};
    std::uint64_t count{0};
  };

  void drop(const std::string& function);

  LeaseConfig config_;
  std::unordered_map<std::string, Arrival> arrivals_;
  std::unordered_map<std::string, Lease> leases_;
  std::unordered_map<WorkerId, std::size_t> per_worker_;
  LeaseId next_id_{1};
  Stats stats_;
};

}  // namespace hpcwhisk::lease
