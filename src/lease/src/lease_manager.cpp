#include "hpcwhisk/lease/lease_manager.hpp"

#include <algorithm>
#include <vector>

namespace hpcwhisk::lease {

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kCold: return "cold";
    case Tier::kWarm: return "warm";
    case Tier::kHot: return "hot";
  }
  return "?";
}

void LeaseManager::observe_arrival(const std::string& function,
                                   sim::SimTime now) {
  Arrival& a = arrivals_[function];
  if (a.count > 0) {
    const auto gap = static_cast<double>((now - a.last).ticks());
    a.ewma_us = a.count == 1 ? gap : a.ewma_us + config_.alpha * (gap - a.ewma_us);
  }
  a.last = now;
  ++a.count;
}

Tier LeaseManager::tier(const std::string& function) const {
  const auto it = arrivals_.find(function);
  if (it == arrivals_.end() || it->second.count < config_.min_arrivals)
    return Tier::kCold;
  const auto ewma =
      sim::SimTime::micros(static_cast<std::int64_t>(it->second.ewma_us));
  if (ewma <= config_.hot_interarrival) return Tier::kHot;
  if (ewma <= config_.warm_interarrival) return Tier::kWarm;
  return Tier::kCold;
}

const Lease* LeaseManager::find(const std::string& function, sim::SimTime now) {
  const auto it = leases_.find(function);
  if (it == leases_.end()) return nullptr;
  if (it->second.expires_at < now) {
    ++stats_.expired;
    drop(function);
    return nullptr;
  }
  return &it->second;
}

const Lease* LeaseManager::acquire(const std::string& function, WorkerId worker,
                                   sim::SimTime now) {
  if (leases_.find(function) != leases_.end()) return nullptr;
  std::size_t& held = per_worker_[worker];
  if (held >= config_.max_leases_per_worker) return nullptr;
  Lease l;
  l.id = next_id_++;
  l.function = function;
  l.worker = worker;
  l.granted_at = now;
  l.expires_at = now + config_.term;
  ++held;
  ++stats_.granted;
  return &leases_.emplace(function, std::move(l)).first->second;
}

bool LeaseManager::renew(const std::string& function, sim::SimTime now) {
  const auto it = leases_.find(function);
  if (it == leases_.end()) return false;
  it->second.expires_at = now + config_.term;
  ++it->second.renewals;
  ++stats_.renewed;
  return true;
}

void LeaseManager::on_hit(const std::string& function, sim::SimTime now) {
  const auto it = leases_.find(function);
  if (it == leases_.end()) return;
  ++it->second.hits;
  ++stats_.hits;
  if (config_.auto_renew) {
    it->second.expires_at = now + config_.term;
    ++it->second.renewals;
    ++stats_.renewed;
  }
}

bool LeaseManager::revoke(const std::string& function) {
  if (leases_.find(function) == leases_.end()) return false;
  ++stats_.revoked;
  drop(function);
  return true;
}

std::size_t LeaseManager::revoke_worker(WorkerId worker) {
  // Collect-then-erase in sorted order: leases_ is an unordered_map and
  // nothing downstream may depend on its iteration order.
  std::vector<std::string> victims;
  for (const auto& [fn, l] : leases_) {
    if (l.worker == worker) victims.push_back(fn);
  }
  std::sort(victims.begin(), victims.end());
  for (const std::string& fn : victims) {
    ++stats_.revoked;
    drop(fn);
  }
  return victims.size();
}

std::size_t LeaseManager::leases_on(WorkerId worker) const {
  const auto it = per_worker_.find(worker);
  return it == per_worker_.end() ? 0 : it->second;
}

sim::SimTime LeaseManager::interarrival(const std::string& function) const {
  const auto it = arrivals_.find(function);
  if (it == arrivals_.end() || it->second.count < 2) return sim::SimTime::zero();
  return sim::SimTime::micros(static_cast<std::int64_t>(it->second.ewma_us));
}

void LeaseManager::drop(const std::string& function) {
  const auto it = leases_.find(function);
  if (it == leases_.end()) return;
  const auto held = per_worker_.find(it->second.worker);
  if (held != per_worker_.end() && held->second > 0) --held->second;
  leases_.erase(it);
}

}  // namespace hpcwhisk::lease
