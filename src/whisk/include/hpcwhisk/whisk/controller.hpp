#pragma once
// The (modified) OpenWhisk controller.
//
// Stock OpenWhisk assumes a static invoker set; HPC-Whisk's controller
// (Sec. III-C) instead maintains a *dynamic* membership list with
// continuous status reporting, and cooperates in the drain hand-off:
// when an invoker announces departure the controller stops routing to it
// and moves the unpulled backlog of its topic to the global fast lane.
//
// The controller is also the authoritative activation store: submission,
// 503 rejection, execution progress, completion and timeouts are all
// recorded here, which is what the paper calls the "OpenWhisk-level"
// measurement perspective.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/lease/lease_manager.hpp"
#include "hpcwhisk/mq/broker.hpp"
#include "hpcwhisk/sched/scheduler.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/whisk/activation.hpp"
#include "hpcwhisk/whisk/function.hpp"

namespace hpcwhisk::obs {
struct Observability;
class Histogram;
}

namespace hpcwhisk::whisk {

enum class InvokerHealth : std::uint8_t {
  kHealthy,       ///< registered, heartbeating, accepting work
  kDraining,      ///< announced departure; no new work routed
  kUnresponsive,  ///< missed heartbeats (hard-killed pilot)
  kGone,          ///< deregistered
};

[[nodiscard]] const char* to_string(InvokerHealth h);

/// Load-balancing policy for choosing the target invoker.
enum class RouteMode : std::uint8_t {
  /// OpenWhisk's sharding balancer: hash-selected home invoker, stepping
  /// to the next invokers (co-prime stride) while the home is saturated.
  kHashProbing,
  /// Pure hash routing (the simplest reading of Sec. II); saturation is
  /// ignored, which hurts tail latency under skewed load.
  kHashOnly,
  /// Ignore affinity entirely (baseline for the routing ablation).
  kRoundRobin,
  /// Always the least-loaded healthy invoker (upper-bound baseline).
  kLeastLoaded,
  /// Data-driven (sched::CallScheduler): minimize predicted completion
  /// time — per-invoker expected backlog plus the function's estimated
  /// duration, cold-start overhead included for invokers that never ran
  /// it.
  kLeastExpectedWork,
  /// Data-driven: keep the hash-homed invoker (warm reuse) unless its
  /// expected completion exceeds the best invoker's by more than a
  /// slack proportional to the call's predicted duration (SJF-flavored
  /// escape; see sched::CallScheduler).
  kSjfAffinity,
};

[[nodiscard]] const char* to_string(RouteMode m);
/// Parses the to_string() spellings ("hash-probing", "least-expected-work",
/// ...). Used by bench env knobs and SimCheck repro files.
[[nodiscard]] std::optional<RouteMode> route_mode_from_string(
    const std::string& name);
/// Whether the mode routes through the sched::CallScheduler.
[[nodiscard]] constexpr bool is_data_driven(RouteMode m) {
  return m == RouteMode::kLeastExpectedWork || m == RouteMode::kSjfAffinity;
}

struct SubmitResult {
  bool accepted{false};        ///< false => HTTP 503, no invoker available
  ActivationId activation{0};  ///< valid iff accepted
};

class Controller {
 public:
  struct Config {
    /// Invokers ping this often; missing `heartbeat_miss_limit` pings in
    /// a row marks the invoker unresponsive.
    sim::SimTime heartbeat_interval{sim::SimTime::seconds(2)};
    std::uint32_t heartbeat_miss_limit{3};
    /// How often the watchdog sweeps the membership list.
    sim::SimTime watchdog_interval{sim::SimTime::seconds(2)};
    RouteMode route_mode{RouteMode::kHashProbing};
    /// Per-invoker in-flight budget used by kHashProbing before stepping
    /// to the next invoker (OpenWhisk: invoker slot count).
    std::uint32_t invoker_slots{32};
    /// Estimator/policy knobs for the data-driven route modes; ignored
    /// (and no scheduler is instantiated) for the legacy modes, whose
    /// decision logs stay byte-identical.
    sched::SchedConfig sched{};
    /// Lease-based serving tier (rFaaS-style, PAPERS.md): hot functions
    /// are granted time-bounded leases on a warm invoker and later calls
    /// bypass the topic queue via the direct-invoke seam. Disabled by
    /// default — no LeaseManager is instantiated and every legacy
    /// decision log stays byte-identical.
    lease::LeaseConfig lease{};
    /// Optional trace/metrics sink; null disables all instrumentation.
    obs::Observability* obs{nullptr};
  };

  Controller(sim::Simulation& simulation, mq::Broker& broker,
             const FunctionRegistry& registry, Config config);
  Controller(sim::Simulation& simulation, mq::Broker& broker,
             const FunctionRegistry& registry);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // --- Client-facing API --------------------------------------------------

  /// Invokes `function`. Returns 503 (accepted == false) when no healthy
  /// invoker exists; otherwise records the activation and publishes it to
  /// the chosen invoker's topic.
  SubmitResult submit(const std::string& function);

  /// Completion callback: fires exactly once when the activation reaches
  /// a terminal state (immediately if it already has). Clients use this
  /// for blocking-invoke semantics and tests for synchronization.
  using CompletionCallback = std::function<void(const ActivationRecord&)>;
  void on_completion(ActivationId id, CompletionCallback cb);

  [[nodiscard]] const ActivationRecord& activation(ActivationId id) const;
  [[nodiscard]] const std::vector<ActivationRecord>& activations() const {
    return records_;
  }

  // --- Invoker-facing API (the "status message" protocol) -----------------

  /// Registers a new invoker; returns its id. Its topic is
  /// `invoker_topic_name(id)`.
  InvokerId register_invoker();

  /// Bypass channel for leased calls: `ready(spec)` is polled before any
  /// bookkeeping (so a refusal needs no rollback) and `invoke()` hands
  /// the message straight to the invoker, skipping the topic queue.
  /// `ready` sees the function spec so the invoker can refuse when its
  /// pool has neither a warm container for the function nor eviction-free
  /// admission headroom — a direct call then would cold-start at best and
  /// storm the pool at worst, while the queue path can probe elsewhere.
  /// The invoker installs its seam right after registering; the
  /// controller drops it when the invoker leaves or goes unresponsive.
  struct DirectSeam {
    std::function<bool(const FunctionSpec&)> ready;
    std::function<void(mq::Message)> invoke;
  };
  void set_direct_invoke(InvokerId id, DirectSeam seam);
  void clear_direct_invoke(InvokerId id);
  void heartbeat(InvokerId id);
  /// The invoker announces it is departing: routing stops and the
  /// unpulled backlog of its topic moves to the fast lane.
  void begin_drain(InvokerId id);
  /// Final deregistration once the invoker's hand-off completed.
  void deregister(InvokerId id);

  /// Re-publishes a message to the fast lane (drain hand-off, interrupted
  /// executions). Records the requeue on the activation.
  void requeue_to_fast_lane(mq::Message msg);

  /// Execution progress callbacks.
  void activation_started(ActivationId id, InvokerId by, bool cold_start);
  void activation_completed(ActivationId id);
  void activation_failed(ActivationId id);
  /// A running execution was interrupted (invoker draining); the caller
  /// re-publishes the message.
  void activation_interrupted(ActivationId id);

  /// Whether work may still be delivered for this activation (false once
  /// it reached a terminal state, e.g. timed out while queued — invokers
  /// drop such messages instead of executing them).
  [[nodiscard]] bool deliverable(ActivationId id) const;

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] static std::string invoker_topic_name(InvokerId id);
  [[nodiscard]] std::size_t healthy_count() const;
  [[nodiscard]] std::size_t count_with_health(InvokerHealth h) const;
  [[nodiscard]] InvokerHealth invoker_health(InvokerId id) const;
  [[nodiscard]] std::vector<InvokerId> healthy_invokers() const;
  /// Activations routed to `id` that have not reached a terminal state.
  [[nodiscard]] std::uint32_t in_flight(InvokerId id) const;

  /// The data-driven scheduler, or nullptr under a legacy route mode.
  [[nodiscard]] const sched::CallScheduler* scheduler() const {
    return scheduler_.get();
  }
  /// The lease manager, or nullptr when Config::lease.enabled is false.
  [[nodiscard]] const lease::LeaseManager* lease_manager() const {
    return leases_.get();
  }
  /// Predicted outstanding work across all invokers, in ticks (0 without
  /// a scheduler). Sampled by the federation gateway's health snapshots.
  [[nodiscard]] std::int64_t expected_backlog_ticks() const {
    return scheduler_ ? scheduler_->ledger().total() : 0;
  }

  /// In-flight activations summed over all invokers (time-series hook).
  [[nodiscard]] std::uint64_t total_in_flight() const;
  /// Unpulled messages across every registered invoker topic plus the
  /// fast lane. Takes each topic's lock — meant for the sampling cadence
  /// (seconds), not for per-event paths.
  [[nodiscard]] std::size_t queued_messages() const;

  struct Counters {
    std::uint64_t submitted{0};
    std::uint64_t accepted{0};
    std::uint64_t sequence_invocations{0};
    std::uint64_t rejected_503{0};
    std::uint64_t completed{0};
    std::uint64_t failed{0};
    std::uint64_t timed_out{0};
    std::uint64_t requeued{0};
    std::uint64_t interrupted{0};
    std::uint64_t unresponsive_detected{0};
    /// Lease tier (all zero unless Config::lease.enabled).
    std::uint64_t lease_hits{0};     ///< calls served via the direct seam
    std::uint64_t lease_granted{0};  ///< leases acquired on the route path
    std::uint64_t lease_fallback{0};  ///< leased calls routed normally
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Time of the most recent 503 rejection (SimTime::zero() if none):
  /// input to the Alg. 1 client wrapper.
  [[nodiscard]] sim::SimTime last_503_time() const { return last_503_; }

  /// Audit hook: fires on every terminal transition made through the
  /// normal lifecycle (completed / failed / timed-out), after bookkeeping
  /// and before completion callbacks. Immediate 503 rejections never pass
  /// through it — they are terminal at submit(). One observer at a time.
  using TerminalObserver = std::function<void(const ActivationRecord&)>;
  void set_terminal_observer(TerminalObserver cb) {
    terminal_observer_ = std::move(cb);
  }

 private:
  struct InvokerEntry {
    InvokerHealth health{InvokerHealth::kHealthy};
    sim::SimTime last_heartbeat;
    std::uint32_t in_flight{0};
    /// The invoker's topic, resolved once at registration: submit()
    /// publishes through this pointer instead of re-hashing
    /// "invoker-<id>" per message.
    mq::Topic* topic{nullptr};
  };

  /// Picks the target invoker among `healthy` for `function`.
  [[nodiscard]] InvokerId route(const std::string& function,
                                const std::vector<InvokerId>& healthy);

  /// Serves an accepted call (records_.back()) through its lease's
  /// direct seam: same bookkeeping, trace chain and decision-log entry
  /// as the queue path, minus the topic publish.
  SubmitResult submit_leased(const std::string& function,
                             const FunctionSpec& spec, const lease::Lease& l,
                             const DirectSeam& seam);

  /// Arms the client-visible timeout for an accepted activation.
  void arm_timeout(const FunctionSpec& spec, ActivationId id);

  /// Drops every lease on `id` and forgets its direct seam (drain,
  /// deregistration, watchdog kill). No-op when leasing is off.
  void revoke_leases_on(InvokerId id);

  ActivationRecord& record(ActivationId id);
  void finish(ActivationRecord& rec, ActivationState state);
  void watchdog_sweep();
  /// Returns the ids of the activations it re-published.
  std::vector<ActivationId> move_backlog_to_fast_lane(InvokerId id);
  /// Re-submits in-flight activations of a vanished invoker (pulled into
  /// its buffer or mid-execution when it died) to the fast lane, skipping
  /// ids in `already_rescued` (its unpulled backlog, rescued separately).
  void rescue_in_flight(InvokerId id,
                        const std::vector<ActivationId>& already_rescued);

  /// Healthy ids in ascending order, rebuilt lazily after a membership
  /// or health change. Ascending order matches the std::map iteration
  /// this replaced, so routing decisions are byte-identical.
  [[nodiscard]] const std::vector<InvokerId>& healthy_view() const;

  sim::Simulation& sim_;
  mq::Broker& broker_;
  const FunctionRegistry& registry_;
  Config config_;
  /// Dense, indexed by InvokerId (ids are sequential and entries are
  /// never erased — deregistration parks them at kGone). Ascending scans
  /// reproduce the ordered-map iteration exactly.
  std::vector<InvokerEntry> invokers_;
  mutable std::vector<InvokerId> healthy_cache_;
  mutable bool healthy_dirty_{true};
  std::vector<ActivationRecord> records_;       // index == ActivationId
  std::unordered_map<ActivationId, sim::EventId> timeout_events_;
  std::unordered_map<ActivationId, std::vector<CompletionCallback>>
      completion_callbacks_;
  /// Present only for data-driven route modes.
  std::unique_ptr<sched::CallScheduler> scheduler_;
  /// Present only when Config::lease.enabled.
  std::unique_ptr<lease::LeaseManager> leases_;
  /// Direct-invoke seams, indexed by InvokerId (default-constructed =
  /// no seam). Only consulted when leasing is on.
  std::vector<DirectSeam> direct_;
  /// Scratch single-candidate list for charging leased calls through the
  /// scheduler without a per-call allocation.
  std::vector<InvokerId> lease_candidate_;
  /// Decision of the routing call currently inside submit(): carries the
  /// charge and the short-class verdict from route() to the publish.
  std::optional<sched::CallScheduler::Decision> pending_decision_;
  InvokerId next_invoker_id_{0};
  std::size_t round_robin_next_{0};
  sim::SimTime last_503_{sim::SimTime::zero()};
  TerminalObserver terminal_observer_;
  Counters counters_;
  /// Instrument handles resolved once at construction: the per-event
  /// paths must not pay a string build + map lookup per observation
  /// (that lookup was the bulk of the traced-overhead regression).
  obs::Histogram* h_queue_wait_{nullptr};
  obs::Histogram* h_response_{nullptr};
  obs::Histogram* h_pred_error_{nullptr};
};

}  // namespace hpcwhisk::whisk
