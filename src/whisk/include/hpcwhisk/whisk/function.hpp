#pragma once
// FaaS function model: a named, stateless action with a memory footprint
// and an execution-duration model (the simulator's stand-in for the
// function body). Mirrors the aspects of an OpenWhisk action that matter
// to scheduling and to the paper's experiments.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::whisk {

struct FunctionSpec {
  std::string name;
  /// Runtime kind (image family) the function needs; a matching
  /// prewarmed stem-cell container turns its first call into a near-warm
  /// start.
  std::string kind{"python:3"};
  std::int64_t memory_mb{256};

  /// Samples one execution's duration (on an unloaded node).
  std::function<sim::SimTime(sim::Rng&)> duration;

  /// Controller-side activation timeout: if an accepted activation has
  /// not completed within this bound, the client gets a timeout error.
  sim::SimTime timeout{sim::SimTime::minutes(5)};

  /// Whether a draining invoker may interrupt a running execution of
  /// this function and requeue it to the fast lane (Sec. III-C: clients
  /// whose functions modify external state non-atomically opt out).
  bool interruptible{true};

  /// OpenWhisk action sequence: when this function completes, the
  /// controller automatically invokes `next` ("functions may be
  /// triggered by HTTP requests or other functions", Sec. II). Empty =
  /// no chaining. The chained invocation is a fresh activation routed
  /// like any other.
  std::string next;
};

/// Convenience: a function that always takes exactly `d`.
[[nodiscard]] FunctionSpec fixed_duration_function(std::string name,
                                                   sim::SimTime d,
                                                   std::int64_t memory_mb = 256);

class FunctionRegistry {
 public:
  /// Registers (or replaces) a function.
  void put(FunctionSpec spec);

  [[nodiscard]] const FunctionSpec* find(const std::string& name) const;
  /// Throws std::out_of_range if absent.
  [[nodiscard]] const FunctionSpec& at(const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return functions_.size(); }
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::unordered_map<std::string, FunctionSpec> functions_;
};

/// FNV-1a hash of the function name; OpenWhisk derives the "home" invoker
/// of a function from such a hash so repeated calls land on warm
/// containers (Sec. II).
[[nodiscard]] std::uint64_t function_hash(const std::string& name);

}  // namespace hpcwhisk::whisk
