#pragma once
// Activation: one function invocation tracked from submission to a
// terminal outcome. The controller owns the authoritative store; every
// state transition is timestamped so benches can rebuild the paper's
// per-minute success/failure/lost series (Figs. 5b, 6b).

#include <cstdint>
#include <string>

#include "hpcwhisk/sim/time.hpp"

namespace hpcwhisk::whisk {

using ActivationId = std::uint64_t;
using InvokerId = std::uint32_t;

inline constexpr InvokerId kNoInvoker = static_cast<InvokerId>(-1);

enum class ActivationState : std::uint8_t {
  kQueued,       ///< accepted, waiting in a topic or invoker buffer
  kRunning,      ///< executing in a container
  kCompleted,    ///< finished successfully
  kFailed,       ///< execution failed (e.g. container-capacity rejection)
  kTimedOut,     ///< not completed within the function's timeout
  kRejected503,  ///< refused at submission: no healthy invoker
};

[[nodiscard]] constexpr bool is_terminal(ActivationState s) {
  return s != ActivationState::kQueued && s != ActivationState::kRunning;
}

[[nodiscard]] const char* to_string(ActivationState s);

struct ActivationRecord {
  ActivationId id{0};
  std::string function;
  ActivationState state{ActivationState::kQueued};
  sim::SimTime submit_time;
  /// Most recent execution attempt began (zero if never executed). After
  /// a drain interruption + fast-lane reroute this is the restart time;
  /// use first_start_time / queue_wait() for client-perceived queueing.
  sim::SimTime start_time;
  /// First execution attempt began (zero if never executed). Set once.
  sim::SimTime first_start_time;
  sim::SimTime end_time;  ///< reached a terminal state
  InvokerId executed_by{kNoInvoker};
  /// Invoker the controller originally routed the message to (load
  /// accounting); may differ from executed_by after fast-lane reroutes.
  InvokerId routed_to{kNoInvoker};
  /// Times the activation was re-published (fast-lane reroutes).
  std::uint32_t requeues{0};
  /// Times a running execution was interrupted by a draining invoker.
  std::uint32_t interruptions{0};
  /// True cold start paid on the (last) execution.
  bool cold_start{false};

  /// Client-visible response time; meaningful for terminal states.
  [[nodiscard]] sim::SimTime response_time() const {
    return end_time - submit_time;
  }

  /// Submission-to-first-execution wait; meaningful once the activation
  /// has started at least once (first_start_time != zero).
  [[nodiscard]] sim::SimTime queue_wait() const {
    return first_start_time - submit_time;
  }
};

}  // namespace hpcwhisk::whisk
