#pragma once
// The (modified) OpenWhisk invoker that runs inside an HPC-Whisk pilot
// job.
//
// Consumption order implements the paper's fast-lane rule (Sec. III-C):
// before pulling from its own topic, the invoker first pulls from the
// global fast-lane topic, so requests re-issued by terminating workers
// execute with the highest priority.
//
// On SIGTERM the invoker performs the drain hand-off:
//   1. tells the controller it no longer accepts work (the controller
//      simultaneously rescues the unpulled backlog of its topic);
//   2. re-publishes its pulled-but-not-started buffer to the fast lane;
//   3. interrupts running executions of interruptible functions and
//      re-publishes them too; non-interruptible executions keep running
//      until they finish (or the pilot's SIGKILL arrives);
//   4. deregisters and reports drain completion to the pilot, which then
//      exits the Slurm job early — inside the grace period.
//
// hard_kill() models a SIGKILL with no hand-off (stock-OpenWhisk failure
// mode): buffered and running work is lost and the affected activations
// surface as client timeouts.

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "hpcwhisk/mq/broker.hpp"
#include "hpcwhisk/runtime/container_pool.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/whisk/controller.hpp"
#include "hpcwhisk/whisk/function.hpp"

namespace hpcwhisk::obs {
class Counter;
class Histogram;
}

namespace hpcwhisk::whisk {

class Invoker {
 public:
  struct Config {
    /// Pull-loop cadence.
    sim::SimTime poll_interval{sim::SimTime::millis(100)};
    /// Messages pulled per poll (fast lane + own topic combined).
    std::size_t pull_batch{8};
    /// Dispatch gate: executions started concurrently; messages beyond
    /// it wait in the invoker buffer (drain hand-off material).
    std::size_t max_concurrent{32};
    /// Physical cores of the node (Prometheus: 2x12); concurrent
    /// CPU-bound executions beyond this dilate each other.
    std::uint32_t cores{24};
    bool cpu_dilation{true};
    runtime::ContainerPool::Config pool{
        .memory_mb = 8 * 1024,  // OpenWhisk invoker "user memory"
        .max_containers = 24,
        .idle_timeout = sim::SimTime::minutes(10),
    };
    runtime::RuntimeKind runtime_kind{runtime::RuntimeKind::kSingularity};
    /// Optional trace/metrics sink; null disables all instrumentation.
    obs::Observability* obs{nullptr};
  };

  Invoker(sim::Simulation& simulation, mq::Broker& broker,
          const FunctionRegistry& registry, Controller& controller,
          Config config, sim::Rng rng);

  Invoker(const Invoker&) = delete;
  Invoker& operator=(const Invoker&) = delete;
  ~Invoker();

  /// Registers with the controller and starts the pull + heartbeat loops.
  /// Call once, after the pilot's warm-up completed.
  void start();

  /// SIGTERM: runs the drain hand-off; `on_drained` fires when the last
  /// local work item left (immediately if there is none). A stalled
  /// invoker ignores SIGTERM — the frozen process cannot run the
  /// hand-off, so only the pilot's eventual SIGKILL ends it.
  void sigterm(std::function<void()> on_drained);

  /// SIGKILL without hand-off: everything local is lost.
  void hard_kill();

  /// Fault injection: freezes the invoker for `duration` — no polling, no
  /// heartbeats, running executions suspended with their remaining time
  /// preserved (a GC pause / NFS hang / CPU-starved node). The controller
  /// watchdog sees only silence and marks the invoker unresponsive.
  /// resume() fires automatically after `duration`. No-op if not started,
  /// draining, dead, or already stalled.
  void stall(sim::SimTime duration);

  /// Ends a stall early (or on schedule): restarts the loops, heartbeats
  /// immediately so the controller readmits us, and resumes suspended
  /// executions with their preserved remaining time.
  void resume();

  /// Whether a leased call for `spec` may be handed over right now:
  /// alive, not departing, under the dispatch gate, and the pool either
  /// holds a warm container for the function or can admit a new one
  /// without evicting — a direct call must not trigger eviction storms
  /// or capacity failures the queue path would have probed around.
  /// Checked by the controller's direct seam *before* any hand-over, so
  /// a refusal needs no rollback.
  [[nodiscard]] bool can_direct_invoke(const FunctionSpec& spec) const {
    return started_ && !draining_ && !dead_ && !stalled_ &&
           running_.size() < config_.max_concurrent &&
           (pool_.has_warm_idle(spec.name, spec.memory_mb) ||
            pool_.can_admit(spec.memory_mb));
  }
  /// Direct hand-over of a leased call: starts execution immediately,
  /// skipping the topic queue and the poll cadence entirely.
  void direct_invoke(mq::Message msg);

  [[nodiscard]] InvokerId id() const { return id_; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool draining() const { return draining_; }
  [[nodiscard]] bool dead() const { return dead_; }
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] std::size_t running_executions() const { return running_.size(); }
  [[nodiscard]] std::size_t buffered_messages() const { return buffer_.size(); }
  [[nodiscard]] const runtime::ContainerPool& pool() const { return pool_; }

  struct Counters {
    std::uint64_t executed{0};
    std::uint64_t capacity_failures{0};
    std::uint64_t interrupted{0};
    std::uint64_t dropped_undeliverable{0};
    std::uint64_t direct_invocations{0};  ///< leased calls handed over
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  enum class ExecPhase { kStarting, kRunning };
  struct Exec {
    mq::Message msg;
    runtime::ContainerId container{0};
    ExecPhase phase{ExecPhase::kStarting};
    sim::EventId event;       ///< pending start or completion event
    sim::SimTime due{};       ///< absolute time `event` fires
    sim::SimTime remaining{}; ///< time left when suspended by stall()
    bool cold{false};
  };

  void poll();
  void dispatch_buffer();
  void begin_execution(mq::Message msg);
  /// Schedules the exec's next phase transition `delay` from now,
  /// recording the absolute due time so stall() can suspend it.
  void schedule_exec_event(ActivationId act, sim::SimTime delay);
  /// Phase transition: kStarting -> kRunning (container warm, duration
  /// drawn) or kRunning -> done (release, report, dispatch next).
  void on_exec_event(ActivationId act);
  void finish_drain_if_idle();
  void start_loops();
  void stop_loops();

  sim::Simulation& sim_;
  mq::Broker& broker_;
  const FunctionRegistry& registry_;
  Controller& controller_;
  Config config_;
  sim::Rng rng_;
  runtime::ContainerPool pool_;
  InvokerId id_{kNoInvoker};
  mq::Topic* own_topic_{nullptr};
  mq::Topic* fast_lane_{nullptr};
  /// Reused across poll ticks: pulling never allocates in steady state.
  std::vector<mq::Message> pull_scratch_;
  std::deque<mq::Message> buffer_;
  std::unordered_map<ActivationId, Exec> running_;
  sim::PeriodicHandle poll_loop_;
  sim::PeriodicHandle heartbeat_loop_;
  bool started_{false};
  bool draining_{false};
  bool dead_{false};
  bool stalled_{false};
  /// Last periodic reap_idle() sweep (keep-alive reap_interval > 0).
  sim::SimTime last_reap_;
  sim::EventId resume_event_;
  std::function<void()> on_drained_;
  Counters counters_;
  /// Registry instruments resolved once at construction (shared across
  /// invokers by name; monotone across pilot churn). Per-event string
  /// lookups here were the bulk of the traced-overhead regression.
  obs::Histogram* h_exec_us_{nullptr};
  obs::Counter* c_executed_{nullptr};
  obs::Counter* c_dropped_{nullptr};
  obs::Counter* c_capacity_{nullptr};
  obs::Counter* c_interrupted_{nullptr};
  obs::Counter* c_cold_starts_{nullptr};
  obs::Counter* c_warm_hits_{nullptr};
  obs::Counter* c_prewarm_hits_{nullptr};
};

}  // namespace hpcwhisk::whisk
