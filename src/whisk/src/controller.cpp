#include "hpcwhisk/whisk/controller.hpp"

#include <algorithm>
#include <stdexcept>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::whisk {

const char* to_string(ActivationState s) {
  switch (s) {
    case ActivationState::kQueued: return "queued";
    case ActivationState::kRunning: return "running";
    case ActivationState::kCompleted: return "completed";
    case ActivationState::kFailed: return "failed";
    case ActivationState::kTimedOut: return "timed-out";
    case ActivationState::kRejected503: return "rejected-503";
  }
  return "?";
}

const char* to_string(RouteMode m) {
  switch (m) {
    case RouteMode::kHashProbing: return "hash-probing";
    case RouteMode::kHashOnly: return "hash-only";
    case RouteMode::kRoundRobin: return "round-robin";
    case RouteMode::kLeastLoaded: return "least-loaded";
    case RouteMode::kLeastExpectedWork: return "least-expected-work";
    case RouteMode::kSjfAffinity: return "sjf-affinity";
  }
  return "?";
}

std::optional<RouteMode> route_mode_from_string(const std::string& name) {
  for (const RouteMode m :
       {RouteMode::kHashProbing, RouteMode::kHashOnly, RouteMode::kRoundRobin,
        RouteMode::kLeastLoaded, RouteMode::kLeastExpectedWork,
        RouteMode::kSjfAffinity}) {
    if (name == to_string(m)) return m;
  }
  return std::nullopt;
}

const char* to_string(InvokerHealth h) {
  switch (h) {
    case InvokerHealth::kHealthy: return "healthy";
    case InvokerHealth::kDraining: return "draining";
    case InvokerHealth::kUnresponsive: return "unresponsive";
    case InvokerHealth::kGone: return "gone";
  }
  return "?";
}

Controller::Controller(sim::Simulation& simulation, mq::Broker& broker,
                       const FunctionRegistry& registry, Config config)
    : sim_{simulation}, broker_{broker}, registry_{registry}, config_{config} {
  if (is_data_driven(config_.route_mode))
    scheduler_ = std::make_unique<sched::CallScheduler>(config_.sched);
  if (config_.lease.enabled)
    leases_ = std::make_unique<lease::LeaseManager>(config_.lease);
  sim_.every(config_.watchdog_interval, [this] { watchdog_sweep(); });
  HW_OBS_IF(config_.obs) {
    // Hot-path instruments resolved once; references stay valid for the
    // registry's lifetime.
    h_queue_wait_ =
        &config_.obs->metrics.histogram("whisk.activation.queue_wait_us");
    h_response_ =
        &config_.obs->metrics.histogram("whisk.activation.response_us");
    h_pred_error_ =
        &config_.obs->metrics.histogram("whisk.sched.prediction_error_us");
    config_.obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      m.counter("whisk.controller.submitted").set(counters_.submitted);
      m.counter("whisk.controller.accepted").set(counters_.accepted);
      m.counter("whisk.controller.rejected_503").set(counters_.rejected_503);
      m.counter("whisk.controller.completed").set(counters_.completed);
      m.counter("whisk.controller.failed").set(counters_.failed);
      m.counter("whisk.controller.timed_out").set(counters_.timed_out);
      m.counter("whisk.controller.requeued").set(counters_.requeued);
      m.counter("whisk.controller.interrupted").set(counters_.interrupted);
      m.counter("whisk.controller.unresponsive_detected")
          .set(counters_.unresponsive_detected);
      m.counter("whisk.controller.sequence_invocations")
          .set(counters_.sequence_invocations);
      m.gauge("whisk.controller.healthy_invokers")
          .set(static_cast<double>(healthy_count()));
      if (leases_) {
        const auto& ls = leases_->stats();
        m.counter("whisk.lease.hits").set(counters_.lease_hits);
        m.counter("whisk.lease.granted").set(ls.granted);
        m.counter("whisk.lease.renewed").set(ls.renewed);
        m.counter("whisk.lease.expired").set(ls.expired);
        m.counter("whisk.lease.revoked").set(ls.revoked);
        m.counter("whisk.lease.fallbacks").set(counters_.lease_fallback);
        m.gauge("whisk.lease.active")
            .set(static_cast<double>(leases_->lease_count()));
      }
      if (scheduler_) {
        const auto& s = scheduler_->stats();
        m.counter("whisk.sched.decisions").set(s.decisions);
        m.counter("whisk.sched.cold_routed").set(s.cold_routed);
        m.counter("whisk.sched.short_class").set(s.short_class);
        m.counter("whisk.sched.affinity_kept").set(s.affinity_kept);
        m.counter("whisk.sched.affinity_escaped").set(s.affinity_escaped);
        m.counter("whisk.sched.prior_hits")
            .set(scheduler_->estimator().stats().prior_hits);
        m.gauge("whisk.sched.expected_backlog_ticks")
            .set(static_cast<double>(scheduler_->ledger().total()));
        m.gauge("whisk.sched.tracked_functions")
            .set(static_cast<double>(
                scheduler_->estimator().tracked_functions()));
      }
    });
  }
}

Controller::Controller(sim::Simulation& simulation, mq::Broker& broker,
                       const FunctionRegistry& registry)
    : Controller{simulation, broker, registry, Config{}} {}

std::string Controller::invoker_topic_name(InvokerId id) {
  return "invoker-" + std::to_string(id);
}

SubmitResult Controller::submit(const std::string& function) {
  const FunctionSpec& spec = registry_.at(function);
  ++counters_.submitted;

  ActivationRecord rec;
  rec.id = records_.size();
  rec.function = function;
  rec.submit_time = sim_.now();

  const std::vector<InvokerId>& healthy = healthy_view();
  if (healthy.empty()) {
    // Immediate 503 — recorded so benches can rebuild the rejection
    // series of Figs. 5b/6b.
    rec.state = ActivationState::kRejected503;
    rec.end_time = sim_.now();
    records_.push_back(rec);
    ++counters_.rejected_503;
    last_503_ = sim_.now();
    HW_OBS_IF(config_.obs) {
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kInstant, "reject_503",
          obs::Track::kController, 0, rec.id, sim_.now());
    }
    return SubmitResult{false, rec.id};
  }

  records_.push_back(rec);
  ++counters_.accepted;

  if (leases_) {
    leases_->observe_arrival(function, sim_.now());
    if (const lease::Lease* l = leases_->find(function, sim_.now())) {
      const InvokerId worker = l->worker;
      const bool usable = worker < invokers_.size() &&
                          invokers_[worker].health == InvokerHealth::kHealthy &&
                          worker < direct_.size() && direct_[worker].invoke;
      if (!usable) {
        // The leased worker is gone (or never exposed a seam): the lease
        // is stale, not merely busy — revoke it and route normally.
        leases_->revoke(function);
        ++counters_.lease_fallback;
      } else if (!direct_[worker].ready(spec)) {
        // Worker alive but saturated: keep the lease (the burst will
        // pass) and pay the queue path for this call only.
        ++counters_.lease_fallback;
      } else {
        return submit_leased(function, spec, *l, direct_[worker]);
      }
    }
  }

  const InvokerId target = route(function, healthy);
  records_.back().routed_to = target;
  ++invokers_[target].in_flight;
  if (scheduler_ && pending_decision_)
    scheduler_->on_routed(rec.id, *pending_decision_);
  HW_OBS_IF(config_.obs) {
    // The root of the activation's causal chain: everything later
    // (pulls, execs, reroutes, the terminal event) parents back here.
    config_.obs->trace.record_chained(
        obs::Cat::kActivation, obs::Phase::kAsyncBegin, "activation",
        obs::Track::kController, 0, rec.id, sim_.now(),
        static_cast<double>(target));
    if (pending_decision_) {
      // Data-driven route: keep the full "why" (chosen vs runner-up,
      // backlog charge, warm/cold expectation) alongside a compact trace
      // instant in the activation's chain. Observation only — the
      // decision was already made above.
      const sched::CallScheduler::Decision& d = *pending_decision_;
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kInstant, "route_decision",
          obs::Track::kController, 0, rec.id, sim_.now(),
          static_cast<double>(d.worker),
          d.runner_up == sched::CallScheduler::Decision::kNoRunnerUp
              ? -1.0
              : static_cast<double>(d.runner_up));
      obs::RouteDecision why;
      why.call = rec.id;
      why.at = sim_.now();
      why.policy = to_string(config_.route_mode);
      why.function = function;
      why.chosen = d.worker;
      why.runner_up = d.runner_up;  // sentinels match (~0u)
      why.candidates = d.candidates;
      why.predicted_ticks = d.predicted_ticks;
      // Expected completion (comparable with the runner-up's cost).
      why.chosen_cost_ticks = d.backlog_ticks + d.cost_ticks;
      why.runner_up_cost_ticks = d.runner_up_cost_ticks;
      why.backlog_ticks = d.backlog_ticks;
      why.expected_cold = d.expected_cold;
      why.short_class = d.short_class;
      config_.obs->decisions.record(std::move(why));
    }
  }

  mq::Message msg;
  msg.id = rec.id;
  msg.key = function;
  // Handle cached at registration: no string build, no hash, no broker
  // lock on the per-submit path.
  mq::Topic& topic = *invokers_[target].topic;
  if (pending_decision_ && pending_decision_->short_class) {
    // Deadline class: a predicted-short call jumps the queue at publish
    // time (it never preempts an execution already underway).
    topic.publish_front(msg, sim_.now());
  } else {
    topic.publish(msg, sim_.now());
  }
  pending_decision_.reset();

  // A hot function earns a lease on the invoker it just routed to, so
  // its next call skips the queue entirely.
  if (leases_ && leases_->tier(function) == lease::Tier::kHot &&
      leases_->acquire(function, target, sim_.now()) != nullptr) {
    ++counters_.lease_granted;
  }

  arm_timeout(spec, rec.id);
  return SubmitResult{true, rec.id};
}

SubmitResult Controller::submit_leased(const std::string& function,
                                       const FunctionSpec& spec,
                                       const lease::Lease& l,
                                       const DirectSeam& seam) {
  ActivationRecord& rec = records_.back();
  const ActivationId act_id = rec.id;
  const InvokerId target = l.worker;
  rec.routed_to = target;
  ++invokers_[target].in_flight;
  if (scheduler_) {
    // Charge the leased worker's ledger exactly as a routed call would
    // be, so the conservation audit and backlog predictions stay honest.
    lease_candidate_.assign(1, target);
    const sched::CallScheduler::Decision d =
        scheduler_->route_least_expected_work(function, lease_candidate_);
    scheduler_->on_routed(act_id, d);
  }
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kActivation, obs::Phase::kAsyncBegin, "activation",
        obs::Track::kController, 0, act_id, sim_.now(),
        static_cast<double>(target));
    config_.obs->trace.record_chained(
        obs::Cat::kActivation, obs::Phase::kInstant, "lease_direct",
        obs::Track::kController, 0, act_id, sim_.now(),
        static_cast<double>(target), static_cast<double>(l.id));
    obs::RouteDecision why;
    why.call = act_id;
    why.at = sim_.now();
    why.policy = "lease";
    why.function = function;
    why.chosen = target;
    why.candidates = 1;
    config_.obs->decisions.record(std::move(why));
  }
  mq::Message msg;
  msg.id = act_id;
  msg.key = function;
  leases_->on_hit(function, sim_.now());
  ++counters_.lease_hits;
  seam.invoke(std::move(msg));
  arm_timeout(spec, act_id);
  return SubmitResult{true, act_id};
}

void Controller::arm_timeout(const FunctionSpec& spec, ActivationId act_id) {
  timeout_events_[act_id] =
      sim_.after(spec.timeout, [this, act_id] {
        timeout_events_.erase(act_id);
        ActivationRecord& r = record(act_id);
        if (!is_terminal(r.state)) {
          ++counters_.timed_out;
          finish(r, ActivationState::kTimedOut);
        }
      });
}

InvokerId Controller::route(const std::string& function,
                            const std::vector<InvokerId>& healthy) {
  const std::size_t n = healthy.size();
  const std::uint64_t hash = function_hash(function);
  switch (config_.route_mode) {
    case RouteMode::kHashOnly:
      return healthy[hash % n];
    case RouteMode::kRoundRobin:
      return healthy[round_robin_next_++ % n];
    case RouteMode::kLeastLoaded: {
      InvokerId best = healthy.front();
      for (const InvokerId id : healthy) {
        if (invokers_[id].in_flight < invokers_[best].in_flight) best = id;
      }
      return best;
    }
    case RouteMode::kLeastExpectedWork:
      pending_decision_ = scheduler_->route_least_expected_work(function,
                                                                healthy);
      return pending_decision_->worker;
    case RouteMode::kSjfAffinity:
      pending_decision_ =
          scheduler_->route_sjf_affinity(function, healthy, hash % n);
      return pending_decision_->worker;
    case RouteMode::kHashProbing:
      break;
  }
  // OpenWhisk's sharding balancer: start at the hashed home invoker and
  // step with a hash-derived stride (odd => co-prime with powers of two,
  // and cycling covers all n because we iterate at most n probes) while
  // the current candidate is out of slots. Falls back to the least
  // loaded if every invoker is saturated.
  const std::size_t home = hash % n;
  const std::size_t stride = (hash >> 32 | 1) % std::max<std::size_t>(1, n);
  std::size_t idx = home;
  for (std::size_t probe = 0; probe < n; ++probe) {
    const InvokerId candidate = healthy[idx];
    if (invokers_[candidate].in_flight < config_.invoker_slots)
      return candidate;
    idx = (idx + std::max<std::size_t>(1, stride)) % n;
  }
  InvokerId best = healthy.front();
  for (const InvokerId id : healthy) {
    if (invokers_[id].in_flight < invokers_[best].in_flight) best = id;
  }
  return best;
}

std::uint32_t Controller::in_flight(InvokerId id) const {
  return id < invokers_.size() ? invokers_[id].in_flight : 0;
}

std::uint64_t Controller::total_in_flight() const {
  std::uint64_t n = 0;
  for (const InvokerEntry& entry : invokers_) n += entry.in_flight;
  return n;
}

std::size_t Controller::queued_messages() const {
  std::size_t n = broker_.fast_lane().size();
  for (const InvokerEntry& entry : invokers_) {
    if (entry.health != InvokerHealth::kGone && entry.topic != nullptr)
      n += entry.topic->size();
  }
  return n;
}

const ActivationRecord& Controller::activation(ActivationId id) const {
  if (id >= records_.size())
    throw std::out_of_range("Controller::activation: unknown id");
  return records_[id];
}

InvokerId Controller::register_invoker() {
  const InvokerId id = next_invoker_id_++;
  InvokerEntry entry{InvokerHealth::kHealthy, sim_.now()};
  // Resolve the topic once; every later publish to this invoker goes
  // through the cached handle (and the topic exists before any routing
  // decision targets it).
  entry.topic = broker_.resolve(invoker_topic_name(id)).get();
  invokers_.push_back(entry);
  healthy_dirty_ = true;
  return id;
}

void Controller::set_direct_invoke(InvokerId id, DirectSeam seam) {
  if (id >= direct_.size()) direct_.resize(id + 1);
  direct_[id] = std::move(seam);
}

void Controller::clear_direct_invoke(InvokerId id) {
  if (id < direct_.size()) direct_[id] = DirectSeam{};
}

void Controller::revoke_leases_on(InvokerId id) {
  clear_direct_invoke(id);
  if (leases_) leases_->revoke_worker(id);
}

void Controller::heartbeat(InvokerId id) {
  if (id >= invokers_.size()) return;
  InvokerEntry& entry = invokers_[id];
  entry.last_heartbeat = sim_.now();
  // A previously unresponsive invoker that pings again is readmitted
  // (does not happen with graceful pilots; kept for robustness).
  if (entry.health == InvokerHealth::kUnresponsive) {
    entry.health = InvokerHealth::kHealthy;
    healthy_dirty_ = true;
  }
}

void Controller::begin_drain(InvokerId id) {
  if (id >= invokers_.size()) return;
  InvokerEntry& entry = invokers_[id];
  if (entry.health == InvokerHealth::kGone) return;
  entry.health = InvokerHealth::kDraining;
  healthy_dirty_ = true;
  // A departing invoker cannot honor its leases; later calls of the
  // leased functions route (and re-lease) elsewhere.
  revoke_leases_on(id);
  move_backlog_to_fast_lane(id);
}

void Controller::deregister(InvokerId id) {
  if (id >= invokers_.size()) return;
  invokers_[id].health = InvokerHealth::kGone;
  healthy_dirty_ = true;
  revoke_leases_on(id);
  // Any message published between drain and deregistration is rescued.
  move_backlog_to_fast_lane(id);
  // Graceful departure already released charges via the requeue path;
  // forgetting clears the warm set and any straggler charge.
  if (scheduler_) scheduler_->forget_worker(id);
}

std::vector<ActivationId> Controller::move_backlog_to_fast_lane(InvokerId id) {
  auto backlog = invokers_[id].topic->drain();
  std::vector<ActivationId> rescued;
  rescued.reserve(backlog.size());
  for (auto& msg : backlog) {
    rescued.push_back(msg.id);
    requeue_to_fast_lane(std::move(msg));
  }
  return rescued;
}

void Controller::rescue_in_flight(
    InvokerId id, const std::vector<ActivationId>& already_rescued) {
  for (ActivationRecord& rec : records_) {
    if (is_terminal(rec.state)) continue;
    if (rec.routed_to != id) continue;
    // Only work the dead invoker actually held: pulled into its buffer
    // (never started, executed_by unset) or mid-execution there. An
    // activation it interrupted earlier and handed back carries someone
    // else's executed_by — or none but lives in the fast lane already;
    // re-publishing such ids is harmless (at-least-once + deliverable()
    // dedup) but the backlog we just drained must not go out twice.
    if (rec.executed_by != kNoInvoker && rec.executed_by != id) continue;
    if (std::find(already_rescued.begin(), already_rescued.end(), rec.id) !=
        already_rescued.end())
      continue;
    mq::Message msg;
    msg.id = rec.id;
    msg.key = rec.function;
    requeue_to_fast_lane(std::move(msg));
  }
}

void Controller::requeue_to_fast_lane(mq::Message msg) {
  if (msg.id < records_.size()) {
    ActivationRecord& rec = records_[msg.id];
    if (is_terminal(rec.state)) return;  // e.g. already timed out: drop
    ++rec.requeues;
    // The call no longer waits on the worker it was charged to; it
    // re-charges wherever it next starts executing.
    if (scheduler_) scheduler_->on_requeued(rec.id);
    HW_OBS_IF(config_.obs) {
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kInstant, "fast_lane_reroute",
          obs::Track::kController, 0, rec.id, sim_.now(),
          static_cast<double>(rec.requeues));
    }
  }
  ++counters_.requeued;
  broker_.fast_lane().publish(std::move(msg), sim_.now());
}

void Controller::activation_started(ActivationId id, InvokerId by,
                                    bool cold_start) {
  ActivationRecord& rec = record(id);
  if (is_terminal(rec.state)) return;
  rec.state = ActivationState::kRunning;
  if (rec.first_start_time == sim::SimTime::zero()) {
    rec.first_start_time = sim_.now();
    HW_OBS_IF(config_.obs) {
      h_queue_wait_->observe(static_cast<double>(rec.queue_wait().ticks()));
    }
  }
  rec.start_time = sim_.now();
  rec.executed_by = by;
  rec.cold_start = cold_start;
  if (scheduler_) scheduler_->on_started(rec.id, by, rec.function);
}

void Controller::activation_completed(ActivationId id) {
  ActivationRecord& rec = record(id);
  if (is_terminal(rec.state)) return;
  ++counters_.completed;
  finish(rec, ActivationState::kCompleted);
}

void Controller::activation_failed(ActivationId id) {
  ActivationRecord& rec = record(id);
  if (is_terminal(rec.state)) return;
  ++counters_.failed;
  finish(rec, ActivationState::kFailed);
}

void Controller::activation_interrupted(ActivationId id) {
  ActivationRecord& rec = record(id);
  if (is_terminal(rec.state)) return;
  rec.state = ActivationState::kQueued;
  ++rec.interruptions;
  ++counters_.interrupted;
}

bool Controller::deliverable(ActivationId id) const {
  if (id >= records_.size()) return false;
  return !is_terminal(records_[id].state);
}

std::size_t Controller::healthy_count() const {
  return count_with_health(InvokerHealth::kHealthy);
}

std::size_t Controller::count_with_health(InvokerHealth h) const {
  std::size_t n = 0;
  for (const InvokerEntry& entry : invokers_)
    if (entry.health == h) ++n;
  return n;
}

InvokerHealth Controller::invoker_health(InvokerId id) const {
  if (id >= invokers_.size())
    throw std::out_of_range("Controller::invoker_health: unknown id");
  return invokers_[id].health;
}

std::vector<InvokerId> Controller::healthy_invokers() const {
  return healthy_view();
}

const std::vector<InvokerId>& Controller::healthy_view() const {
  if (healthy_dirty_) {
    healthy_cache_.clear();
    for (std::size_t id = 0; id < invokers_.size(); ++id) {
      if (invokers_[id].health == InvokerHealth::kHealthy)
        healthy_cache_.push_back(static_cast<InvokerId>(id));
    }
    healthy_dirty_ = false;
  }
  return healthy_cache_;
}

ActivationRecord& Controller::record(ActivationId id) {
  if (id >= records_.size())
    throw std::out_of_range("Controller::record: unknown id");
  return records_[id];
}

void Controller::on_completion(ActivationId id, CompletionCallback cb) {
  const ActivationRecord& rec = activation(id);
  if (is_terminal(rec.state)) {
    cb(rec);
    return;
  }
  completion_callbacks_[id].push_back(std::move(cb));
}

void Controller::finish(ActivationRecord& rec, ActivationState state) {
  rec.state = state;
  rec.end_time = sim_.now();
  if (scheduler_) {
    // Only a completed execution yields a duration sample (end - last
    // start, the same window the paper's activation log measures); other
    // terminal states just release the charge.
    const bool executed = state == ActivationState::kCompleted &&
                          rec.start_time != sim::SimTime::zero();
    const std::int64_t actual =
        executed ? (rec.end_time - rec.start_time).ticks() : -1;
    // executed_by doubles as the estimator's kAnyWorker sentinel (~0u)
    // when the call never started anywhere.
    const sched::CallScheduler::Outcome outcome = scheduler_->on_finished(
        rec.id, rec.function, actual, rec.cold_start, rec.executed_by);
    if (outcome.observed) {
      HW_OBS_IF(config_.obs) {
        h_pred_error_->observe(static_cast<double>(outcome.abs_error_ticks));
      }
    }
  }
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kActivation, obs::Phase::kAsyncEnd, "activation",
        obs::Track::kController, 0, rec.id, sim_.now(),
        static_cast<double>(static_cast<int>(state)),
        static_cast<double>(rec.requeues));
    h_response_->observe(static_cast<double>(rec.response_time().ticks()));
  }
  if (rec.routed_to != kNoInvoker && rec.routed_to < invokers_.size() &&
      invokers_[rec.routed_to].in_flight > 0) {
    --invokers_[rec.routed_to].in_flight;
  }
  const auto evt = timeout_events_.find(rec.id);
  if (evt != timeout_events_.end()) {
    sim_.cancel(evt->second);
    timeout_events_.erase(evt);
  }

  // Action sequence: chain the next function on success.
  if (state == ActivationState::kCompleted) {
    const FunctionSpec* spec = registry_.find(rec.function);
    if (spec != nullptr && !spec->next.empty()) {
      ++counters_.sequence_invocations;
      // Defer to a fresh event: finish() may be running deep inside an
      // invoker's completion chain and submit() re-enters routing state.
      const std::string next = spec->next;
      const ActivationId origin = rec.id;
      sim_.at(sim_.now(), [this, next, origin] {
        const auto result = submit(next);
        // Chain completion visibility: the origin's callbacks see the
        // final record; additionally propagate chained-run callbacks.
        (void)origin;
        (void)result;
      });
    }
  }

  if (terminal_observer_) terminal_observer_(rec);

  // Completion callbacks fire after all bookkeeping.
  const auto cbs = completion_callbacks_.find(rec.id);
  if (cbs != completion_callbacks_.end()) {
    auto list = std::move(cbs->second);
    completion_callbacks_.erase(cbs);
    for (auto& cb : list) cb(rec);
  }
}

void Controller::watchdog_sweep() {
  const sim::SimTime deadline =
      config_.heartbeat_interval * config_.heartbeat_miss_limit;
  for (std::size_t i = 0; i < invokers_.size(); ++i) {
    const InvokerId id = static_cast<InvokerId>(i);
    InvokerEntry& entry = invokers_[i];
    if (entry.health != InvokerHealth::kHealthy) continue;
    if (sim_.now() - entry.last_heartbeat > deadline) {
      entry.health = InvokerHealth::kUnresponsive;
      healthy_dirty_ = true;
      ++counters_.unresponsive_detected;
      HW_OBS_IF(config_.obs) {
        config_.obs->trace.record(
            obs::Cat::kPilot, obs::Phase::kInstant, "invoker_unresponsive",
            obs::Track::kController, 0, id, sim_.now());
      }
      // The invoker vanished without hand-off (hard kill / node failure):
      // rescue its unpulled backlog, then re-submit what it had already
      // pulled or was executing — that work would otherwise surface only
      // as client timeouts. Its predicted backlog (and warm set) must not
      // survive it, or the router would keep avoiding a ghost.
      if (scheduler_) scheduler_->forget_worker(id);
      revoke_leases_on(id);
      const std::vector<ActivationId> rescued = move_backlog_to_fast_lane(id);
      rescue_in_flight(id, rescued);
    }
  }
}

}  // namespace hpcwhisk::whisk
