#include "hpcwhisk/whisk/function.hpp"

#include <stdexcept>

namespace hpcwhisk::whisk {

FunctionSpec fixed_duration_function(std::string name, sim::SimTime d,
                                     std::int64_t memory_mb) {
  FunctionSpec spec;
  spec.name = std::move(name);
  spec.memory_mb = memory_mb;
  spec.duration = [d](sim::Rng&) { return d; };
  return spec;
}

void FunctionRegistry::put(FunctionSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("FunctionRegistry::put: empty name");
  if (!spec.duration)
    throw std::invalid_argument("FunctionRegistry::put: missing duration model");
  const std::string name = spec.name;
  functions_[name] = std::move(spec);
}

const FunctionSpec* FunctionRegistry::find(const std::string& name) const {
  const auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

const FunctionSpec& FunctionRegistry::at(const std::string& name) const {
  const auto it = functions_.find(name);
  if (it == functions_.end())
    throw std::out_of_range("FunctionRegistry: unknown function " + name);
  return it->second;
}

std::vector<std::string> FunctionRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& [name, _] : functions_) out.push_back(name);
  return out;
}

std::uint64_t function_hash(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hpcwhisk::whisk
