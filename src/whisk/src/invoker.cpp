#include "hpcwhisk/whisk/invoker.hpp"

#include <algorithm>
#include <stdexcept>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::whisk {

namespace {
runtime::RuntimeProfile make_profile(runtime::RuntimeKind kind) {
  return kind == runtime::RuntimeKind::kDocker
             ? runtime::RuntimeProfile::docker()
             : runtime::RuntimeProfile::singularity();
}
}  // namespace

Invoker::Invoker(sim::Simulation& simulation, mq::Broker& broker,
                 const FunctionRegistry& registry, Controller& controller,
                 Config config, sim::Rng rng)
    : sim_{simulation},
      broker_{broker},
      registry_{registry},
      controller_{controller},
      config_{config},
      rng_{rng},
      pool_{config.pool, make_profile(config.runtime_kind), rng.fork()} {
  HW_OBS_IF(config_.obs) {
    // Shared-by-name across invokers, so the counts are monotone across
    // pilot churn (a per-pilot pool counter dies with its pilot).
    obs::MetricsRegistry& m = config_.obs->metrics;
    h_exec_us_ = &m.histogram("whisk.invoker.exec_us");
    c_executed_ = &m.counter("whisk.invoker.executed");
    c_dropped_ = &m.counter("whisk.invoker.dropped_undeliverable");
    c_capacity_ = &m.counter("whisk.invoker.capacity_failures");
    c_interrupted_ = &m.counter("whisk.invoker.interrupted");
    c_cold_starts_ = &m.counter("whisk.invoker.cold_starts");
    c_warm_hits_ = &m.counter("whisk.invoker.warm_hits");
    c_prewarm_hits_ = &m.counter("whisk.invoker.prewarm_hits");
  }
}

Invoker::~Invoker() {
  // The owner (pilot) must have ended the lifecycle; be safe regardless.
  if (started_ && !dead_) {
    stop_loops();
    controller_.clear_direct_invoke(id_);
  }
}

void Invoker::start() {
  if (started_) throw std::logic_error("Invoker::start: already started");
  started_ = true;
  id_ = controller_.register_invoker();
  // Both handles resolved once here; every poll tick afterwards is
  // broker-free.
  own_topic_ = broker_.resolve(Controller::invoker_topic_name(id_)).get();
  fast_lane_ = &broker_.fast_lane();
  // Install the lease bypass seam. Only consulted when the controller
  // runs with leasing enabled; installing it unconditionally keeps the
  // invoker oblivious to the controller's lease config.
  controller_.set_direct_invoke(
      id_, Controller::DirectSeam{
               [this](const FunctionSpec& spec) {
                 return can_direct_invoke(spec);
               },
               [this](mq::Message msg) { direct_invoke(std::move(msg)); }});
  start_loops();
}

void Invoker::direct_invoke(mq::Message msg) {
  ++counters_.direct_invocations;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kActivation, obs::Phase::kInstant, "direct_invoke",
        obs::Track::kInvoker, id_, msg.id, sim_.now());
  }
  begin_execution(std::move(msg));
}

void Invoker::start_loops() {
  poll_loop_ = sim_.every(config_.poll_interval, [this] { poll(); });
  heartbeat_loop_ =
      sim_.every(sim::SimTime::seconds(2), [this] { controller_.heartbeat(id_); });
}

void Invoker::poll() {
  if (draining_ || dead_) return;
  pool_.maintain_prewarm(sim_.now());
  const sim::SimTime reap_every = config_.pool.keep_alive.reap_interval;
  if (reap_every > sim::SimTime::zero() &&
      sim_.now() - last_reap_ >= reap_every) {
    last_reap_ = sim_.now();
    (void)pool_.reap_idle(sim_.now());
  }
  // Fast lane first (highest priority), then the invoker's own topic.
  // Steady state — both empty — is decided by two relaxed atomic loads:
  // no topic locks, no allocation, on the simulation's most frequent
  // event (every invoker, every poll tick).
  mq::Topic& fast = *fast_lane_;
  const bool fast_has = !fast.approx_empty();
  const bool own_has = !own_topic_->approx_empty();
  if (!fast_has && !own_has) {
    dispatch_buffer();
    return;
  }
  std::size_t budget = config_.pull_batch;
  const std::size_t room =
      buffer_.size() >= config_.pull_batch * 4
          ? 0
          : config_.pull_batch * 4 - buffer_.size();
  budget = std::min(budget, room);
  if (budget == 0) {
    dispatch_buffer();
    return;
  }
  pull_scratch_.clear();
  const std::size_t from_fast =
      fast_has ? fast.poll_into(budget, pull_scratch_) : 0;
  if (from_fast < budget && own_has)
    (void)own_topic_->poll_into(budget - from_fast, pull_scratch_);
  for (std::size_t i = 0; i < pull_scratch_.size(); ++i) {
    HW_OBS_IF(config_.obs) {
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kInstant, "pull",
          obs::Track::kInvoker, id_, pull_scratch_[i].id, sim_.now(),
          /*arg0=*/i < from_fast ? 1.0 : 0.0);
    }
    buffer_.push_back(std::move(pull_scratch_[i]));
  }
  pull_scratch_.clear();
  dispatch_buffer();
}

void Invoker::dispatch_buffer() {
  while (!buffer_.empty() && running_.size() < config_.max_concurrent) {
    mq::Message msg = std::move(buffer_.front());
    buffer_.pop_front();
    begin_execution(std::move(msg));
  }
}

void Invoker::begin_execution(mq::Message msg) {
  if (!controller_.deliverable(msg.id)) {
    ++counters_.dropped_undeliverable;
    HW_OBS_IF(config_.obs) {
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kInstant, "drop_undeliverable",
          obs::Track::kInvoker, id_, msg.id, sim_.now());
      c_dropped_->add();
    }
    return;
  }
  if (running_.count(msg.id) > 0) {
    // Duplicate delivery of work we are already executing (an mq
    // duplication fault, or a watchdog rescue racing our own thaw).
    ++counters_.dropped_undeliverable;
    HW_OBS_IF(config_.obs) { c_dropped_->add(); }
    return;
  }
  const FunctionSpec& spec = registry_.at(msg.key);
  const auto acquired =
      pool_.acquire(spec.name, spec.kind, spec.memory_mb, sim_.now());
  if (acquired.kind == runtime::AcquireResult::Kind::kRejected) {
    // Node-level container saturation: the invocation fails (the episode
    // of Sec. V-C where invokers hit the concurrent-container limit).
    ++counters_.capacity_failures;
    HW_OBS_IF(config_.obs) {
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kInstant, "capacity_reject",
          obs::Track::kInvoker, id_, msg.id, sim_.now());
      c_capacity_->add();
    }
    controller_.activation_failed(msg.id);
    return;
  }

  const ActivationId act = msg.id;
  Exec exec;
  exec.msg = std::move(msg);
  exec.container = acquired.container;
  exec.cold = acquired.kind == runtime::AcquireResult::Kind::kCold;
  exec.phase = ExecPhase::kStarting;
  running_.emplace(act, std::move(exec));
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kActivation, obs::Phase::kAsyncBegin, "exec",
        obs::Track::kInvoker, id_, act, sim_.now(),
        /*arg0=*/running_.at(act).cold ? 1.0 : 0.0);
    switch (acquired.kind) {
      case runtime::AcquireResult::Kind::kWarm: c_warm_hits_->add(); break;
      case runtime::AcquireResult::Kind::kPrewarmed:
        c_prewarm_hits_->add();
        break;
      case runtime::AcquireResult::Kind::kCold: c_cold_starts_->add(); break;
      case runtime::AcquireResult::Kind::kRejected: break;
    }
  }
  schedule_exec_event(act, acquired.start_latency);
}

void Invoker::schedule_exec_event(ActivationId act, sim::SimTime delay) {
  Exec& e = running_.at(act);
  e.due = sim_.now() + delay;
  e.event = sim_.after(delay, [this, act] { on_exec_event(act); });
}

void Invoker::on_exec_event(ActivationId act) {
  auto it = running_.find(act);
  if (it == running_.end()) return;
  Exec& e = it->second;
  if (e.phase == ExecPhase::kStarting) {
    e.phase = ExecPhase::kRunning;
    pool_.mark_running(e.container, sim_.now());
    controller_.activation_started(act, id_, e.cold);

    const FunctionSpec& fn = registry_.at(e.msg.key);
    sim::SimTime duration = fn.duration(rng_);
    if (config_.cpu_dilation && pool_.busy_containers() > config_.cores) {
      const double factor = static_cast<double>(pool_.busy_containers()) /
                            static_cast<double>(config_.cores);
      duration = sim::SimTime::seconds(duration.to_seconds() * factor);
    }
    HW_OBS_IF(config_.obs) {
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kInstant, "exec_running",
          obs::Track::kInvoker, id_, act, sim_.now(),
          static_cast<double>(duration.ticks()), e.cold ? 1.0 : 0.0);
      h_exec_us_->observe(static_cast<double>(duration.ticks()));
    }
    schedule_exec_event(act, duration);
    return;
  }
  pool_.release(e.container, sim_.now());
  running_.erase(it);
  ++counters_.executed;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record_chained(
        obs::Cat::kActivation, obs::Phase::kAsyncEnd, "exec",
        obs::Track::kInvoker, id_, act, sim_.now(), /*arg0=*/1.0);
    c_executed_->add();
  }
  controller_.activation_completed(act);
  if (draining_) {
    finish_drain_if_idle();
  } else {
    dispatch_buffer();
  }
}

void Invoker::stall(sim::SimTime duration) {
  if (!started_ || dead_ || draining_ || stalled_) return;
  stalled_ = true;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(
        obs::Cat::kPilot, obs::Phase::kInstant, "stall", obs::Track::kInvoker,
        id_, id_, sim_.now(), duration.to_seconds(),
        static_cast<double>(running_.size()));
  }
  stop_loops();
  for (auto& [act, exec] : running_) {
    sim_.cancel(exec.event);
    exec.remaining = exec.due - sim_.now();
    if (exec.remaining < sim::SimTime::zero())
      exec.remaining = sim::SimTime::zero();
  }
  resume_event_ = sim_.after(duration, [this] { resume(); });
}

void Invoker::resume() {
  if (!stalled_ || dead_) return;
  stalled_ = false;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(
        obs::Cat::kPilot, obs::Phase::kInstant, "resume", obs::Track::kInvoker,
        id_, id_, sim_.now(), static_cast<double>(running_.size()));
  }
  sim_.cancel(resume_event_);
  // Deterministic thaw order: running_ is an unordered_map, so reschedule
  // by ascending activation id.
  std::vector<ActivationId> acts;
  acts.reserve(running_.size());
  for (const auto& [act, exec] : running_) acts.push_back(act);
  std::sort(acts.begin(), acts.end());
  for (const ActivationId act : acts)
    schedule_exec_event(act, running_.at(act).remaining);
  start_loops();
  // Announce liveness now rather than a heartbeat period later, so a
  // watchdog-flagged invoker is readmitted the moment it thaws.
  controller_.heartbeat(id_);
}

void Invoker::sigterm(std::function<void()> on_drained) {
  if (dead_) return;
  if (draining_) return;  // duplicate SIGTERM
  if (stalled_) return;   // frozen: the hand-off can't run; SIGKILL will land
  draining_ = true;
  on_drained_ = std::move(on_drained);

  if (!started_) {
    // SIGTERM during warm-up: nothing registered, nothing to hand off.
    dead_ = true;
    if (on_drained_) on_drained_();
    return;
  }

  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(obs::Cat::kPilot, obs::Phase::kBegin, "drain",
                              obs::Track::kInvoker, id_, id_, sim_.now(),
                              static_cast<double>(running_.size()),
                              static_cast<double>(buffer_.size()));
  }

  // 1. Controller stops routing to us and rescues our unpulled backlog.
  controller_.begin_drain(id_);

  // 2. Pulled-but-not-started buffer goes to the fast lane.
  while (!buffer_.empty()) {
    controller_.requeue_to_fast_lane(std::move(buffer_.front()));
    buffer_.pop_front();
  }

  // 3. Interrupt running executions of interruptible functions.
  std::vector<ActivationId> to_interrupt;
  for (const auto& [act, exec] : running_) {
    const FunctionSpec& fn = registry_.at(exec.msg.key);
    if (fn.interruptible || exec.phase == ExecPhase::kStarting)
      to_interrupt.push_back(act);
  }
  for (const ActivationId act : to_interrupt) {
    auto it = running_.find(act);
    Exec& e = it->second;
    sim_.cancel(e.event);
    if (e.phase == ExecPhase::kRunning) {
      controller_.activation_interrupted(act);
      ++counters_.interrupted;
      HW_OBS_IF(config_.obs) { c_interrupted_->add(); }
    }
    HW_OBS_IF(config_.obs) {
      // Close the exec span as aborted (arg0=0) before the reroute event
      // so the causal chain reads exec -> interrupt -> fast_lane_reroute.
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kAsyncEnd, "exec",
          obs::Track::kInvoker, id_, act, sim_.now(), /*arg0=*/0.0);
      config_.obs->trace.record_chained(
          obs::Cat::kActivation, obs::Phase::kInstant, "interrupt",
          obs::Track::kInvoker, id_, act, sim_.now());
    }
    controller_.requeue_to_fast_lane(std::move(e.msg));
    pool_.remove(e.container);
    running_.erase(it);
  }

  finish_drain_if_idle();
}

void Invoker::finish_drain_if_idle() {
  if (!draining_ || dead_) return;
  if (!running_.empty()) return;  // non-interruptible work still going
  dead_ = true;
  HW_OBS_IF(config_.obs) {
    if (started_) {
      config_.obs->trace.record(obs::Cat::kPilot, obs::Phase::kEnd, "drain",
                                obs::Track::kInvoker, id_, id_, sim_.now());
    }
  }
  stop_loops();
  pool_.clear();
  controller_.deregister(id_);
  if (on_drained_) {
    auto cb = std::move(on_drained_);
    on_drained_ = nullptr;
    cb();
  }
}

void Invoker::hard_kill() {
  if (dead_) return;
  dead_ = true;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(
        obs::Cat::kPilot, obs::Phase::kInstant, "hard_kill",
        obs::Track::kInvoker, id_, id_, sim_.now(),
        static_cast<double>(running_.size()),
        static_cast<double>(buffer_.size()));
    // A SIGKILL mid-drain leaves the drain span open; close it so the
    // timeline shows where the hand-off was cut short.
    if (draining_ && started_) {
      config_.obs->trace.record(obs::Cat::kPilot, obs::Phase::kEnd, "drain",
                                obs::Track::kInvoker, id_, id_, sim_.now());
    }
  }
  stop_loops();
  sim_.cancel(resume_event_);
  for (auto& [act, exec] : running_) sim_.cancel(exec.event);
  running_.clear();
  buffer_.clear();
  pool_.clear();
  // No controller *protocol* interaction: the watchdog will notice the
  // silence (and revoke any leases then). Dropping the seam here is pure
  // memory safety — the callbacks captured `this`, and the pilot may
  // destroy a hard-killed invoker before the watchdog fires.
  if (started_) controller_.clear_direct_invoke(id_);
}

void Invoker::stop_loops() {
  poll_loop_.stop();
  heartbeat_loop_.stop();
}

}  // namespace hpcwhisk::whisk
