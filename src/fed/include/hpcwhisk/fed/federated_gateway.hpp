#pragma once
// Multi-cluster federation: one routing gateway serving a FaaS workload
// across N independent HPC-Whisk clusters.
//
// The paper runs one OpenWhisk controller against one Slurm cluster and
// shields clients with the Alg. 1 cloud fallback. At production scale the
// idle supply is sharded across many clusters, each with its own HPC
// background load (and therefore its own, skewed, idle-node surface).
// The FederatedGateway owns N full HpcWhiskSystem instances — each with
// its own Slurmctld, JobManager, Controller, Broker and invoker pool,
// driven by its own calibrated HpcWorkloadGenerator under a per-cluster
// seed — inside one deterministic sim::Simulation, and routes an
// open-loop FaaS workload across them.
//
// Routing policies (Żuk et al.: routing decisions dominate FaaS response
// time):
//  * round-robin            — supply-blind rotation;
//  * least-outstanding      — fewest in-flight activations wins;
//  * power-of-two-choices   — two sampled clusters, lower load-per-
//                             healthy-invoker wins (the classic
//                             "power of d choices" balancer).
// All three read per-cluster health (healthy-invoker count, controller
// queue depth) through a bounded-staleness snapshot refreshed on a fixed
// cadence — never instantaneous global state, mirroring what a real
// gateway could know from periodic status reports.
//
// Unavailability handling generalizes Alg. 1's single Last_503 to a
// per-cluster cool-down table: a 503 puts the rejecting cluster in
// cool-down, the call spills to the healthiest-looking sibling first,
// and only when every cluster is cooling or rejecting does it fall back
// to the commercial cloud (cloud::LambdaService).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hpcwhisk/cloud/lambda_service.hpp"
#include "hpcwhisk/core/system.hpp"
#include "hpcwhisk/sim/rng.hpp"
#include "hpcwhisk/sim/simulation.hpp"
#include "hpcwhisk/trace/hpc_workload.hpp"

namespace hpcwhisk::fed {

enum class FedPolicy : std::uint8_t {
  kRoundRobin,
  kLeastOutstanding,
  kPowerOfTwo,
  /// Snapshot-fed twin of the controller's least-expected-work route
  /// mode: lowest predicted outstanding *work* (sched ledger ticks) per
  /// healthy invoker wins. Clusters whose controller runs a legacy route
  /// mode export no backlog signal; they are scored by outstanding calls
  /// at a nominal per-call duration instead (see load_score_ticks).
  kLeastExpectedWork,
};

[[nodiscard]] const char* to_string(FedPolicy p);

class FederatedGateway {
 public:
  struct ClusterSpec {
    /// Full per-cluster deployment config. Give every cluster a distinct
    /// `system.seed`: it decorrelates the clusters' pilot supplies.
    core::HpcWhiskSystem::Config system;
    /// Background HPC workload driving this cluster's idleness pattern.
    trace::HpcWorkloadGenerator::Config hpc_load;
    /// Seed for the HPC workload generator; 0 derives one from
    /// system.seed (same derivation run_experiment uses).
    std::uint64_t hpc_seed{0};
    /// Set false to own a cluster without generating background load
    /// (unit tests drive the controllers directly).
    bool drive_hpc_load{true};
  };

  struct Config {
    std::vector<ClusterSpec> clusters;  ///< at least one
    FedPolicy policy{FedPolicy::kPowerOfTwo};
    /// Health snapshot refresh cadence — the staleness bound. Zero
    /// disables the periodic sampler (tests call refresh_health()).
    sim::SimTime health_refresh{sim::SimTime::seconds(1)};
    /// Per-cluster cool-down after a 503 (Alg. 1's fallback window,
    /// per cluster). A cooling cluster receives no traffic until a call
    /// arrives strictly after last_503 + cooldown.
    sim::SimTime cooldown{sim::SimTime::seconds(60)};
    /// The shared commercial fallback backend.
    cloud::LambdaService::Config cloud;
    std::int64_t cloud_memory_mb{2048};
    /// Gateway RNG seed (power-of-two-choices sampling).
    std::uint64_t seed{1};
    /// Append one line per routed call to decision_log() — the input of
    /// the serial-vs-parallel golden test. Off by default (it grows with
    /// the call count).
    bool log_decisions{false};
    /// Optional trace/metrics sink for *gateway-level* events (routing
    /// instants, cool-down spans, counters). Per-cluster instrumentation
    /// is configured through each ClusterSpec::system.obs — cluster
    /// correlation ids (invoker ids, activation ids) are per-controller
    /// and would collide in a shared buffer, so the gateway does not fan
    /// this pointer out.
    obs::Observability* obs{nullptr};
  };

  FederatedGateway(sim::Simulation& simulation, Config config);

  FederatedGateway(const FederatedGateway&) = delete;
  FederatedGateway& operator=(const FederatedGateway&) = delete;

  /// Registers `spec` with every cluster's registry and the cloud
  /// registry, so a call can land anywhere.
  void register_function(const whisk::FunctionSpec& spec);

  /// Starts every cluster's HPC workload and pilot supply, plus the
  /// health sampler.
  void start();

  struct Result {
    bool cloud{false};
    std::size_t cluster{0};     ///< valid iff !cloud
    std::uint64_t id{0};        ///< activation id or cloud invocation id
    std::uint32_t spills{0};    ///< 503s absorbed before placement
  };

  /// Routes one call: policy pick among non-cooling clusters, spillover
  /// to siblings on 503 (healthiest snapshot first), cloud as the last
  /// resort. Never fails to place the call.
  Result invoke(const std::string& function);

  // --- Health snapshots ----------------------------------------------------

  struct ClusterHealth {
    std::size_t healthy{0};        ///< healthy invokers at sample time
    std::uint64_t outstanding{0};  ///< accepted, not yet terminal
    /// Predicted outstanding work (sched ledger, ticks) at sample time;
    /// -1 when the cluster's controller has no data-driven scheduler.
    std::int64_t expected_backlog_ticks{-1};
    sim::SimTime sampled_at;
  };

  /// Re-samples every cluster now. Called on the health_refresh cadence;
  /// tests drive it manually to pin staleness semantics.
  void refresh_health();
  [[nodiscard]] const std::vector<ClusterHealth>& health() const {
    return health_;
  }
  /// Whether `cluster` is inside its post-503 cool-down at time `at`.
  [[nodiscard]] bool cooling(std::size_t cluster, sim::SimTime at) const;

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }
  [[nodiscard]] core::HpcWhiskSystem& cluster(std::size_t i) {
    return *clusters_[i].system;
  }
  [[nodiscard]] trace::HpcWorkloadGenerator* hpc_load(std::size_t i) {
    return clusters_[i].workload.get();
  }
  [[nodiscard]] cloud::LambdaService& cloud_service() { return *cloud_; }
  [[nodiscard]] whisk::FunctionRegistry& cloud_functions() {
    return cloud_registry_;
  }

  struct Counters {
    std::uint64_t invocations{0};
    std::uint64_t cluster_calls{0};
    std::uint64_t cloud_calls{0};
    std::uint64_t rejections_seen{0};  ///< 503s absorbed by the gateway
    std::uint64_t spillovers{0};       ///< placed on a sibling after >=1 503
    std::uint64_t cooldown_skips{0};   ///< cooling clusters bypassed
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Calls placed on each cluster (load-share numerator).
  [[nodiscard]] const std::vector<std::uint64_t>& per_cluster_calls() const {
    return per_cluster_calls_;
  }

  /// Health-sampler coverage: samples where >= 1 cluster had a healthy
  /// invoker, over all samples (federation-wide availability share).
  [[nodiscard]] std::uint64_t health_samples() const { return samples_total_; }
  [[nodiscard]] std::uint64_t health_samples_any_healthy() const {
    return samples_any_healthy_;
  }
  /// Samples where cluster `i` had >= 1 healthy invoker.
  [[nodiscard]] const std::vector<std::uint64_t>& health_samples_healthy()
      const {
    return samples_healthy_;
  }

  /// One line per routed call when Config::log_decisions — a pure
  /// function of (config, workload, seed); the golden test hashes it.
  [[nodiscard]] const std::string& decision_log() const {
    return decision_log_;
  }

 private:
  struct Cluster {
    std::unique_ptr<core::HpcWhiskSystem> system;
    std::unique_ptr<trace::HpcWorkloadGenerator> workload;
    std::optional<sim::SimTime> last_503;
    bool cooldown_span_open{false};
  };

  /// Load score from the current snapshot: outstanding work per healthy
  /// invoker; clusters with zero healthy invokers score worst.
  [[nodiscard]] double load_score(std::size_t i) const;
  /// kLeastExpectedWork score: predicted backlog ticks per healthy
  /// invoker (outstanding calls at a nominal duration when the cluster
  /// exports no backlog signal).
  [[nodiscard]] double load_score_ticks(std::size_t i) const;
  /// Policy pick among `candidates` (indices into clusters_, ascending).
  [[nodiscard]] std::optional<std::size_t> pick(
      const std::vector<std::size_t>& candidates);
  /// Spillover pick: lowest load score, ties to the lowest index.
  [[nodiscard]] std::optional<std::size_t> pick_least(
      const std::vector<std::size_t>& candidates) const;
  void note_503(std::size_t i, sim::SimTime now);
  void maybe_close_cooldown_span(std::size_t i, sim::SimTime at);

  sim::Simulation& sim_;
  Config config_;
  sim::Rng rng_;
  whisk::FunctionRegistry cloud_registry_;
  std::vector<Cluster> clusters_;
  std::unique_ptr<cloud::LambdaService> cloud_;
  std::vector<ClusterHealth> health_;
  std::vector<std::uint64_t> per_cluster_calls_;
  std::vector<std::uint64_t> samples_healthy_;
  std::uint64_t samples_total_{0};
  std::uint64_t samples_any_healthy_{0};
  std::size_t rr_next_{0};
  sim::PeriodicHandle sampler_;
  Counters counters_;
  std::string decision_log_;
};

}  // namespace hpcwhisk::fed
