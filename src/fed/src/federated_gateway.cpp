#include "hpcwhisk/fed/federated_gateway.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "hpcwhisk/obs/observability.hpp"

namespace hpcwhisk::fed {

const char* to_string(FedPolicy p) {
  switch (p) {
    case FedPolicy::kRoundRobin: return "round_robin";
    case FedPolicy::kLeastOutstanding: return "least_outstanding";
    case FedPolicy::kPowerOfTwo: return "power_of_two";
    case FedPolicy::kLeastExpectedWork: return "least_expected_work";
  }
  return "?";
}

FederatedGateway::FederatedGateway(sim::Simulation& simulation, Config config)
    : sim_{simulation}, config_{std::move(config)}, rng_{config_.seed} {
  if (config_.clusters.empty()) {
    throw std::invalid_argument("FederatedGateway: no clusters configured");
  }
  const std::size_t n = config_.clusters.size();
  clusters_.reserve(n);
  for (ClusterSpec& spec : config_.clusters) {
    Cluster c;
    const std::uint64_t wl_seed =
        spec.hpc_seed != 0 ? spec.hpc_seed : spec.system.seed ^ 0x9E3779B9ULL;
    c.system =
        std::make_unique<core::HpcWhiskSystem>(sim_, std::move(spec.system));
    if (spec.drive_hpc_load) {
      c.workload = std::make_unique<trace::HpcWorkloadGenerator>(
          sim_, c.system->slurm(), spec.hpc_load, sim::Rng{wl_seed});
    }
    clusters_.push_back(std::move(c));
  }
  // The shared cloud fallback records into the gateway's sink: its
  // invocation ids are gateway-scoped, so no correlation collision.
  HW_OBS_IF(config_.obs) { config_.cloud.obs = config_.obs; }
  cloud_ = std::make_unique<cloud::LambdaService>(
      sim_, cloud_registry_, config_.cloud,
      sim::Rng{config_.seed ^ 0xC10DFA11ULL});

  health_.resize(n);
  per_cluster_calls_.assign(n, 0);
  samples_healthy_.assign(n, 0);
  refresh_health();
  // The construction-time snapshot is a bootstrap, not a sample.
  samples_total_ = 0;
  samples_any_healthy_ = 0;
  samples_healthy_.assign(n, 0);

  HW_OBS_IF(config_.obs) {
    config_.obs->metrics.add_collector([this](obs::MetricsRegistry& m) {
      m.counter("fed.invocations").set(counters_.invocations);
      m.counter("fed.cluster_calls").set(counters_.cluster_calls);
      m.counter("fed.cloud_calls").set(counters_.cloud_calls);
      m.counter("fed.rejections_seen").set(counters_.rejections_seen);
      m.counter("fed.spillovers").set(counters_.spillovers);
      m.counter("fed.cooldown_skips").set(counters_.cooldown_skips);
      for (std::size_t i = 0; i < clusters_.size(); ++i) {
        m.gauge("fed.cluster." + std::to_string(i) + ".healthy")
            .set(static_cast<double>(health_[i].healthy));
        m.gauge("fed.cluster." + std::to_string(i) + ".outstanding")
            .set(static_cast<double>(health_[i].outstanding));
      }
    });
  }
}

void FederatedGateway::register_function(const whisk::FunctionSpec& spec) {
  for (Cluster& c : clusters_) c.system->functions().put(spec);
  cloud_registry_.put(spec);
}

void FederatedGateway::start() {
  for (Cluster& c : clusters_) {
    if (c.workload) c.workload->start();
    c.system->start();
  }
  if (config_.health_refresh > sim::SimTime::zero()) {
    sampler_ =
        sim_.every(config_.health_refresh, [this] { refresh_health(); });
  }
}

void FederatedGateway::refresh_health() {
  const sim::SimTime now = sim_.now();
  bool any_healthy = false;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const whisk::Controller& ctrl = clusters_[i].system->controller();
    const whisk::Controller::Counters& c = ctrl.counters();
    ClusterHealth& h = health_[i];
    h.healthy = ctrl.healthy_count();
    h.outstanding = c.accepted - c.completed - c.failed - c.timed_out;
    h.expected_backlog_ticks =
        ctrl.scheduler() != nullptr ? ctrl.expected_backlog_ticks() : -1;
    h.sampled_at = now;
    if (h.healthy > 0) {
      any_healthy = true;
      ++samples_healthy_[i];
    }
  }
  ++samples_total_;
  if (any_healthy) ++samples_any_healthy_;
}

bool FederatedGateway::cooling(std::size_t cluster, sim::SimTime at) const {
  const std::optional<sim::SimTime>& last = clusters_[cluster].last_503;
  return last.has_value() && at - *last <= config_.cooldown;
}

double FederatedGateway::load_score(std::size_t i) const {
  const ClusterHealth& h = health_[i];
  if (h.healthy == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(h.outstanding + 1) /
         static_cast<double>(h.healthy);
}

double FederatedGateway::load_score_ticks(std::size_t i) const {
  const ClusterHealth& h = health_[i];
  if (h.healthy == 0) return std::numeric_limits<double>::infinity();
  // No backlog signal (legacy route mode): price each outstanding call
  // at a nominal second so mixed fleets still rank sensibly.
  const double backlog =
      h.expected_backlog_ticks >= 0
          ? static_cast<double>(h.expected_backlog_ticks)
          : static_cast<double>(h.outstanding) * 1e6;
  return backlog / static_cast<double>(h.healthy);
}

std::optional<std::size_t> FederatedGateway::pick_least(
    const std::vector<std::size_t>& candidates) const {
  std::optional<std::size_t> best;
  double best_score = 0.0;
  for (const std::size_t i : candidates) {
    const double score = load_score(i);
    if (!best.has_value() || score < best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

std::optional<std::size_t> FederatedGateway::pick(
    const std::vector<std::size_t>& candidates) {
  if (candidates.empty()) return std::nullopt;
  switch (config_.policy) {
    case FedPolicy::kRoundRobin: {
      const std::size_t n = clusters_.size();
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = (rr_next_ + k) % n;
        if (std::find(candidates.begin(), candidates.end(), idx) !=
            candidates.end()) {
          rr_next_ = (idx + 1) % n;
          return idx;
        }
      }
      return std::nullopt;  // unreachable: candidates is non-empty
    }
    case FedPolicy::kLeastOutstanding: {
      // Outstanding work, not score: a supply-aware but size-blind
      // balancer (the middle rung of the ablation).
      std::optional<std::size_t> best;
      for (const std::size_t i : candidates) {
        if (!best.has_value() ||
            std::make_pair(health_[i].healthy == 0, health_[i].outstanding) <
                std::make_pair(health_[*best].healthy == 0,
                               health_[*best].outstanding)) {
          best = i;
        }
      }
      return best;
    }
    case FedPolicy::kLeastExpectedWork: {
      std::optional<std::size_t> best;
      double best_score = 0.0;
      for (const std::size_t i : candidates) {  // ascending: ties → lowest
        const double score = load_score_ticks(i);
        if (!best.has_value() || score < best_score) {
          best = i;
          best_score = score;
        }
      }
      return best;
    }
    case FedPolicy::kPowerOfTwo: {
      const std::size_t n = candidates.size();
      if (n == 1) return candidates[0];
      const auto a = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      auto b = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      if (b >= a) ++b;
      const std::size_t ca = candidates[a];
      const std::size_t cb = candidates[b];
      const double sa = load_score(ca);
      const double sb = load_score(cb);
      if (sa == sb) return std::min(ca, cb);
      return sa < sb ? ca : cb;
    }
  }
  return std::nullopt;
}

void FederatedGateway::note_503(std::size_t i, sim::SimTime now) {
  ++counters_.rejections_seen;
  clusters_[i].last_503 = now;
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(obs::Cat::kFed, obs::Phase::kInstant, "fed_503",
                              obs::Track::kGateway, 0, i, now,
                              static_cast<double>(i));
    if (!clusters_[i].cooldown_span_open) {
      clusters_[i].cooldown_span_open = true;
      config_.obs->trace.record_chained(
          obs::Cat::kFed, obs::Phase::kAsyncBegin, "fed_cooldown",
          obs::Track::kGateway, 0, i, now, config_.cooldown.to_seconds());
    }
  }
}

void FederatedGateway::maybe_close_cooldown_span(std::size_t i,
                                                 sim::SimTime at) {
  if (!clusters_[i].cooldown_span_open || cooling(i, at)) return;
  clusters_[i].cooldown_span_open = false;
  HW_OBS_IF(config_.obs) {
    // Close at the semantic expiry (in the past by discovery time;
    // exported events carry explicit timestamps).
    config_.obs->trace.record_chained(
        obs::Cat::kFed, obs::Phase::kAsyncEnd, "fed_cooldown",
        obs::Track::kGateway, 0, i,
        *clusters_[i].last_503 + config_.cooldown,
        config_.cooldown.to_seconds());
  }
}

FederatedGateway::Result FederatedGateway::invoke(
    const std::string& function) {
  const sim::SimTime now = sim_.now();
  ++counters_.invocations;

  std::vector<std::size_t> candidates;
  candidates.reserve(clusters_.size());
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (cooling(i, now)) {
      ++counters_.cooldown_skips;
      continue;
    }
    maybe_close_cooldown_span(i, now);
    candidates.push_back(i);
  }

  Result out;
  std::optional<std::size_t> target = pick(candidates);
  while (target.has_value()) {
    const std::size_t i = *target;
    const whisk::SubmitResult res =
        clusters_[i].system->controller().submit(function);
    if (res.accepted) {
      ++counters_.cluster_calls;
      ++per_cluster_calls_[i];
      if (out.spills > 0) ++counters_.spillovers;
      out.cloud = false;
      out.cluster = i;
      out.id = res.activation;
      if (config_.log_decisions) {
        decision_log_ += std::to_string(now.ticks());
        decision_log_ += ' ';
        decision_log_ += function;
        decision_log_ += " c";
        decision_log_ += std::to_string(i);
        decision_log_ += " s";
        decision_log_ += std::to_string(out.spills);
        decision_log_ += '\n';
      }
      HW_OBS_IF(config_.obs) {
        config_.obs->trace.record(obs::Cat::kFed, obs::Phase::kInstant,
                                  "fed_route", obs::Track::kGateway, 0,
                                  counters_.invocations, now,
                                  static_cast<double>(i),
                                  static_cast<double>(out.spills));
      }
      return out;
    }
    // 503: cool the rejecting cluster down and spill to the sibling the
    // snapshot considers least loaded.
    note_503(i, now);
    ++out.spills;
    candidates.erase(std::find(candidates.begin(), candidates.end(), i));
    target = pick_least(candidates);
  }

  // Every cluster cooling or rejecting: the commercial fallback.
  ++counters_.cloud_calls;
  out.cloud = true;
  out.cluster = 0;
  out.id = cloud_->invoke(function, config_.cloud_memory_mb);
  if (config_.log_decisions) {
    decision_log_ += std::to_string(now.ticks());
    decision_log_ += ' ';
    decision_log_ += function;
    decision_log_ += " cloud s";
    decision_log_ += std::to_string(out.spills);
    decision_log_ += '\n';
  }
  HW_OBS_IF(config_.obs) {
    config_.obs->trace.record(obs::Cat::kFed, obs::Phase::kInstant,
                              "fed_offload", obs::Track::kGateway, 0,
                              counters_.invocations, now,
                              static_cast<double>(out.spills));
  }
  return out;
}

}  // namespace hpcwhisk::fed
