// Soak sweep: a 20-seed chaos + federation campaign over the unmodified
// system must report zero violations. Labeled `soak` in CMake so the
// tier-1 suite (`ctest -L tier1`) skips it; run explicitly with
// `ctest -L soak` or via tools/ci_smoke.sh.

#include <gtest/gtest.h>

#include <sstream>

#include "hpcwhisk/check/simcheck.hpp"

namespace hpcwhisk {
namespace {

TEST(SweepSoak, TwentyChaosFederatedSeedsAreClean) {
  check::CampaignOptions options;
  options.seed_base = 1;
  options.seeds = 20;
  options.sample.chaos = true;
  options.sample.max_clusters = 3;

  std::ostringstream progress;
  const auto campaign =
      check::run_campaign(options, check::InvariantSuite::standard(), progress);
  EXPECT_EQ(campaign.failures, 0u) << progress.str();
  for (const auto& outcome : campaign.outcomes) {
    for (const auto& v : outcome.check.violations) {
      ADD_FAILURE() << "seed " << outcome.seed << " [" << v.invariant << "] "
                    << v.message;
    }
  }
}

}  // namespace
}  // namespace hpcwhisk
