// The fuzzer's self-test (ISSUE 5 acceptance): plant a known defect — a
// pilot partition built with a 5-second grace while the spec promises 3
// minutes — and require the full pipeline to work end to end: SimCheck
// detects the violation, the shrinker minimizes the scenario to a small
// still-failing spec, the repro file round-trips, and replay is
// byte-identical (FNV-1a decision-log hash) across two runs.

#include <gtest/gtest.h>

#include <sstream>

#include "hpcwhisk/check/repro.hpp"
#include "hpcwhisk/check/runner.hpp"
#include "hpcwhisk/check/shrink.hpp"
#include "hpcwhisk/check/simcheck.hpp"

namespace hpcwhisk {
namespace {

constexpr char kGraceInvariant[] = "grace-respected";

/// A planted-grace scenario needs enough pressure that some pilot gets
/// preempted (HPC churn forces preemptions of the FaaS pilots). Seed 3
/// is the first sampled seed that preempts within the horizon; assert
/// that instead of hiding a search loop in the test.
check::ScenarioSpec planted_spec() {
  check::SampleOptions opts;
  opts.plant = check::BugPlant::kTruncateGrace;
  return check::ScenarioSpec::sample(3, opts);
}

TEST(PlantedBug, TruncatedGraceIsDetected) {
  const auto spec = planted_spec();
  const auto suite = check::InvariantSuite::standard();
  const auto result = check::check_scenario(spec, suite, {.replay_check = false});
  ASSERT_FALSE(result.ok()) << "planted bug went undetected: " << spec.summary();
  bool grace = false;
  for (const auto& v : result.violations) {
    if (v.invariant == kGraceInvariant) grace = true;
  }
  EXPECT_TRUE(grace) << "violations found, but none from " << kGraceInvariant;
}

TEST(PlantedBug, ShrinksToSmallStillFailingRepro) {
  const auto spec = planted_spec();
  const auto suite = check::InvariantSuite::standard();

  const auto shrunk = check::shrink(spec, kGraceInvariant, suite, {});
  EXPECT_LE(shrunk.spec.elements(), 16u)
      << "shrunk spec still has " << shrunk.spec.elements()
      << " elements: " << shrunk.spec.summary();
  EXPECT_GT(shrunk.reductions, 0u);
  EXPECT_LT(shrunk.spec.elements(), spec.elements());

  // The minimized spec must still fail with the same invariant...
  const auto recheck =
      check::check_scenario(shrunk.spec, suite, {.replay_check = false});
  bool grace = false;
  for (const auto& v : recheck.violations) {
    if (v.invariant == kGraceInvariant) grace = true;
  }
  ASSERT_TRUE(grace) << "shrunk spec no longer fails: " << shrunk.spec.summary();

  // ...and survive the repro round-trip losslessly.
  check::Repro repro;
  repro.invariant = kGraceInvariant;
  repro.message = recheck.violations.front().message;
  repro.decision_hash = recheck.decision_hash;
  repro.spec = shrunk.spec;
  const auto parsed = check::parse_repro(check::write_repro(repro));
  EXPECT_EQ(parsed.spec, shrunk.spec);
  EXPECT_EQ(parsed.decision_hash, recheck.decision_hash);

  // Replay determinism: two independent runs of the parsed spec produce
  // byte-identical decision logs (compared via FNV-1a, like `simcheck
  // --replay` does).
  const auto run_a = check::run_scenario(parsed.spec);
  const auto run_b = check::run_scenario(parsed.spec);
  EXPECT_EQ(run_a.decision_hash, run_b.decision_hash);
  EXPECT_EQ(run_a.decision_log, run_b.decision_log);
  EXPECT_EQ(run_a.decision_hash, recheck.decision_hash);
}

TEST(PlantedBug, CampaignDetectsShrinksAndEmitsRepro) {
  check::CampaignOptions options;
  options.seed_base = 3;
  options.seeds = 1;
  options.jobs = 1;
  options.sample.plant = check::BugPlant::kTruncateGrace;
  options.shrink_budget = 96;

  std::ostringstream progress;
  const auto campaign =
      check::run_campaign(options, check::InvariantSuite::standard(), progress);
  ASSERT_EQ(campaign.failures, 1u);
  const auto& outcome = campaign.outcomes.front();
  ASSERT_TRUE(outcome.shrunk_valid);
  EXPECT_LE(outcome.shrunk.elements(), 16u);
  ASSERT_FALSE(outcome.repro_json.empty());

  const auto repro = check::parse_repro(outcome.repro_json);
  EXPECT_EQ(repro.invariant, kGraceInvariant);
  EXPECT_EQ(repro.spec, outcome.shrunk);
  EXPECT_EQ(repro.decision_hash, outcome.shrunk_hash);

  // The emitted repro replays to the recorded hash.
  const auto replay = check::run_scenario(repro.spec);
  EXPECT_EQ(replay.decision_hash, repro.decision_hash);
}

}  // namespace
}  // namespace hpcwhisk
