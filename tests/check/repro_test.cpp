#include "hpcwhisk/check/repro.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hpcwhisk/check/runner.hpp"

namespace hpcwhisk {
namespace {

check::Repro make_repro() {
  check::Repro repro;
  repro.invariant = "grace-respected";
  repro.message = "pilot 42 sigterm deadline mismatch";
  repro.decision_hash = 0xDEADBEEFCAFEF00DULL;
  repro.spec = check::ScenarioSpec::sample(
      99, {.chaos = true, .max_clusters = 3, .fed_probability = 1.0});
  repro.spec.plant = check::BugPlant::kTruncateGrace;
  return repro;
}

TEST(Repro, RoundTripPreservesEverything) {
  const check::Repro original = make_repro();
  ASSERT_FALSE(original.spec.faults.empty());
  ASSERT_GT(original.spec.clusters, 1u);

  const std::string json = check::write_repro(original);
  const check::Repro parsed = check::parse_repro(json);

  EXPECT_EQ(parsed.invariant, original.invariant);
  EXPECT_EQ(parsed.message, original.message);
  EXPECT_EQ(parsed.decision_hash, original.decision_hash);
  EXPECT_EQ(parsed.spec, original.spec);
}

TEST(Repro, RoundTripPreservesNonRepresentableDoubles) {
  check::Repro repro = make_repro();
  repro.spec.faas_qps = 0.1 + 0.2;  // 0.30000000000000004
  repro.spec.lull_probability = 1.0 / 3.0;
  const check::Repro parsed = check::parse_repro(check::write_repro(repro));
  EXPECT_EQ(parsed.spec.faas_qps, repro.spec.faas_qps);
  EXPECT_EQ(parsed.spec.lull_probability, repro.spec.lull_probability);
}

TEST(Repro, WriteIsDeterministic) {
  const check::Repro repro = make_repro();
  EXPECT_EQ(check::write_repro(repro), check::write_repro(repro));
}

TEST(Repro, EscapesStringsInMessages) {
  check::Repro repro = make_repro();
  repro.message = "got \"quote\"\nand\ttabs \\ backslash";
  const check::Repro parsed = check::parse_repro(check::write_repro(repro));
  EXPECT_EQ(parsed.message, repro.message);
}

TEST(Repro, RoundTripPreservesRouteModeAndDeadlineClasses) {
  check::Repro repro = make_repro();
  repro.spec.route_mode = whisk::RouteMode::kSjfAffinity;
  repro.spec.deadline_classes = true;
  const check::Repro parsed = check::parse_repro(check::write_repro(repro));
  EXPECT_EQ(parsed.spec.route_mode, whisk::RouteMode::kSjfAffinity);
  EXPECT_TRUE(parsed.spec.deadline_classes);
}

TEST(Repro, RoundTripPreservesFidelityFields) {
  check::Repro repro = make_repro();
  repro.spec.tres_mode = true;
  repro.spec.node_cpus = 12;
  repro.spec.node_mem_mb = 48000;
  repro.spec.pilot_cpus = 5;
  repro.spec.pilot_mem_mb = 20000;
  repro.spec.qos_preempt = true;
  repro.spec.reservation = true;
  repro.spec.res_start_frac = 0.35;
  repro.spec.res_duration_min = 7;
  repro.spec.res_nodes = 3;
  repro.spec.plant = check::BugPlant::kTresOvercommit;
  const check::Repro parsed = check::parse_repro(check::write_repro(repro));
  EXPECT_EQ(parsed.spec, repro.spec);
  EXPECT_EQ(parsed.spec.plant, check::BugPlant::kTresOvercommit);
}

TEST(Repro, ParsesPreFidelityReprosWithDefaults) {
  // Repros written before the Slurm-fidelity layer lack the TRES /
  // QOS / reservation fields; they must parse and mean what they always
  // meant (all fidelity off).
  std::string json = check::write_repro(make_repro());
  for (const auto field :
       {"\"tres_mode\"", "\"node_cpus\"", "\"node_mem_mb\"", "\"pilot_cpus\"",
        "\"pilot_mem_mb\"", "\"qos_preempt\"", "\"reservation\"",
        "\"res_start_frac\"", "\"res_duration_min\"", "\"res_nodes\""}) {
    const std::size_t start = json.find(field);
    ASSERT_NE(start, std::string::npos) << field;
    const std::size_t line_start = json.rfind(",\n", start);
    const std::size_t line_end = json.find(",\n", start);
    ASSERT_NE(line_start, std::string::npos);
    ASSERT_NE(line_end, std::string::npos);
    json.erase(line_start, line_end - line_start);
  }
  const check::Repro parsed = check::parse_repro(json);
  EXPECT_FALSE(parsed.spec.tres_mode);
  EXPECT_FALSE(parsed.spec.qos_preempt);
  EXPECT_FALSE(parsed.spec.reservation);
  EXPECT_EQ(parsed.spec.node_cpus, 8u);
  EXPECT_EQ(parsed.spec.node_mem_mb, 32000u);
  EXPECT_EQ(parsed.spec.pilot_cpus, 0u);

  // A v1 repro replays deterministically with the fidelity defaults.
  check::Repro replayable = parsed;
  replayable.spec.plant = check::BugPlant::kNone;
  const auto run_a = check::run_scenario(replayable.spec);
  const auto run_b = check::run_scenario(replayable.spec);
  EXPECT_EQ(run_a.decision_hash, run_b.decision_hash);
}

TEST(Repro, ParsesPreRouteModeReprosWithDefaults) {
  // Repros written before data-driven scheduling lack the route fields;
  // they must parse and mean what they always meant.
  std::string json = check::write_repro(make_repro());
  const auto strip = [&json](std::string_view field) {
    const std::size_t start = json.find(field);
    ASSERT_NE(start, std::string::npos);
    const std::size_t line_start = json.rfind(",\n", start);
    const std::size_t line_end = json.find(",\n", start);
    ASSERT_NE(line_start, std::string::npos);
    ASSERT_NE(line_end, std::string::npos);
    json.erase(line_start, line_end - line_start);
  };
  strip("\"route_mode\"");
  strip("\"deadline_classes\"");
  const check::Repro parsed = check::parse_repro(json);
  EXPECT_EQ(parsed.spec.route_mode, whisk::RouteMode::kHashProbing);
  EXPECT_FALSE(parsed.spec.deadline_classes);
}

TEST(Repro, RejectsUnknownRouteMode) {
  std::string json = check::write_repro(make_repro());
  const std::size_t pos = json.find("\"route_mode\": \"");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t vstart = json.find(": \"", pos) + 3;
  const std::size_t vend = json.find('"', vstart);
  json.replace(vstart, vend - vstart, "teleport");
  EXPECT_THROW((void)check::parse_repro(json), std::invalid_argument);
}

TEST(Repro, RejectsMalformedInput) {
  EXPECT_THROW((void)check::parse_repro(""), std::invalid_argument);
  EXPECT_THROW((void)check::parse_repro("{"), std::invalid_argument);
  EXPECT_THROW((void)check::parse_repro("not json at all"),
               std::invalid_argument);
  EXPECT_THROW((void)check::parse_repro("{\"format\": \"something-else\"}"),
               std::invalid_argument);
}

TEST(Repro, RejectsMissingFields) {
  const std::string json = check::write_repro(make_repro());
  // Chop the closing brace and the last field off: still syntactically
  // truncated, must not parse.
  EXPECT_THROW((void)check::parse_repro(json.substr(0, json.size() / 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hpcwhisk
