// Negative tests: hand-built RunObservations with one defect each, so we
// know every invariant in the standard suite actually fires (a fuzzer
// whose oracles are silently vacuous finds nothing).

#include "hpcwhisk/check/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hpcwhisk {
namespace {

using check::InvariantSuite;
using check::RunObservation;
using check::ScenarioSpec;
using check::Violation;

/// A minimal observation that violates nothing: one cluster, one node
/// with a timeline tiling [0, end], balanced counters, no jobs.
RunObservation clean_observation() {
  RunObservation obs;
  obs.end_time = sim::SimTime::minutes(10);
  check::ClusterObservation co;
  co.node_count = 1;
  co.node_intervals.push_back({0, slurm::ObservedNodeState::kIdle,
                               sim::SimTime::zero(), obs.end_time});
  obs.clusters.push_back(std::move(co));
  return obs;
}

std::vector<Violation> run_standard(const RunObservation& obs) {
  return InvariantSuite::standard().run(ScenarioSpec{}, obs);
}

bool has(const std::vector<Violation>& vs, const std::string& invariant) {
  return std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
    return v.invariant == invariant;
  });
}

check::JobInfo started_job(slurm::JobId id, std::string partition,
                           sim::SimTime start, sim::SimTime end,
                           std::vector<slurm::NodeId> nodes) {
  check::JobInfo j;
  j.id = id;
  j.partition = std::move(partition);
  j.submit = sim::SimTime::zero();
  j.decision = start;
  j.start = start;
  j.end = end;
  j.ended = true;
  j.nodes = std::move(nodes);
  j.num_nodes = static_cast<std::uint32_t>(j.nodes.size());
  return j;
}

TEST(InvariantSuite, CleanObservationPasses) {
  EXPECT_TRUE(run_standard(clean_observation()).empty());
}

TEST(InvariantSuite, StandardCatalogueNames) {
  const auto suite = InvariantSuite::standard();
  const auto& names = suite.names();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names.front(), "activation-conservation");
  EXPECT_EQ(names[8], "tres-capacity");
  EXPECT_EQ(names.back(), "reservation-exclusion");
}

TEST(InvariantSuite, FlagsAuditViolations) {
  auto obs = clean_observation();
  obs.clusters[0].audit.violations.push_back("activation 3 double-terminal");
  EXPECT_TRUE(has(run_standard(obs), "activation-conservation"));
}

TEST(InvariantSuite, FlagsUnbalancedControllerCounters) {
  auto obs = clean_observation();
  obs.clusters[0].controller.submitted = 5;
  obs.clusters[0].controller.accepted = 4;  // 1 lost, never rejected
  obs.faas_issued = 5;
  EXPECT_TRUE(has(run_standard(obs), "terminal-balance"));
}

TEST(InvariantSuite, FlagsNonterminalActivations) {
  auto obs = clean_observation();
  obs.clusters[0].nonterminal_activations = 2;
  EXPECT_TRUE(has(run_standard(obs), "terminal-balance"));
}

TEST(InvariantSuite, FlagsIssuedVsSubmittedMismatch) {
  auto obs = clean_observation();
  obs.faas_issued = 7;  // controller saw 0
  EXPECT_TRUE(has(run_standard(obs), "terminal-balance"));
}

TEST(InvariantSuite, FlagsLostPilots) {
  auto obs = clean_observation();
  obs.clusters[0].manager.started = 3;
  obs.clusters[0].manager.completed = 2;
  // One pilot vanished: neither terminal nor active.
  EXPECT_TRUE(has(run_standard(obs), "pilot-accounting"));
}

TEST(InvariantSuite, FlagsNodeTimelineGap) {
  auto obs = clean_observation();
  auto& ivs = obs.clusters[0].node_intervals;
  ivs.clear();
  ivs.push_back({0, slurm::ObservedNodeState::kIdle, sim::SimTime::zero(),
                 sim::SimTime::minutes(4)});
  ivs.push_back({0, slurm::ObservedNodeState::kHpc, sim::SimTime::minutes(5),
                 obs.end_time});  // minute 4..5 unaccounted
  EXPECT_TRUE(has(run_standard(obs), "node-timeline"));
}

TEST(InvariantSuite, FlagsMissingNodeTimeline) {
  auto obs = clean_observation();
  obs.clusters[0].node_count = 2;  // node 1 never reported
  EXPECT_TRUE(has(run_standard(obs), "node-timeline"));
}

TEST(InvariantSuite, FlagsDoubleAllocation) {
  auto obs = clean_observation();
  obs.clusters[0].jobs.push_back(started_job(
      1, "hpc", sim::SimTime::minutes(1), sim::SimTime::minutes(5), {0}));
  obs.clusters[0].jobs.push_back(started_job(
      2, "hpc", sim::SimTime::minutes(4), sim::SimTime::minutes(6), {0}));
  EXPECT_TRUE(has(run_standard(obs), "no-double-allocation"));
}

TEST(InvariantSuite, AllowsBackToBackAllocation) {
  auto obs = clean_observation();
  // Job 2 starts exactly when job 1 releases: legal.
  obs.clusters[0].jobs.push_back(started_job(
      1, "hpc", sim::SimTime::minutes(1), sim::SimTime::minutes(4), {0}));
  obs.clusters[0].jobs.push_back(started_job(
      2, "hpc", sim::SimTime::minutes(4), sim::SimTime::minutes(6), {0}));
  EXPECT_FALSE(has(run_standard(obs), "no-double-allocation"));
}

TEST(InvariantSuite, FlagsTruncatedGrace) {
  auto obs = clean_observation();
  ScenarioSpec spec;  // promises 3 minutes of pilot grace
  auto j = started_job(1, "pilot", sim::SimTime::minutes(1),
                       sim::SimTime::minutes(5), {0});
  j.got_sigterm = true;
  j.sigterm_reason = slurm::EndReason::kPreempted;
  j.sigterm_at = sim::SimTime::minutes(4);
  j.sigterm_grace = sim::SimTime::seconds(5);  // truncated!
  j.sigterm_deadline = j.sigterm_at + j.sigterm_grace;
  obs.clusters[0].jobs.push_back(j);
  const auto violations = InvariantSuite::standard().run(spec, obs);
  EXPECT_TRUE(has(violations, "grace-respected"));
}

TEST(InvariantSuite, FlagsSigkillOverstay) {
  auto obs = clean_observation();
  auto j = started_job(1, "pilot", sim::SimTime::minutes(1),
                       sim::SimTime::minutes(9), {0});
  j.got_sigterm = true;
  j.sigterm_reason = slurm::EndReason::kPreempted;
  j.sigterm_at = sim::SimTime::minutes(4);
  j.sigterm_grace = sim::SimTime::minutes(3);
  j.sigterm_deadline = j.sigterm_at + j.sigterm_grace;  // minute 7; ends at 9
  obs.clusters[0].jobs.push_back(j);
  EXPECT_TRUE(has(run_standard(obs), "grace-respected"));
}

TEST(InvariantSuite, FaultKillsAreExemptFromExactGrace) {
  auto obs = clean_observation();
  auto j = started_job(1, "pilot", sim::SimTime::minutes(1),
                       sim::SimTime::minutes(4), {0});
  j.got_sigterm = true;
  j.sigterm_reason = slurm::EndReason::kNodeFailed;  // injected fault
  j.sigterm_at = sim::SimTime::minutes(4);
  j.sigterm_grace = sim::SimTime::zero();
  j.sigterm_deadline = j.sigterm_at;
  obs.clusters[0].jobs.push_back(j);
  EXPECT_FALSE(has(run_standard(obs), "grace-respected"));
}

TEST(InvariantSuite, FlagsBackfillOverHigherPriority) {
  auto obs = clean_observation();
  // P: higher priority, submitted first, fits in 1 node / 10 min — but
  // K (lower priority) got that allocation while P was still queued.
  check::JobInfo p;
  p.id = 1;
  p.partition = "hpc";
  p.priority = 100;
  p.num_nodes = 1;
  p.time_limit = sim::SimTime::minutes(10);
  p.submit = sim::SimTime::zero();
  p.decision = sim::SimTime::minutes(8);
  auto k = started_job(2, "hpc", sim::SimTime::minutes(2),
                       sim::SimTime::minutes(6), {0});
  k.priority = 10;
  k.time_limit = sim::SimTime::minutes(10);
  k.granted_limit = sim::SimTime::minutes(10);
  obs.clusters[0].jobs.push_back(p);
  obs.clusters[0].jobs.push_back(k);
  EXPECT_TRUE(has(run_standard(obs), "backfill-priority"));
}

TEST(InvariantSuite, AllowsBackfillThatCouldNotFitTheReservation) {
  auto obs = clean_observation();
  check::JobInfo p;
  p.id = 1;
  p.partition = "hpc";
  p.priority = 100;
  p.num_nodes = 2;  // needs more nodes than K's allocation — legal skip
  p.time_limit = sim::SimTime::minutes(10);
  p.submit = sim::SimTime::zero();
  p.decision = sim::SimTime::minutes(8);
  auto k = started_job(2, "hpc", sim::SimTime::minutes(2),
                       sim::SimTime::minutes(6), {0});
  k.priority = 10;
  k.granted_limit = sim::SimTime::minutes(10);
  obs.clusters[0].jobs.push_back(p);
  obs.clusters[0].jobs.push_back(k);
  EXPECT_FALSE(has(run_standard(obs), "backfill-priority"));
}

TEST(InvariantSuite, FlagsGatewayImbalance) {
  auto obs = clean_observation();
  obs.federated = true;
  obs.faas_issued = 10;
  obs.gateway.invocations = 10;
  obs.gateway.cluster_calls = 9;  // 1 call neither placed nor clouded
  obs.gateway.cloud_calls = 0;
  obs.per_cluster_calls = {9};
  obs.clusters[0].controller.accepted = 9;
  obs.clusters[0].controller.submitted = 9;
  obs.clusters[0].controller.completed = 9;
  EXPECT_TRUE(has(run_standard(obs), "federation-conservation"));
}

TEST(InvariantSuite, CustomSuiteRunsInRegistrationOrder) {
  InvariantSuite suite;
  suite.add("a", [](const ScenarioSpec&, const RunObservation&,
                    std::vector<Violation>& out) {
    out.push_back({"a", "first"});
  });
  suite.add("b", [](const ScenarioSpec&, const RunObservation&,
                    std::vector<Violation>& out) {
    out.push_back({"b", "second"});
  });
  const auto vs = suite.run(ScenarioSpec{}, clean_observation());
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].invariant, "a");
  EXPECT_EQ(vs[1].invariant, "b");
}

}  // namespace
}  // namespace hpcwhisk
