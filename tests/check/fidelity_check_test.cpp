// Self-tests for the fidelity invariants (per-TRES capacity and
// reservation exclusion): plant a known defect in the system under test
// and require the full SimCheck pipeline to catch it end to end —
// detection by exactly the right invariant, ddmin-shrink to a small
// still-failing spec, repro round-trip, and byte-identical replay. A
// clean campaign over the new regimes (TRES packing, QOS tiers,
// reservations) then shows the invariants are quiet when nothing is
// planted.

#include <gtest/gtest.h>

#include <sstream>

#include "hpcwhisk/check/repro.hpp"
#include "hpcwhisk/check/runner.hpp"
#include "hpcwhisk/check/shrink.hpp"
#include "hpcwhisk/check/simcheck.hpp"

namespace hpcwhisk {
namespace {

constexpr char kTresInvariant[] = "tres-capacity";
constexpr char kReservationInvariant[] = "reservation-exclusion";

/// kTresOvercommit builds nodes larger than the spec promises, so jobs
/// that legally co-reside on the real hardware overflow the *promised*
/// capacity vector. Needs a tres_mode seed; 6 is the first sampled one.
check::ScenarioSpec overcommit_spec() {
  check::SampleOptions opts;
  opts.plant = check::BugPlant::kTresOvercommit;
  const auto spec = check::ScenarioSpec::sample(6, opts);
  EXPECT_TRUE(spec.tres_mode);
  return spec;
}

/// kReservationIgnored drops the declared maintenance window from the
/// system under test, so jobs run straight through it. Needs a seed that
/// samples both tres_mode and a reservation; 23 is the first.
check::ScenarioSpec ignored_reservation_spec() {
  check::SampleOptions opts;
  opts.plant = check::BugPlant::kReservationIgnored;
  const auto spec = check::ScenarioSpec::sample(23, opts);
  EXPECT_TRUE(spec.tres_mode && spec.reservation);
  return spec;
}

bool fails_with(const check::CheckResult& result, const char* invariant) {
  for (const auto& v : result.violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

void expect_shrinks_to_replayable_repro(const check::ScenarioSpec& spec,
                                        const char* invariant) {
  const auto suite = check::InvariantSuite::standard();
  const auto shrunk = check::shrink(spec, invariant, suite, {});
  EXPECT_GT(shrunk.reductions, 0u);
  EXPECT_LT(shrunk.spec.elements(), spec.elements())
      << "shrinker made no progress: " << shrunk.spec.summary();

  // The minimized spec must still fail with the same invariant...
  const auto recheck =
      check::check_scenario(shrunk.spec, suite, {.replay_check = false});
  ASSERT_TRUE(fails_with(recheck, invariant))
      << "shrunk spec no longer fails " << invariant << ": "
      << shrunk.spec.summary();

  // ...survive the repro round-trip losslessly (including the fidelity
  // fields: tres geometry, QOS flag, reservation window)...
  check::Repro repro;
  repro.invariant = invariant;
  repro.message = recheck.violations.front().message;
  repro.decision_hash = recheck.decision_hash;
  repro.spec = shrunk.spec;
  const auto parsed = check::parse_repro(check::write_repro(repro));
  EXPECT_EQ(parsed.spec, shrunk.spec);
  EXPECT_EQ(parsed.decision_hash, recheck.decision_hash);

  // ...and replay byte-identically.
  const auto run_a = check::run_scenario(parsed.spec);
  const auto run_b = check::run_scenario(parsed.spec);
  EXPECT_EQ(run_a.decision_hash, run_b.decision_hash);
  EXPECT_EQ(run_a.decision_log, run_b.decision_log);
  EXPECT_EQ(run_a.decision_hash, recheck.decision_hash);
}

TEST(FidelityPlant, TresOvercommitIsDetected) {
  const auto spec = overcommit_spec();
  const auto result = check::check_scenario(
      spec, check::InvariantSuite::standard(), {.replay_check = false});
  ASSERT_FALSE(result.ok()) << "planted bug went undetected: " << spec.summary();
  EXPECT_TRUE(fails_with(result, kTresInvariant))
      << "violations found, but none from " << kTresInvariant;
}

TEST(FidelityPlant, TresOvercommitShrinksToReplayableRepro) {
  expect_shrinks_to_replayable_repro(overcommit_spec(), kTresInvariant);
}

TEST(FidelityPlant, ReservationIgnoredIsDetected) {
  const auto spec = ignored_reservation_spec();
  const auto result = check::check_scenario(
      spec, check::InvariantSuite::standard(), {.replay_check = false});
  ASSERT_FALSE(result.ok()) << "planted bug went undetected: " << spec.summary();
  EXPECT_TRUE(fails_with(result, kReservationInvariant))
      << "violations found, but none from " << kReservationInvariant;
}

TEST(FidelityPlant, ReservationIgnoredShrinksToReplayableRepro) {
  expect_shrinks_to_replayable_repro(ignored_reservation_spec(),
                                     kReservationInvariant);
}

TEST(FidelityPlant, CampaignEmitsReproForOvercommit) {
  check::CampaignOptions options;
  options.seed_base = 6;
  options.seeds = 1;
  options.jobs = 1;
  options.sample.plant = check::BugPlant::kTresOvercommit;
  options.shrink_budget = 96;

  std::ostringstream progress;
  const auto campaign =
      check::run_campaign(options, check::InvariantSuite::standard(), progress);
  ASSERT_EQ(campaign.failures, 1u);
  const auto& outcome = campaign.outcomes.front();
  ASSERT_TRUE(outcome.shrunk_valid);
  ASSERT_FALSE(outcome.repro_json.empty());

  const auto repro = check::parse_repro(outcome.repro_json);
  EXPECT_EQ(repro.invariant, kTresInvariant);
  EXPECT_EQ(repro.spec, outcome.shrunk);

  const auto replay = check::run_scenario(repro.spec);
  EXPECT_EQ(replay.decision_hash, repro.decision_hash);
}

// The ISSUE-10 acceptance sweep: >= 200 unplanted scenarios sampled over
// the new regimes (seeds 1..200 draw tres_mode ~45%, qos ~40%,
// reservations ~35%) must pass the extended suite — the fidelity
// invariants hold on the real system, and the legacy invariants still
// hold on non-TRES draws.
TEST(FidelityCampaign, TwoHundredCleanScenariosAcrossRegimes) {
  check::CampaignOptions options;
  options.seed_base = 1;
  options.seeds = 200;
  options.shrink = false;
  options.replay_check = false;

  std::ostringstream progress;
  const auto campaign =
      check::run_campaign(options, check::InvariantSuite::standard(), progress);
  std::size_t tres = 0, qos = 0, resv = 0;
  for (const auto& outcome : campaign.outcomes) {
    tres += outcome.spec.tres_mode ? 1 : 0;
    qos += outcome.spec.tres_mode && outcome.spec.qos_preempt ? 1 : 0;
    resv += outcome.spec.tres_mode && outcome.spec.reservation ? 1 : 0;
  }
  // The sweep only counts if it actually visited the new regimes.
  EXPECT_GT(tres, 50u);
  EXPECT_GT(qos, 15u);
  EXPECT_GT(resv, 15u);
  EXPECT_EQ(campaign.failures, 0u) << progress.str();
}

}  // namespace
}  // namespace hpcwhisk
