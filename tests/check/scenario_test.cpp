#include "hpcwhisk/check/scenario.hpp"

#include <gtest/gtest.h>

namespace hpcwhisk {
namespace {

TEST(ScenarioSpec, SamplingIsDeterministic) {
  const auto a = check::ScenarioSpec::sample(1234);
  const auto b = check::ScenarioSpec::sample(1234);
  EXPECT_EQ(a, b);
  const auto c = check::ScenarioSpec::sample(1235);
  EXPECT_NE(a, c);
}

TEST(ScenarioSpec, SamplingRespectsRanges) {
  check::SampleOptions opts;
  opts.min_nodes = 6;
  opts.max_nodes = 20;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto s = check::ScenarioSpec::sample(seed, opts);
    EXPECT_EQ(s.seed, seed);
    EXPECT_GE(s.nodes, 6u);
    EXPECT_LE(s.nodes, 20u);
    EXPECT_EQ(s.clusters, 1u);  // max_clusters defaults to 1
    EXPECT_TRUE(s.faults.empty());
    EXPECT_GE(s.faas_functions, 1u);
    EXPECT_GE(s.horizon, sim::SimTime::minutes(18));
    EXPECT_LE(s.horizon, sim::SimTime::minutes(30));
    // The settle window must outlast the 5-minute activation timeout.
    EXPECT_GT(s.settle, sim::SimTime::minutes(5));
  }
}

TEST(ScenarioSpec, ChaosSamplesFaults) {
  check::SampleOptions opts;
  opts.chaos = true;
  std::size_t total = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto s = check::ScenarioSpec::sample(seed, opts);
    total += s.faults.size();
    for (const auto& f : s.faults) {
      EXPECT_EQ(f.cluster, 0u);
      EXPECT_GE(f.event.at, sim::SimTime::minutes(3));
      EXPECT_LE(f.event.at, s.horizon);
    }
  }
  EXPECT_GT(total, 20u);  // ~27/hour over ~15 min windows, 20 seeds
}

TEST(ScenarioSpec, FederationSamplesMultipleClusters) {
  check::SampleOptions opts;
  opts.chaos = true;
  opts.max_clusters = 3;
  opts.fed_probability = 1.0;
  bool saw_multi = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto s = check::ScenarioSpec::sample(seed, opts);
    EXPECT_GE(s.clusters, 2u);
    EXPECT_LE(s.clusters, 3u);
    if (s.clusters > 1) saw_multi = true;
    for (const auto& f : s.faults) EXPECT_LT(f.cluster, s.clusters);
  }
  EXPECT_TRUE(saw_multi);
}

TEST(ScenarioSpec, ElementsCountsFaultsFunctionsAndClusters) {
  check::ScenarioSpec s;
  s.faas_functions = 3;
  s.clusters = 2;
  s.faults.resize(4);
  EXPECT_EQ(s.elements(), 9u);
}

TEST(ScenarioSpec, BugPlantStringsRoundTrip) {
  for (const auto plant :
       {check::BugPlant::kNone, check::BugPlant::kTruncateGrace,
        check::BugPlant::kTresOvercommit, check::BugPlant::kReservationIgnored}) {
    EXPECT_EQ(check::bug_plant_from_string(check::to_string(plant)), plant);
  }
  EXPECT_THROW((void)check::bug_plant_from_string("nope"),
               std::invalid_argument);
}

TEST(ScenarioSpec, SamplesFidelityRegimes) {
  // The fidelity draws (TRES geometry, QOS preemption, reservations) are
  // sampled often enough that a modest campaign visits every regime.
  std::size_t tres = 0, qos = 0, resv = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto s = check::ScenarioSpec::sample(seed);
    if (!s.tres_mode) continue;
    ++tres;
    qos += s.qos_preempt ? 1 : 0;
    resv += s.reservation ? 1 : 0;
    // Geometry sanity: a pilot slice always fits inside a node.
    EXPECT_GE(s.node_cpus, 4u);
    EXPECT_LE(s.node_cpus, 16u);
    EXPECT_GE(s.pilot_cpus, 1u);
    EXPECT_LE(s.pilot_cpus, s.node_cpus / 2 > 0 ? s.node_cpus / 2 : 1u);
    EXPECT_LE(s.pilot_mem_mb, s.node_mem_mb);
    if (s.reservation) {
      EXPECT_GE(s.res_start_frac, 0.2);
      EXPECT_LE(s.res_start_frac, 0.6 + 1e-9);
      EXPECT_GE(s.res_duration_min, 4u);
      EXPECT_LE(s.res_duration_min, 10u);
      EXPECT_GE(s.res_nodes, 1u);
    }
  }
  EXPECT_GT(tres, 50u);
  EXPECT_GT(qos, 15u);
  EXPECT_GT(resv, 15u);
}

TEST(ScenarioSpec, FidelityDrawsAreSeedDeterministic) {
  // The fidelity fields are drawn unconditionally (fixed draw count), so
  // a seed's pre-fidelity fields are what they were before the fields
  // existed, and the fidelity block itself is reproducible.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto a = check::ScenarioSpec::sample(seed, {.chaos = true});
    const auto b = check::ScenarioSpec::sample(seed, {.chaos = true});
    EXPECT_EQ(a.tres_mode, b.tres_mode);
    EXPECT_EQ(a.node_cpus, b.node_cpus);
    EXPECT_EQ(a.pilot_cpus, b.pilot_cpus);
    EXPECT_EQ(a.qos_preempt, b.qos_preempt);
    EXPECT_EQ(a.reservation, b.reservation);
    EXPECT_EQ(a.res_start_frac, b.res_start_frac);
  }
}

TEST(ScenarioSpec, SummaryMentionsFidelityRegime) {
  // Seed 6 is the first tres_mode draw (fidelity_check_test relies on
  // it); its summary must say so.
  const auto s = check::ScenarioSpec::sample(6);
  ASSERT_TRUE(s.tres_mode);
  EXPECT_NE(s.summary().find("+tres"), std::string::npos);
}

TEST(ScenarioSpec, SamplesEveryRouteModeAndDeadlineClasses) {
  std::size_t mode_seen[6] = {};
  bool dl_on = false, dl_off = false;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto s = check::ScenarioSpec::sample(seed);
    ++mode_seen[static_cast<std::size_t>(s.route_mode)];
    (s.deadline_classes ? dl_on : dl_off) = true;
  }
  for (std::size_t m = 0; m < 6; ++m) {
    EXPECT_GT(mode_seen[m], 0u) << "route mode " << m << " never sampled";
  }
  EXPECT_TRUE(dl_on);
  EXPECT_TRUE(dl_off);
}

TEST(ScenarioSpec, RouteModeDrawsAreSeedDeterministic) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto a = check::ScenarioSpec::sample(seed, {.chaos = true});
    const auto b = check::ScenarioSpec::sample(seed, {.chaos = true});
    EXPECT_EQ(a.route_mode, b.route_mode);
    EXPECT_EQ(a.deadline_classes, b.deadline_classes);
  }
}

TEST(ScenarioSpec, SummaryMentionsKeyKnobs) {
  const auto s = check::ScenarioSpec::sample(7);
  const std::string summary = s.summary();
  EXPECT_NE(summary.find("seed=7"), std::string::npos);
  EXPECT_NE(summary.find("nodes="), std::string::npos);
}

}  // namespace
}  // namespace hpcwhisk
