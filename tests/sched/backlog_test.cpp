// BacklogLedger: exact integer-tick accounting — after any interleaving
// of assign/move/release/forget the books must balance to zero.

#include <gtest/gtest.h>

#include "hpcwhisk/sched/backlog.hpp"

namespace hpcwhisk::sched {
namespace {

TEST(BacklogLedger, AssignReleaseRoundTripsExactly) {
  BacklogLedger ledger;
  ledger.assign(1, 7, 1000, 900);
  EXPECT_EQ(ledger.backlog(7), 1000);
  EXPECT_EQ(ledger.total(), 1000);
  EXPECT_EQ(ledger.charge_count(), 1u);

  BacklogLedger::Charge charge;
  EXPECT_TRUE(ledger.release(1, &charge));
  EXPECT_EQ(charge.worker, 7u);
  EXPECT_EQ(charge.cost_ticks, 1000);
  EXPECT_EQ(charge.predicted_ticks, 900);
  EXPECT_EQ(ledger.backlog(7), 0);
  EXPECT_EQ(ledger.total(), 0);
  EXPECT_EQ(ledger.charge_count(), 0u);
}

TEST(BacklogLedger, ReleaseWithoutChargeReturnsFalse) {
  BacklogLedger ledger;
  EXPECT_FALSE(ledger.release(42));
  EXPECT_EQ(ledger.total(), 0);
}

TEST(BacklogLedger, ReassignMovesAndKeepsOriginalPrediction) {
  BacklogLedger ledger;
  ledger.assign(1, 0, 500, 500);
  // A reroute re-assigns: the charge moves, the forecast stays pinned to
  // the original prediction so the error report stays a forecast error.
  ledger.assign(1, 3, 800, 777);
  EXPECT_EQ(ledger.backlog(0), 0);
  EXPECT_EQ(ledger.backlog(3), 800);
  EXPECT_EQ(ledger.charge_count(), 1u);
  ASSERT_NE(ledger.find(1), nullptr);
  EXPECT_EQ(ledger.find(1)->predicted_ticks, 500);
}

TEST(BacklogLedger, MoveTransfersBetweenWorkers) {
  BacklogLedger ledger;
  ledger.assign(1, 0, 300, 300);
  EXPECT_TRUE(ledger.move(1, 5));
  EXPECT_EQ(ledger.backlog(0), 0);
  EXPECT_EQ(ledger.backlog(5), 300);
  EXPECT_EQ(ledger.total(), 300);
  EXPECT_FALSE(ledger.move(99, 5));   // uncharged call
  EXPECT_FALSE(ledger.move(1, 5));    // already there
}

TEST(BacklogLedger, ForgetWorkerDropsOnlyItsCharges) {
  BacklogLedger ledger;
  ledger.assign(1, 0, 100, 100);
  ledger.assign(2, 0, 200, 200);
  ledger.assign(3, 1, 400, 400);
  EXPECT_EQ(ledger.forget_worker(0), 2u);
  EXPECT_EQ(ledger.backlog(0), 0);
  EXPECT_EQ(ledger.backlog(1), 400);
  EXPECT_EQ(ledger.total(), 400);
  EXPECT_EQ(ledger.charge_count(), 1u);
  EXPECT_EQ(ledger.forget_worker(0), 0u);  // already empty
}

TEST(BacklogLedger, ArbitraryInterleavingBalancesToZero) {
  // Deterministic torture: assign across 4 workers, reroute a third of
  // the calls, hard-kill one worker, release the survivors — the books
  // must read exactly zero (integer ticks: no epsilon).
  BacklogLedger ledger;
  for (CallId c = 0; c < 100; ++c) {
    ledger.assign(c, static_cast<WorkerId>(c % 4), 10 + (c % 7), 10);
  }
  for (CallId c = 0; c < 100; c += 3) {
    (void)ledger.move(c, static_cast<WorkerId>((c + 1) % 4));
  }
  const std::size_t dropped = ledger.forget_worker(2);
  EXPECT_GT(dropped, 0u);
  for (CallId c = 0; c < 100; ++c) (void)ledger.release(c);
  EXPECT_EQ(ledger.total(), 0);
  EXPECT_EQ(ledger.charge_count(), 0u);
  for (WorkerId w = 0; w < 4; ++w) EXPECT_EQ(ledger.backlog(w), 0);
}

}  // namespace
}  // namespace hpcwhisk::sched
