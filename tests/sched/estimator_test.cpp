// Duration estimator: EWMA convergence, cold/warm discrimination, the
// never-seen prior, and the quantile sketch's error bound.

#include <gtest/gtest.h>

#include "hpcwhisk/sched/estimator.hpp"

namespace hpcwhisk::sched {
namespace {

using sim::SimTime;

TEST(QuantileSketch, EmptyReturnsZeros) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(QuantileSketch, TracksExactMinMax) {
  QuantileSketch s;
  for (int v : {700, 3, 150, 42, 9000}) s.observe(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.min(), 3.0);
  EXPECT_EQ(s.max(), 9000.0);
}

TEST(QuantileSketch, QuantileWithinRelativeErrorBound) {
  QuantileSketch s;
  for (int v = 1; v <= 1000; ++v) s.observe(v);
  // 8 sub-buckets per octave => <= 12.5% relative error at the bucket
  // boundary; allow a little slack for the mid-bucket estimate.
  const double p50 = s.quantile(0.5);
  EXPECT_GT(p50, 500.0 * 0.85);
  EXPECT_LT(p50, 500.0 * 1.15);
  const double p95 = s.quantile(0.95);
  EXPECT_GT(p95, 950.0 * 0.85);
  EXPECT_LT(p95, 1000.0);
}

TEST(QuantileSketch, QuantileClampsToObservedRange) {
  QuantileSketch s;
  s.observe(100);
  s.observe(200);
  EXPECT_GE(s.quantile(0.0), 100.0);
  EXPECT_LE(s.quantile(1.0), 200.0);
}

TEST(DurationEstimator, NeverSeenFallsBackToPrior) {
  EstimatorConfig cfg;
  cfg.prior = SimTime::millis(123);
  DurationEstimator est{cfg};
  EXPECT_FALSE(est.seen("ghost"));
  EXPECT_EQ(est.predict("ghost"), SimTime::millis(123));
  EXPECT_EQ(est.predict_cold("ghost"), SimTime::millis(123));
  EXPECT_EQ(est.predict_quantile("ghost", 0.95), SimTime::millis(123));
  EXPECT_EQ(est.stats().prior_hits, 3u);
}

TEST(DurationEstimator, FirstObservationSeedsTheMean) {
  DurationEstimator est;
  est.observe("fn", SimTime::millis(50), /*cold_start=*/false);
  EXPECT_TRUE(est.seen("fn"));
  EXPECT_EQ(est.predict("fn"), SimTime::millis(50));
  EXPECT_EQ(est.stats().prior_hits, 0u);
}

TEST(DurationEstimator, ConvergesToConstantDuration) {
  DurationEstimator est;
  for (int i = 0; i < 100; ++i) {
    est.observe("fn", SimTime::millis(50), false);
  }
  EXPECT_EQ(est.predict("fn"), SimTime::millis(50));
  EXPECT_EQ(est.deviation("fn"), SimTime::zero());
  EXPECT_EQ(est.observations("fn"), 100u);
}

TEST(DurationEstimator, ConvergesAfterLevelShift) {
  // alpha = 0.25: after ~30 samples at the new level the EWMA is within
  // a tick of it — the model forgets a stale history quickly.
  DurationEstimator est;
  for (int i = 0; i < 20; ++i) est.observe("fn", SimTime::millis(10), false);
  for (int i = 0; i < 40; ++i) est.observe("fn", SimTime::millis(200), false);
  const auto p = est.predict("fn");
  EXPECT_GT(p, SimTime::millis(195));
  EXPECT_LE(p, SimTime::millis(200));
}

TEST(DurationEstimator, ColdAndWarmModelsAreSeparate) {
  DurationEstimator est;
  for (int i = 0; i < 20; ++i) {
    est.observe("fn", SimTime::millis(10), /*cold_start=*/false);
    est.observe("fn", SimTime::millis(300), /*cold_start=*/true);
  }
  EXPECT_EQ(est.predict("fn"), SimTime::millis(10));
  EXPECT_EQ(est.predict_cold("fn"), SimTime::millis(300));
  EXPECT_EQ(est.stats().cold_observations, 20u);
  EXPECT_EQ(est.stats().observations, 40u);
}

TEST(DurationEstimator, PredictionsAreDeterministicFolds) {
  // Two estimators fed the identical sequence agree exactly — routing on
  // these estimates keeps seeded runs replayable.
  DurationEstimator a, b;
  for (int i = 1; i <= 50; ++i) {
    const auto d = SimTime::millis(10 + (i * 7) % 90);
    const bool cold = i % 5 == 0;
    a.observe("fn", d, cold);
    b.observe("fn", d, cold);
  }
  EXPECT_EQ(a.predict("fn"), b.predict("fn"));
  EXPECT_EQ(a.predict_cold("fn"), b.predict_cold("fn"));
  EXPECT_EQ(a.predict_quantile("fn", 0.95), b.predict_quantile("fn", 0.95));
  EXPECT_EQ(a.deviation("fn"), b.deviation("fn"));
}

TEST(DurationEstimator, TracksFunctionsIndependently) {
  DurationEstimator est;
  est.observe("short", SimTime::millis(5), false);
  est.observe("long", SimTime::seconds(30), false);
  EXPECT_EQ(est.tracked_functions(), 2u);
  EXPECT_EQ(est.predict("short"), SimTime::millis(5));
  EXPECT_EQ(est.predict("long"), SimTime::seconds(30));
}

TEST(DurationEstimator, PerWorkerOffMakesOverloadsDelegate) {
  // The worker-qualified overloads must be byte-identical to the global
  // model while per_worker is off (the default) — routing decisions pin
  // golden hashes on this.
  DurationEstimator est;
  for (int i = 0; i < 10; ++i) {
    est.observe("fn", SimTime::millis(40), false, /*worker=*/3);
  }
  EXPECT_EQ(est.predict("fn", 3), est.predict("fn"));
  EXPECT_EQ(est.predict("fn", 9), est.predict("fn"));
  EXPECT_EQ(est.predict_cold("fn", 3), est.predict_cold("fn"));
}

TEST(DurationEstimator, PerWorkerModelCapturesNodeHeterogeneity) {
  EstimatorConfig cfg;
  cfg.per_worker = true;
  DurationEstimator est{cfg};
  // The same function runs 10 ms on worker 0 and 80 ms on the dilated
  // worker 1 (CPU oversubscription).
  for (int i = 0; i < 20; ++i) {
    est.observe("fn", SimTime::millis(10), false, 0);
    est.observe("fn", SimTime::millis(80), false, 1);
  }
  EXPECT_EQ(est.predict("fn", 0), SimTime::millis(10));
  EXPECT_EQ(est.predict("fn", 1), SimTime::millis(80));
  // The global model blends both; a worker without history answers from it.
  EXPECT_EQ(est.predict("fn", 7), est.predict("fn"));
  EXPECT_GT(est.predict("fn"), SimTime::millis(10));
  EXPECT_LT(est.predict("fn"), SimTime::millis(80));
}

TEST(DurationEstimator, PerWorkerColdModelIsSeparateToo) {
  EstimatorConfig cfg;
  cfg.per_worker = true;
  DurationEstimator est{cfg};
  for (int i = 0; i < 10; ++i) {
    est.observe("fn", SimTime::millis(10), /*cold_start=*/false, 0);
    est.observe("fn", SimTime::millis(400), /*cold_start=*/true, 0);
  }
  EXPECT_EQ(est.predict("fn", 0), SimTime::millis(10));
  EXPECT_EQ(est.predict_cold("fn", 0), SimTime::millis(400));
}

TEST(DurationEstimator, AnyWorkerSentinelNeverPopulatesPerWorker) {
  EstimatorConfig cfg;
  cfg.per_worker = true;
  DurationEstimator est{cfg};
  est.observe("fn", SimTime::millis(10), false, DurationEstimator::kAnyWorker);
  est.observe("fn", SimTime::millis(10), false);  // 3-arg == kAnyWorker
  // Lookups through the sentinel (and unknown workers) hit the global model.
  EXPECT_EQ(est.predict("fn", DurationEstimator::kAnyWorker),
            est.predict("fn"));
  EXPECT_EQ(est.predict("fn", 0), est.predict("fn"));
}

}  // namespace
}  // namespace hpcwhisk::sched
